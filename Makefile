PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-dynamic test-backend test-serving api-check \
	smoke-obs baselines \
	compare-baselines bench bench-snapshot bench-kernels compare-kernels \
	chaos bench-supervisor bench-dynamic bench-backend bench-serving \
	doctor obs-report ci

## Full test suite (tier 1).
test:
	$(PYTHON) -m pytest -x -q

## Everything except the slow fault matrix.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not faults"

## Dynamic-clustering subsystem: incremental updates, snapshots, serving.
test-dynamic:
	$(PYTHON) -m pytest -x -q -m dynamic

## Process execution backend: bit-identical parity across all engines,
## worker sizing/fallback, shared-memory leak hygiene (normal exit and
## chaos-killed worker), dynamic pool reuse, chaos backend axis.
test-backend:
	$(PYTHON) -m pytest -x -q -m parallel_backend

## Serving gateway: snapshot-isolated reads, write coalescing, admission
## control, the cross-engine x cross-family replay equivalence gate, and
## the `repro serve` CLI.
test-serving:
	$(PYTHON) -m pytest -x -q -m serving

## Fail when the live public surface (repro.api) drifted from the
## committed benchmarks/api_surface.json snapshot.  Intentional surface
## growth: `python -m repro.api --write` and commit the diff.
api-check:
	$(PYTHON) -m repro.api --check

## Observability smoke: one traced clustering, schema-validated trace,
## parse-back metrics (the `obs` marker), then the CLI gate on a fresh run.
smoke-obs:
	$(PYTHON) -m pytest -q -m obs
	$(PYTHON) -m repro.cli cluster --karate --resolution 0.05 --seed 3 \
	    --trace /tmp/repro-smoke-trace.jsonl
	$(PYTHON) -m repro.obs.bench validate-trace /tmp/repro-smoke-trace.jsonl

## Regenerate the committed BENCH_*.json baselines.
baselines:
	$(PYTHON) -m repro.obs.bench emit

## Re-measure into a scratch dir and compare against the committed
## baselines (>10% regressions exit nonzero).
compare-baselines:
	$(PYTHON) -m repro.obs.bench emit --out /tmp/repro-bench-current
	$(PYTHON) -m repro.obs.bench compare \
	    benchmarks/baselines/BENCH_engines.json \
	    /tmp/repro-bench-current/BENCH_engines.json
	$(PYTHON) -m repro.obs.bench compare \
	    benchmarks/baselines/BENCH_overhead.json \
	    /tmp/repro-bench-current/BENCH_overhead.json

## Per-figure benchmark scripts (pytest-benchmark).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Refresh the committed repo-root BENCH_PR3.json / BENCH_PR4.json
## snapshots (telemetry coverage + kernel speedups); commit the result.
bench-snapshot:
	$(PYTHON) -m repro.obs.bench emit --snapshot-only

## Refresh only the kernel snapshot (BENCH_PR4.json): vectorized-vs-
## reference speedups plus end-to-end parity rows.
bench-kernels:
	$(PYTHON) -m repro.obs.bench emit --snapshot-only

## Re-measure the kernel snapshot into a scratch dir and compare against
## the committed BENCH_PR4.json.  Wall-clock speedup ratios are noisier
## than the deterministic f/sim metrics, so this gate uses a wider 30%
## tolerance than the default 10%.
compare-kernels:
	$(PYTHON) -m repro.obs.bench emit --snapshot-only \
	    --snapshot-dir /tmp/repro-bench-current
	$(PYTHON) -m repro.obs.bench compare \
	    BENCH_PR4.json /tmp/repro-bench-current/BENCH_PR4.json \
	    --tolerance 0.30

## Supervised chaos matrix: every fault site x every engine x both
## kernels on the karate workload, asserting the recovery invariants
## (terminate, objective within tolerance or explicitly degraded,
## checkpoints replay bit-identically).  Deterministic; exits nonzero on
## any unrecovered cell.
chaos:
	$(PYTHON) -m repro.cli chaos --karate --seed 1

## The <3% no-fault supervision overhead bench.
bench-supervisor:
	$(PYTHON) -m pytest -x -q benchmarks/bench_supervisor.py

## Dynamic updates vs full recompute (>=5x fewer candidate evaluations at
## an equal objective); the same suite behind the committed BENCH_PR7.json
## (refresh with `python -m repro.dynamic.bench --out .`).
bench-dynamic:
	$(PYTHON) -m pytest -x -q benchmarks/bench_dynamic.py

## Execution-backend sweep: 1/2/4-worker wall clock vs the simulated
## baseline on scale-12 RMAT + LFR.  Parity (bit-identical results) is
## asserted unconditionally; the >=2x move-eval speedup gate applies only
## on hosts with >=4 CPUs (the committed BENCH_PR9.json records
## host_cpu_count; refresh with `python -m repro.parallel.backend.bench
## --out .`).
bench-backend:
	$(PYTHON) -m pytest -x -q benchmarks/bench_backend.py

## Serving gateway vs the serial read discipline on the virtual clock:
## >=1.5x read throughput with bit-identical committed label sequence
## and full shed/retry accounting; the suite behind the committed
## BENCH_PR10.json (refresh with `python -m repro.serving.bench --out .`).
bench-serving:
	$(PYTHON) -m pytest -x -q benchmarks/bench_serving.py

## Run doctor over fresh instrumented runs: a batch clustering (health
## rules over stats/trace/metrics + registry trend history) and a dynamic
## update session (serving SLOs: commit/save latency, staleness).  Both
## legs exit nonzero on any crit finding.
doctor:
	rm -rf /tmp/repro-doctor && mkdir -p /tmp/repro-doctor
	$(PYTHON) -m repro.cli cluster --karate --resolution 0.05 --seed 3 \
	    --trace /tmp/repro-doctor/trace.jsonl \
	    --metrics /tmp/repro-doctor/metrics.jsonl \
	    --register /tmp/repro-doctor/runs.jsonl --run-id doctor-check \
	    --health-rules benchmarks/health_rules.json
	$(PYTHON) -m repro.cli doctor doctor-check \
	    --runs /tmp/repro-doctor/runs.jsonl \
	    --trace /tmp/repro-doctor/trace.jsonl \
	    --metrics /tmp/repro-doctor/metrics.jsonl --iteration-cap 10 \
	    --rules benchmarks/health_rules.json
	$(PYTHON) -m repro.cli update --karate \
	    --updates benchmarks/updates_karate.jsonl --batch-size 4 --seed 3 \
	    --metrics /tmp/repro-doctor/update-metrics.jsonl \
	    --trace /tmp/repro-doctor/update-trace.jsonl \
	    --snapshot-dir /tmp/repro-doctor/snaps --doctor

## Self-contained HTML observability report (inline CSS/SVG, no scripts)
## rendered from the doctor target's artifacts.
obs-report: doctor
	$(PYTHON) -m repro.cli obs report /tmp/repro-doctor/runs.jsonl \
	    --html /tmp/repro-doctor/report.html \
	    --trace /tmp/repro-doctor/trace.jsonl \
	    --metrics /tmp/repro-doctor/metrics.jsonl --iteration-cap 10
	$(PYTHON) -m repro.cli obs report \
	    --html /tmp/repro-doctor/update-report.html \
	    --trace /tmp/repro-doctor/update-trace.jsonl \
	    --metrics /tmp/repro-doctor/update-metrics.jsonl

## The full gate a PR must pass: tier-1 tests (which include the
## parallel_backend parity/leak suite and the serving suite), the
## API-surface drift check, the observability smoke, the
## committed-baseline regression compare (including the kernel snapshot),
## the supervised chaos matrix, the run doctor + HTML report, the
## execution-backend parity/speedup bench, the serving-gateway
## equivalence/speedup bench, and the <3% overhead benches (disabled
## instrumentation, no-fault supervision).
ci: test api-check smoke-obs compare-baselines compare-kernels chaos \
	bench-dynamic bench-backend bench-serving obs-report
	$(PYTHON) -m pytest -x -q benchmarks/bench_obs_overhead.py \
	    benchmarks/bench_supervisor.py
