PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast smoke-obs baselines compare-baselines bench \
	bench-snapshot ci

## Full test suite (tier 1).
test:
	$(PYTHON) -m pytest -x -q

## Everything except the slow fault matrix.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not faults"

## Observability smoke: one traced clustering, schema-validated trace,
## parse-back metrics (the `obs` marker), then the CLI gate on a fresh run.
smoke-obs:
	$(PYTHON) -m pytest -q -m obs
	$(PYTHON) -m repro.cli cluster --karate --resolution 0.05 --seed 3 \
	    --trace /tmp/repro-smoke-trace.jsonl
	$(PYTHON) -m repro.obs.bench validate-trace /tmp/repro-smoke-trace.jsonl

## Regenerate the committed BENCH_*.json baselines.
baselines:
	$(PYTHON) -m repro.obs.bench emit

## Re-measure into a scratch dir and compare against the committed
## baselines (>10% regressions exit nonzero).
compare-baselines:
	$(PYTHON) -m repro.obs.bench emit --out /tmp/repro-bench-current
	$(PYTHON) -m repro.obs.bench compare \
	    benchmarks/baselines/BENCH_engines.json \
	    /tmp/repro-bench-current/BENCH_engines.json
	$(PYTHON) -m repro.obs.bench compare \
	    benchmarks/baselines/BENCH_overhead.json \
	    /tmp/repro-bench-current/BENCH_overhead.json

## Per-figure benchmark scripts (pytest-benchmark).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Refresh the committed repo-root BENCH_PR3.json telemetry snapshot
## (quality metrics + telemetry coverage counts); commit the result.
bench-snapshot:
	$(PYTHON) -m repro.obs.bench emit --snapshot-only

## The full gate a PR must pass: tier-1 tests, the observability smoke,
## the committed-baseline regression compare, and the <3% disabled
## instrumentation-overhead bench.
ci: test smoke-obs compare-baselines
	$(PYTHON) -m pytest -x -q benchmarks/bench_obs_overhead.py
