"""Figure 7: scalability of PAR-CC over different numbers of threads.

amazon/orkut run on the 30-core (60-hyper-thread) machine profile,
twitter/friendster on the 48-core (96) one, exactly as in the paper.
Expected shape: near-linear self-relative speedup up to the physical core
count, a shallower hyper-threading tail (the paper reports 5.59-14.97x
self-relative speedups for PAR-CC).
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.bench.sparkline import sparkline
from repro.core.api import correlation_clustering
from repro.parallel.scheduler import Machine

GRAPH_MACHINES = {
    "amazon": (Machine.c2_standard_60(), (1, 2, 4, 8, 15, 30, 60), 0.5),
    "orkut": (Machine.c2_standard_60(), (1, 2, 4, 8, 15, 30, 60), 0.35),
    "twitter": (Machine.m1_megamem_96(), (1, 2, 4, 12, 24, 48, 96), 0.35),
    "friendster": (Machine.m1_megamem_96(), (1, 2, 4, 12, 24, 48, 96), 0.35),
}


def run_thread_scaling():
    out = {}
    for name, (machine, workers, scale) in GRAPH_MACHINES.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for lam in (0.01, 0.85):
            result = correlation_clustering(
                graph, resolution=lam, seed=1,
                machine=machine, num_workers=machine.max_workers,
            )
            out[(name, lam)] = (machine, workers, [
                result.sim_time(p) for p in workers
            ])
    return out


def test_fig7_thread_scaling_cc(benchmark):
    data = benchmark.pedantic(run_thread_scaling, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 7: PAR-CC self-relative speedup vs worker count",
        ["graph", "lambda", "workers", "speedup", "shape"],
    )
    for (name, lam), (machine, workers, times) in data.items():
        base = times[0]
        speedup_series = [base / t for t in times]
        shape = sparkline(speedup_series)
        for p, s in zip(workers, speedup_series):
            table.add_row(name, lam, p, s, shape if p == workers[-1] else "")
    table.emit()

    for (name, lam), (machine, workers, times) in data.items():
        speedups = [times[0] / t for t in times]
        # Monotone non-decreasing in worker count.
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        # Meaningful parallelism at full machine width (paper: 5.6-15x).
        assert speedups[-1] > 3.0, (name, lam, speedups)
        # Hyper-threading tail is shallower than the physical-core region:
        # marginal speedup per extra worker drops past the core count.
        cores_idx = workers.index(machine.cores)
        physical_slope = (speedups[cores_idx] - speedups[0]) / (
            workers[cores_idx] - workers[0]
        )
        smt_slope = (speedups[-1] - speedups[cores_idx]) / (
            workers[-1] - workers[cores_idx]
        )
        assert smt_slope < physical_slope
