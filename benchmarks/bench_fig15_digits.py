"""Figure 15: weighted-graph clustering quality on the digits k-NN graph.

Pipeline (Appendix C.2): pointset -> cosine k-NN (k = 50) -> symmetrize ->
cluster.  Methods: PAR-CC^W (weighted), PAR-CC (unit weights), PAR-MOD,
and the NetworKit-style PLM as the external weighted-modularity baseline
(the paper found NetworKit == PAR-MOD^W, so PLM stands for both).  Axes:
average precision/recall vs ground-truth classes and ARI/NMI.

Expected shape: PAR-CC^W is the most robust across resolutions.
"""

import numpy as np

from repro.baselines.plm import plm_cluster
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering, modularity_clustering
from repro.eval import (
    adjusted_rand_index,
    average_precision_recall,
    normalized_mutual_information,
)
from repro.generators import knn_graph
from repro.generators.pointsets import digits_like_pointset

LAMBDAS = (0.01, 0.03, 0.06, 0.1, 0.2)
GAMMAS = (0.2, 1.0, 4.0)


def run_weighted_study():
    pointset = digits_like_pointset(seed=0)
    graph = knn_graph(pointset.points, k=50)
    unweighted = graph.with_unit_weights()
    communities = [
        np.flatnonzero(pointset.labels == c) for c in range(pointset.num_classes)
    ]
    rows = []

    def add(method, resolution, labels):
        pr = average_precision_recall(labels, communities)
        rows.append(
            (method, resolution,
             adjusted_rand_index(labels, pointset.labels),
             normalized_mutual_information(labels, pointset.labels),
             pr.precision, pr.recall)
        )

    for lam in LAMBDAS:
        add("PAR-CC^W", lam,
            correlation_clustering(graph, resolution=lam, seed=1).assignments)
        add("PAR-CC", lam,
            correlation_clustering(unweighted, resolution=lam, seed=1).assignments)
    for gamma in GAMMAS:
        add("PAR-MOD^W", gamma,
            modularity_clustering(graph, gamma=gamma, seed=1).assignments)
        add("NetworKit-PLM", gamma,
            plm_cluster(graph, gamma=gamma, seed=1).assignments)
    return rows


def test_fig15_digits_weighted(benchmark):
    rows = benchmark.pedantic(run_weighted_study, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 15: digits k-NN graph quality",
        ["method", "resolution", "ARI", "NMI", "precision", "recall"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    by_method = {}
    for method, _res, ari, nmi, _p, _r in rows:
        by_method.setdefault(method, []).append((ari, nmi))
    # Digits is clusterable: the weighted CC treatment reaches high ARI.
    assert max(a for a, _ in by_method["PAR-CC^W"]) > 0.75
    # Robustness across resolutions: PAR-CC^W's *worst* low-resolution ARI
    # beats PAR-CC's worst (the Figure 15 robustness claim); compare the
    # first three (low) resolutions where weights matter most.
    w_low = [a for a, _ in by_method["PAR-CC^W"][:3]]
    u_low = [a for a, _ in by_method["PAR-CC"][:3]]
    assert min(w_low) >= min(u_low) - 0.05
    # NetworKit-PLM matches PAR-MOD^W (paper: NetworKit == PAR-MOD^W).
    plm_best = max(a for a, _ in by_method["NetworKit-PLM"])
    mod_best = max(a for a, _ in by_method["PAR-MOD^W"])
    assert abs(plm_best - mod_best) < 0.15
