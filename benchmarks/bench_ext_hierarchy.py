"""Extension: multilevel hierarchy vs resolution sweep.

One coarsening run yields a nested family of clusterings at multiple
granularities.  This bench compares getting K granularities from the
hierarchy (one run) against a K-point resolution sweep (K runs): the
hierarchy costs a fraction of the sweep while covering a comparable
range of cluster counts.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering
from repro.core.config import ClusteringConfig
from repro.core.hierarchy import cluster_hierarchy
from repro.utils.timing import WallTimer


def run_comparison():
    graph = benchmark_surrogate("livejournal", seed=0, scale=0.3).graph
    with WallTimer() as hierarchy_timer:
        hierarchy = cluster_hierarchy(
            graph, ClusteringConfig(resolution=0.03, seed=1)
        )
    sweep_resolutions = (0.01, 0.05, 0.15, 0.4)
    sweep_counts = []
    with WallTimer() as sweep_timer:
        for lam in sweep_resolutions:
            result = correlation_clustering(graph, resolution=lam, seed=1)
            sweep_counts.append(result.num_clusters)
    return hierarchy, hierarchy_timer.elapsed, sweep_counts, sweep_timer.elapsed


def test_ext_hierarchy_vs_sweep(benchmark):
    hierarchy, h_time, sweep_counts, s_time = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    table = ExperimentTable(
        "Extension: hierarchy levels vs resolution sweep",
        ["source", "granularities (cluster counts)", "wall seconds"],
    )
    table.add_row(
        "hierarchy (1 run)",
        " ".join(str(lv.num_clusters) for lv in hierarchy.levels),
        h_time,
    )
    table.add_row(
        "sweep (4 runs)", " ".join(str(c) for c in sweep_counts), s_time
    )
    table.emit()

    assert hierarchy.is_nested()
    assert hierarchy.num_levels >= 2
    # The hierarchy's single run is cheaper than the multi-point sweep.
    assert h_time < s_time
    # And its granularity range is non-trivial.
    counts = [lv.num_clusters for lv in hierarchy.levels]
    assert max(counts) > 1.5 * min(counts)
