"""Ablation: batched-window asynchrony vs the event-driven oracle.

DESIGN.md §2's central substitution is that batched concurrency windows
reproduce the quality behaviour of true fine-grained asynchrony.  This
bench runs both engines (the event-driven discrete-event simulation is
the oracle) across graphs and resolutions and compares objectives —
the empirical license for the window model.
"""

import numpy as np
import pytest

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig, Frontier
from repro.core.event_async import run_event_driven_best_moves
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.utils.rng import make_rng
from repro.utils.timing import WallTimer

GRAPHS = {"amazon": 0.5, "friendster": 0.2}


def run_ablation():
    rows = []
    for name, scale in GRAPHS.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for lam in (0.1, 0.85):
            config = ClusteringConfig(
                resolution=lam, refine=False, frontier=Frontier.ALL,
                num_workers=60,
            )
            event_vals, batched_vals = [], []
            with WallTimer() as event_timer:
                for seed in range(2):
                    state = ClusterState.singletons(graph)
                    run_event_driven_best_moves(
                        graph, state, lam, config, rng=make_rng(seed)
                    )
                    event_vals.append(
                        lambdacc_objective(graph, state.assignments, lam)
                    )
            with WallTimer() as batched_timer:
                for seed in range(2):
                    state = ClusterState.singletons(graph)
                    run_best_moves(graph, state, lam, config, rng=make_rng(seed))
                    batched_vals.append(
                        lambdacc_objective(graph, state.assignments, lam)
                    )
            rows.append(
                (name, lam, float(np.mean(event_vals)),
                 float(np.mean(batched_vals)),
                 event_timer.elapsed, batched_timer.elapsed)
            )
    return rows


def test_ablation_event_vs_batched(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ExperimentTable(
        "Ablation: event-driven oracle vs batched windows",
        ["graph", "lambda", "event F", "batched F", "event wall s",
         "batched wall s"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    for name, lam, event_f, batched_f, event_t, batched_t in rows:
        # Quality parity within noise: the window model is a valid stand-in.
        assert batched_f == pytest.approx(event_f, rel=0.2), (name, lam)
        assert batched_f > 0
    # The vectorized batched engine is much faster in wall-clock, which is
    # why it is the production engine.
    total_event = sum(r[4] for r in rows)
    total_batched = sum(r[5] for r in rows)
    assert total_batched < total_event
