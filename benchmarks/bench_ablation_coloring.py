"""Ablation: coloring-based scheduling (Grappolo [27]) vs asynchronous.

The paper states its asynchronous setting "outperforms methods that
maintain consistency guarantees in quality and speed" — coloring-based
parallel Louvain is the canonical such method (conflict-free within a
color class).  This bench puts the claim to the test: the colored engine
is conflict-safe (objective always positive, like async) but pays for
the coloring and the per-color barriers in simulated time.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.best_moves import run_best_moves
from repro.core.coloring import run_colored_best_moves
from repro.core.config import ClusteringConfig, Frontier
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.parallel.scheduler import SimulatedScheduler
from repro.utils.rng import make_rng

GRAPHS = {"amazon": 0.5, "orkut": 0.25}


def run_ablation():
    rows = []
    for name, scale in GRAPHS.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for lam in (0.1, 0.85):
            config = ClusteringConfig(
                resolution=lam, refine=False, frontier=Frontier.ALL,
                num_workers=60,
            )
            results = {}
            for label, engine in (
                ("async", run_best_moves),
                ("colored", run_colored_best_moves),
            ):
                sched = SimulatedScheduler(num_workers=60)
                state = ClusterState.singletons(graph)
                engine(graph, state, lam, config, sched=sched, rng=make_rng(1))
                results[label] = (
                    sched.simulated_time(60),
                    lambdacc_objective(graph, state.assignments, lam),
                )
            rows.append(
                (name, lam,
                 results["async"][1], results["colored"][1],
                 results["async"][0], results["colored"][0],
                 results["colored"][0] / results["async"][0])
            )
    return rows


def test_ablation_coloring_vs_async(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ExperimentTable(
        "Ablation: asynchronous vs coloring-based scheduling",
        ["graph", "lambda", "async F", "colored F", "async time",
         "colored time", "colored/async time"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    for name, lam, async_f, colored_f, _at, _ct, slowdown in rows:
        # Both conflict-managed engines keep the objective positive...
        assert async_f > 0 and colored_f > 0, (name, lam)
        # ... at comparable quality ...
        assert colored_f > 0.7 * async_f, (name, lam)
        # ... but the consistency guarantee costs time (the paper's
        # rationale for choosing asynchrony).
        assert slowdown > 1.0, (name, lam)
