"""Figure 3: objective per optimization setting.

Top panel: CC objective of PAR-CC per setting (symmetric log scale in the
paper because synchronous settings often go *negative*); bottom panel:
multiplicative modularity increase of each setting over no optimizations.

Paper shapes: async > sync on objective (1.29-156% CC gain, always
positive in async); refinement adds 1.12-36.92% CC objective; frontier
restriction leaves objective comparable.
"""

import math

from repro.bench.harness import ExperimentTable
from repro.bench.studies import TUNING_SETTINGS, lookup, select, tuning_study


def _symlog(x: float) -> float:
    return math.copysign(math.log10(max(abs(x), 1.0)), x)


def test_fig3_objectives(benchmark):
    records = benchmark.pedantic(tuning_study, rounds=1, iterations=1)

    cc_table = ExperimentTable(
        "Figure 3 (top): PAR-CC objective per setting (symlog in parens)",
        ["graph", "lambda"] + list(TUNING_SETTINGS),
    )
    for base in select(records, objective_kind="cc", variant="base"):
        cells = []
        for setting in TUNING_SETTINGS:
            rec = lookup(
                records, graph=base.graph, objective_kind="cc",
                resolution=base.resolution, variant=setting,
            )
            cells.append(f"{rec.objective:.3g} ({_symlog(rec.objective):+.2f})")
        cc_table.add_row(base.graph, base.resolution, *cells)
    cc_table.emit()

    mod_table = ExperimentTable(
        "Figure 3 (bottom): modularity increase over base per setting",
        ["graph", "gamma"] + [s for s in TUNING_SETTINGS if s != "base"],
    )
    for base in select(records, objective_kind="mod", variant="base"):
        cells = []
        for setting in TUNING_SETTINGS:
            if setting == "base":
                continue
            rec = lookup(
                records, graph=base.graph, objective_kind="mod",
                resolution=base.resolution, variant=setting,
            )
            denominator = base.modularity if abs(base.modularity) > 1e-12 else 1e-12
            cells.append(rec.modularity / denominator)
        mod_table.add_row(base.graph, base.resolution, *cells)
    mod_table.emit()

    # Shape assertions (Section 4.1).
    for base in select(records, objective_kind="cc", variant="base"):
        async_rec = lookup(
            records, graph=base.graph, objective_kind="cc",
            resolution=base.resolution, variant="async",
        )
        all_rec = lookup(
            records, graph=base.graph, objective_kind="cc",
            resolution=base.resolution, variant="all-opts",
        )
        # Asynchronous objective is always positive...
        assert async_rec.objective > 0, (base.graph, base.resolution)
        assert all_rec.objective > 0
        # ... and at least matches the synchronous baseline.
        assert async_rec.objective >= base.objective - 1e-9
    # At the high resolution the synchronous baseline goes negative on at
    # least one graph (the Figure 1 phenomenon).
    high = select(records, objective_kind="cc", variant="base", resolution=0.85)
    assert any(rec.objective < 0 for rec in high)
