"""Table 1: sizes of the graph inputs (surrogate scale).

Paper values (full SNAP graphs): amazon 334,863/925,872 ... friendster
65,608,366/1,806,067,135.  The surrogates reproduce the *relative*
ordering and density profile at laptop scale; this bench times their
generation and prints the surrogate Table 1.
"""

from repro.bench.harness import ExperimentTable
from repro.generators.snap_like import SNAP_SURROGATES, surrogate_table


def test_table1_graph_sizes(benchmark):
    rows = benchmark.pedantic(
        lambda: surrogate_table(seed=0), rounds=1, iterations=1
    )
    table = ExperimentTable(
        "Table 1 (surrogates): sizes of graph inputs",
        ["graph", "num vertices", "num edges", "mean degree"],
    )
    for name, n, m in rows:
        table.add_row(name, n, m, 2 * m / n)
    table.emit()

    assert len(rows) == len(SNAP_SURROGATES) == 6
    sizes = {name: (n, m) for name, n, m in rows}
    # Relative ordering of Table 1: amazon/dblp smallest, orkut denser
    # than livejournal, twitter/friendster largest.
    assert sizes["amazon"][0] <= sizes["livejournal"][0]
    assert sizes["orkut"][1] > sizes["amazon"][1]
    assert sizes["friendster"][0] >= sizes["orkut"][0]
