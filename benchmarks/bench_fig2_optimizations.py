"""Figure 2: multiplicative slowdown in average time of each optimization.

The paper fixes (synchronous, all vertices, no refinement) and toggles one
optimization at a time on amazon/orkut/twitter/friendster with lambda in
{0.01, 0.85}, reporting:

* sync / async          (async usually faster; up to 2.50x, median 1.21x)
* all / cluster-nbrs    (up to 1.32x, median 1.01x)
* all / vertex-nbrs     (up to 1.98x, median 1.03x)
* refine / no-refine    (refinement SLOWER: up to 2.29x, median 1.67x)
* base / all-opts       (everything on: up to 5.85x faster)
"""

from repro.bench.harness import ExperimentTable, geometric_mean
from repro.bench.studies import select, lookup, tuning_study


def test_fig2_optimization_slowdowns(benchmark):
    records = benchmark.pedantic(tuning_study, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 2: multiplicative slowdown per optimization "
        "(PAR-CC and PAR-MOD; >1 means the first setting is slower)",
        ["graph", "objective", "resolution", "sync/async",
         "all/cluster-nbrs", "all/vertex-nbrs", "refine/no-refine",
         "base/all-opts"],
    )
    ratios = {"sync/async": [], "all/cnbrs": [], "all/vnbrs": [],
              "refine": [], "base/all": []}
    for kind in ("cc", "mod"):
        for record in select(records, objective_kind=kind, variant="base"):
            base = record.sim_time_par

            def t(variant):
                return lookup(
                    records, graph=record.graph, objective_kind=kind,
                    resolution=record.resolution, variant=variant,
                ).sim_time_par

            row = (
                base / t("async"),
                base / t("cluster-nbrs"),
                base / t("vertex-nbrs"),
                t("refine") / base,
                base / t("all-opts"),
            )
            table.add_row(record.graph, kind, record.resolution, *row)
            ratios["sync/async"].append(row[0])
            ratios["all/cnbrs"].append(row[1])
            ratios["all/vnbrs"].append(row[2])
            ratios["refine"].append(row[3])
            ratios["base/all"].append(row[4])
    table.emit()

    summary = ExperimentTable(
        "Figure 2 summary (geomean across graphs/resolutions)",
        ["ratio", "geomean", "max"],
    )
    for key, values in ratios.items():
        summary.add_row(key, geometric_mean(values), max(values))
    summary.emit()

    # Paper shapes: frontier restriction is near-parity (the paper's
    # *median* was 1.01-1.03x; savings only materialize when frontiers
    # shrink, and our surrogates stay >90% active under synchronous
    # lockstep — see EXPERIMENTS.md); refinement costs time; the full
    # optimization set helps clearly.
    assert geometric_mean(ratios["all/vnbrs"]) > 0.85
    assert geometric_mean(ratios["refine"]) > 1.0
    assert geometric_mean(ratios["base/all"]) > 1.0
