"""Execution backend: parity always, real-core speedup where possible.

ISSUE 9's contract: the process backend must be **bit-identical** to the
simulated baseline on every workload (that part is asserted
unconditionally), and the move-evaluation phase must reach **>= 2x**
wall-clock speedup at 4 workers vs 1 on the scale-12 RMAT workload —
*on a host that has >= 4 CPUs*.  Speedup from real parallelism cannot
exist on fewer cores than workers (4 processes time-slicing 1 CPU can
only add IPC overhead), so the speedup gate self-disables below 4 CPUs
while still measuring and reporting the numbers; the committed
``BENCH_PR9.json`` records ``host_cpu_count`` so the provenance of its
figures is explicit.

Regenerate the snapshot with ``python -m repro.parallel.backend.bench
--out .``.
"""

import os

import pytest

from repro.bench.harness import ExperimentTable
from repro.parallel.backend.bench import (
    GATE_MIN_CPUS,
    TARGET_SPEEDUP,
    WORKER_SWEEP,
    backend_suite,
)


def test_backend_parity_and_speedup(benchmark):
    suite = benchmark.pedantic(
        backend_suite, kwargs={"repeats": 3}, rounds=1, iterations=1
    )
    rows = {row.key: row for row in suite.rows}

    table = ExperimentTable(
        "Execution backend: wall clock vs simulated baseline",
        ["row", "wall (s)", "move-eval (s)", "speedup", "identical"],
    )
    for row in suite.rows:
        table.add_row(
            row.key,
            f"{row.metrics['wall_seconds']:.4f}",
            (
                f"{row.metrics['moveeval_wall_seconds']:.4f}"
                if "moveeval_wall_seconds" in row.metrics
                else "-"
            ),
            (
                f"{row.metrics['moveeval_speedup']:.2f}x"
                if "moveeval_speedup" in row.metrics
                else "-"
            ),
            row.info.get("identical", "-"),
        )
    table.emit()

    # Parity is unconditional: every process row must be bit-identical
    # to its simulated baseline and must have actually dispatched.
    for key, row in rows.items():
        if "-process-" not in key:
            continue
        assert row.info["identical"], f"{key}: results diverged from simulated"
        assert not row.info["faulted"], f"{key}: backend faulted mid-bench"
        assert row.info["dispatches"] > 0, f"{key}: nothing was dispatched"

    # The speedup gate needs cores to speed up on.
    cpu_count = os.cpu_count() or 1
    top = WORKER_SWEEP[-1]
    ratio = rows[f"rmat12-process-w{top}"].metrics["moveeval_speedup"]
    if cpu_count < GATE_MIN_CPUS:
        pytest.skip(
            f"host has {cpu_count} CPU(s) < {GATE_MIN_CPUS}: {top}-worker "
            f"move-eval measured {ratio:.2f}x vs 1 worker (recorded, not "
            f"gated — real-core speedup requires real cores)"
        )
    assert ratio >= TARGET_SPEEDUP, (
        f"move-eval speedup at {top} workers is {ratio:.2f}x "
        f"(need >= {TARGET_SPEEDUP}x on a {cpu_count}-CPU host)"
    )
