"""Benchmark-suite fixtures.

Routes the figure/table output of :class:`repro.bench.harness.ExperimentTable`
around pytest's capture so the printed series land in tee'd logs
(``pytest benchmarks/ --benchmark-only | tee bench_output.txt``).
"""

import pytest

from repro.bench import harness


@pytest.fixture(autouse=True)
def _uncaptured_bench_tables(capfd):
    harness.set_capture_disabler(capfd.disabled)
    yield
    harness.set_capture_disabler(None)
