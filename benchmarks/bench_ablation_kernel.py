"""Ablation: the dual best-move kernel's degree threshold (Appendix B).

The paper chooses between a sequential scan and a parallel hash table per
vertex by a fixed degree threshold.  Too low a threshold pays the
parallel table's setup overhead on cheap vertices (more simulated work);
too high a threshold serializes hub vertices (more simulated depth).
The twitter surrogate — with its ~3000-degree hubs — shows the trade-off.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import cluster
from repro.core.config import ClusteringConfig

THRESHOLDS = (8, 64, 512, 10**9)


def run_ablation():
    graph = benchmark_surrogate("twitter", seed=0, scale=0.35).graph
    rows = []
    for threshold in THRESHOLDS:
        config = ClusteringConfig(
            resolution=0.85, kernel_threshold=threshold, seed=1
        )
        result = cluster(graph, config)
        rows.append(
            (threshold, result.ledger.total_work, result.ledger.total_depth,
             result.sim_time(60))
        )
    return rows


def test_ablation_kernel_threshold(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ExperimentTable(
        "Ablation: best-move kernel degree threshold (twitter surrogate)",
        ["threshold", "sim work", "sim depth", "sim_time(60)"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    by_threshold = {t: (w, d, s) for t, w, d, s in rows}
    # All-parallel (tiny threshold) does the most work.
    assert by_threshold[8][0] > by_threshold[512][0]
    # All-sequential (huge threshold) has the deepest critical path —
    # hub vertices serialize their whole adjacency scan.
    assert by_threshold[10**9][1] > by_threshold[512][1]
