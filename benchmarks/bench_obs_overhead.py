"""Observability overhead: instrumentation must be no-op-cheap.

ISSUE 2's contract: with an :class:`~repro.obs.instrument.Instrumentation`
constructed but *disabled*, every hook degenerates to an attribute load
plus an ``enabled`` check, so the wall-clock slowdown over an
uninstrumented run stays under 3%.  The assertion uses a loose multiple
of that target because CI wall clocks are noisy at millisecond scales
(same convention as ``bench_resilience.py``); the committed
``BENCH_overhead.json`` baseline records the measured ratios for the
``compare`` gate.

Disabled or enabled, instrumentation must never change the answer: the
clustering and the simulated cost are asserted bit-identical.
"""

from repro.bench.harness import ExperimentTable
from repro.obs.bench import overhead_suite

#: Design target for the constructed-but-disabled configuration.
DISABLED_TARGET = 0.03
#: CI wall clocks are noisy at millisecond scales; assert a loose multiple.
WALL_TOLERANCE = 10.0


def test_obs_overhead(benchmark):
    suite = benchmark.pedantic(
        overhead_suite, kwargs={"repeats": 5}, rounds=1, iterations=1
    )

    rows = {row.key: row for row in suite.rows}
    table = ExperimentTable(
        "Instrumentation overhead vs uninstrumented run",
        ["configuration", "wall (s)", "slowdown", "identical"],
    )
    table.add_row(
        "baseline", f"{rows['baseline'].info['wall_seconds']:.4f}", "-", "-"
    )
    for key in ("disabled", "enabled"):
        row = rows[key]
        table.add_row(
            key,
            f"{row.info['wall_seconds']:.4f}",
            f"{row.metrics['slowdown'] - 1.0:+.1%}",
            row.info["identical"],
        )
    table.emit()

    for key in ("disabled", "enabled"):
        # Instrumentation observes; it must never change the clustering or
        # the modeled parallel cost.
        assert rows[key].info["identical"], f"{key}: clustering diverged"
        assert rows[key].info["sim_identical"], f"{key}: simulated cost changed"
    disabled_overhead = rows["disabled"].metrics["slowdown"] - 1.0
    assert disabled_overhead < DISABLED_TARGET * WALL_TOLERANCE, (
        f"disabled instrumentation costs {disabled_overhead:.1%}, far above "
        f"the {DISABLED_TARGET:.0%} target"
    )
