"""Figure 13: PAR-MOD thread scalability (appendix twin of Figure 7).

The paper's headline anomaly lives here: on twitter, modularity
clustering produces very few clusters relative to the graph size (average
cluster size up to 2.08e7), so atomic updates of the few hot cluster
weights contend and the self-relative speedup collapses (1.89x at worst,
vs 5.29-14.51x excluding twitter).  Our twitter surrogate reproduces the
few-giant-cluster + hub regime.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import modularity_clustering
from repro.parallel.scheduler import Machine

GRAPH_MACHINES = {
    "amazon": (Machine.c2_standard_60(), (1, 2, 4, 8, 15, 30, 60), 0.5),
    "orkut": (Machine.c2_standard_60(), (1, 2, 4, 8, 15, 30, 60), 0.35),
    "twitter": (Machine.m1_megamem_96(), (1, 2, 4, 12, 24, 48, 96), 0.35),
    "friendster": (Machine.m1_megamem_96(), (1, 2, 4, 12, 24, 48, 96), 0.35),
}


def run_thread_scaling():
    out = {}
    for name, (machine, workers, scale) in GRAPH_MACHINES.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for gamma in (0.5, 16.0):
            result = modularity_clustering(
                graph, gamma=gamma, seed=1,
                machine=machine, num_workers=machine.max_workers,
            )
            out[(name, gamma)] = (
                workers,
                [result.sim_time(p) for p in workers],
                result.num_clusters,
                graph.num_vertices,
            )
    return out


def test_fig13_thread_scaling_mod(benchmark):
    data = benchmark.pedantic(run_thread_scaling, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 13: PAR-MOD self-relative speedup vs worker count",
        ["graph", "gamma", "clusters", "speedup@max-workers"],
    )
    final_speedups = {}
    for (name, gamma), (workers, times, clusters, n) in data.items():
        speedup = times[0] / times[-1]
        final_speedups[(name, gamma)] = speedup
        table.add_row(name, gamma, clusters, speedup)
    table.emit()

    # Everything parallelizes...
    for key, speedup in final_speedups.items():
        assert speedup > 1.5, key
    # ... but twitter at the coarse resolution (few giant clusters, hot
    # cluster-weight counters) scales worse than friendster at the same
    # resolution — the paper's contention story.
    assert final_speedups[("twitter", 0.5)] < final_speedups[("friendster", 0.5)]
