"""Supervisor overhead: supervision must be ~free when nothing fails.

ISSUE 6's contract: wrapping a fault-free run in a
:class:`~repro.supervisor.RunSupervisor` costs <3% wall clock over the
same run unsupervised — the checkpoint throttle
(``checkpoint_budget_fraction``) plus a bookkeeping-only no-fault path
make that hold.  The assertion uses a loose multiple of the target
because CI wall clocks are noisy at millisecond scales (same convention
as ``bench_obs_overhead.py``).

Supervision must never change the answer when nothing fails: the
clustering, objective, and simulated cost are asserted bit-identical,
and the supervised run must finish on the first rung in one attempt
with no degradation.
"""

from repro.bench.harness import ExperimentTable
from repro.supervisor.bench import SUPERVISED_TARGET, overhead_suite

#: CI wall clocks are noisy at millisecond scales; assert a loose multiple.
WALL_TOLERANCE = 10.0


def test_supervisor_overhead(benchmark):
    suite = benchmark.pedantic(
        overhead_suite, kwargs={"repeats": 5}, rounds=1, iterations=1
    )

    rows = {row.key: row for row in suite.rows}
    supervised = rows["supervised"]
    table = ExperimentTable(
        "Supervisor overhead vs unsupervised run (no faults)",
        ["configuration", "wall (s)", "slowdown", "identical"],
    )
    table.add_row(
        "baseline", f"{rows['baseline'].info['wall_seconds']:.4f}", "-", "-"
    )
    table.add_row(
        "supervised",
        f"{supervised.info['wall_seconds']:.4f}",
        f"{supervised.metrics['slowdown'] - 1.0:+.1%}",
        supervised.info["identical"],
    )
    table.emit()

    # Supervision observes and retries; with no faults it must be invisible.
    assert supervised.info["identical"], "supervised clustering diverged"
    assert supervised.info["sim_identical"], "supervised simulated cost changed"
    assert supervised.info["attempts"] == 1, (
        f"no-fault run took {supervised.info['attempts']} attempts"
    )
    assert supervised.info["rung"] == "as-configured"
    assert not supervised.info["degraded"]
    overhead = supervised.metrics["slowdown"] - 1.0
    assert overhead < SUPERVISED_TARGET * WALL_TOLERANCE, (
        f"no-fault supervision costs {overhead:.1%}, far above the "
        f"{SUPERVISED_TARGET:.0%} target"
    )
