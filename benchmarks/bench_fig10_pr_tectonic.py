"""Figure 10: precision/recall of PAR-CC vs Tectonic.

Paper: comparable trade-offs on amazon; PAR-CC clearly better on dblp,
livejournal, and orkut — Tectonic "degrades significantly on the larger
graphs".  Speed-wise PAR-CC is 2.48-67.62x faster at comparable quality
(Section 4.2); we report the simulated-time ratio alongside.
"""

from repro.bench.datasets import benchmark_surrogate, quality_resolutions
from repro.bench.harness import ExperimentTable
from repro.baselines.tectonic import tectonic_cluster
from repro.core.api import correlation_clustering
from repro.eval.ground_truth import average_precision_recall
from repro.eval.pr_curve import PRPoint, best_recall_at_precision
from repro.parallel.scheduler import SimulatedScheduler

GRAPHS = {"amazon": 0.5, "dblp": 0.5, "livejournal": 0.3, "orkut": 0.25}


def run_comparison():
    out = {}
    for name, scale in GRAPHS.items():
        part = benchmark_surrogate(name, seed=0, scale=scale)
        communities = part.top_communities(5000)
        graph = part.graph

        cc_points = []
        cc_time = None
        for lam in quality_resolutions("cc", 10):
            result = correlation_clustering(graph, resolution=float(lam), seed=1)
            pr = average_precision_recall(result.assignments, communities)
            cc_points.append(PRPoint(float(lam), pr.precision, pr.recall))
            cc_time = result.sim_time(60)

        tect_points = []
        tect_time = None
        for theta in quality_resolutions("theta", 12):
            sched = SimulatedScheduler(num_workers=1)
            labels = tectonic_cluster(graph, theta=float(theta), sched=sched)
            pr = average_precision_recall(labels, communities)
            tect_points.append(PRPoint(float(theta), pr.precision, pr.recall))
            tect_time = sched.ledger.simulated_time(1)
        out[name] = (cc_points, tect_points, cc_time, tect_time)
    return out


def test_fig10_tectonic_comparison(benchmark):
    data = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 10: PAR-CC vs Tectonic (recall at precision thresholds)",
        ["graph", "method", "R@P>=0.4", "R@P>=0.6", "R@P>=0.8", "sim_time"],
    )
    for name, (cc_points, tect_points, cc_time, tect_time) in data.items():
        table.add_row(
            name, "PAR-CC",
            best_recall_at_precision(cc_points, 0.4),
            best_recall_at_precision(cc_points, 0.6),
            best_recall_at_precision(cc_points, 0.8),
            cc_time,
        )
        table.add_row(
            name, "Tectonic",
            best_recall_at_precision(tect_points, 0.4),
            best_recall_at_precision(tect_points, 0.6),
            best_recall_at_precision(tect_points, 0.8),
            tect_time,
        )
    table.emit()

    # Shapes: PAR-CC at least matches Tectonic everywhere and clearly wins
    # on the denser graphs (livejournal/orkut).
    for name, (cc_points, tect_points, _ct, _tt) in data.items():
        ours = best_recall_at_precision(cc_points, 0.6)
        theirs = best_recall_at_precision(tect_points, 0.6)
        assert ours >= theirs - 0.05, name
    for name in ("livejournal", "orkut"):
        cc_points, tect_points, _, _ = data[name]
        assert best_recall_at_precision(cc_points, 0.6) > best_recall_at_precision(
            tect_points, 0.6
        ), name
