"""Extension: quality vs LFR mixing parameter.

A classic community-detection figure the paper's framework supports
directly: sweep the LFR mixing parameter mu and plot recovery quality
(ARI vs planted labels) for PAR-CC, PAR-MOD, and Tectonic.  Expected
shape: all methods degrade as mu grows; PAR-CC stays at least as good as
the alternatives through the transition (the paper's Section 4.3 story on
a harder, degree-heterogeneous workload).
"""

from repro.baselines.tectonic import tectonic_cluster
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering, modularity_clustering
from repro.eval.ari import adjusted_rand_index
from repro.generators.lfr import lfr_like_graph

MIXINGS = (0.1, 0.25, 0.4, 0.55)


def run_sweep():
    rows = []
    for mu in MIXINGS:
        part = lfr_like_graph(2000, mixing=mu, seed=7)
        graph = part.graph
        best_cc = max(
            adjusted_rand_index(
                correlation_clustering(graph, resolution=lam, seed=1).assignments,
                part.labels,
            )
            for lam in (0.02, 0.08)
        )
        best_mod = adjusted_rand_index(
            modularity_clustering(graph, gamma=1.0, seed=1).assignments,
            part.labels,
        )
        best_tect = max(
            adjusted_rand_index(
                tectonic_cluster(graph, theta=theta), part.labels
            )
            for theta in (0.05, 0.15, 0.3)
        )
        rows.append((mu, best_cc, best_mod, best_tect))
    return rows


def test_ext_lfr_mixing_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = ExperimentTable(
        "Extension: ARI vs LFR mixing parameter",
        ["mu", "PAR-CC", "PAR-MOD", "Tectonic"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    cc_scores = [cc for _mu, cc, _m, _t in rows]
    # Quality decays with mixing...
    assert cc_scores[0] > cc_scores[-1]
    # ... starts strong at low mixing ...
    assert cc_scores[0] > 0.6
    # ... and PAR-CC at least matches the baselines at every point.
    for mu, cc, mod, tect in rows:
        assert cc >= min(mod, tect) - 0.05, mu
