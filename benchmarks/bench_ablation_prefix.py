"""Ablation: the "more faithful" prefix parallelization (Section 3.2).

The paper rejects the design that moves only the longest conflict-free
prefix of a random permutation, citing (a) the prefix-computation
overhead and (b) needlessly respected sequential dependencies.  This
bench measures both against the relaxed engine: the prefix engine should
be slower in simulated time at comparable objective.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig, Frontier
from repro.core.objective import lambdacc_objective
from repro.core.prefix import run_prefix_best_moves
from repro.core.state import ClusterState
from repro.parallel.scheduler import SimulatedScheduler
from repro.utils.rng import make_rng


def run_ablation():
    rows = []
    for name, scale in (("amazon", 0.5), ("orkut", 0.25)):
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for lam in (0.1, 0.85):
            config = ClusteringConfig(
                resolution=lam, refine=False, frontier=Frontier.ALL
            )
            results = {}
            for label, engine in (
                ("relaxed", run_best_moves),
                ("prefix", run_prefix_best_moves),
            ):
                sched = SimulatedScheduler(num_workers=60)
                state = ClusterState.singletons(graph)
                engine(graph, state, lam, config, sched=sched, rng=make_rng(1))
                results[label] = (
                    sched.simulated_time(60),
                    lambdacc_objective(graph, state.assignments, lam),
                )
            rows.append(
                (name, lam,
                 results["relaxed"][0], results["prefix"][0],
                 results["prefix"][0] / results["relaxed"][0],
                 results["relaxed"][1], results["prefix"][1])
            )
    return rows


def test_ablation_prefix_parallelization(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ExperimentTable(
        "Ablation: relaxed vs prefix-faithful BEST-MOVES",
        ["graph", "lambda", "relaxed time", "prefix time", "slowdown",
         "relaxed F", "prefix F"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    for name, lam, _rt, _pt, slowdown, rel_obj, pre_obj in rows:
        # The paper's claim: prefix faithfulness costs time...
        assert slowdown > 1.0, (name, lam)
        # ... without an objective payoff that would justify it.
        if rel_obj > 0:
            assert pre_obj < rel_obj * 1.5, (name, lam)
