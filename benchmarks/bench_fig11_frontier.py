"""Figure 11: frontier size |V'| per best-move iteration.

The paper compares neighbors-of-clusters against neighbors-of-vertices as
V' (synchronous, no refinement) on amazon and orkut: the vertex-neighbor
frontier is never larger, and the size gap explains the speedup gap of
Figure 2.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import cluster
from repro.core.config import ClusteringConfig, Frontier, Mode

GRAPHS = {"amazon": 0.5, "orkut": 0.3}


def run_frontier_study():
    out = {}
    for name, scale in GRAPHS.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for frontier in (Frontier.VERTEX_NEIGHBORS, Frontier.CLUSTER_NEIGHBORS):
            config = ClusteringConfig(
                resolution=0.85, mode=Mode.SYNC, frontier=frontier,
                refine=False, seed=1,
            )
            result = cluster(graph, config)
            out[(name, frontier.value)] = result.stats.levels[0].frontier_sizes
    return out


def test_fig11_frontier_sizes(benchmark):
    data = benchmark.pedantic(run_frontier_study, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 11: |V'| per iteration (level 0, sync, no refinement)",
        ["graph", "frontier", "iteration", "|V'|"],
    )
    for (name, frontier), sizes in data.items():
        for iteration, size in enumerate(sizes):
            table.add_row(name, frontier, iteration, size)
    table.emit()

    for name in GRAPHS:
        vertex = data[(name, Frontier.VERTEX_NEIGHBORS.value)]
        clusters = data[(name, Frontier.CLUSTER_NEIGHBORS.value)]
        # Compare iteration-by-iteration over the shared prefix: the
        # vertex-neighbor frontier never exceeds the cluster-neighbor one
        # by more than noise (it is a subset of the affected classes).
        for i in range(1, min(len(vertex), len(clusters))):
            assert vertex[i] <= clusters[i] * 1.1 + 16, (name, i)
        # The frontier never grows past the full vertex set.
        assert vertex[-1] <= vertex[0]
    # On the sparser amazon graph the vertex frontier strictly shrinks
    # (the paper's Figure 11 decline; dense orkut stays near-saturated at
    # surrogate scale — see EXPERIMENTS.md).
    amazon = data[("amazon", Frontier.VERTEX_NEIGHBORS.value)]
    assert amazon[-1] < amazon[0]
