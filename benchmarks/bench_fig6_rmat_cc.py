"""Figure 6: scalability of PAR-CC over rMAT graphs of varying sizes.

The paper's four density regimes — very sparse (m = 5n), sparse
(m = 50n), dense (m = n^1.5), very dense (m = n^2) — across graph sizes,
with lambda in {0.01, 0.85}; running time should scale near-linearly
with the number of edges.
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering
from repro.generators.rmat import rmat_graph

#: (regime, vertex scales) — very-dense capped small to stay laptop-sized.
REGIMES = {
    "very-sparse": (lambda n: 5 * n, (10, 11, 12, 13)),
    "sparse": (lambda n: 50 * n, (9, 10, 11, 12)),
    "dense": (lambda n: int(n**1.5), (8, 9, 10, 11)),
    "very-dense": (lambda n: n * n // 4, (6, 7, 8, 9)),
}


def run_regimes(objective="cc"):
    rows = []
    for regime, (edge_fn, scales) in REGIMES.items():
        for scale in scales:
            n = 2**scale
            graph = rmat_graph(scale, edge_fn(n), seed=scale)
            for lam in (0.01, 0.85):
                result = correlation_clustering(graph, resolution=lam, seed=1)
                rows.append(
                    (regime, scale, graph.num_vertices, graph.num_edges, lam,
                     result.sim_time(60))
                )
    return rows


def test_fig6_rmat_scaling_cc(benchmark):
    rows = benchmark.pedantic(run_regimes, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 6: PAR-CC on rMAT graphs (simulated time, 60 workers)",
        ["regime", "scale", "n", "m", "lambda", "sim_time", "ns/edge"],
    )
    for regime, scale, n, m, lam, t in rows:
        table.add_row(regime, scale, n, m, lam, t, 1e9 * t / max(m, 1))
    table.emit()

    # Near-linear edge scaling: within each (regime, lambda) series the
    # time-per-edge must not blow up as the graph grows.
    for regime in REGIMES:
        for lam in (0.01, 0.85):
            series = [
                (m, t) for (rg, _s, _n, m, l, t) in rows
                if rg == regime and l == lam
            ]
            series.sort()
            per_edge = [t / m for m, t in series]
            assert max(per_edge) / min(per_edge) < 12, (regime, lam, per_edge)
            # And time grows with size overall.
            assert series[-1][1] > series[0][1]
