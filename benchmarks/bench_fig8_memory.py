"""Figure 8: memory overhead of PAR-CC / PAR-MOD over the input size.

Paper: with multi-level refinement 1.40-23.68x the input graph size
(every coarsened level is retained until its refinement pass); without
refinement 1.25-3.24x.  Lower resolutions need more coarsening rounds and
hence more retained memory.

Our ratios use this implementation's actual array bytes for both
numerator and denominator (the paper's denominator is its 8-bytes-per-
edge CSR; see EXPERIMENTS.md for the accounting note).
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import cluster
from repro.core.config import ClusteringConfig, Objective

GRAPHS = {"amazon": 0.5, "orkut": 0.35, "twitter": 0.35, "friendster": 0.35}


def run_memory_study():
    rows = []
    for name, scale in GRAPHS.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for kind in (Objective.CORRELATION, Objective.MODULARITY):
            resolutions = (0.01, 0.85) if kind is Objective.CORRELATION else (0.5, 16.0)
            for resolution in resolutions:
                for refine in (True, False):
                    config = ClusteringConfig(
                        objective=kind, resolution=resolution, refine=refine, seed=1
                    )
                    result = cluster(graph, config)
                    rows.append(
                        (name, kind.value, resolution, refine,
                         result.memory_overhead, result.num_levels)
                    )
    return rows


def test_fig8_memory_overhead(benchmark):
    rows = benchmark.pedantic(run_memory_study, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 8: peak retained memory / input graph size",
        ["graph", "objective", "resolution", "refine", "overhead", "levels"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    by_key = {
        (name, kind, resolution): {}
        for name, kind, resolution, _r, _o, _l in rows
    }
    for name, kind, resolution, refine, overhead, levels in rows:
        by_key[(name, kind, resolution)][refine] = (overhead, levels)
    for key, pair in by_key.items():
        with_refine, without = pair[True], pair[False]
        # Refinement retains at least as much memory...
        assert with_refine[0] >= without[0] - 1e-9, key
        # ... and all overheads are sane multiples of the input.
        assert 1.0 <= with_refine[0] < 30.0
        assert 1.0 <= without[0] < 10.0
