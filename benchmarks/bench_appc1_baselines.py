"""Appendix C.1: the correlation-clustering baselines.

* C4 and ClusterWild! are far faster than PAR-CC (up to 139x / 428x in
  the paper) but collapse on the CC objective (-273% to -433% vs PAR-CC,
  often negative) and on ground-truth precision/recall (precision
  0.44-0.65, recall 0.10-0.15 vs PAR-CC's recall 0.61-0.98 at
  precision > 0.5);
* the dense-matrix LambdaCC cannot scale past hundreds of vertices: on
  karate it is orders of magnitude slower than PAR-CC.
"""

from repro.baselines.c4 import c4_cluster
from repro.baselines.clusterwild import clusterwild_cluster
from repro.baselines.lambdacc_dense import dense_lambdacc_cluster
from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering
from repro.core.objective import cc_objective
from repro.eval.ground_truth import average_precision_recall
from repro.graphs.karate import karate_club_graph
from repro.parallel.scheduler import SimulatedScheduler

GRAPHS = {"amazon": 0.5, "dblp": 0.5, "livejournal": 0.3, "orkut": 0.25}


def run_pivot_comparison():
    rows = []
    for name, scale in GRAPHS.items():
        part = benchmark_surrogate(name, seed=0, scale=scale)
        graph = part.graph
        communities = part.top_communities(5000)

        ours = correlation_clustering(graph, resolution=0.5, seed=1)
        pr = average_precision_recall(ours.assignments, communities)
        rows.append(
            (name, "PAR-CC", ours.sim_time(60), ours.objective,
             pr.precision, pr.recall)
        )
        for label, fn in (("C4", c4_cluster), ("ClusterWild!", clusterwild_cluster)):
            sched = SimulatedScheduler(num_workers=60)
            labels = fn(graph, seed=1, sched=sched)
            pr = average_precision_recall(labels, communities)
            rows.append(
                (name, label, sched.simulated_time(60),
                 cc_objective(graph, labels, 0.5), pr.precision, pr.recall)
            )
    return rows


def test_appc1_pivot_baselines(benchmark):
    rows = benchmark.pedantic(run_pivot_comparison, rounds=1, iterations=1)

    table = ExperimentTable(
        "Appendix C.1: pivot baselines at lambda = 0.5",
        ["graph", "method", "sim_time", "CC objective", "precision", "recall"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    by = {(g, m): (t, o, p, r) for g, m, t, o, p, r in rows}
    for name in GRAPHS:
        t_ours, o_ours, _p, r_ours = by[(name, "PAR-CC")]
        for method in ("C4", "ClusterWild!"):
            t, o, p, r = by[(name, method)]
            # Pivots are (much) faster...
            assert t < t_ours, (name, method)
            # ... but lose badly on objective and recall.
            assert o < o_ours, (name, method)
            assert r <= r_ours + 1e-9, (name, method)


def test_appc1_dense_lambdacc_on_karate(benchmark):
    """The karate comparison: LambdaCC (MATLAB) 0.057s vs PAR-CC 0.0002s
    in the paper; we compare simulated times of the two cost profiles."""

    def run():
        karate = karate_club_graph()
        sched = SimulatedScheduler(num_workers=1)
        dense_lambdacc_cluster(karate, resolution=0.01, seed=0, sched=sched)
        ours = correlation_clustering(karate, resolution=0.01, seed=0)
        return sched.ledger.simulated_time(1), ours.sim_time(60)

    dense_time, our_time = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        "Appendix C.1: dense LambdaCC vs PAR-CC on karate",
        ["method", "sim_time"],
    )
    table.add_row("LambdaCC (dense)", dense_time)
    table.add_row("PAR-CC", our_time)
    table.emit()
    assert dense_time > our_time
