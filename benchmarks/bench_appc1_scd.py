"""Appendix C.1: comparison against SCD.

Paper: PAR-CC achieves 2.00-2.89x speedups over SCD at the same average
precision/recall on amazon/dblp/livejournal; on orkut SCD's quality
collapses (precision 0.15, recall 0.05) while PAR-CC reaches 0.61/0.53
with a 1.31x speedup.  SCD has no resolution knob, so PAR-CC is compared
at a resolution of matching-or-better quality.
"""

from repro.baselines.scd import scd_cluster
from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering
from repro.eval.ground_truth import average_precision_recall
from repro.parallel.scheduler import SimulatedScheduler

GRAPHS = {"amazon": 0.5, "dblp": 0.5, "livejournal": 0.25, "orkut": 0.2}


def run_comparison():
    rows = []
    for name, scale in GRAPHS.items():
        part = benchmark_surrogate(name, seed=0, scale=scale)
        graph = part.graph
        communities = part.top_communities(5000)

        sched = SimulatedScheduler(num_workers=60)
        scd_labels = scd_cluster(graph, seed=1, sched=sched)
        scd_pr = average_precision_recall(scd_labels, communities)
        scd_time = sched.simulated_time(60)

        best = None
        for lam in (0.03, 0.1, 0.3):
            result = correlation_clustering(graph, resolution=lam, seed=1)
            pr = average_precision_recall(result.assignments, communities)
            if best is None or pr.f1 > best[1].f1:
                best = (result, pr)
        ours, ours_pr = best
        rows.append(
            (name, scd_pr, scd_time, ours_pr, ours.sim_time(60))
        )
    return rows


def test_appc1_scd_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    table = ExperimentTable(
        "Appendix C.1: SCD vs PAR-CC",
        ["graph", "SCD P", "SCD R", "SCD time", "PAR-CC P", "PAR-CC R",
         "PAR-CC time", "speedup"],
    )
    for name, scd_pr, scd_time, ours_pr, ours_time in rows:
        table.add_row(
            name, scd_pr.precision, scd_pr.recall, scd_time,
            ours_pr.precision, ours_pr.recall, ours_time,
            scd_time / ours_time,
        )
    table.emit()

    for name, scd_pr, scd_time, ours_pr, ours_time in rows:
        # Quality at least comparable (F1) at the chosen resolution.
        assert ours_pr.f1 >= scd_pr.f1 - 0.05, name
        # Speed within a small factor everywhere (triangle-free-ish sparse
        # surrogates flatter SCD; see EXPERIMENTS.md).
        assert scd_time / ours_time > 0.25, name
    # On the denser graphs SCD's wedge/triangle costs dominate and PAR-CC
    # wins outright (the paper's orkut story).
    dense = [r for r in rows if r[0] in ("livejournal", "orkut")]
    assert any(scd_time > ours_time for _n, _sp, scd_time, _op, ours_time in dense)
