"""Figure 4: speedup of PAR-CC over SEQ-CC and PAR-MOD over SEQ-MOD.

Paper numbers (30 cores / 60 hyper-threads): 3.19-27.38x for PAR-CC on
the four mid-size graphs, 4.57-17.87x on twitter/friendster; 3.18-7.76x
for PAR-MOD — while keeping 0.95-1.08x of the sequential objective.
"""

from repro.bench.harness import ExperimentTable
from repro.bench.studies import lookup, select, speedup_study


def test_fig4_parallel_speedup(benchmark):
    records = benchmark.pedantic(speedup_study, rounds=1, iterations=1)

    all_speedups = {"cc": [], "mod": []}
    objective_ratios = []
    table = ExperimentTable(
        "Figure 4: speedup of PAR over SEQ (simulated, 60 workers)",
        ["graph", "objective", "resolution", "speedup", "obj PAR/SEQ"],
    )
    for kind in ("cc", "mod"):
        for par in select(records, objective_kind=kind, variant="par"):
            seq = lookup(
                records, graph=par.graph, objective_kind=kind,
                resolution=par.resolution, variant="seq",
            )
            ratio = seq.sim_time_seq / par.sim_time_par
            quality = (
                par.modularity / seq.modularity
                if kind == "mod" and abs(seq.modularity) > 1e-12
                else (par.objective / seq.objective if abs(seq.objective) > 1e-12 else 1.0)
            )
            table.add_row(par.graph, kind, par.resolution, ratio, quality)
            all_speedups[kind].append(ratio)
            objective_ratios.append(quality)
    table.emit()

    # Shape: consistent multi-x speedups in the paper's band, with
    # near-parity objectives.
    assert min(all_speedups["cc"]) > 1.5
    assert max(all_speedups["cc"]) < 60
    assert min(all_speedups["mod"]) > 1.0
    positive = [q for q in objective_ratios if q > 0]
    assert all(q > 0.7 for q in positive)
