"""Figure 4: speedup of PAR-CC over SEQ-CC and PAR-MOD over SEQ-MOD.

Paper numbers (30 cores / 60 hyper-threads): 3.19-27.38x for PAR-CC on
the four mid-size graphs, 4.57-17.87x on twitter/friendster; 3.18-7.76x
for PAR-MOD — while keeping 0.95-1.08x of the sequential objective.
"""

from repro.bench.harness import ExperimentTable
from repro.bench.studies import lookup, select, speedup_study
from repro.obs.bench import BenchSuite


def speedup_suite(records) -> BenchSuite:
    """Shape the study's records into the shared bench-suite format."""
    suite = BenchSuite("fig4_speedup", meta={"figure": 4, "workers": 60})
    for kind in ("cc", "mod"):
        for par in select(records, objective_kind=kind, variant="par"):
            seq = lookup(
                records, graph=par.graph, objective_kind=kind,
                resolution=par.resolution, variant="seq",
            )
            ratio = seq.sim_time_seq / par.sim_time_par
            quality = (
                par.modularity / seq.modularity
                if kind == "mod" and abs(seq.modularity) > 1e-12
                else (
                    par.objective / seq.objective
                    if abs(seq.objective) > 1e-12
                    else 1.0
                )
            )
            suite.add_row(
                f"{par.graph}/{kind}/lambda={par.resolution}",
                metrics={"speedup": ratio, "quality": quality},
                graph=par.graph,
                objective_kind=kind,
                resolution=par.resolution,
            )
    return suite


def test_fig4_parallel_speedup(benchmark):
    records = benchmark.pedantic(speedup_study, rounds=1, iterations=1)
    suite = speedup_suite(records)

    all_speedups = {"cc": [], "mod": []}
    objective_ratios = []
    table = ExperimentTable(
        "Figure 4: speedup of PAR over SEQ (simulated, 60 workers)",
        ["graph", "objective", "resolution", "speedup", "obj PAR/SEQ"],
    )
    for row in suite.rows:
        table.add_row(
            row.info["graph"],
            row.info["objective_kind"],
            row.info["resolution"],
            row.metrics["speedup"],
            row.metrics["quality"],
        )
        all_speedups[row.info["objective_kind"]].append(row.metrics["speedup"])
        objective_ratios.append(row.metrics["quality"])
    table.emit()

    # Shape: consistent multi-x speedups in the paper's band, with
    # near-parity objectives.
    assert min(all_speedups["cc"]) > 1.5
    assert max(all_speedups["cc"]) < 60
    assert min(all_speedups["mod"]) > 1.0
    positive = [q for q in objective_ratios if q > 0]
    assert all(q > 0.7 for q in positive)
