"""Resilience overhead: auditing and budget guards must stay cheap.

The resilience layer's promise is "always-on safety for (almost) free":
with auditing and a (non-binding) budget enabled but no faults injected,
the run must produce the *identical* clustering and charge no extra
simulated work — audits and guard checks run outside the modeled
parallel algorithm — while the wall-clock overhead of the Python-side
checks stays small (<5% is the design target; the assertion below uses a
loose multiple because CI wall timings are noisy).
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.api import cluster
from repro.core.options import RunOptions
from repro.core.config import ClusteringConfig
from repro.generators.planted import planted_partition_graph
from repro.graphs.karate import karate_club_graph
from repro.obs.bench import time_callable
from repro.resilience import ResiliencePolicy, RunBudget

#: Design target for guard/audit overhead (fraction of baseline wall time).
OVERHEAD_TARGET = 0.05
#: CI wall clocks are noisy at millisecond scales; assert a loose multiple.
WALL_TOLERANCE = 10.0
REPEATS = 5


def _graphs():
    return [
        ("karate", karate_club_graph()),
        (
            "planted",
            planted_partition_graph(
                num_vertices=2000, intra_degree=8.0, inter_degree=1.0, seed=0
            ).graph,
        ),
    ]


def _time_run(graph, config, policy):
    result, timing = time_callable(
        lambda: cluster(graph, config, RunOptions(resilience=policy)),
        repeats=REPEATS
    )
    return timing.best, result


def run_overhead():
    policy = ResiliencePolicy(
        audit=True, budget=RunBudget(max_rounds=10_000_000)
    )
    rows = []
    for name, graph in _graphs():
        config = ClusteringConfig(resolution=0.05, seed=7)
        base_wall, base = _time_run(graph, config, None)
        guarded_wall, guarded = _time_run(graph, config, policy)
        rows.append(
            {
                "graph": name,
                "base_wall": base_wall,
                "guarded_wall": guarded_wall,
                "wall_overhead": guarded_wall / base_wall - 1.0,
                "base_sim": base.sim_time(),
                "guarded_sim": guarded.sim_time(),
                "identical": bool(
                    np.array_equal(base.assignments, guarded.assignments)
                ),
                "degraded": guarded.degraded,
            }
        )
    return rows


def test_resilience_overhead(benchmark):
    rows = benchmark.pedantic(run_overhead, rounds=1, iterations=1)

    table = ExperimentTable(
        "Resilience overhead: audit + budget guard vs clean run",
        ["graph", "base wall (s)", "guarded wall (s)", "overhead",
         "sim overhead", "identical"],
    )
    for row in rows:
        sim_overhead = row["guarded_sim"] / row["base_sim"] - 1.0
        table.add_row(
            row["graph"],
            f"{row['base_wall']:.4f}",
            f"{row['guarded_wall']:.4f}",
            f"{row['wall_overhead']:+.1%}",
            f"{sim_overhead:+.1%}",
            row["identical"],
        )
    table.emit()

    for row in rows:
        # Guards must never change the answer or degrade a clean run.
        assert row["identical"], f"{row['graph']}: guarded run diverged"
        assert not row["degraded"]
        # Audits/guards run outside the modeled algorithm: simulated cost
        # is exactly unchanged (this is the deterministic <5% claim).
        assert row["guarded_sim"] == row["base_sim"]
        # Wall overhead: hold the design target up to CI timing noise.
        assert row["wall_overhead"] < OVERHEAD_TARGET * WALL_TOLERANCE, (
            f"{row['graph']}: audit/guard wall overhead "
            f"{row['wall_overhead']:.1%} is far above the "
            f"{OVERHEAD_TARGET:.0%} target"
        )
