"""Figure 9: average precision/recall of PAR vs SEQ on amazon and orkut.

The paper sweeps lambda over {0.01x} for CC and gamma over {0.02*1.2^x}
for modularity and finds: PAR-CC matches SEQ-CC^CON's curve; SEQ-CC
*without* convergence (num_iter = 10) is notably worse than PAR-CC (the
asynchronous relaxation makes more progress per iteration); PAR-CC
dominates PAR-MOD.
"""

from repro.bench.datasets import benchmark_surrogate, quality_resolutions
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering, modularity_clustering
from repro.eval.ground_truth import average_precision_recall
from repro.eval.pr_curve import PRPoint, best_recall_at_precision

GRAPHS = {"amazon": 0.5, "orkut": 0.3}
SWEEP_POINTS = 10


def run_pr_study():
    curves = {}
    for name, scale in GRAPHS.items():
        part = benchmark_surrogate(name, seed=0, scale=scale)
        communities = part.top_communities(5000)

        def curve(cluster_fn, resolutions):
            points = []
            for resolution in resolutions:
                labels = cluster_fn(float(resolution))
                pr = average_precision_recall(labels, communities)
                points.append(
                    PRPoint(float(resolution), pr.precision, pr.recall)
                )
            return points

        lambdas = quality_resolutions("cc", SWEEP_POINTS)
        gammas = quality_resolutions("mod", SWEEP_POINTS)
        graph = part.graph
        curves[(name, "PAR-CC")] = curve(
            lambda r: correlation_clustering(graph, resolution=r, seed=1).assignments,
            lambdas,
        )
        curves[(name, "SEQ-CC")] = curve(
            lambda r: correlation_clustering(
                graph, resolution=r, parallel=False, seed=1
            ).assignments,
            lambdas,
        )
        curves[(name, "SEQ-CC^CON")] = curve(
            lambda r: correlation_clustering(
                graph, resolution=r, parallel=False, num_iter=None, seed=1
            ).assignments,
            lambdas,
        )
        curves[(name, "PAR-MOD")] = curve(
            lambda r: modularity_clustering(graph, gamma=r, seed=1).assignments,
            gammas,
        )
    return curves


def test_fig9_pr_curves(benchmark):
    curves = benchmark.pedantic(run_pr_study, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 9: average precision/recall sweeps",
        ["graph", "method", "resolution", "precision", "recall"],
    )
    for (name, method), points in curves.items():
        for p in points:
            table.add_row(name, method, p.resolution, p.precision, p.recall)
    table.emit()

    summary = ExperimentTable(
        "Figure 9 summary: best recall at precision >= 0.5",
        ["graph", "method", "recall@P>=0.5"],
    )
    best = {}
    for (name, method), points in curves.items():
        best[(name, method)] = best_recall_at_precision(points, 0.5)
        summary.add_row(name, method, best[(name, method)])
    summary.emit()

    for name in GRAPHS:
        # The paper's headline: recall 0.61-0.98 at precision > 0.5.
        assert best[(name, "PAR-CC")] > 0.5, name
        # PAR-CC matches SEQ-CC^CON.
        assert best[(name, "PAR-CC")] >= best[(name, "SEQ-CC^CON")] - 0.1
        # And PAR-CC at least matches PAR-MOD's trade-off.
        assert best[(name, "PAR-CC")] >= best[(name, "PAR-MOD")] - 0.05
