"""Serving gateway vs serial discipline: the PR10 acceptance gate.

ISSUE 10's contract: under a mixed read/write workload on the
simulated clock, snapshot-isolated reads (dedicated read lanes, commits
on their own lane) must beat the old serial ClusterServer discipline
(reads queue behind every commit) on read throughput — while the
committed label sequence stays bit-identical to a serial replay of the
same coalesced batches, with every request accounted to exactly one
terminal status.

The same suite is committed as ``BENCH_PR10.json`` (regenerate with
``python -m repro.serving.bench --out .``).
"""

from repro.bench.harness import ExperimentTable
from repro.serving.bench import TARGET_READ_SPEEDUP, serving_suite


def test_gateway_beats_serial_discipline(benchmark):
    suite = benchmark.pedantic(
        serving_suite, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    rows = {row.key: row for row in suite.rows}

    table = ExperimentTable(
        "Serving: gateway vs serial read discipline (virtual clock)",
        ["family", "side", "read rps", "p95 (s)", "speedup", "replay", "epochs"],
    )
    for family in ("lfr", "planted"):
        gw = rows[f"{family}-gateway"]
        serial = rows[f"{family}-serial"]
        table.add_row(
            family,
            "gateway",
            f"{gw.info['read_throughput_rps']:.0f}",
            f"{gw.metrics['read_p95_seconds']:.4f}",
            f"{gw.metrics['read_speedup']:.2f}x",
            gw.info["replay_identical"],
            gw.info["epochs"],
        )
        table.add_row(
            family,
            "serial",
            f"{serial.info['read_throughput_rps']:.0f}",
            f"{serial.metrics['read_p95_seconds']:.4f}",
            "-",
            "-",
            "-",
        )
    table.emit()

    for family in ("lfr", "planted"):
        gw = rows[f"{family}-gateway"]
        assert gw.info["replay_identical"], (
            f"{family}: committed epoch digests diverged from serial replay"
        )
        assert gw.info["accounting_issues"] == [], (
            f"{family}: accounting violations {gw.info['accounting_issues']}"
        )
        assert gw.metrics["read_speedup"] >= TARGET_READ_SPEEDUP, (
            f"{family}: gateway read throughput only "
            f"{gw.metrics['read_speedup']:.2f}x the serial discipline "
            f"(need >= {TARGET_READ_SPEEDUP}x)"
        )
        assert gw.info["epochs"] >= 1, f"{family}: no epoch ever committed"


if __name__ == "__main__":
    from repro.serving.bench import main

    raise SystemExit(main())
