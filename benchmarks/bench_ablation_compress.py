"""Ablation: work-efficient vs naive graph compression (DESIGN.md §5).

The paper's speedup over NetworKit comes from parallelizing compression
with a semisort (Section 4.2).  This ablation runs the same PAR-CC
pipeline with both compression cost models and reports the end-to-end
simulated-time gap — the isolated value of the work-efficient step.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import cluster as _unused  # noqa: F401 (documentation import)
from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig
from repro.core.louvain_par import multilevel_louvain
from repro.graphs.quotient import compress_graph, compress_graph_naive
from repro.parallel.scheduler import SimulatedScheduler
from repro.utils.rng import make_rng

GRAPHS = {"amazon": 0.5, "orkut": 0.3}


def run_ablation():
    rows = []
    for name, scale in GRAPHS.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for lam in (0.01, 0.85):
            times = {}
            for label, compress_fn in (
                ("semisort", compress_graph),
                ("naive", compress_graph_naive),
            ):
                config = ClusteringConfig(resolution=lam, seed=1)
                sched = SimulatedScheduler(num_workers=60)
                multilevel_louvain(
                    graph, lam, config, run_best_moves,
                    sched=sched, rng=make_rng(1), compress_fn=compress_fn,
                )
                times[label] = sched.simulated_time(60)
            rows.append((name, lam, times["semisort"], times["naive"],
                         times["naive"] / times["semisort"]))
    return rows


def test_ablation_compression(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ExperimentTable(
        "Ablation: work-efficient vs naive compression (PAR-CC)",
        ["graph", "lambda", "semisort time", "naive time", "slowdown"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    for name, lam, fast, slow, ratio in rows:
        assert ratio >= 1.0, (name, lam)
    # Somewhere the gap is material (the Figure 17 mechanism).
    assert max(r for *_x, r in rows) > 1.05
