"""Dynamic updates: localized refinement must beat full recompute.

ISSUE 7's contract: on LFR churn batches touching <= 1% of the edges, a
:class:`~repro.dynamic.clusterer.DynamicClusterer` batch — engine seeded
from just the touched endpoints — evaluates >= 5x fewer candidate moves
than a full single-level sweep from the same warm partition on the same
updated graph, and lands on an equal final objective (|delta F| <= 1e-9;
both paths run the deterministic sequential engine, so in practice the
assignments come out identical, which is asserted too).

The same suite is committed as ``BENCH_PR7.json`` (regenerate with
``python -m repro.dynamic.bench --out .``).
"""

from repro.bench.harness import ExperimentTable
from repro.dynamic.bench import (
    OBJECTIVE_TOLERANCE,
    TARGET_EVAL_RATIO,
    dynamic_suite,
)


def test_dynamic_localized_refinement(benchmark):
    suite = benchmark.pedantic(
        dynamic_suite, kwargs={"repeats": 3}, rounds=1, iterations=1
    )

    rows = {row.key: row for row in suite.rows}
    full = rows["full-recompute"]
    inc = rows["incremental"]
    table = ExperimentTable(
        "Dynamic updates: candidate-move evaluations per churn batch",
        ["path", "evals", "wall (s)", "ratio", "|dF|", "identical"],
    )
    table.add_row(
        "full-recompute",
        int(full.metrics["candidate_evals"]),
        f"{full.metrics['wall_seconds']:.4f}",
        "-",
        "-",
        "-",
    )
    table.add_row(
        "incremental",
        int(inc.metrics["candidate_evals"]),
        f"{inc.metrics['wall_seconds']:.4f}",
        f"{inc.metrics['eval_ratio']:.1f}x",
        f"{inc.metrics['f_delta_abs']:.3g}",
        inc.info["identical"],
    )
    table.emit()

    assert inc.metrics["eval_ratio"] >= TARGET_EVAL_RATIO, (
        f"incremental path evaluated only {inc.metrics['eval_ratio']:.2f}x "
        f"fewer candidates than full recompute (need >= {TARGET_EVAL_RATIO}x)"
    )
    assert inc.metrics["f_delta_abs"] <= OBJECTIVE_TOLERANCE, (
        f"objectives diverged by {inc.metrics['f_delta_abs']:.3g} "
        f"(tolerance {OBJECTIVE_TOLERANCE})"
    )
    assert inc.info["identical"], (
        "incremental and full-recompute assignments diverged"
    )
