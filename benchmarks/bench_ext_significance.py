"""Extension: statistical significance of detected communities.

Compare the LambdaCC objective (and modularity) achieved on real
surrogates against degree-preserving rewired null models: genuine
community structure scores far above the configuration-model baseline at
the same resolution, a standard sanity check community-detection
toolkits ship.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering, modularity_clustering
from repro.generators.rewire import degree_sequence_preserved, rewire

GRAPHS = {"amazon": 0.5, "dblp": 0.5}


def run_significance():
    rows = []
    for name, scale in GRAPHS.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        null_graph = rewire(graph, seed=1)
        assert degree_sequence_preserved(graph, null_graph)
        real_cc = correlation_clustering(graph, resolution=0.1, seed=1)
        null_cc = correlation_clustering(null_graph, resolution=0.1, seed=1)
        real_mod = modularity_clustering(graph, gamma=1.0, seed=1)
        null_mod = modularity_clustering(null_graph, gamma=1.0, seed=1)
        rows.append(
            (name, real_cc.objective, null_cc.objective,
             real_mod.modularity, null_mod.modularity)
        )
    return rows


def test_ext_significance(benchmark):
    rows = benchmark.pedantic(run_significance, rounds=1, iterations=1)

    table = ExperimentTable(
        "Extension: real vs degree-preserving null model",
        ["graph", "CC obj (real)", "CC obj (null)",
         "modularity (real)", "modularity (null)"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    for name, cc_real, cc_null, mod_real, mod_null in rows:
        # Sparse null graphs still admit local pockets, but real planted
        # structure scores clearly above them on both objectives.
        assert cc_real > 1.3 * max(cc_null, 1.0), name
        assert mod_real > mod_null + 0.1, name
