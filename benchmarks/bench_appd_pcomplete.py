"""Appendix D: the P-completeness reduction, exercised end to end.

Times the NC reduction (circuit -> graph) plus the Louvain best-move
solve, verifying on random monotone circuits that the clustering computes
the circuit — the constructive content of Theorem D.1.
"""

from repro.bench.harness import ExperimentTable
from repro.pcomplete.circuit import random_circuit
from repro.pcomplete.reduction import reduce_circuit
from repro.pcomplete.solver import solve_circuit_via_louvain

SIZES = ((4, 8), (6, 16), (8, 32), (10, 64))


def run_solver_sweep():
    import numpy as np

    rows = []
    rng = np.random.default_rng(0)
    for num_inputs, num_gates in SIZES:
        correct = 0
        trials = 5
        vertices = None
        for trial in range(trials):
            circuit = random_circuit(num_inputs, num_gates, seed=trial)
            bits = (rng.random(num_inputs) < 0.5).tolist()
            reduction = reduce_circuit(circuit, bits)
            vertices = reduction.graph.num_vertices
            if solve_circuit_via_louvain(circuit, bits, seed=trial) == circuit.output(bits):
                correct += 1
        rows.append((num_inputs, num_gates, vertices, correct, trials))
    return rows


def test_appd_pcompleteness_reduction(benchmark):
    rows = benchmark.pedantic(run_solver_sweep, rounds=1, iterations=1)

    table = ExperimentTable(
        "Appendix D: CVP via Louvain on the reduction graph",
        ["inputs", "gates", "graph vertices", "correct", "trials"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    for num_inputs, num_gates, _v, correct, trials in rows:
        assert correct == trials, (num_inputs, num_gates)
