"""Figure 17: speedup of PAR-MOD over NetworKit's PLM.

Paper: up to 3.50x, 1.89x average, across amazon/dblp/livejournal/orkut
and resolutions, with 0.99-1.00x of NetworKit's modularity.  The gap is
attributed to the work-efficient parallel compression; our PLM baseline
models exactly that difference (same move engine, non-work-efficient
compression cost), so the measured ratio isolates it.
"""

from repro.baselines.plm import plm_cluster
from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable, geometric_mean
from repro.core.api import modularity_clustering

GRAPHS = {"amazon": 0.5, "dblp": 0.5, "livejournal": 0.3, "orkut": 0.25}
GAMMAS = (0.2, 1.0, 4.0, 16.0)


def run_comparison():
    rows = []
    for name, scale in GRAPHS.items():
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for gamma in GAMMAS:
            ours = modularity_clustering(
                graph, gamma=gamma, seed=1, num_iter=32, refine=False
            )
            plm = plm_cluster(graph, gamma=gamma, seed=1)
            rows.append(
                (
                    name,
                    gamma,
                    plm.sim_time(60) / ours.sim_time(60),
                    ours.modularity / plm.modularity if plm.modularity else 1.0,
                )
            )
    return rows


def test_fig17_networkit_speedup(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 17: PAR-MOD speedup over NetworKit-style PLM",
        ["graph", "gamma", "speedup", "modularity ratio"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    speedups = [s for _n, _g, s, _q in rows]
    quality = [q for _n, _g, _s, q in rows]
    # Paper's band: everything >= 1x, average ~1.9x, max <= ~3.5x.
    assert min(speedups) >= 1.0
    assert 1.1 < geometric_mean(speedups) < 4.0
    # Modularity parity (0.99-1.00x in the paper; we allow small noise
    # from the asynchronous nondeterminism).
    assert all(0.9 < q < 1.1 for q in quality)
