"""Extension: Leiden-style connectivity refinement over PAR-CC.

The paper's related work points at "From Louvain to Leiden" [41]:
Louvain-family methods can output internally *disconnected* clusters.
This bench quantifies the phenomenon for PAR-CC on the surrogates and
shows the Leiden-style post-pass (split into positive connected
components + re-optimize) removes it without hurting — and typically
slightly improving — the objective and ground-truth quality.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering
from repro.core.leiden import count_disconnected_clusters, leiden_refine
from repro.core.objective import lambdacc_objective
from repro.eval.ground_truth import average_precision_recall

GRAPHS = {"amazon": 0.5, "livejournal": 0.3}


def run_extension():
    rows = []
    for name, scale in GRAPHS.items():
        part = benchmark_surrogate(name, seed=0, scale=scale)
        graph = part.graph
        communities = part.top_communities(5000)
        for lam in (0.01, 0.1):
            base = correlation_clustering(graph, resolution=lam, seed=1)
            disconnected = count_disconnected_clusters(graph, base.assignments)
            refined, rounds = leiden_refine(graph, base.assignments, lam)
            base_pr = average_precision_recall(base.assignments, communities)
            refined_pr = average_precision_recall(refined, communities)
            rows.append(
                (name, lam, disconnected, rounds,
                 lambdacc_objective(graph, base.assignments, lam),
                 lambdacc_objective(graph, refined, lam),
                 base_pr.f1, refined_pr.f1,
                 count_disconnected_clusters(graph, refined))
            )
    return rows


def test_ext_leiden_refinement(benchmark):
    rows = benchmark.pedantic(run_extension, rounds=1, iterations=1)

    table = ExperimentTable(
        "Extension: Leiden-style connectivity refinement of PAR-CC",
        ["graph", "lambda", "disconnected before", "rounds",
         "F before", "F after", "F1 before", "F1 after", "disconnected after"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    for name, lam, _d, _r, f_before, f_after, f1_before, f1_after, d_after in rows:
        # Guaranteed well-connected output.
        assert d_after == 0, (name, lam)
        # Objective never degrades.
        assert f_after >= f_before - 1e-9, (name, lam)
        # Ground-truth quality is preserved (within noise).
        assert f1_after >= f1_before - 0.05, (name, lam)
