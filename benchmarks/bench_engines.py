"""All scheduling engines, one table.

The paper's design-space argument in one view: for each BEST-MOVES
scheduling discipline — the relaxed asynchronous engine it chose, the
synchronous strawman, the conflict-free prefix alternative it rejected,
Grappolo-style coloring, and the event-driven asynchrony oracle — report
end-to-end multilevel objective and simulated time.  Expected shape: the
relaxed asynchronous engine sits on the quality/speed Pareto front, which
is the paper's Section 3.2/4.1 thesis.

Rows are collected through :class:`repro.obs.bench.BenchSuite`, the same
machinery behind the committed ``BENCH_*.json`` baselines, so the script
shares its timing and row bookkeeping with every other bench.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.config import ClusteringConfig, Mode
from repro.core.engines import multilevel_with_engine
from repro.core.objective import lambdacc_objective
from repro.obs.bench import BenchSuite, time_callable
from repro.parallel.scheduler import SimulatedScheduler
from repro.utils.rng import make_rng

ENGINE_SETUPS = [
    ("async (paper)", "relaxed", Mode.ASYNC),
    ("sync", "relaxed", Mode.SYNC),
    ("prefix", "prefix", Mode.ASYNC),
    ("colored", "colored", Mode.ASYNC),
    ("event oracle", "event", Mode.ASYNC),
    ("sequential", "sequential", Mode.ASYNC),
]


def run_engines() -> BenchSuite:
    graph = benchmark_surrogate("amazon", seed=0, scale=0.5).graph
    suite = BenchSuite(
        "engines_amazon",
        meta={"workload": "amazon surrogate (seed=0, scale=0.5)"},
    )
    for lam in (0.1, 0.85):
        for label, engine, mode in ENGINE_SETUPS:
            config = ClusteringConfig(
                resolution=lam, mode=mode, refine=False, seed=1, num_workers=60
            )

            def run(lam=lam, engine=engine, config=config):
                sched = SimulatedScheduler(num_workers=60)
                assignments, stats = multilevel_with_engine(
                    graph, lam, config, engine=engine, sched=sched,
                    rng=make_rng(1),
                )
                return assignments, stats, sched

            (assignments, stats, sched), timing = time_callable(run, repeats=1)
            workers = 1 if engine == "sequential" else 60
            suite.add_row(
                f"lambda={lam}/{label}",
                metrics={
                    "f_objective": lambdacc_objective(graph, assignments, lam),
                    "sim_time_seconds": sched.simulated_time(workers),
                },
                resolution=lam,
                engine_label=label,
                rounds=stats.total_iterations,
                wall_seconds=timing.best,
            )
    return suite


def test_engine_comparison(benchmark):
    suite = benchmark.pedantic(run_engines, rounds=1, iterations=1)

    table = ExperimentTable(
        "Engine comparison (amazon surrogate, multilevel, no refinement)",
        ["lambda", "engine", "objective F", "sim_time", "rounds"],
    )
    for row in suite.rows:
        table.add_row(
            row.info["resolution"],
            row.info["engine_label"],
            row.metrics["f_objective"],
            row.metrics["sim_time_seconds"],
            row.info["rounds"],
        )
    table.emit()

    by = {
        (row.info["resolution"], row.info["engine_label"]):
            (row.metrics["f_objective"], row.metrics["sim_time_seconds"])
        for row in suite.rows
    }
    for lam in (0.1, 0.85):
        async_f, async_t = by[(lam, "async (paper)")]
        # The paper's engine is never dominated: every alternative is
        # slower, lower-objective, or both.
        for label in ("sync", "prefix", "colored", "sequential"):
            f, t = by[(lam, label)]
            assert f <= async_f * 1.05 or t >= async_t * 0.95, (lam, label)
        # And it matches the fine-grained oracle's quality.
        event_f, _ = by[(lam, "event oracle")]
        assert async_f > 0.8 * event_f
