"""Figure 16: weighted-graph clustering quality on the letter k-NN graph.

Same pipeline as Figure 15 on the much harder letter surrogate (26
heavily-overlapping classes): absolute scores drop across the board —
matching the paper's letter panels — while the weighted treatment stays
the most robust at low resolutions.
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering, modularity_clustering
from repro.eval import (
    adjusted_rand_index,
    average_precision_recall,
    normalized_mutual_information,
)
from repro.generators import knn_graph
from repro.generators.pointsets import letter_like_pointset

LAMBDAS = (0.01, 0.03, 0.06, 0.1)
NUM_POINTS = 6000  # scaled from UCI letter's 20,000 for bench turnaround


def run_weighted_study():
    pointset = letter_like_pointset(seed=0, num_points=NUM_POINTS)
    graph = knn_graph(pointset.points, k=50)
    unweighted = graph.with_unit_weights()
    communities = [
        np.flatnonzero(pointset.labels == c) for c in range(pointset.num_classes)
    ]
    rows = []

    def add(method, resolution, labels):
        pr = average_precision_recall(labels, communities)
        rows.append(
            (method, resolution,
             adjusted_rand_index(labels, pointset.labels),
             normalized_mutual_information(labels, pointset.labels),
             pr.precision, pr.recall)
        )

    for lam in LAMBDAS:
        add("PAR-CC^W", lam,
            correlation_clustering(graph, resolution=lam, seed=1).assignments)
        add("PAR-CC", lam,
            correlation_clustering(unweighted, resolution=lam, seed=1).assignments)
    add("PAR-MOD^W", 1.0,
        modularity_clustering(graph, gamma=1.0, seed=1).assignments)
    return rows


def test_fig16_letter_weighted(benchmark):
    rows = benchmark.pedantic(run_weighted_study, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 16: letter k-NN graph quality",
        ["method", "resolution", "ARI", "NMI", "precision", "recall"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    by_method = {}
    for method, _res, ari, nmi, _p, _r in rows:
        by_method.setdefault(method, []).append(ari)
    best_w = max(by_method["PAR-CC^W"])
    # Letter is hard (paper's scores are much lower than digits) but the
    # clustering still finds real structure.
    assert 0.15 < best_w < 0.9
    # Weighted edges help at the low resolutions.
    assert max(by_method["PAR-CC^W"][:2]) >= max(by_method["PAR-CC"][:2]) - 0.05


def test_fig15_vs_fig16_difficulty(benchmark):
    """Cross-figure shape: digits scores above letter (paper panels)."""
    from repro.generators.pointsets import digits_like_pointset

    def both():
        digits = digits_like_pointset(seed=0)
        dg = knn_graph(digits.points, k=50)
        d_ari = adjusted_rand_index(
            correlation_clustering(dg, resolution=0.03, seed=1).assignments,
            digits.labels,
        )
        letter = letter_like_pointset(seed=0, num_points=3000)
        lg = knn_graph(letter.points, k=50)
        l_ari = adjusted_rand_index(
            correlation_clustering(lg, resolution=0.03, seed=1).assignments,
            letter.labels,
        )
        return d_ari, l_ari

    d_ari, l_ari = benchmark.pedantic(both, rounds=1, iterations=1)
    assert d_ari > l_ari + 0.2
