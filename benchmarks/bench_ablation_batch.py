"""Ablation: the asynchronous concurrency-window count.

DESIGN.md §5: our batched-asynchrony models true asynchrony with
``async_windows`` snapshots per iteration.  One window degenerates to the
synchronous setting (worst objective); many windows approach sequential
semantics (best symmetry breaking).  This bench sweeps the knob and
verifies the quality monotonicity that justifies the default of 32.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import cluster
from repro.core.config import ClusteringConfig, Mode

WINDOW_COUNTS = (1, 2, 8, 32, 128)


def run_ablation():
    graph = benchmark_surrogate("amazon", seed=0, scale=0.5).graph
    rows = []
    for windows in WINDOW_COUNTS:
        objectives = []
        for seed in range(3):
            config = ClusteringConfig(
                resolution=0.85, mode=Mode.ASYNC, async_windows=windows,
                refine=False, seed=seed,
            )
            objectives.append(cluster(graph, config).objective)
        rows.append((windows, sum(objectives) / len(objectives)))
    # The synchronous reference point.
    sync_obj = cluster(
        graph,
        ClusteringConfig(resolution=0.85, mode=Mode.SYNC, refine=False, seed=0),
    ).objective
    return rows, sync_obj


def test_ablation_async_windows(benchmark):
    rows, sync_obj = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ExperimentTable(
        "Ablation: async window count vs CC objective (lambda = 0.85)",
        ["windows", "mean objective"],
    )
    for windows, objective in rows:
        table.add_row(windows, objective)
    table.add_row("sync", sync_obj)
    table.emit()

    by_windows = dict(rows)
    # More windows (finer asynchrony) never hurts much and the default-32
    # setting clearly beats one-window (≈synchronous) scheduling.
    assert by_windows[32] > by_windows[1]
    assert by_windows[32] > 0
    assert by_windows[128] >= by_windows[32] * 0.9
