"""Figure 12: scalability of PAR-MOD over rMAT graphs (appendix twin of
Figure 6): near-linear scaling in the number of edges across the four
density regimes."""

from repro.bench.harness import ExperimentTable
from repro.core.api import modularity_clustering
from repro.generators.rmat import rmat_graph

REGIMES = {
    "very-sparse": (lambda n: 5 * n, (10, 11, 12, 13)),
    "sparse": (lambda n: 50 * n, (9, 10, 11, 12)),
    "dense": (lambda n: int(n**1.5), (8, 9, 10, 11)),
    "very-dense": (lambda n: n * n // 4, (6, 7, 8, 9)),
}


def run_regimes():
    rows = []
    for regime, (edge_fn, scales) in REGIMES.items():
        for scale in scales:
            n = 2**scale
            graph = rmat_graph(scale, edge_fn(n), seed=scale)
            for gamma in (0.5, 16.0):
                result = modularity_clustering(graph, gamma=gamma, seed=1)
                rows.append(
                    (regime, scale, graph.num_vertices, graph.num_edges,
                     gamma, result.sim_time(60))
                )
    return rows


def test_fig12_rmat_scaling_mod(benchmark):
    rows = benchmark.pedantic(run_regimes, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 12: PAR-MOD on rMAT graphs (simulated time, 60 workers)",
        ["regime", "scale", "n", "m", "gamma", "sim_time", "ns/edge"],
    )
    for regime, scale, n, m, gamma, t in rows:
        table.add_row(regime, scale, n, m, gamma, t, 1e9 * t / max(m, 1))
    table.emit()

    for regime in REGIMES:
        for gamma in (0.5, 16.0):
            series = sorted(
                (m, t) for (rg, _s, _n, m, g, t) in rows
                if rg == regime and g == gamma
            )
            per_edge = [t / m for m, t in series]
            assert max(per_edge) / min(per_edge) < 12, (regime, gamma)
            assert series[-1][1] > series[0][1]
