"""Figure 14 (appendix): precision/recall on dblp and livejournal of
PAR-CC vs PAR-MOD — the same dominance of the CC objective as Figure 9's
amazon/orkut panels."""

from repro.bench.datasets import benchmark_surrogate, quality_resolutions
from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering, modularity_clustering
from repro.eval.ground_truth import average_precision_recall
from repro.eval.pr_curve import PRPoint, best_recall_at_precision

GRAPHS = {"dblp": 0.5, "livejournal": 0.3}


def run_pr_study():
    curves = {}
    for name, scale in GRAPHS.items():
        part = benchmark_surrogate(name, seed=0, scale=scale)
        communities = part.top_communities(5000)
        graph = part.graph
        cc_points = []
        for lam in quality_resolutions("cc", 10):
            result = correlation_clustering(graph, resolution=float(lam), seed=1)
            pr = average_precision_recall(result.assignments, communities)
            cc_points.append(PRPoint(float(lam), pr.precision, pr.recall))
        mod_points = []
        for gamma in quality_resolutions("mod", 10):
            result = modularity_clustering(graph, gamma=float(gamma), seed=1)
            pr = average_precision_recall(result.assignments, communities)
            mod_points.append(PRPoint(float(gamma), pr.precision, pr.recall))
        curves[name] = (cc_points, mod_points)
    return curves


def test_fig14_pr_dblp_livejournal(benchmark):
    curves = benchmark.pedantic(run_pr_study, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 14: PAR-CC vs PAR-MOD precision/recall",
        ["graph", "method", "resolution", "precision", "recall"],
    )
    for name, (cc_points, mod_points) in curves.items():
        for p in cc_points:
            table.add_row(name, "PAR-CC", p.resolution, p.precision, p.recall)
        for p in mod_points:
            table.add_row(name, "PAR-MOD", p.resolution, p.precision, p.recall)
    table.emit()

    for name, (cc_points, mod_points) in curves.items():
        ours = best_recall_at_precision(cc_points, 0.5)
        theirs = best_recall_at_precision(mod_points, 0.5)
        assert ours > 0.4, name
        assert ours >= theirs - 0.05, (name, ours, theirs)
