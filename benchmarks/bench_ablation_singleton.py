"""Ablation: the singleton-escape move (DESIGN.md §5).

Standard Louvain only considers neighbor clusters and staying; under
LambdaCC's negative rescaled weights a vertex can be trapped in a cluster
it would rather leave outright.  The escape option (move to the vertex's
empty home slot) fixes that.  This bench measures its objective
contribution at a high resolution, where traps are common.
"""

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import ExperimentTable
from repro.core.api import cluster
from repro.core.config import ClusteringConfig


def run_ablation():
    rows = []
    for name, scale in (("amazon", 0.5), ("orkut", 0.3)):
        graph = benchmark_surrogate(name, seed=0, scale=scale).graph
        for lam in (0.5, 0.85):
            values = {}
            for escape in (True, False):
                config = ClusteringConfig(
                    resolution=lam, escape_moves=escape, seed=1
                )
                values[escape] = cluster(graph, config).objective
            rows.append((name, lam, values[True], values[False]))
    return rows


def test_ablation_singleton_escape(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ExperimentTable(
        "Ablation: singleton-escape moves",
        ["graph", "lambda", "objective (escape)", "objective (no escape)"],
    )
    for row in rows:
        table.add_row(*row)
    table.emit()

    for name, lam, with_escape, without in rows:
        # Escape never hurts and the high-resolution runs stay positive.
        assert with_escape >= without - abs(without) * 0.05, (name, lam)
        assert with_escape > 0
