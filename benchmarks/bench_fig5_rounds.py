"""Figure 5: multiplicative increase in rounds of PAR over SEQ.

The paper observes the round ratio approximately inverts the speedup
behaviour across resolutions: resolutions where the parallel
implementation needs more iterations show lower speedups.
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.bench.studies import lookup, select, speedup_study


def test_fig5_round_ratios(benchmark):
    records = benchmark.pedantic(speedup_study, rounds=1, iterations=1)

    table = ExperimentTable(
        "Figure 5: rounds(PAR) / rounds(SEQ)",
        ["graph", "objective", "resolution", "PAR rounds", "SEQ rounds", "ratio"],
    )
    ratios = []
    speedups = []
    for kind in ("cc", "mod"):
        for par in select(records, objective_kind=kind, variant="par"):
            seq = lookup(
                records, graph=par.graph, objective_kind=kind,
                resolution=par.resolution, variant="seq",
            )
            ratio = par.rounds / max(seq.rounds, 1)
            table.add_row(
                par.graph, kind, par.resolution, par.rounds, seq.rounds, ratio
            )
            ratios.append(ratio)
            speedups.append(seq.sim_time_seq / par.sim_time_par)
    table.emit()

    assert all(r > 0 for r in ratios)
    # Figure 5's anti-correlation with Figure 4: more parallel rounds →
    # lower speedup.  Require a negative rank correlation.
    order_r = np.argsort(ratios)
    ranks_r = np.empty(len(ratios)); ranks_r[order_r] = np.arange(len(ratios))
    order_s = np.argsort(speedups)
    ranks_s = np.empty(len(speedups)); ranks_s[order_s] = np.arange(len(speedups))
    correlation = np.corrcoef(ranks_r, ranks_s)[0, 1]
    assert correlation < 0.3, f"rank correlation {correlation}"
