import pytest

from repro.bench.sparkline import ascii_chart, sparkline


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes_mapped(self):
        line = sparkline([0, 100, 0])
        assert line == "▁█▁"


class TestAsciiChart:
    def test_contains_points(self):
        chart = ascii_chart([1, 2, 3], [1, 4, 9], width=20, height=6)
        assert chart.count("*") == 3

    def test_label_included(self):
        chart = ascii_chart([1, 2], [1, 2], label="speedup")
        assert chart.startswith("speedup")

    def test_axis_annotations(self):
        chart = ascii_chart([0, 10], [0.5, 2.5], width=12, height=4)
        assert "2.5" in chart
        assert "0.5" in chart

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], [1])

    def test_tiny_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1], [1], width=1)

    def test_empty(self):
        assert ascii_chart([], []) == "(empty chart)"

    def test_duplicate_points_collapse(self):
        chart = ascii_chart([1, 1], [2, 2], width=10, height=4)
        assert chart.count("*") == 1
