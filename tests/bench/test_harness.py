import math

import pytest

from repro.bench.harness import (
    ExperimentTable,
    averaged,
    bench_repeats,
    bench_scale,
    geometric_mean,
    series_summary,
    speedup,
)


class TestEnvKnobs:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_scale_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_repeats_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "7")
        assert bench_repeats() == 7


class TestAveraged:
    def test_mean_over_seeds(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "4")
        assert averaged(lambda seed: float(seed)) == pytest.approx(1.5)

    def test_explicit_repeats(self):
        assert averaged(lambda seed: 1.0, repeats=2) == 1.0


class TestSpeedup:
    def test_ratio(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_guard(self):
        assert speedup(10.0, 0.0) == math.inf


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([2.0, 0.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestExperimentTable:
    def test_render(self):
        table = ExperimentTable("Figure X", ["graph", "speedup"])
        table.add_row("amazon", 12.345)
        text = table.render()
        assert "Figure X" in text
        assert "amazon" in text
        assert "12.345" in text

    def test_row_arity_checked(self):
        table = ExperimentTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_float_formatting(self):
        assert ExperimentTable._fmt(0.000123) == "0.000123"
        assert ExperimentTable._fmt(123456.0) == "1.23e+05"
        assert ExperimentTable._fmt(1.5) == "1.5"
        assert ExperimentTable._fmt(0) == "0"

    def test_emit_prints(self, capfd):
        # emit() writes through pytest's sys-level capture to the real
        # stdout so bench tables reach tee'd logs; capture at the fd level.
        table = ExperimentTable("T", ["a"])
        table.add_row(1)
        table.emit()
        assert "== T ==" in capfd.readouterr().out


class TestSeriesSummary:
    def test_format(self):
        line = series_summary("speedup", [(1, 1.0), (2, 1.9)])
        assert line.startswith("speedup:")
        assert "2:1.9" in line
