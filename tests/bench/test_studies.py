import pytest

from repro.bench.studies import (
    SPEEDUP_SCALES,
    StudyRecord,
    TUNING_SCALES,
    TUNING_SETTINGS,
    lookup,
    select,
)
from repro.core.api import correlation_clustering
from repro.core.config import Frontier, Mode
from repro.graphs.karate import karate_club_graph


@pytest.fixture(scope="module")
def records():
    """A miniature study built on karate (the real studies are bench-only)."""
    graph = karate_club_graph()
    out = []
    for lam in (0.1, 0.5):
        for variant in ("par", "seq"):
            result = correlation_clustering(
                graph, resolution=lam, parallel=variant == "par", seed=1
            )
            out.append(StudyRecord.from_result("karate", "cc", variant, result))
    return out


class TestStudyRecord:
    def test_fields_populated(self, records):
        record = records[0]
        assert record.graph == "karate"
        assert record.sim_time_seq > 0
        assert record.sim_time_par > 0
        assert record.rounds > 0

    def test_par_time_below_seq_time(self, records):
        # Only meaningful for parallel runs: a sequential ledger's depth
        # equals its work, so evaluating it "at 60 workers" adds overhead.
        for record in select(records, variant="par"):
            assert record.sim_time_par <= record.sim_time_seq


class TestSelect:
    def test_filters(self, records):
        par = select(records, variant="par")
        assert len(par) == 2
        assert all(r.variant == "par" for r in par)

    def test_chained_criteria(self, records):
        out = select(records, variant="par", resolution=0.1)
        assert len(out) == 1

    def test_lookup_unique(self, records):
        record = lookup(records, variant="seq", resolution=0.5)
        assert record.variant == "seq"

    def test_lookup_ambiguous_raises(self, records):
        with pytest.raises(LookupError):
            lookup(records, variant="par")

    def test_lookup_missing_raises(self, records):
        with pytest.raises(LookupError):
            lookup(records, variant="par", resolution=0.77)


class TestStudyConfiguration:
    def test_tuning_settings_match_section41(self):
        # The paper's grid: base plus one-at-a-time toggles plus all-on.
        assert TUNING_SETTINGS["base"] == (Mode.SYNC, Frontier.ALL, False)
        assert TUNING_SETTINGS["async"][0] is Mode.ASYNC
        assert TUNING_SETTINGS["vertex-nbrs"][1] is Frontier.VERTEX_NEIGHBORS
        assert TUNING_SETTINGS["refine"][2] is True
        assert TUNING_SETTINGS["all-opts"] == (
            Mode.ASYNC, Frontier.VERTEX_NEIGHBORS, True
        )

    def test_scales_cover_paper_graphs(self):
        assert set(TUNING_SCALES) == {"amazon", "orkut", "twitter", "friendster"}
        assert set(SPEEDUP_SCALES) == {
            "amazon", "dblp", "livejournal", "orkut", "twitter", "friendster"
        }
