import numpy as np

from repro.bench.datasets import (
    SPEEDUP_GRAPHS,
    TUNING_GRAPHS,
    TUNING_RESOLUTIONS,
    benchmark_surrogate,
    quality_resolutions,
    tuning_pairs,
)


class TestRegistry:
    def test_paper_tuning_setup(self):
        # Section 4.1: amazon, orkut, twitter, friendster at 0.01 / 0.85.
        assert TUNING_GRAPHS == ("amazon", "orkut", "twitter", "friendster")
        assert TUNING_RESOLUTIONS == (0.01, 0.85)
        assert len(tuning_pairs()) == 8

    def test_speedup_graphs_match_figure4(self):
        assert len(SPEEDUP_GRAPHS) == 6


class TestCaching:
    def test_same_instance_returned(self):
        a = benchmark_surrogate("amazon", seed=0, scale=0.2)
        b = benchmark_surrogate("amazon", seed=0, scale=0.2)
        assert a is b

    def test_distinct_for_seeds(self):
        a = benchmark_surrogate("amazon", seed=0, scale=0.2)
        b = benchmark_surrogate("amazon", seed=1, scale=0.2)
        assert a is not b


class TestSweeps:
    def test_cc_grid_subsample(self):
        grid = quality_resolutions("cc", count=10)
        assert grid.size == 10
        assert grid[0] == 0.01
        assert grid[-1] == 0.99

    def test_full_grid_when_count_large(self):
        assert quality_resolutions("cc", count=500).size == 99

    def test_mod_grid_geometric(self):
        grid = quality_resolutions("mod", count=99)
        ratios = grid[1:] / grid[:-1]
        assert np.allclose(ratios, 1.2)

    def test_theta_grid(self):
        grid = quality_resolutions("theta", count=299)
        assert grid.size == 299

    def test_unknown_kind(self):
        import pytest

        with pytest.raises(ValueError):
            quality_resolutions("bogus")
