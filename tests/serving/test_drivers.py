"""Drivers and workload: determinism, accounting, shedding, threads."""

import pytest

from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.graphs.karate import karate_club_graph
from repro.serving import (
    GatewayPolicy,
    ServingGateway,
    SimulatedDriver,
    ThreadedDriver,
    WorkloadSpec,
    replay_digests,
)

pytestmark = pytest.mark.serving

NO_GUARD = DriftGuard(recompute_every=0, max_frontier_fraction=1.0)


def make_gateway(policy=None, seed=1):
    config = ClusteringConfig(resolution=0.1, parallel=False, seed=seed)
    clusterer = DynamicClusterer.bootstrap(
        karate_club_graph(), config, engine="sequential", guard=NO_GUARD
    )
    return ServingGateway(clusterer, policy), clusterer


def response_key(resp):
    return (resp.request_id, resp.status, resp.epoch, round(resp.latency, 12))


class TestWorkload:
    def test_deterministic_generation(self):
        spec = WorkloadSpec(num_requests=80, seed=5)
        a = spec.generate(34)
        b = spec.generate(34)
        assert [r.request_id for r in a] == [r.request_id for r in b]
        assert [r.kind for r in a] == [r.kind for r in b]
        assert [r.submitted_at for r in a] == [r.submitted_at for r in b]

    def test_read_fraction_respected(self):
        spec = WorkloadSpec(num_requests=200, read_fraction=0.7, seed=3)
        requests = spec.generate(34)
        reads = sum(1 for r in requests if r.klass == "read")
        assert 0.55 <= reads / len(requests) <= 0.85

    def test_closed_loop_sorted_arrivals(self):
        spec = WorkloadSpec(num_requests=60, arrival="closed", clients=4, seed=2)
        times = [r.submitted_at for r in spec.generate(34)]
        assert times == sorted(times)


class TestSimulatedDriver:
    def test_run_is_deterministic(self):
        spec = WorkloadSpec(num_requests=120, read_fraction=0.8, seed=9)
        runs = []
        for _ in range(2):
            gw, clusterer = make_gateway()
            try:
                result = SimulatedDriver().run(gw, spec.generate(34))
            finally:
                clusterer.close()
            runs.append(
                (
                    sorted(response_key(r) for r in result.responses),
                    result.makespan,
                    gw.epoch_log,
                )
            )
        assert runs[0] == runs[1]

    def test_accounting_no_silent_drops(self):
        spec = WorkloadSpec(num_requests=150, read_fraction=0.8, seed=4)
        gw, clusterer = make_gateway(
            GatewayPolicy(read_queue_limit=4, read_concurrency=1,
                          read_service_seconds=0.01)
        )
        try:
            result = SimulatedDriver().run(gw, spec.generate(34))
            assert result.check_accounting(gw) == []
            assert len(result.responses) == len(spec.generate(34))
        finally:
            clusterer.close()

    def test_tight_queue_sheds_reads(self):
        spec = WorkloadSpec(
            num_requests=200, read_fraction=0.95, rate=50_000.0, seed=6
        )
        gw, clusterer = make_gateway(
            GatewayPolicy(read_queue_limit=2, read_concurrency=1,
                          read_service_seconds=0.01)
        )
        try:
            result = SimulatedDriver().run(gw, spec.generate(34))
            assert result.by_status()["read"]["shed"] > 0
            assert result.check_accounting(gw) == []
        finally:
            clusterer.close()

    def test_deadline_expiry(self):
        spec = WorkloadSpec(
            num_requests=200,
            read_fraction=0.95,
            rate=50_000.0,
            read_deadline_seconds=0.002,
            seed=6,
        )
        gw, clusterer = make_gateway(
            GatewayPolicy(read_queue_limit=256, read_concurrency=1,
                          read_service_seconds=0.01)
        )
        try:
            result = SimulatedDriver().run(gw, spec.generate(34))
            by_status = result.by_status()
            assert by_status["read"]["expired"] > 0
            expired = [
                r for r in result.responses
                if r.klass == "read" and r.status == "expired"
            ]
            assert all(r.latency <= 0.002 + 1e-12 for r in expired)
            assert result.check_accounting(gw) == []
        finally:
            clusterer.close()

    def test_serial_baseline_slower_reads(self):
        """Shared commit/read lane must not beat dedicated read lanes."""
        spec = WorkloadSpec(num_requests=200, read_fraction=0.85, seed=7,
                            rate=5000.0)
        policy = GatewayPolicy(
            commit_interval_seconds=0.02,
            commit_base_seconds=0.05,
            read_service_seconds=0.001,
            read_concurrency=4,
        )
        summaries = {}
        for serial in (False, True):
            gw, clusterer = make_gateway(policy)
            try:
                result = SimulatedDriver(serial_baseline=serial).run(
                    gw, spec.generate(34)
                )
            finally:
                clusterer.close()
            summaries[serial] = result.summary()
        gw_p95 = summaries[False]["read_p95_seconds"]
        serial_p95 = summaries[True]["read_p95_seconds"]
        assert gw_p95 is not None and serial_p95 is not None
        assert gw_p95 <= serial_p95 + 1e-12


class TestThreadedDriver:
    def test_threaded_replay_and_accounting(self):
        spec = WorkloadSpec(num_requests=120, read_fraction=0.8, seed=11)
        graph = karate_club_graph()
        gw, clusterer = make_gateway(
            GatewayPolicy(commit_interval_seconds=0.01)
        )
        labels0 = gw.epoch.assignments.copy()
        try:
            result = ThreadedDriver(num_threads=4).run(gw, spec.generate(34))
            assert result.check_accounting(gw) == []
            digests = replay_digests(
                graph,
                labels0,
                clusterer.config,
                gw.committed_batches(),
                engine="sequential",
                guard=NO_GUARD,
            )
            assert digests == gw.epoch_log
        finally:
            clusterer.close()
