"""ServingGateway units: epochs, requests, coalescing, admission, accounting."""

import numpy as np
import pytest

from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.updates import EdgeUpdate
from repro.errors import UpdateError
from repro.graphs.karate import karate_club_graph
from repro.serving import (
    GatewayPolicy,
    LabelEpoch,
    Request,
    ServingGateway,
    label_digest,
    replay_digests,
)

pytestmark = pytest.mark.serving

NO_GUARD = DriftGuard(recompute_every=0, max_frontier_fraction=1.0)


def make_clusterer(seed=1):
    config = ClusteringConfig(resolution=0.1, parallel=False, seed=seed)
    return DynamicClusterer.bootstrap(
        karate_club_graph(), config, engine="sequential", guard=NO_GUARD
    )


def make_gateway(policy=None, seed=1):
    clusterer = make_clusterer(seed)
    return ServingGateway(clusterer, policy), clusterer


def write(rid, update, at=0.0):
    return Request.write(rid, update, submitted_at=at)


def read(rid, kind="cluster_of", args=(0,), at=0.0, deadline=None):
    return Request.read(rid, kind, *args, submitted_at=at, deadline=deadline)


class TestLabelEpoch:
    def test_immutable_snapshot(self):
        labels = np.asarray([0, 0, 1, 1], dtype=np.int64)
        epoch = LabelEpoch(0, labels)
        labels[0] = 9  # mutating the source must not leak into the epoch
        assert epoch.cluster_of(0) == 0
        with pytest.raises((ValueError, RuntimeError)):
            epoch.assignments[0] = 5

    def test_read_ops(self):
        epoch = LabelEpoch(3, np.asarray([0, 0, 1], dtype=np.int64))
        assert epoch.cluster_of(2) == 1
        assert epoch.same(0, 1) and not epoch.same(0, 2)
        assert list(epoch.members(0)) == [0, 1]
        stats = epoch.stats()
        assert stats["num_clusters"] == 2 and stats["epoch"] == 3

    def test_out_of_range_raises(self):
        epoch = LabelEpoch(0, np.zeros(3, dtype=np.int64))
        with pytest.raises(UpdateError):
            epoch.cluster_of(7)

    def test_digest_tracks_content(self):
        a = np.asarray([0, 1, 1], dtype=np.int64)
        assert LabelEpoch(0, a).digest == label_digest(a)
        assert LabelEpoch(0, a).digest != LabelEpoch(
            0, np.asarray([0, 1, 2], dtype=np.int64)
        ).digest


class TestRequestVocabulary:
    def test_klass_partition(self):
        assert read("r1").klass == "read"
        assert write("w1", EdgeUpdate("insert", 0, 9)).klass == "write"

    def test_invalid_kind_rejected(self):
        with pytest.raises(UpdateError):
            Request(request_id="x", kind="nonsense")

    def test_update_requires_payload(self):
        with pytest.raises(UpdateError):
            Request(request_id="x", kind="update")


class TestSnapshotIsolation:
    def test_reads_see_old_epoch_until_commit(self):
        gw, clusterer = make_gateway()
        try:
            before = gw.serve_read(read("r0"), now=0.0)
            assert before.epoch == 0
            gw.stage_write(write("w0", EdgeUpdate("insert", 0, 9, 5.0)), 0.0)
            # Staged but uncommitted: reads still answer from epoch 0.
            assert gw.serve_read(read("r1"), 0.0).epoch == 0
            assert gw.epoch.index == 0
            gw.commit(now=1.0)
            after = gw.serve_read(read("r2"), 2.0)
            assert after.epoch == 1
            assert gw.epoch.digest == label_digest(clusterer.state.assignments)
        finally:
            clusterer.close()

    def test_epoch_log_starts_at_bootstrap(self):
        gw, clusterer = make_gateway()
        try:
            assert gw.epoch_log == [gw.epoch.digest]
        finally:
            clusterer.close()


class TestCoalescing:
    def test_many_staged_one_batch(self):
        gw, clusterer = make_gateway()
        try:
            for i, upd in enumerate(
                [
                    EdgeUpdate("insert", 0, 9, 1.0),
                    EdgeUpdate("insert", 4, 20, 1.0),
                    EdgeUpdate("reweight", 0, 1, 2.0),
                ]
            ):
                assert gw.stage_write(write(f"w{i}", upd), 0.0) is None
            responses = gw.commit(now=1.0)
            assert len(responses) == 3
            assert all(r.status == "ok" and r.epoch == 1 for r in responses)
            assert len(gw.committed) == 1
            assert len(gw.committed_batches()[0]) == 3
        finally:
            clusterer.close()

    def test_max_batch_leaves_excess_staged(self):
        gw, clusterer = make_gateway(GatewayPolicy(max_batch_updates=2))
        try:
            for i in range(5):
                gw.stage_write(
                    write(f"w{i}", EdgeUpdate("insert", 0, 9 + i, 1.0)), 0.0
                )
            assert len(gw.commit(1.0)) == 2
            assert gw.staged_count == 3
            assert len(gw.commit(2.0)) == 2
            assert len(gw.commit(3.0)) == 1
            assert gw.staged_count == 0
        finally:
            clusterer.close()

    def test_empty_commit_publishes_nothing(self):
        gw, clusterer = make_gateway()
        try:
            assert gw.commit(1.0) == []
            assert gw.epoch.index == 0 and len(gw.epoch_log) == 1
        finally:
            clusterer.close()


class TestValidation:
    def test_delete_absent_edge_rejected_not_raised(self):
        gw, clusterer = make_gateway()
        try:
            gw.stage_write(write("bad", EdgeUpdate("delete", 0, 20)), 0.0)
            gw.stage_write(write("good", EdgeUpdate("insert", 0, 9, 1.0)), 0.0)
            responses = {r.request_id: r for r in gw.commit(1.0)}
            assert responses["bad"].status == "rejected"
            assert "absent edge" in responses["bad"].error
            assert responses["good"].status == "ok"
            # Rejected update excluded from the committed batch log.
            assert len(gw.committed_batches()[0]) == 1
        finally:
            clusterer.close()

    def test_insert_then_delete_same_cycle_accepted(self):
        gw, clusterer = make_gateway()
        try:
            gw.stage_write(write("a", EdgeUpdate("insert", 0, 20, 1.0)), 0.0)
            gw.stage_write(write("b", EdgeUpdate("delete", 0, 20)), 0.0)
            statuses = {r.request_id: r.status for r in gw.commit(1.0)}
            assert statuses == {"a": "ok", "b": "ok"}
        finally:
            clusterer.close()

    def test_all_rejected_cycle_publishes_no_epoch(self):
        gw, clusterer = make_gateway()
        try:
            gw.stage_write(write("x", EdgeUpdate("delete", 0, 15)), 0.0)
            responses = gw.commit(1.0)
            assert [r.status for r in responses] == ["rejected"]
            assert gw.epoch.index == 0 and not gw.committed
        finally:
            clusterer.close()


class TestAdmission:
    def test_write_queue_shed(self):
        gw, clusterer = make_gateway(GatewayPolicy(write_queue_limit=2))
        try:
            assert gw.stage_write(write("a", EdgeUpdate("insert", 0, 9)), 0.0) is None
            assert gw.stage_write(write("b", EdgeUpdate("insert", 0, 10)), 0.0) is None
            shed = gw.stage_write(write("c", EdgeUpdate("insert", 0, 11)), 0.5)
            assert shed is not None and shed.status == "shed"
            assert shed.retry_after == gw.policy.retry_after_seconds
            assert gw.counts[("write", "shed")] == 1
        finally:
            clusterer.close()

    def test_expire_counts(self):
        gw, clusterer = make_gateway()
        try:
            resp = gw.expire(read("late", at=0.0, deadline=0.1), now=0.2)
            assert resp.status == "expired"
            assert gw.counts[("read", "expired")] == 1
        finally:
            clusterer.close()

    def test_stats_accounting_invariant(self):
        gw, clusterer = make_gateway(GatewayPolicy(write_queue_limit=2))
        try:
            requests = [
                write("a", EdgeUpdate("insert", 0, 9)),
                write("b", EdgeUpdate("delete", 0, 20)),
                write("c", EdgeUpdate("insert", 0, 10)),
            ]
            for req in requests:
                gw.note_submit(req)
                gw.stage_write(req, 0.0)
            gw.note_submit(read("r"))
            gw.serve_read(read("r"), 0.0)
            gw.commit(1.0)
            stats = gw.stats()
            for klass in ("read", "write"):
                row = stats["requests"][klass]
                resolved = sum(row[s] for s in ("ok", "shed", "expired", "rejected"))
                pending = stats["staged"] if klass == "write" else 0
                assert row["submitted"] == resolved + pending
        finally:
            clusterer.close()


class TestReplay:
    def test_single_batch_replay_identical(self):
        gw, clusterer = make_gateway()
        config = clusterer.config
        graph = karate_club_graph()
        labels0 = gw.epoch.assignments.copy()
        try:
            gw.stage_write(write("a", EdgeUpdate("insert", 0, 9, 2.0)), 0.0)
            gw.stage_write(write("b", EdgeUpdate("delete", 0, 2)), 0.0)
            gw.commit(1.0)
            digests = replay_digests(
                graph,
                labels0,
                config,
                gw.committed_batches(),
                engine="sequential",
                guard=NO_GUARD,
            )
            assert digests == gw.epoch_log
        finally:
            clusterer.close()
