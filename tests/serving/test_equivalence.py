"""The serving equivalence gate (ISSUE 10 acceptance).

Under a mixed workload with shedding, rejection, and deadline expiry,
the gateway's committed label sequence must be bit-identical to a serial
replay of the same coalesced batches through a fresh clusterer — across
at least two engines and two graph families, with full accounting (every
submitted request reaches exactly one terminal status).
"""

import pytest

from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.generators.lfr import lfr_like_graph
from repro.generators.planted import planted_partition_graph
from repro.serving import (
    GatewayPolicy,
    ServingGateway,
    SimulatedDriver,
    WorkloadSpec,
    replay_digests,
)

pytestmark = pytest.mark.serving

NO_GUARD = DriftGuard(recompute_every=0, max_frontier_fraction=1.0)

#: Tight limits + a short deadline so the workload exercises all four
#: terminal statuses, proving equivalence holds under admission control,
#: not just on the happy path.
STRESS_POLICY = GatewayPolicy(
    read_queue_limit=8,
    write_queue_limit=64,
    max_batch_updates=16,
    commit_interval_seconds=0.02,
    read_service_seconds=0.002,
    read_concurrency=2,
)

WORKLOAD = WorkloadSpec(
    num_requests=250,
    read_fraction=0.8,
    rate=8000.0,
    read_deadline_seconds=0.05,
    delete_fraction=0.2,
    reweight_fraction=0.2,
    seed=13,
)


def family(name, seed=3):
    if name == "lfr":
        return lfr_like_graph(250, mixing=0.2, seed=seed).graph
    return planted_partition_graph(
        num_vertices=200, intra_degree=8.0, inter_degree=1.0, seed=seed
    ).graph


@pytest.mark.parametrize("engine", ["sequential", "relaxed"])
@pytest.mark.parametrize("family_name", ["lfr", "planted"])
def test_gateway_replay_bit_identical(engine, family_name):
    graph = family(family_name)
    config = ClusteringConfig(resolution=0.05, parallel=False, seed=3)
    boot = DynamicClusterer.bootstrap(
        graph, config, engine="sequential", guard=NO_GUARD
    )
    labels0 = boot.state.assignments.copy()
    boot.close()

    clusterer = DynamicClusterer(
        graph, labels0.copy(), config, engine=engine, guard=NO_GUARD
    )
    gateway = ServingGateway(clusterer, STRESS_POLICY)
    try:
        result = SimulatedDriver().run(
            gateway, WORKLOAD.generate(graph.num_vertices)
        )
    finally:
        clusterer.close()

    # Full accounting: no silent drops anywhere in the pipeline.
    assert result.check_accounting(gateway) == []
    counts = result.by_status()
    resolved = sum(sum(row.values()) for row in counts.values())
    assert resolved == WORKLOAD.num_requests

    # The stress policy must actually exercise the shed/reject paths,
    # otherwise this gate proves less than it claims.
    assert counts["write"]["ok"] > 0
    assert counts["write"]["rejected"] > 0
    assert gateway.epoch.index >= 2

    # Bit-identity: serial replay of the filtered batches, same engine.
    digests = replay_digests(
        graph,
        labels0,
        config,
        gateway.committed_batches(),
        engine=engine,
        guard=NO_GUARD,
    )
    assert digests == gateway.epoch_log


def test_engines_agree_on_epoch_log():
    """Same workload, same batches: both engines land identical logs.

    The localized-refinement seed set is deterministic per batch, and
    both engines run it through deterministic schedules, so the entire
    epoch history must agree across engines — the strongest cross-engine
    form of the gate.
    """
    graph = family("lfr")
    config = ClusteringConfig(resolution=0.05, parallel=False, seed=3)
    boot = DynamicClusterer.bootstrap(
        graph, config, engine="sequential", guard=NO_GUARD
    )
    labels0 = boot.state.assignments.copy()
    boot.close()

    logs = {}
    for engine in ("sequential", "relaxed"):
        clusterer = DynamicClusterer(
            graph, labels0.copy(), config, engine=engine, guard=NO_GUARD
        )
        gateway = ServingGateway(clusterer, STRESS_POLICY)
        try:
            SimulatedDriver().run(
                gateway, WORKLOAD.generate(graph.num_vertices)
            )
        finally:
            clusterer.close()
        logs[engine] = (
            [entry["updates"] for entry in gateway.committed],
            len(gateway.epoch_log),
        )
    # Coalescing is driver-determined, so both engines commit the very
    # same batches; epoch counts must line up.
    assert logs["sequential"][0] == logs["relaxed"][0]
    assert logs["sequential"][1] == logs["relaxed"][1]
