"""Property-based tests on the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import graph_from_edges
from repro.graphs.quotient import compress_graph


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    count = draw(st.integers(min_value=0, max_value=50))
    edges = []
    weights = []
    for _ in range(count):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        edges.append((u, v))
        weights.append(draw(st.floats(min_value=-5.0, max_value=5.0)))
    return n, edges, weights


class TestBuilderProperties:
    @given(edge_lists())
    @settings(max_examples=100, deadline=None)
    def test_always_symmetric(self, data):
        n, edges, weights = data
        graph = graph_from_edges(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            weights=np.asarray(weights) if weights else None,
            num_vertices=n,
        )
        assert graph.is_symmetric()

    @given(edge_lists())
    @settings(max_examples=100, deadline=None)
    def test_total_weight_preserved(self, data):
        n, edges, weights = data
        graph = graph_from_edges(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            weights=np.asarray(weights) if weights else None,
            num_vertices=n,
        )
        assert np.isclose(graph.total_edge_weight, float(np.sum(weights)))

    @given(edge_lists())
    @settings(max_examples=100, deadline=None)
    def test_no_duplicate_neighbors(self, data):
        n, edges, weights = data
        graph = graph_from_edges(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            weights=np.asarray(weights) if weights else None,
            num_vertices=n,
        )
        for v in range(n):
            nbrs, _ = graph.neighborhood(v)
            assert np.unique(nbrs).size == nbrs.size

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edge_list_roundtrip(self, data):
        n, edges, weights = data
        graph = graph_from_edges(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            weights=np.asarray(weights) if weights else None,
            num_vertices=n,
        )
        u, v, w = graph.edge_list()
        rebuilt = graph_from_edges(
            np.stack([u, v], axis=1) if u.size else np.zeros((0, 2), dtype=np.int64),
            weights=w,
            num_vertices=n,
        )
        rebuilt.self_loops[:] = graph.self_loops
        assert np.array_equal(rebuilt.offsets, graph.offsets)
        assert np.array_equal(rebuilt.neighbors, graph.neighbors)
        assert np.allclose(rebuilt.weights, graph.weights)


class TestCompressionProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_compress_idempotent_on_identity(self, data):
        """Compressing by the identity clustering twice changes nothing."""
        n, edges, weights = data
        graph = graph_from_edges(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            weights=np.asarray(weights) if weights else None,
            num_vertices=n,
        )
        once, v2s = compress_graph(graph, np.arange(n))
        assert np.array_equal(v2s, np.arange(n))
        assert np.array_equal(once.offsets, graph.offsets)
        assert np.allclose(once.weights, graph.weights)

    @given(edge_lists(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_compress_monotone_in_vertices(self, data, num_clusters):
        n, edges, weights = data
        graph = graph_from_edges(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            weights=np.asarray(weights) if weights else None,
            num_vertices=n,
        )
        rng = np.random.default_rng(0)
        clustering = rng.integers(0, num_clusters, size=n)
        compressed, _ = compress_graph(graph, clustering)
        assert compressed.num_vertices == np.unique(clustering).size
        assert compressed.num_vertices <= n
        assert compressed.num_edges <= graph.num_edges
