"""Property: incremental objective deltas match full recomputation.

Random update batches (inserts, deletes, reweights, and no-op reweights)
applied through :class:`DynamicClusterer` on random, RMAT, and planted
graphs, under every engine: after each batch the incrementally maintained
``F`` must match :func:`lambdacc_objective` recomputed from scratch to
1e-9, and the full :class:`StateAuditor` invariant check must stay clean.
"""

import numpy as np
import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.core.engines import ENGINES
from repro.core.objective import lambdacc_objective
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.generators.planted import planted_partition_graph
from repro.generators.rmat import rmat_graph
from repro.graphs.builders import graph_from_edges

pytestmark = pytest.mark.dynamic

RESOLUTION = 0.1
NO_GUARD = DriftGuard(recompute_every=0, max_frontier_fraction=1.0)


def random_graph(n, m, seed):
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < m:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v:
            pairs.add((min(u, v), max(u, v)))
    edges = np.asarray(sorted(pairs), dtype=np.int64)
    return graph_from_edges(edges, num_vertices=n)


GRAPHS = {
    "random": lambda: random_graph(60, 180, seed=3),
    "rmat": lambda: rmat_graph(6, 300, seed=3),
    "planted": lambda: planted_partition_graph(80, seed=3).graph,
}

_WARM = {}


def warm_clusterer(graph_name, engine):
    """A DynamicClusterer on the named graph (bootstrap cached per graph)."""
    if graph_name not in _WARM:
        graph = GRAPHS[graph_name]()
        config = ClusteringConfig(resolution=RESOLUTION, seed=5)
        _WARM[graph_name] = (graph, cluster(graph, config).assignments)
    graph, assignments = _WARM[graph_name]
    config = ClusteringConfig(resolution=RESOLUTION, seed=5)
    return DynamicClusterer(
        graph, assignments.copy(), config, engine=engine, guard=NO_GUARD
    )


def random_batch(dc, rng, size=8):
    """Mixed random batch valid against the clusterer's current graph."""
    u, v, w = dc.graph.edge_list()
    existing = list(zip(u.tolist(), v.tolist(), w.tolist()))
    n = dc.graph.num_vertices
    updates = []
    used = set()
    for _ in range(size):
        op = rng.choice(["insert", "delete", "reweight", "noop"])
        if op == "insert":
            while True:
                a, b = int(rng.integers(n)), int(rng.integers(n))
                if a != b and (min(a, b), max(a, b)) not in used:
                    break
            updates.append(
                EdgeUpdate("insert", a, b, float(rng.uniform(0.5, 2.0)))
            )
            used.add((min(a, b), max(a, b)))
        else:
            while True:
                eu, ev, ew = existing[int(rng.integers(len(existing)))]
                if (eu, ev) not in used:
                    break
            used.add((eu, ev))
            if op == "delete":
                updates.append(EdgeUpdate("delete", eu, ev))
            elif op == "reweight":
                updates.append(
                    EdgeUpdate("reweight", eu, ev, float(rng.uniform(0.5, 2.0)))
                )
            else:  # no-op: reweight to the current weight
                updates.append(EdgeUpdate("reweight", eu, ev, float(ew)))
    return UpdateBatch(updates)


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_incremental_matches_recompute(graph_name, engine):
    dc = warm_clusterer(graph_name, engine)
    rng = np.random.default_rng(11)
    for _ in range(3):
        batch = random_batch(dc, rng)
        dc.apply(batch)
        exact = lambdacc_objective(
            dc.graph, dc.state.assignments, RESOLUTION
        )
        assert dc.f_objective == pytest.approx(exact, abs=1e-9), (
            f"{graph_name}/{engine}: incremental F drifted"
        )
        assert dc.audit() == []
