"""Property-based tests on the simulated-time model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.scheduler import CostLedger, Machine

region_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e7),   # work
        st.floats(min_value=0.0, max_value=1e4),   # depth
        st.floats(min_value=0.0, max_value=1e5),   # serial
    ),
    min_size=1,
    max_size=12,
)


def build_ledger(regions):
    ledger = CostLedger()
    for work, depth, serial in regions:
        ledger.charge(work, depth, "r", serial=serial)
    return ledger


class TestSimulatedTimeProperties:
    @given(region_lists)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_workers(self, regions):
        ledger = build_ledger(regions)
        machine = Machine(cores=30, smt=2)
        times = [
            ledger.simulated_time(p, machine=machine)
            for p in (2, 4, 8, 16, 30, 45, 60)
        ]
        assert all(a >= b - 1e-15 for a, b in zip(times, times[1:]))

    @given(region_lists)
    @settings(max_examples=100, deadline=None)
    def test_bounded_below_by_critical_path(self, regions):
        """No worker count beats the depth + serial lower bound."""
        ledger = build_ledger(regions)
        machine = Machine(cores=64, smt=1)
        floor = (ledger.total_depth + ledger.total_serial) / 2.0e9
        assert ledger.simulated_time(64, machine=machine, tau=0.0) >= floor - 1e-18

    @given(region_lists, region_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_additive(self, first, second):
        a = build_ledger(first)
        b = build_ledger(second)
        combined = build_ledger(first)
        combined.merge(b)
        machine = Machine(cores=8, smt=2)
        expected = a.simulated_time(8, machine=machine) + b.simulated_time(
            8, machine=machine
        )
        assert abs(combined.simulated_time(8, machine=machine) - expected) < 1e-12

    @given(region_lists)
    @settings(max_examples=60, deadline=None)
    def test_sequential_time_is_total_ops(self, regions):
        ledger = build_ledger(regions)
        expected = (ledger.total_work + ledger.total_serial) / 2.0e9
        assert abs(ledger.simulated_time(1) - expected) < 1e-18

    @given(region_lists)
    @settings(max_examples=60, deadline=None)
    def test_speedup_bounded_by_effective_parallelism(self, regions):
        ledger = build_ledger(regions)
        machine = Machine(cores=30, smt=2)
        t1 = ledger.simulated_time(1, machine=machine)
        t60 = ledger.simulated_time(60, machine=machine)
        if t60 > 0:
            assert t1 / t60 <= machine.effective_parallelism(60) + 1e-9
