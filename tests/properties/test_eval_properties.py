"""Property-based tests on the evaluation metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.ari import adjusted_rand_index
from repro.eval.ground_truth import average_precision_recall
from repro.eval.nmi import normalized_mutual_information

labelings = st.lists(st.integers(0, 6), min_size=2, max_size=60)


class TestMetricProperties:
    @given(labelings)
    @settings(max_examples=80, deadline=None)
    def test_ari_self_is_one(self, labels):
        arr = np.asarray(labels)
        assert np.isclose(adjusted_rand_index(arr, arr), 1.0)

    @given(labelings, st.permutations(list(range(7))))
    @settings(max_examples=80, deadline=None)
    def test_ari_permutation_invariant(self, labels, perm):
        arr = np.asarray(labels)
        mapped = np.asarray(perm)[arr]
        assert np.isclose(
            adjusted_rand_index(arr, mapped), 1.0
        )

    @given(labelings, labelings)
    @settings(max_examples=80, deadline=None)
    def test_ari_symmetric(self, a, b):
        size = min(len(a), len(b))
        x = np.asarray(a[:size])
        y = np.asarray(b[:size])
        assert np.isclose(
            adjusted_rand_index(x, y), adjusted_rand_index(y, x)
        )

    @given(labelings)
    @settings(max_examples=80, deadline=None)
    def test_nmi_self_is_one(self, labels):
        arr = np.asarray(labels)
        assert np.isclose(normalized_mutual_information(arr, arr), 1.0)

    @given(labelings, labelings)
    @settings(max_examples=80, deadline=None)
    def test_nmi_bounded(self, a, b):
        size = min(len(a), len(b))
        nmi = normalized_mutual_information(
            np.asarray(a[:size]), np.asarray(b[:size])
        )
        assert -1e-9 <= nmi <= 1.0 + 1e-9


@st.composite
def clustering_with_communities(draw):
    n = draw(st.integers(min_value=4, max_value=40))
    labels = np.asarray(
        draw(st.lists(st.integers(0, 5), min_size=n, max_size=n)), dtype=np.int64
    )
    num_comms = draw(st.integers(min_value=1, max_value=4))
    communities = []
    for _ in range(num_comms):
        size = draw(st.integers(min_value=1, max_value=n))
        members = draw(
            st.lists(
                st.integers(0, n - 1), min_size=size, max_size=size, unique=True
            )
        )
        communities.append(np.asarray(members, dtype=np.int64))
    return labels, communities


class TestPrecisionRecallProperties:
    @given(clustering_with_communities())
    @settings(max_examples=80, deadline=None)
    def test_in_unit_interval(self, instance):
        labels, communities = instance
        pr = average_precision_recall(labels, communities)
        assert 0.0 < pr.precision <= 1.0
        assert 0.0 < pr.recall <= 1.0

    @given(st.integers(min_value=4, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_perfect_on_exact_match(self, n):
        labels = np.asarray([i % 3 for i in range(n)], dtype=np.int64)
        communities = [
            np.flatnonzero(labels == c) for c in range(3) if (labels == c).any()
        ]
        pr = average_precision_recall(labels, communities)
        assert np.isclose(pr.precision, 1.0)
        assert np.isclose(pr.recall, 1.0)
