"""Property test for the key multilevel invariant: compression preserves
the LambdaCC objective exactly (including node_weight_sq bookkeeping)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import lambdacc_objective
from repro.graphs.builders import graph_from_edges
from repro.graphs.quotient import compress_graph


@st.composite
def weighted_graph_and_two_clusterings(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    num_edges = draw(st.integers(min_value=1, max_value=30))
    edges = []
    weights = []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
            weights.append(draw(st.floats(min_value=-3.0, max_value=3.0)))
    node_weights = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=4.0), min_size=n, max_size=n
            )
        )
    )
    graph = graph_from_edges(
        np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        weights=np.asarray(weights) if weights else None,
        num_vertices=n,
        node_weights=node_weights,
    )
    first = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    return graph, first


class TestCompressInvariance:
    @given(
        weighted_graph_and_two_clusterings(),
        st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=80, deadline=None)
    def test_identity_clustering_on_quotient(self, data, lam):
        graph, clustering = data
        before = lambdacc_objective(graph, clustering, lam)
        compressed, _ = compress_graph(graph, clustering)
        after = lambdacc_objective(
            compressed, np.arange(compressed.num_vertices), lam
        )
        assert np.isclose(after, before), (before, after)

    @given(
        weighted_graph_and_two_clusterings(),
        st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_flattened_second_level(self, data, lam):
        """Cluster the quotient arbitrarily; flattening must preserve F."""
        graph, clustering = data
        compressed, v2s = compress_graph(graph, clustering)
        rng = np.random.default_rng(0)
        second = rng.integers(
            0, max(compressed.num_vertices // 2, 1), size=compressed.num_vertices
        )
        flattened = second[v2s]
        assert np.isclose(
            lambdacc_objective(compressed, second, lam),
            lambdacc_objective(graph, flattened, lam),
        )

    @given(weighted_graph_and_two_clusterings())
    @settings(max_examples=60, deadline=None)
    def test_total_mass_preserved(self, data):
        graph, clustering = data
        compressed, _ = compress_graph(graph, clustering)
        assert np.isclose(
            compressed.total_edge_weight, graph.total_edge_weight
        )
        assert np.isclose(
            compressed.node_weights.sum(), graph.node_weights.sum()
        )
        assert np.isclose(
            compressed.node_weight_sq.sum(), graph.node_weight_sq.sum()
        )
