"""Property test: the vectorized batch kernel and the sequential
single-vertex kernel always agree (targets and gains)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.moves import compute_batch_moves, compute_single_move
from repro.core.state import ClusterState
from repro.graphs.builders import graph_from_edges


@st.composite
def state_instance(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    num_edges = draw(st.integers(min_value=0, max_value=30))
    edges = []
    weights = []
    for _ in range(num_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v))
            weights.append(draw(st.floats(min_value=-2.0, max_value=2.0)))
    graph = graph_from_edges(
        np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        weights=np.asarray(weights) if weights else None,
        num_vertices=n,
    )
    labels = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    lam = draw(st.floats(min_value=0.0, max_value=0.9))
    return graph, labels, lam


class TestKernelParity:
    @given(state_instance())
    @settings(max_examples=120, deadline=None)
    def test_single_matches_batch_of_one(self, instance):
        graph, labels, lam = instance
        state = ClusterState.from_assignments(graph, labels)
        for v in range(graph.num_vertices):
            batch_targets, batch_gains = compute_batch_moves(
                graph, state, np.asarray([v]), lam
            )
            target, gain = compute_single_move(graph, state, v, lam)
            assert target == batch_targets[0], (v, labels, lam)
            assert np.isclose(gain, batch_gains[0]), (v, labels, lam)

    @given(state_instance())
    @settings(max_examples=80, deadline=None)
    def test_batch_against_snapshot_equals_per_vertex(self, instance):
        """A full batch equals running each vertex against the same frozen
        snapshot (the definition of synchronous semantics)."""
        graph, labels, lam = instance
        state = ClusterState.from_assignments(graph, labels)
        all_vertices = np.arange(graph.num_vertices)
        batch_targets, batch_gains = compute_batch_moves(
            graph, state, all_vertices, lam
        )
        for v in range(graph.num_vertices):
            target, gain = compute_single_move(graph, state, v, lam)
            assert target == batch_targets[v]
            assert np.isclose(gain, batch_gains[v])

    @given(state_instance())
    @settings(max_examples=80, deadline=None)
    def test_gains_nonnegative(self, instance):
        graph, labels, lam = instance
        state = ClusterState.from_assignments(graph, labels)
        _, gains = compute_batch_moves(
            graph, state, np.arange(graph.num_vertices), lam
        )
        assert np.all(gains >= -1e-12)
