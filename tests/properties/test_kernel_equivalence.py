"""Property tests: the vectorized kernel is bit-identical to the
reference dict kernel.

DESIGN.md §8's contract is *exact* equality, not tolerance: the
vectorized engine accumulates each S(v, c') segment in the same
left-to-right CSR order as the dict loop, so every comparison here uses
``array_equal`` / ``==`` on floats deliberately.  Coverage:

* direct ``batch_moves`` parity on adversarial hypothesis graphs
  (negative weights, self-clusters, escape and swap-avoidance variants);
* ``sweep`` parity — the speculative confirm-continue replay must
  reproduce the sequential dict sweep move-for-move, including the
  mutated state;
* end-to-end: every registry engine, on RMAT/LFR/planted workloads
  across seeds and resolutions, produces identical assignments and
  objective under both kernels;
* the same end-to-end equivalence under fault injection — the sweep
  kernel detects the ``FaultyClusterState`` wrapper and falls back, so
  injected hazards perturb both kernels identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ClusteringConfig
from repro.core.engines import ENGINES, multilevel_with_engine
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.generators.lfr import lfr_like_graph
from repro.generators.planted import planted_partition_graph
from repro.generators.rmat import rmat_graph
from repro.graphs.builders import graph_from_edges
from repro.kernels.reference import reference_batch_moves, reference_sweep
from repro.kernels.sweep import speculative_sweep
from repro.kernels.vectorized import vectorized_batch_moves
from repro.parallel.scheduler import SimulatedScheduler
from repro.resilience import FaultPlan, ResilienceContext, ResiliencePolicy

ENGINE_NAMES = sorted(ENGINES)


@st.composite
def state_instance(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    num_edges = draw(st.integers(min_value=0, max_value=40))
    edges = []
    weights = []
    for _ in range(num_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v))
            weights.append(draw(st.floats(min_value=-2.0, max_value=2.0)))
    graph = graph_from_edges(
        np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        weights=np.asarray(weights) if weights else None,
        num_vertices=n,
    )
    labels = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    lam = draw(st.floats(min_value=0.0, max_value=0.9))
    return graph, labels, lam


class TestBatchKernelEquivalence:
    @given(state_instance(), st.booleans(), st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_batch_moves_bit_identical(self, instance, escape, swap):
        graph, labels, lam = instance
        state = ClusterState.from_assignments(graph, labels)
        batch = np.arange(graph.num_vertices, dtype=np.int64)
        ref_t, ref_g = reference_batch_moves(
            graph, state, batch, lam,
            allow_escape=escape, swap_avoidance=swap,
        )
        # small_batch_work=0 forces the segment-reduction path even on
        # tiny hypothesis graphs (the adaptive fallback would otherwise
        # route them all through the reference kernel).
        vec_t, vec_g = vectorized_batch_moves(
            graph, state, batch, lam,
            allow_escape=escape, swap_avoidance=swap, small_batch_work=0,
        )
        assert np.array_equal(ref_t, vec_t), (labels, lam)
        assert np.array_equal(ref_g, vec_g), (labels, lam)

    @given(state_instance())
    @settings(max_examples=100, deadline=None)
    def test_sweep_bit_identical(self, instance):
        graph, labels, lam = instance
        order = np.arange(graph.num_vertices, dtype=np.int64)
        ref_state = ClusterState.from_assignments(graph, labels)
        vec_state = ClusterState.from_assignments(graph, labels)
        ref = reference_sweep(graph, ref_state, order, lam)
        vec = speculative_sweep(graph, vec_state, order, lam)
        for got, want in zip(vec, ref):
            assert np.array_equal(np.asarray(got), np.asarray(want))
        assert np.array_equal(ref_state.assignments, vec_state.assignments)
        assert np.array_equal(
            ref_state.cluster_weights, vec_state.cluster_weights
        )
        assert np.array_equal(ref_state.cluster_sizes, vec_state.cluster_sizes)


def _run_engine(graph, engine, kernel, resolution, seed, plan=None):
    config = ClusteringConfig(
        resolution=resolution, seed=seed, kernel=kernel
    )
    sched = SimulatedScheduler(num_workers=8)
    resilience = None
    if plan is not None:
        resilience = ResilienceContext(
            ResiliencePolicy(faults=plan, audit=True, max_retries=3),
            sched=sched,
        )
        resilience.bind(graph, resolution, config)
    labels, stats = multilevel_with_engine(
        graph,
        resolution,
        config,
        engine=engine,
        sched=sched,
        rng=np.random.default_rng(seed),
        resilience=resilience,
    )
    return labels, sched.simulated_time(8)


WORKLOADS = [
    ("rmat", lambda seed: rmat_graph(6, 6 * 2**6, seed=seed)),
    ("lfr", lambda seed: lfr_like_graph(120, mixing=0.3, seed=seed).graph),
    (
        "planted",
        lambda seed: planted_partition_graph(100, seed=seed).graph,
    ),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w[0])
    @pytest.mark.parametrize("seed,resolution", [(1, 0.05), (2, 0.3)])
    def test_engines_identical_across_kernels(
        self, engine, workload, seed, resolution
    ):
        graph = workload[1](seed)
        ref_labels, ref_sim = _run_engine(
            graph, engine, "reference", resolution, seed
        )
        vec_labels, vec_sim = _run_engine(
            graph, engine, "vectorized", resolution, seed
        )
        assert np.array_equal(ref_labels, vec_labels)
        assert ref_sim == vec_sim  # the cost model never sees the kernel
        assert lambdacc_objective(
            graph, ref_labels, resolution
        ) == lambdacc_objective(graph, vec_labels, resolution)

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_engines_identical_under_fault_injection(self, engine):
        graph = planted_partition_graph(80, seed=5).graph
        spec = "drop-move=0.2,stale-read=0.2,dup-move=0.1"
        results = {}
        for kernel in ("reference", "vectorized"):
            plan = FaultPlan.from_spec(spec, seed=13)
            results[kernel] = _run_engine(
                graph, engine, kernel, 0.05, 7, plan=plan
            )
        ref_labels, ref_sim = results["reference"]
        vec_labels, vec_sim = results["vectorized"]
        assert np.array_equal(ref_labels, vec_labels)
        assert ref_sim == vec_sim
