"""Property-based tests (hypothesis) on the LambdaCC objective."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import (
    cluster_weight_penalty,
    lambdacc_objective,
    modularity,
)
from repro.graphs.builders import graph_from_edges


@st.composite
def small_graph_and_clustering(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    num_edges = draw(st.integers(min_value=0, max_value=40))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    edges = [(u, v) for u, v in pairs if u != v]
    graph = graph_from_edges(
        np.asarray(edges, dtype=np.int64).reshape(-1, 2), num_vertices=n
    )
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n
        )
    )
    return graph, np.asarray(labels, dtype=np.int64)


class TestObjectiveProperties:
    @given(small_graph_and_clustering())
    @settings(max_examples=60, deadline=None)
    def test_singleton_objective_is_zero(self, graph_and_labels):
        graph, _ = graph_and_labels
        n = graph.num_vertices
        assert lambdacc_objective(graph, np.arange(n), 0.4) == 0.0

    @given(small_graph_and_clustering(), st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=60, deadline=None)
    def test_label_permutation_invariance(self, graph_and_labels, lam):
        graph, labels = graph_and_labels
        value = lambdacc_objective(graph, labels, lam)
        # Relabel clusters by an arbitrary injective map.
        relabeled = labels * 7 + 3
        assert np.isclose(
            lambdacc_objective(graph, relabeled, lam), value
        )

    @given(small_graph_and_clustering())
    @settings(max_examples=60, deadline=None)
    def test_objective_decreasing_in_lambda(self, graph_and_labels):
        """For unweighted graphs F(C; lam) is non-increasing in lambda
        (the penalty term only grows)."""
        graph, labels = graph_and_labels
        values = [lambdacc_objective(graph, labels, lam) for lam in (0.1, 0.5, 0.9)]
        assert values[0] >= values[1] >= values[2]

    @given(small_graph_and_clustering())
    @settings(max_examples=60, deadline=None)
    def test_penalty_nonnegative(self, graph_and_labels):
        graph, labels = graph_and_labels
        assert cluster_weight_penalty(graph, labels) >= -1e-12

    @given(small_graph_and_clustering())
    @settings(max_examples=40, deadline=None)
    def test_modularity_bounded(self, graph_and_labels):
        graph, labels = graph_and_labels
        if graph.total_edge_weight <= 0:
            return
        q = modularity(graph, labels, gamma=1.0)
        assert -1.0 <= q <= 1.0 + 1e-9
