"""Property test: checkpoint round-trip resumes bit-identically.

A run that checkpoints at every level boundary, is "killed", and then
resumed from the last checkpoint must produce exactly the assignments
and objective of the uninterrupted run — across seeds, resolutions, and
graphs.  This is the contract that makes checkpoints trustworthy: resume
is a pure replay, not an approximation.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.generators.planted import planted_partition_graph
from repro.graphs.karate import karate_club_graph
from repro.resilience import ResiliencePolicy

_KARATE = karate_club_graph()
_PLANTED = planted_partition_graph(
    num_vertices=120, intra_degree=8.0, inter_degree=1.0, seed=9
).graph


def _run_with_checkpoint(graph, config, ckpt_path):
    return cluster(
        graph,
        config,
        resilience=ResiliencePolicy(checkpoint_path=str(ckpt_path)),
    )


def _resume(graph, config, ckpt_path):
    return cluster(
        graph,
        config,
        resilience=ResiliencePolicy(resume_from=str(ckpt_path)),
    )


class TestCheckpointResumeProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        resolution=st.sampled_from([0.01, 0.05, 0.25]),
        use_planted=st.booleans(),
    )
    def test_resume_replays_bit_identically(self, seed, resolution, use_planted):
        graph = _PLANTED if use_planted else _KARATE
        config = ClusteringConfig(resolution=resolution, seed=seed)
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = Path(tmp) / "ck.npz"
            full = _run_with_checkpoint(graph, config, ckpt)
            if not ckpt.exists():
                return  # single-level run: no boundary, nothing to resume
            resumed = _resume(graph, config, ckpt)
        assert np.array_equal(full.assignments, resumed.assignments)
        assert resumed.objective == pytest.approx(full.objective, rel=0, abs=0)
        assert resumed.num_clusters == full.num_clusters

    def test_checkpointing_does_not_perturb_the_run(self):
        config = ClusteringConfig(resolution=0.05, seed=7)
        clean = cluster(_KARATE, config)
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = Path(tmp) / "ck.npz"
            checkpointed = _run_with_checkpoint(_KARATE, config, ckpt)
        assert np.array_equal(clean.assignments, checkpointed.assignments)
        assert checkpointed.objective == clean.objective

    def test_resume_notes_provenance_in_failure_log(self):
        config = ClusteringConfig(resolution=0.05, seed=7)
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = Path(tmp) / "ck.npz"
            _run_with_checkpoint(_KARATE, config, ckpt)
            if not ckpt.exists():
                pytest.skip("run finished in one level")
            resumed = _resume(_KARATE, config, ckpt)
        assert any("resumed from" in line for line in resumed.failure_log)
        assert not resumed.degraded  # resuming is not a degradation
