"""Property tests on the end-to-end Louvain drivers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import correlation_clustering
from repro.core.objective import lambdacc_objective
from repro.graphs.builders import graph_from_edges


@st.composite
def random_unweighted_graph(draw):
    n = draw(st.integers(min_value=3, max_value=30))
    num_edges = draw(st.integers(min_value=1, max_value=60))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v))
    if not edges:
        edges = [(0, 1)]
    return graph_from_edges(
        np.asarray(edges, dtype=np.int64), num_vertices=n
    )


class TestLouvainProperties:
    @given(random_unweighted_graph(), st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_objective_never_negative_async(self, graph, lam):
        """Section 4.1's empirical claim: asynchronous PAR-CC's objective
        is always non-negative (singletons score 0 and every accepted
        sequence of window moves improves on the window snapshot)."""
        result = correlation_clustering(graph, resolution=lam, seed=0)
        assert result.objective >= -1e-9

    @given(random_unweighted_graph(), st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_labels_dense_partition(self, graph, lam):
        result = correlation_clustering(graph, resolution=lam, seed=1)
        labels = result.assignments
        assert labels.shape == (graph.num_vertices,)
        uniq = np.unique(labels)
        assert np.array_equal(uniq, np.arange(uniq.size))

    @given(random_unweighted_graph())
    @settings(max_examples=20, deadline=None)
    def test_parallel_objective_close_to_sequential(self, graph):
        """Section 4.2: PAR-CC achieves 0.95-1.08x SEQ-CC's objective; we
        assert the parallel run is at least half the sequential one (a
        loose band for adversarial hypothesis graphs)."""
        lam = 0.3
        par = correlation_clustering(graph, resolution=lam, seed=2)
        seq = correlation_clustering(graph, resolution=lam, parallel=False, seed=2)
        if seq.objective > 0:
            assert par.objective >= 0.5 * seq.objective - 1e-9

    @given(random_unweighted_graph())
    @settings(max_examples=20, deadline=None)
    def test_reported_matches_recomputed(self, graph):
        result = correlation_clustering(graph, resolution=0.4, seed=3)
        recomputed = 2 * lambdacc_objective(graph, result.assignments, 0.4)
        assert np.isclose(result.objective, recomputed)
