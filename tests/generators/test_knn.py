import numpy as np
import pytest

from repro.generators.knn import cosine_knn, knn_graph
from repro.generators.pointsets import gaussian_mixture_pointset


class TestCosineKnn:
    def test_shapes(self):
        points = np.random.default_rng(0).normal(size=(50, 8))
        idx, sims = cosine_knn(points, 5)
        assert idx.shape == (50, 5)
        assert sims.shape == (50, 5)

    def test_no_self_neighbors(self):
        points = np.random.default_rng(0).normal(size=(30, 4))
        idx, _ = cosine_knn(points, 3)
        assert not np.any(idx == np.arange(30)[:, None])

    def test_similarities_sorted_descending(self):
        points = np.random.default_rng(1).normal(size=(40, 6))
        _, sims = cosine_knn(points, 4)
        assert np.all(np.diff(sims, axis=1) <= 1e-12)

    def test_exactness_against_bruteforce(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(25, 5))
        idx, sims = cosine_knn(points, 3)
        unit = points / np.linalg.norm(points, axis=1, keepdims=True)
        full = unit @ unit.T
        np.fill_diagonal(full, -np.inf)
        for i in range(25):
            expected = np.sort(full[i])[::-1][:3]
            assert np.allclose(np.sort(sims[i])[::-1], expected)

    def test_identical_points_full_similarity(self):
        points = np.ones((5, 3))
        _, sims = cosine_knn(points, 2)
        assert np.allclose(sims, 1.0)

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            cosine_knn(np.zeros((3, 2)), 3)


class TestKnnGraph:
    def test_symmetrized(self):
        ps = gaussian_mixture_pointset(100, 3, 8, seed=0)
        g = knn_graph(ps.points, k=10)
        assert g.is_symmetric()
        assert g.num_vertices == 100

    def test_weights_are_similarities(self):
        ps = gaussian_mixture_pointset(80, 3, 8, seed=1)
        g = knn_graph(ps.points, k=8)
        assert g.weights.max() <= 1.0 + 1e-9
        assert g.weights.min() > 0.0

    def test_min_similarity_filter(self):
        ps = gaussian_mixture_pointset(80, 3, 8, seed=1)
        loose = knn_graph(ps.points, k=8, min_similarity=0.0)
        strict = knn_graph(ps.points, k=8, min_similarity=0.9)
        assert strict.num_edges < loose.num_edges

    def test_classes_mostly_intra_connected(self):
        """k-NN on separated mixtures wires mostly within classes — the
        property that makes the weighted-graph experiments meaningful."""
        ps = gaussian_mixture_pointset(300, 3, 16, separation=5.0, seed=2)
        g = knn_graph(ps.points, k=10)
        src = np.repeat(np.arange(300), np.diff(g.offsets))
        same = ps.labels[src] == ps.labels[g.neighbors]
        assert same.mean() > 0.9
