import numpy as np
import pytest

from repro.generators.snap_like import (
    SNAP_SURROGATES,
    load_snap_surrogate,
    surrogate_table,
)


class TestRegistry:
    def test_all_paper_graphs_present(self):
        # Table 1's graphs.
        assert set(SNAP_SURROGATES) == {
            "amazon", "dblp", "livejournal", "orkut", "twitter", "friendster",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_snap_surrogate("facebook")


class TestGeneration:
    def test_deterministic(self):
        a = load_snap_surrogate("amazon", seed=3)
        b = load_snap_surrogate("amazon", seed=3)
        assert a.graph.num_edges == b.graph.num_edges
        assert np.array_equal(a.labels, b.labels)

    def test_scale(self):
        small = load_snap_surrogate("amazon", seed=0, scale=0.25)
        full = load_snap_surrogate("amazon", seed=0, scale=1.0)
        assert small.graph.num_vertices < full.graph.num_vertices

    def test_relative_ordering_matches_table1(self):
        """orkut is denser than amazon; twitter/friendster are the largest
        (mirroring the paper's Table 1 ordering)."""
        sizes = {name: load_snap_surrogate(name, seed=0) for name in SNAP_SURROGATES}
        mean_deg = {
            k: 2 * v.graph.num_edges / v.graph.num_vertices for k, v in sizes.items()
        }
        assert mean_deg["orkut"] > mean_deg["amazon"]
        assert sizes["twitter"].graph.num_vertices >= sizes["orkut"].graph.num_vertices

    def test_twitter_has_extreme_hubs(self):
        """The hub grafting reproduces twitter's degree-skew story
        (max degree 2.99M vs friendster's 5.2K in the paper)."""
        twitter = load_snap_surrogate("twitter", seed=0)
        friendster = load_snap_surrogate("friendster", seed=0)
        assert twitter.graph.degrees().max() > 4 * friendster.graph.degrees().max()

    def test_twitter_communities_giant(self):
        twitter = load_snap_surrogate("twitter", seed=0)
        top = twitter.top_communities(5)
        assert len(top[0]) > 1000

    def test_ground_truth_overlaps(self):
        part = load_snap_surrogate("amazon", seed=0)
        total_members = sum(len(c) for c in part.communities)
        assert total_members > part.graph.num_vertices  # overlap present


class TestSurrogateTable:
    def test_rows(self):
        rows = surrogate_table(seed=0, scale=0.2)
        assert len(rows) == 6
        for name, n, m in rows:
            assert n > 0 and m > 0
