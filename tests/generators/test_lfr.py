import numpy as np
import pytest

from repro.core.api import correlation_clustering
from repro.eval import adjusted_rand_index
from repro.generators.lfr import lfr_like_graph, realized_mixing


class TestLfrGeneration:
    def test_covers_all_vertices(self):
        part = lfr_like_graph(500, seed=0)
        assert part.graph.num_vertices == 500
        covered = np.unique(np.concatenate(part.communities))
        assert covered.size == 500

    def test_deterministic(self):
        a = lfr_like_graph(300, seed=4)
        b = lfr_like_graph(300, seed=4)
        assert a.graph.num_edges == b.graph.num_edges
        assert np.array_equal(a.labels, b.labels)

    def test_mixing_controls_structure(self):
        tight = lfr_like_graph(800, mixing=0.1, seed=1)
        loose = lfr_like_graph(800, mixing=0.6, seed=1)
        assert realized_mixing(tight) < realized_mixing(loose)

    def test_realized_mixing_tracks_parameter(self):
        for mu in (0.1, 0.3, 0.5):
            part = lfr_like_graph(1500, mixing=mu, seed=2)
            assert abs(realized_mixing(part) - mu) < 0.15, mu

    def test_degree_heterogeneity(self):
        part = lfr_like_graph(1000, min_degree=4, max_degree=80,
                              degree_exponent=2.2, seed=3)
        degrees = part.graph.degrees()
        assert degrees.max() > 4 * max(1, int(np.median(degrees)))

    def test_invalid_mixing(self):
        with pytest.raises(ValueError):
            lfr_like_graph(100, mixing=1.5)

    def test_invalid_degrees(self):
        with pytest.raises(ValueError):
            lfr_like_graph(100, min_degree=10, max_degree=5)


class TestLfrClusterability:
    def test_low_mixing_recoverable(self):
        part = lfr_like_graph(800, mixing=0.1, seed=5)
        result = correlation_clustering(part.graph, resolution=0.05, seed=0)
        assert adjusted_rand_index(result.assignments, part.labels) > 0.5

    def test_quality_degrades_with_mixing(self):
        scores = []
        for mu in (0.1, 0.5):
            part = lfr_like_graph(800, mixing=mu, seed=6)
            result = correlation_clustering(part.graph, resolution=0.05, seed=0)
            scores.append(adjusted_rand_index(result.assignments, part.labels))
        assert scores[0] > scores[1]
