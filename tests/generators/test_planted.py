import numpy as np
import pytest

from repro.generators.planted import planted_partition_graph


class TestPlantedPartition:
    def test_covers_all_vertices(self):
        part = planted_partition_graph(500, seed=0)
        assert part.graph.num_vertices == 500
        assert part.labels.shape == (500,)
        covered = np.unique(np.concatenate(part.communities))
        assert covered.size == 500

    def test_disjoint_primary_labels(self):
        part = planted_partition_graph(400, seed=1)
        assert part.labels.max() + 1 == part.num_communities

    def test_sizes_within_bounds(self):
        part = planted_partition_graph(
            600, size_min=10, size_max=30, overlap_fraction=0.0, seed=2
        )
        sizes = [len(c) for c in part.communities]
        assert min(sizes) >= 1
        assert max(sizes) <= 30

    def test_intra_density_exceeds_inter(self):
        part = planted_partition_graph(
            800, intra_degree=10.0, inter_degree=1.0, seed=3
        )
        g = part.graph
        src = np.repeat(
            np.arange(g.num_vertices), np.diff(g.offsets)
        )
        same = part.labels[src] == part.labels[g.neighbors]
        assert same.mean() > 0.6

    def test_overlap_adds_members(self):
        base = planted_partition_graph(500, overlap_fraction=0.0, seed=4)
        over = planted_partition_graph(500, overlap_fraction=0.2, seed=4)
        assert sum(len(c) for c in over.communities) > sum(
            len(c) for c in base.communities
        )

    def test_top_communities_sorted(self):
        part = planted_partition_graph(500, seed=5)
        top = part.top_communities(3)
        sizes = [len(c) for c in top]
        assert sizes == sorted(sizes, reverse=True)
        assert len(top) == 3

    def test_deterministic(self):
        a = planted_partition_graph(300, seed=6)
        b = planted_partition_graph(300, seed=6)
        assert np.array_equal(a.labels, b.labels)
        assert a.graph.num_edges == b.graph.num_edges

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            planted_partition_graph(0)
        with pytest.raises(ValueError):
            planted_partition_graph(10, size_min=5, size_max=2)
        with pytest.raises(ValueError):
            planted_partition_graph(10, overlap_fraction=2.0)
