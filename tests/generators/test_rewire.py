import numpy as np
import pytest

from repro.core.api import correlation_clustering
from repro.generators.planted import planted_partition_graph
from repro.generators.rewire import degree_sequence_preserved, rewire
from repro.graphs.builders import graph_from_edges


class TestRewire:
    def test_degrees_preserved(self, karate):
        rewired = rewire(karate, seed=0)
        assert degree_sequence_preserved(karate, rewired)

    def test_edge_count_preserved(self, karate):
        rewired = rewire(karate, seed=0)
        assert rewired.num_edges == karate.num_edges

    def test_structure_destroyed(self):
        part = planted_partition_graph(600, intra_degree=10.0,
                                       inter_degree=1.0, seed=0)
        rewired = rewire(part.graph, seed=1)
        src = np.repeat(
            np.arange(600, dtype=np.int64), np.diff(rewired.offsets)
        )
        same = part.labels[src] == part.labels[rewired.neighbors]
        original_src = np.repeat(
            np.arange(600, dtype=np.int64), np.diff(part.graph.offsets)
        )
        original_same = (
            part.labels[original_src] == part.labels[part.graph.neighbors]
        )
        assert same.mean() < original_same.mean() - 0.2

    def test_no_self_loops_or_duplicates(self, karate):
        rewired = rewire(karate, seed=2)
        assert np.all(rewired.self_loops == 0)
        for v in range(rewired.num_vertices):
            nbrs, _ = rewired.neighborhood(v)
            assert np.unique(nbrs).size == nbrs.size

    def test_deterministic(self, karate):
        a = rewire(karate, seed=5)
        b = rewire(karate, seed=5)
        assert np.array_equal(a.neighbors, b.neighbors)

    def test_zero_swaps_identity(self, karate):
        rewired = rewire(karate, num_swaps=0, seed=0)
        assert np.array_equal(rewired.neighbors, karate.neighbors)

    def test_tiny_graph_passthrough(self):
        g = graph_from_edges([(0, 1)])
        rewired = rewire(g, seed=0)
        assert rewired.num_edges == 1


class TestSignificance:
    def test_real_structure_beats_null(self):
        """The significance-testing use case: LambdaCC objective on the
        real graph far exceeds the rewired null at the same resolution."""
        part = planted_partition_graph(500, intra_degree=10.0,
                                       inter_degree=1.0, seed=0)
        real = correlation_clustering(part.graph, resolution=0.2, seed=1)
        null_graph = rewire(part.graph, seed=2)
        null = correlation_clustering(null_graph, resolution=0.2, seed=1)
        assert real.objective > 1.5 * max(null.objective, 1.0)
