import numpy as np
import pytest

from repro.core.api import correlation_clustering
from repro.eval import adjusted_rand_index
from repro.generators.knn import (
    approximate_cosine_knn,
    approximate_knn_graph,
    cosine_knn,
    knn_graph,
    knn_recall,
)
from repro.generators.pointsets import gaussian_mixture_pointset


@pytest.fixture(scope="module")
def pointset():
    return gaussian_mixture_pointset(600, 5, 16, separation=4.0, seed=0)


class TestApproximateKnn:
    def test_shapes(self, pointset):
        idx, sims = approximate_cosine_knn(pointset.points, 10, seed=0)
        assert idx.shape == (600, 10)
        assert sims.shape == (600, 10)

    def test_no_self_neighbors(self, pointset):
        idx, _ = approximate_cosine_knn(pointset.points, 10, seed=0)
        own = np.arange(600)[:, None]
        assert not np.any(idx == own)

    def test_recall_reasonable(self, pointset):
        """LSH with a few tables recovers most true neighbors on
        well-separated data (ScaNN-like operating point)."""
        approx_idx, _ = approximate_cosine_knn(
            pointset.points, 10, num_tables=6, num_projections=6, seed=0
        )
        exact_idx, _ = cosine_knn(pointset.points, 10)
        assert knn_recall(approx_idx, exact_idx) > 0.5

    def test_more_tables_more_recall(self, pointset):
        exact_idx, _ = cosine_knn(pointset.points, 10)
        recalls = []
        for tables in (1, 8):
            idx, _ = approximate_cosine_knn(
                pointset.points, 10, num_tables=tables, num_projections=8, seed=0
            )
            recalls.append(knn_recall(idx, exact_idx))
        assert recalls[1] > recalls[0]

    def test_missing_neighbors_marked(self):
        """With aggressive hashing, sparse buckets yield < k candidates."""
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 4))
        idx, sims = approximate_cosine_knn(
            points, 20, num_tables=1, num_projections=10, seed=0
        )
        if (idx == -1).any():
            assert np.all(sims[idx == -1] == -np.inf)

    def test_k_validated(self, pointset):
        with pytest.raises(ValueError):
            approximate_cosine_knn(pointset.points, 600)


class TestKnnRecall:
    def test_perfect(self):
        idx = np.asarray([[1, 2], [0, 2]])
        assert knn_recall(idx, idx) == 1.0

    def test_zero(self):
        a = np.asarray([[1], [0]])
        b = np.asarray([[2], [2]])
        assert knn_recall(a, b) == 0.0

    def test_ignores_missing(self):
        approx = np.asarray([[1, -1]])
        exact = np.asarray([[1, 2]])
        assert knn_recall(approx, exact) == 0.5


class TestApproximateGraphPipeline:
    def test_graph_valid(self, pointset):
        graph = approximate_knn_graph(pointset.points, k=15, seed=0)
        assert graph.num_vertices == 600
        assert graph.is_symmetric()
        assert graph.weights.min() > 0

    def test_downstream_clustering_close_to_exact(self, pointset):
        """The paper's point in using ScaNN: approximate neighbors are
        good enough for clustering."""
        exact_graph = knn_graph(pointset.points, k=15)
        approx_graph = approximate_knn_graph(
            pointset.points, k=15, num_tables=6, seed=0
        )
        exact_labels = correlation_clustering(
            exact_graph, resolution=0.05, seed=1
        ).assignments
        approx_labels = correlation_clustering(
            approx_graph, resolution=0.05, seed=1
        ).assignments
        exact_ari = adjusted_rand_index(exact_labels, pointset.labels)
        approx_ari = adjusted_rand_index(approx_labels, pointset.labels)
        assert approx_ari > exact_ari - 0.15
        assert approx_ari > 0.5