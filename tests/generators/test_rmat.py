import numpy as np
import pytest

from repro.generators.rmat import density_regimes, rmat_edges, rmat_graph


class TestRmatEdges:
    def test_shape(self):
        edges = rmat_edges(8, 1000, seed=0)
        assert edges.shape == (1000, 2)
        assert edges.max() < 256

    def test_deterministic(self):
        a = rmat_edges(8, 100, seed=5)
        b = rmat_edges(8, 100, seed=5)
        assert np.array_equal(a, b)

    def test_skew_toward_low_ids(self):
        """a=0.5 concentrates mass in the (0,0) quadrant: low vertex ids."""
        edges = rmat_edges(12, 20000, seed=1)
        below = (edges < 2048).mean()
        assert below > 0.6  # uniform would give 0.5

    def test_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat_edges(8, 10, a=0.5, b=0.5, c=0.5, d=0.5)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            rmat_edges(0, 10)


class TestRmatGraph:
    def test_vertex_count(self):
        g = rmat_graph(9, 2000, seed=0)
        assert g.num_vertices == 512

    def test_no_self_loops_in_adjacency(self):
        g = rmat_graph(8, 2000, seed=0)
        assert np.all(g.self_loops == 0)

    def test_dedup_reduces_edges(self):
        g = rmat_graph(6, 5000, seed=0)  # heavy duplication at small scale
        assert g.num_edges < 5000

    def test_symmetric(self):
        assert rmat_graph(7, 500, seed=3).is_symmetric()


class TestDensityRegimes:
    def test_paper_regimes(self):
        regimes = density_regimes(10)
        n = 1024
        assert regimes["very-sparse"] == 5 * n
        assert regimes["sparse"] == 50 * n
        assert regimes["dense"] == int(n**1.5)
        assert regimes["very-dense"] == n * (n - 1) // 2  # capped

    def test_monotone(self):
        regimes = density_regimes(12)
        assert (
            regimes["very-sparse"]
            < regimes["sparse"]
            < regimes["dense"]
            < regimes["very-dense"]
        )
