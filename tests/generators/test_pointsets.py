import numpy as np
import pytest

from repro.generators.pointsets import (
    digits_like_pointset,
    gaussian_mixture_pointset,
    letter_like_pointset,
)


class TestGaussianMixture:
    def test_shapes(self):
        ps = gaussian_mixture_pointset(100, 4, 8, seed=0)
        assert ps.points.shape == (100, 8)
        assert ps.labels.shape == (100,)
        assert ps.num_classes <= 4

    def test_deterministic(self):
        a = gaussian_mixture_pointset(50, 3, 4, seed=1)
        b = gaussian_mixture_pointset(50, 3, 4, seed=1)
        assert np.allclose(a.points, b.points)

    def test_separation_controls_spread(self):
        tight = gaussian_mixture_pointset(500, 5, 8, separation=0.1, seed=0)
        wide = gaussian_mixture_pointset(500, 5, 8, separation=10.0, seed=0)
        assert wide.points.std() > tight.points.std()

    def test_invalid(self):
        with pytest.raises(ValueError):
            gaussian_mixture_pointset(0, 3, 4)


class TestSurrogates:
    def test_digits_matches_uci_shape(self):
        ps = digits_like_pointset(seed=0)
        # UCI optical digits: 1,797 instances, 10 classes, 64 features.
        assert ps.points.shape == (1797, 64)
        assert ps.num_classes == 10
        assert ps.name == "digits"

    def test_letter_matches_uci_shape(self):
        ps = letter_like_pointset(seed=0, num_points=2000)
        assert ps.points.shape == (2000, 16)
        assert ps.num_classes == 26
        assert ps.name == "letter"

    def test_digits_better_separated_than_letter(self):
        """The paper's digits data clusters far better than letter; the
        surrogates preserve that: digits' k-NN neighborhoods are purer."""
        from repro.generators.knn import cosine_knn

        def knn_purity(ps, k=10):
            idx, _ = cosine_knn(ps.points, k)
            return float((ps.labels[idx] == ps.labels[:, None]).mean())

        digits = digits_like_pointset(seed=0)
        letter = letter_like_pointset(seed=0, num_points=1797)
        assert knn_purity(digits) > knn_purity(letter) + 0.1

    def test_informative_dims_validated(self):
        with pytest.raises(ValueError):
            gaussian_mixture_pointset(10, 2, 4, informative_dims=9)

    def test_informative_dims_zero_elsewhere(self):
        ps = gaussian_mixture_pointset(
            2000, 3, 8, separation=5.0, noise=0.01, informative_dims=2, seed=0
        )
        # Non-informative coordinates carry only the small noise.
        assert np.abs(ps.points[:, 2:]).max() < 1.0
        assert np.abs(ps.points[:, :2]).max() > 2.0
