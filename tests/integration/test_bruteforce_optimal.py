"""Quality against brute-force optima on tiny graphs.

For n <= 9 we can enumerate every partition (Bell numbers stay small) and
compute the exact LambdaCC optimum.  Louvain is a heuristic with no
approximation guarantee, but on small instances it should land on (or
within a whisker of) the optimum — a strong end-to-end quality check for
the whole move/compress/refine pipeline.
"""

import itertools

import numpy as np
import pytest

from repro.core.api import correlation_clustering
from repro.core.objective import lambdacc_objective
from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph


def all_partitions(n):
    """Yield every partition of range(n) as an assignment array.

    Restricted-growth-string enumeration: labels[i] <= max(labels[:i]) + 1.
    """
    labels = np.zeros(n, dtype=np.int64)

    def rec(i, max_label):
        if i == n:
            yield labels.copy()
            return
        for label in range(max_label + 2):
            labels[i] = label
            yield from rec(i + 1, max(max_label, label))

    yield from rec(0, -1)


def brute_force_optimum(graph: CSRGraph, lam: float) -> float:
    return max(
        lambdacc_objective(graph, partition, lam)
        for partition in all_partitions(graph.num_vertices)
    )


class TestPartitionEnumerator:
    def test_bell_numbers(self):
        # B(1..5) = 1, 2, 5, 15, 52.
        for n, bell in [(1, 1), (2, 2), (3, 5), (4, 15), (5, 52)]:
            assert sum(1 for _ in all_partitions(n)) == bell

    def test_partitions_are_canonical(self):
        seen = set()
        for partition in all_partitions(4):
            key = tuple(partition.tolist())
            assert key not in seen
            seen.add(key)
            # Restricted growth: first occurrence of each label is in order.
            assert partition[0] == 0


TINY_GRAPHS = {
    "triangle+pendant": [(0, 1), (1, 2), (0, 2), (2, 3)],
    "two-triangles": [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
    "path6": [(i, i + 1) for i in range(5)],
    "star6": [(0, i) for i in range(1, 6)],
    "cycle7": [(i, (i + 1) % 7) for i in range(7)],
}


class TestLouvainNearOptimal:
    @pytest.mark.parametrize("name", sorted(TINY_GRAPHS))
    @pytest.mark.parametrize("lam", [0.1, 0.35, 0.6, 0.85])
    def test_unweighted(self, name, lam):
        graph = graph_from_edges(TINY_GRAPHS[name])
        optimum = brute_force_optimum(graph, lam)
        achieved = max(
            lambdacc_objective(
                graph,
                correlation_clustering(graph, resolution=lam, seed=seed).assignments,
                lam,
            )
            for seed in range(3)
        )
        if optimum <= 0:
            assert achieved >= optimum - 1e-9
        else:
            assert achieved >= 0.9 * optimum - 1e-9, (name, lam, achieved, optimum)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_weighted(self, seed):
        rng = np.random.default_rng(seed)
        n = 7
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)
                 if rng.random() < 0.5]
        if not edges:
            edges = [(0, 1)]
        weights = rng.normal(0.5, 1.0, size=len(edges))
        graph = graph_from_edges(edges, weights=weights, num_vertices=n)
        lam = 0.2
        optimum = brute_force_optimum(graph, lam)
        achieved = max(
            lambdacc_objective(
                graph,
                correlation_clustering(graph, resolution=lam, seed=s).assignments,
                lam,
            )
            for s in range(4)
        )
        # Weighted signed instances are harder; accept 85% of optimum (or
        # exact non-negativity when the optimum is ~0).
        if optimum <= 1e-9:
            assert achieved >= -1e-9
        else:
            assert achieved >= 0.85 * optimum - 1e-9, (seed, achieved, optimum)

    def test_sequential_convergence_matches_parallel_on_tiny(self):
        graph = graph_from_edges(TINY_GRAPHS["two-triangles"])
        lam = 0.3
        seq = correlation_clustering(
            graph, resolution=lam, parallel=False, num_iter=None, seed=0
        )
        par = correlation_clustering(graph, resolution=lam, seed=0)
        assert par.f_objective == pytest.approx(seq.f_objective)
