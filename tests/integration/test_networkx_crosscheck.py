"""Cross-validation against networkx as an external oracle.

These tests pin our from-scratch implementations to an independent
library: the modularity *formula* (including the paper's diagonal-free
convention, which differs from Newman's by an exact constant), Louvain
clustering quality, triangle counts, and connected components.
"""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.triangles import total_triangles
from repro.core.api import modularity_clustering
from repro.core.objective import modularity
from repro.eval.ari import adjusted_rand_index
from repro.graphs.builders import graph_from_edges
from repro.graphs.stats import connected_components


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    u, v, w = graph.edge_list()
    g.add_weighted_edges_from(zip(u.tolist(), v.tolist(), w.tolist()))
    return g


def labels_to_sets(labels):
    sets = {}
    for node, label in enumerate(np.asarray(labels).tolist()):
        sets.setdefault(label, set()).add(node)
    return list(sets.values())


class TestModularityFormula:
    def test_differs_from_newman_by_exact_constant(self, karate, rng):
        """Our Q (paper's i != j convention) = Newman's Q + sum(d^2)/(4m^2)."""
        nx_graph = to_networkx(karate)
        degrees = karate.degrees().astype(float)
        m = karate.num_edges
        constant = float((degrees**2).sum()) / (4.0 * m * m)
        for _ in range(5):
            labels = rng.integers(0, 6, size=34)
            ours = modularity(karate, labels, gamma=1.0)
            newman = nx.community.modularity(
                nx_graph, labels_to_sets(labels), resolution=1.0
            )
            assert ours == pytest.approx(newman + constant), labels[:5]

    def test_gamma_respected(self, karate, rng):
        nx_graph = to_networkx(karate)
        degrees = karate.degrees().astype(float)
        m = karate.num_edges
        gamma = 1.7
        constant = gamma * float((degrees**2).sum()) / (4.0 * m * m)
        labels = rng.integers(0, 4, size=34)
        ours = modularity(karate, labels, gamma=gamma)
        newman = nx.community.modularity(
            nx_graph, labels_to_sets(labels), resolution=gamma
        )
        assert ours == pytest.approx(newman + constant)


class TestLouvainQualityParity:
    def test_par_mod_matches_networkx_louvain(self, small_planted):
        """Independent Louvain implementations should find clusterings of
        comparable Newman modularity on a well-structured graph."""
        g = small_planted.graph
        nx_graph = to_networkx(g)
        nx_communities = nx.community.louvain_communities(nx_graph, seed=0)
        nx_q = nx.community.modularity(nx_graph, nx_communities)
        ours = modularity_clustering(g, gamma=1.0, seed=0)
        our_q = nx.community.modularity(
            nx_graph, labels_to_sets(ours.assignments)
        )
        assert our_q == pytest.approx(nx_q, abs=0.03)

    def test_clusterings_agree_on_planted_structure(self, small_planted):
        g = small_planted.graph
        nx_graph = to_networkx(g)
        nx_communities = nx.community.louvain_communities(nx_graph, seed=0)
        nx_labels = np.zeros(g.num_vertices, dtype=np.int64)
        for index, community in enumerate(nx_communities):
            for node in community:
                nx_labels[node] = index
        ours = modularity_clustering(g, gamma=1.0, seed=0)
        assert adjusted_rand_index(ours.assignments, nx_labels) > 0.6


class TestSubstrateOracles:
    def test_triangle_count_matches(self, karate):
        nx_triangles = sum(nx.triangles(to_networkx(karate)).values()) // 3
        assert total_triangles(karate) == nx_triangles

    def test_triangles_on_random_graph(self, rng):
        edges = rng.integers(0, 25, size=(120, 2))
        g = graph_from_edges(edges[edges[:, 0] != edges[:, 1]], num_vertices=25)
        nx_triangles = sum(nx.triangles(to_networkx(g)).values()) // 3
        assert total_triangles(g) == nx_triangles

    def test_connected_components_match(self, rng):
        edges = rng.integers(0, 60, size=(45, 2))
        g = graph_from_edges(edges[edges[:, 0] != edges[:, 1]], num_vertices=60)
        ours = connected_components(g)
        nx_components = list(nx.connected_components(to_networkx(g)))
        assert int(ours.max()) + 1 == len(nx_components)
        for component in nx_components:
            members = np.asarray(sorted(component))
            assert np.unique(ours[members]).size == 1
