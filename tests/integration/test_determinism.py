"""Determinism and seed-sensitivity guarantees of the public API."""

import numpy as np
import pytest

from repro.core.api import correlation_clustering, modularity_clustering
from repro.generators import load_snap_surrogate, rmat_graph
from repro.generators.planted import planted_partition_graph


class TestDeterminism:
    def test_parallel_cc_deterministic(self):
        part = planted_partition_graph(400, seed=0)
        a = correlation_clustering(part.graph, resolution=0.1, seed=9)
        b = correlation_clustering(part.graph, resolution=0.1, seed=9)
        assert np.array_equal(a.assignments, b.assignments)
        assert a.objective == b.objective
        assert a.ledger.total_work == b.ledger.total_work

    def test_sequential_deterministic(self):
        part = planted_partition_graph(400, seed=0)
        a = correlation_clustering(part.graph, resolution=0.1, parallel=False, seed=9)
        b = correlation_clustering(part.graph, resolution=0.1, parallel=False, seed=9)
        assert np.array_equal(a.assignments, b.assignments)

    def test_modularity_deterministic(self):
        part = planted_partition_graph(400, seed=0)
        a = modularity_clustering(part.graph, gamma=1.0, seed=5)
        b = modularity_clustering(part.graph, gamma=1.0, seed=5)
        assert np.array_equal(a.assignments, b.assignments)

    def test_seeds_vary_asynchronous_outcome(self):
        """The paper notes the async objective is non-deterministic across
        runs; with fixed seeds it is reproducible, across seeds it varies."""
        part = planted_partition_graph(600, seed=0)
        objectives = {
            correlation_clustering(part.graph, resolution=0.5, seed=s).objective
            for s in range(6)
        }
        assert len(objectives) > 1

    def test_seed_variance_is_small(self):
        """Across seeds the objective varies by a few percent at most
        (matching the paper's 10-run averaging being enough)."""
        part = planted_partition_graph(600, seed=0)
        values = [
            correlation_clustering(part.graph, resolution=0.1, seed=s).objective
            for s in range(5)
        ]
        spread = (max(values) - min(values)) / abs(np.mean(values))
        assert spread < 0.1

    def test_generators_deterministic_end_to_end(self):
        a = load_snap_surrogate("amazon", seed=2, scale=0.2)
        b = load_snap_surrogate("amazon", seed=2, scale=0.2)
        assert a.graph.num_edges == b.graph.num_edges
        g1 = rmat_graph(8, 1000, seed=3)
        g2 = rmat_graph(8, 1000, seed=3)
        assert np.array_equal(g1.neighbors, g2.neighbors)
