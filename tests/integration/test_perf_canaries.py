"""Performance-regression canaries.

Loose bounds on simulated cost per edge and wall-clock for canonical
workloads.  These catch accidental algorithmic regressions (e.g. a
frontier bug re-scanning the whole graph every iteration, a compression
bug quadratic in clusters) without being brittle about constants.
"""

import time

import numpy as np
import pytest

from repro.core.api import correlation_clustering, modularity_clustering
from repro.generators.planted import planted_partition_graph
from repro.generators.rmat import rmat_graph


@pytest.fixture(scope="module")
def medium_graph():
    return planted_partition_graph(
        4000, intra_degree=10.0, inter_degree=2.0, seed=0
    ).graph


class TestSimulatedCostBounds:
    def test_cc_work_linear_in_edges(self, medium_graph):
        result = correlation_clustering(medium_graph, resolution=0.1, seed=1)
        ops_per_edge = result.ledger.total_work / medium_graph.num_edges
        # ~5 ops/edge per scan, bounded iterations and levels: a sane run
        # stays well under 2000 ops per input edge.
        assert ops_per_edge < 2000

    def test_mod_work_linear_in_edges(self, medium_graph):
        result = modularity_clustering(medium_graph, gamma=1.0, seed=1)
        assert result.ledger.total_work / medium_graph.num_edges < 2000

    def test_depth_much_smaller_than_work(self, medium_graph):
        result = correlation_clustering(medium_graph, resolution=0.1, seed=1)
        assert result.ledger.total_depth < result.ledger.total_work / 20

    def test_rounds_bounded(self, medium_graph):
        result = correlation_clustering(medium_graph, resolution=0.1, seed=1)
        # num_iter=10 per level pass, a handful of levels, plus refinement.
        assert result.rounds < 120


class TestWallClockBudget:
    def test_medium_cc_under_budget(self, medium_graph):
        start = time.perf_counter()
        correlation_clustering(medium_graph, resolution=0.1, seed=1)
        assert time.perf_counter() - start < 10.0

    def test_rmat_sparse_under_budget(self):
        graph = rmat_graph(13, 5 * 2**13, seed=0)
        start = time.perf_counter()
        correlation_clustering(graph, resolution=0.01, seed=1)
        assert time.perf_counter() - start < 15.0

    def test_sequential_medium_under_budget(self, medium_graph):
        start = time.perf_counter()
        correlation_clustering(
            medium_graph, resolution=0.1, parallel=False, seed=1
        )
        assert time.perf_counter() - start < 30.0


class TestScalingSanity:
    def test_work_scales_with_edges(self):
        """4x the edges should cost no more than ~10x the simulated work."""
        small = rmat_graph(10, 5 * 2**10, seed=1)
        large = rmat_graph(12, 5 * 2**12, seed=1)
        w_small = correlation_clustering(small, resolution=0.1, seed=1).ledger.total_work
        w_large = correlation_clustering(large, resolution=0.1, seed=1).ledger.total_work
        ratio = w_large / w_small
        edge_ratio = large.num_edges / small.num_edges
        assert ratio < 3 * edge_ratio
