"""Correlation clustering on signed graphs.

The LambdaCC objective natively handles negative edge weights
(dissimilarity); at lambda -> 0 this is classic correlation clustering:
cluster friends together, keep enemies apart.
"""

import numpy as np
import pytest

from repro.core.api import correlation_clustering
from repro.core.objective import lambdacc_objective
from repro.graphs.builders import graph_from_edges


def signed_two_camps():
    """Two friendly camps {0,1,2} and {3,4,5} with hostile cross edges."""
    edges, weights = [], []
    for camp in ((0, 1, 2), (3, 4, 5)):
        for i in range(3):
            for j in range(i + 1, 3):
                edges.append((camp[i], camp[j]))
                weights.append(1.0)
    for u in (0, 1, 2):
        for v in (3, 4, 5):
            edges.append((u, v))
            weights.append(-1.0)
    return graph_from_edges(edges, weights=np.asarray(weights))


class TestSignedClustering:
    def test_camps_separated(self):
        g = signed_two_camps()
        result = correlation_clustering(g, resolution=0.0, seed=1)
        labels = result.assignments
        assert len(np.unique(labels[:3])) == 1
        assert len(np.unique(labels[3:])) == 1
        assert labels[0] != labels[3]

    def test_optimal_objective_attained(self):
        g = signed_two_camps()
        result = correlation_clustering(g, resolution=0.0, seed=1)
        # Perfect 2-clustering keeps all 6 positive edges, no negatives: F=6.
        assert result.f_objective == pytest.approx(6.0)

    def test_all_negative_graph_stays_singleton(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        g = graph_from_edges(edges, weights=np.full(len(edges), -1.0))
        result = correlation_clustering(g, resolution=0.0, seed=1)
        assert result.num_clusters == 5
        assert result.objective == 0.0

    def test_sequential_agrees_on_camps(self):
        g = signed_two_camps()
        par = correlation_clustering(g, resolution=0.0, seed=1)
        seq = correlation_clustering(g, resolution=0.0, parallel=False, seed=1)
        assert par.f_objective == pytest.approx(seq.f_objective)

    def test_hostile_bridge_not_crossed(self):
        """A strongly negative edge overrides a weakly positive path."""
        g = graph_from_edges(
            [(0, 1), (1, 2), (0, 2)], weights=np.asarray([1.0, 1.0, -5.0])
        )
        result = correlation_clustering(g, resolution=0.0, seed=1)
        # Best: {0,1},{2} or {1,2},{0} with F=1; never all three (F=-3).
        assert result.f_objective == pytest.approx(1.0)
        assert result.num_clusters == 2

    def test_objective_matches_recomputation_with_negatives(self, rng):
        edges = rng.integers(0, 30, size=(100, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        weights = rng.normal(size=edges.shape[0])
        g = graph_from_edges(edges, weights=weights, num_vertices=30)
        result = correlation_clustering(g, resolution=0.1, seed=2)
        assert result.f_objective == pytest.approx(
            lambdacc_objective(g, result.assignments, 0.1)
        )
