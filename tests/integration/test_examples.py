"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken promise.
The heavyweight examples are exercised at reduced scope by importing and
calling their main() in-process (so coverage tools see them too).
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "circuit_solver.py",
]

SLOW_EXAMPLES = [
    "community_detection.py",
    "signed_network.py",
    "weighted_knn_clustering.py",
    "scaling_rmat.py",
    "multiresolution.py",
    "paper_tour.py",
]


class TestExamplesExist:
    def test_all_examples_present(self):
        found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        for name in FAST_EXAMPLES + SLOW_EXAMPLES:
            assert name in found, name

    def test_every_example_has_docstring_and_main(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            text = path.read_text()
            assert text.lstrip().startswith('"""'), path.name
            assert "def main()" in text, path.name
            assert '__name__ == "__main__"' in text, path.name


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # produced real output


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs_in_subprocess(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout) > 50
