"""End-to-end integration tests across modules, mirroring the paper's
headline claims at test scale."""

import numpy as np
import pytest

from repro.baselines import kwikcluster, tectonic_cluster
from repro.core.api import correlation_clustering, modularity_clustering
from repro.core.config import Mode
from repro.core.objective import cc_objective
from repro.eval import (
    adjusted_rand_index,
    average_precision_recall,
    normalized_mutual_information,
)
from repro.generators import knn_graph, load_snap_surrogate
from repro.generators.pointsets import gaussian_mixture_pointset


@pytest.fixture(scope="module")
def amazon():
    return load_snap_surrogate("amazon", seed=0, scale=0.5)


class TestCommunityRecovery:
    def test_par_cc_recovers_planted_communities(self, amazon):
        result = correlation_clustering(amazon.graph, resolution=0.05, seed=1)
        pr = average_precision_recall(result.assignments, amazon.top_communities())
        assert pr.precision > 0.7
        assert pr.recall > 0.6

    def test_cc_beats_modularity_on_ground_truth(self, amazon):
        """Paper Section 4.3: PAR-CC offers a better precision-recall
        trade-off than PAR-MOD.  We compare F1 at tuned settings."""
        cc_scores = []
        mod_scores = []
        for lam in (0.03, 0.1, 0.3):
            r = correlation_clustering(amazon.graph, resolution=lam, seed=0)
            pr = average_precision_recall(r.assignments, amazon.top_communities())
            cc_scores.append(pr.f1)
        for gamma in (0.5, 2.0, 10.0):
            r = modularity_clustering(amazon.graph, gamma=gamma, seed=0)
            pr = average_precision_recall(r.assignments, amazon.top_communities())
            mod_scores.append(pr.f1)
        assert max(cc_scores) >= max(mod_scores) - 0.05

    def test_par_matches_seq_quality(self, amazon):
        """Figure 9: PAR-CC matches SEQ-CC^CON's precision/recall."""
        par = correlation_clustering(amazon.graph, resolution=0.1, seed=0)
        seq = correlation_clustering(
            amazon.graph, resolution=0.1, parallel=False, num_iter=None, seed=0
        )
        pr_par = average_precision_recall(par.assignments, amazon.top_communities())
        pr_seq = average_precision_recall(seq.assignments, amazon.top_communities())
        assert pr_par.f1 >= pr_seq.f1 - 0.1


class TestSpeedStories:
    def test_parallel_simulated_speedup(self, amazon):
        """Figure 4's shape: PAR-CC beats SEQ-CC in simulated time."""
        par = correlation_clustering(amazon.graph, resolution=0.1, seed=0)
        seq = correlation_clustering(
            amazon.graph, resolution=0.1, parallel=False, seed=0
        )
        assert seq.sim_time(1) / par.sim_time(60) > 2.0

    def test_pivot_fast_but_poor(self, amazon):
        """Appendix C.1's shape: KwikCluster beats PAR-CC on speed but
        collapses on objective and recall."""
        labels = kwikcluster(amazon.graph, seed=0)
        ours = correlation_clustering(amazon.graph, resolution=0.5, seed=0)
        assert cc_objective(amazon.graph, labels, 0.5) < ours.objective
        pr_pivot = average_precision_recall(labels, amazon.top_communities())
        pr_ours = average_precision_recall(ours.assignments, amazon.top_communities())
        assert pr_ours.f1 >= pr_pivot.f1

    def test_sync_vs_async_objective(self, amazon):
        """Figure 3's shape at high resolution."""
        sync = correlation_clustering(
            amazon.graph, resolution=0.85, mode=Mode.SYNC, seed=0
        )
        async_ = correlation_clustering(
            amazon.graph, resolution=0.85, mode=Mode.ASYNC, seed=0
        )
        assert async_.objective > 0
        assert async_.objective >= sync.objective


class TestWeightedPipeline:
    def test_knn_weighted_clustering(self):
        """Figures 15-16 pipeline: pointset -> k-NN -> weighted PAR-CC ->
        ARI/NMI vs labels."""
        ps = gaussian_mixture_pointset(400, 5, 16, separation=4.0, seed=0)
        graph = knn_graph(ps.points, k=15)
        weighted = correlation_clustering(graph, resolution=0.05, seed=0)
        unweighted = correlation_clustering(
            graph.with_unit_weights(), resolution=0.05, seed=0
        )
        ari_w = adjusted_rand_index(weighted.assignments, ps.labels)
        nmi_w = normalized_mutual_information(weighted.assignments, ps.labels)
        assert ari_w > 0.5
        assert nmi_w > 0.5
        # The unweighted treatment also works (the paper compares both).
        assert adjusted_rand_index(unweighted.assignments, ps.labels) > 0.3


class TestTectonicComparison:
    def test_par_cc_at_least_tectonic_on_denser_graph(self):
        """Figure 10's shape: Tectonic degrades on larger/denser graphs."""
        lj = load_snap_surrogate("livejournal", seed=0, scale=0.3)
        best_ours = 0.0
        for lam in (0.05, 0.15, 0.4):
            r = correlation_clustering(lj.graph, resolution=lam, seed=0)
            pr = average_precision_recall(r.assignments, lj.top_communities())
            best_ours = max(best_ours, pr.f1)
        best_tectonic = 0.0
        for theta in (0.05, 0.15, 0.3, 0.6):
            labels = tectonic_cluster(lj.graph, theta=theta)
            pr = average_precision_recall(labels, lj.top_communities())
            best_tectonic = max(best_tectonic, pr.f1)
        assert best_ours >= best_tectonic - 0.02
