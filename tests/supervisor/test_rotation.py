"""The two-slot checkpoint rotation: recency, promotion, corrupt-drop."""

import pytest

from repro.supervisor import CheckpointRotation

pytestmark = pytest.mark.supervisor


def _write(path, payload=b"x"):
    path.write_bytes(payload)


class TestCheckpointRotation:
    def test_slots_alternate(self, tmp_path):
        rotation = CheckpointRotation(tmp_path)
        first = rotation.begin_attempt()
        rotation.end_attempt()
        second = rotation.begin_attempt()
        rotation.end_attempt()
        third = rotation.begin_attempt()
        assert first != second
        assert third == first

    def test_attempt_that_wrote_nothing_is_not_promoted(self, tmp_path):
        rotation = CheckpointRotation(tmp_path)
        rotation.begin_attempt()
        assert rotation.end_attempt() is False
        assert rotation.latest() is None

    def test_attempt_that_wrote_becomes_latest(self, tmp_path):
        rotation = CheckpointRotation(tmp_path)
        slot = rotation.begin_attempt()
        _write(slot)
        assert rotation.end_attempt() is True
        assert rotation.latest() == slot

    def test_drop_latest_exposes_previous_good_checkpoint(self, tmp_path):
        rotation = CheckpointRotation(tmp_path)
        first = rotation.begin_attempt()
        _write(first, b"good")
        rotation.end_attempt()
        second = rotation.begin_attempt()
        _write(second, b"torn")
        rotation.end_attempt()
        assert rotation.latest() == second
        assert rotation.drop_latest() == second
        assert rotation.latest() == first
        assert rotation.drop_latest() == first
        assert rotation.latest() is None
        assert rotation.drop_latest() is None

    def test_pre_existing_slot_file_does_not_count_as_new(self, tmp_path):
        # A stale file from a previous run must not be promoted unless this
        # attempt actually rewrote it.
        rotation = CheckpointRotation(tmp_path)
        slot = rotation.begin_attempt()
        rotation.end_attempt()
        _write(slot, b"old")
        rotation.begin_attempt()  # other slot
        rotation.end_attempt()
        reused = rotation.begin_attempt()
        assert reused == slot
        assert rotation.end_attempt() is False
        assert rotation.latest() is None

    def test_rewrite_promotes_to_newest(self, tmp_path):
        rotation = CheckpointRotation(tmp_path)
        first = rotation.begin_attempt()
        _write(first, b"a")
        rotation.end_attempt()
        second = rotation.begin_attempt()
        _write(second, b"b")
        rotation.end_attempt()
        third = rotation.begin_attempt()
        assert third == first
        _write(third, b"c")
        rotation.end_attempt()
        # first slot was rewritten: it is now the newest, second the backup.
        assert rotation.latest() == first
        rotation.drop_latest()
        assert rotation.latest() == second
