"""Chaos-matrix invariants: every engine recovers under every fault site."""

import pytest

from repro.core.config import ClusteringConfig
from repro.core.engines import ENGINES
from repro.kernels import KERNELS
from repro.resilience.chaos import (
    DEFAULT_KINDS,
    FAULT_SITES,
    CellOutcome,
    ChaosReport,
    chaos_matrix,
    replay_check,
)
from repro.resilience.faults import FaultKind

pytestmark = pytest.mark.supervisor

CONFIG = ClusteringConfig(resolution=0.05, seed=7, num_workers=4)


def _cell(**overrides) -> CellOutcome:
    base = dict(
        kind="transient", site="state-mutation", engine="relaxed",
        kernel="vectorized", objective=10.0, baseline_objective=10.0,
        rel_delta=0.0, degraded=False, injections=1, attempts=1,
        retries=0, fallbacks=0, salvaged=False, failure_log_size=0,
        violations=[],
    )
    base.update(overrides)
    return CellOutcome(**base)


class TestMatrix:
    def test_all_engines_and_kernels_recover(self, karate):
        report = chaos_matrix(
            karate, CONFIG,
            engines=sorted(ENGINES),
            kernels=sorted(KERNELS),
            kinds=[FaultKind.TRANSIENT],
            seed=11,
        )
        assert report.num_cells == len(ENGINES) * len(KERNELS)
        assert report.ok, "\n".join(report.failures())

    def test_every_fault_site_is_covered(self, karate):
        sites = {FAULT_SITES[kind] for kind in DEFAULT_KINDS}
        assert sites == {"state-mutation", "atomics", "frontier"}
        report = chaos_matrix(
            karate, CONFIG,
            engines=["relaxed"],
            kernels=["vectorized"],
            seed=5,
            check_replay=False,
        )
        assert {cell.site for cell in report.outcomes} == sites
        assert report.ok, "\n".join(report.failures())

    def test_matrix_is_deterministic(self, karate):
        kwargs = dict(
            engines=["event"], kernels=["reference"],
            kinds=[FaultKind.CAS_FAIL], seed=2, check_replay=False,
        )
        first = chaos_matrix(karate, CONFIG, **kwargs)
        second = chaos_matrix(karate, CONFIG, **kwargs)
        assert first.as_dict() == second.as_dict()

    def test_replay_check_is_bit_identical(self, small_planted):
        failure = replay_check(small_planted.graph, CONFIG, engine=None)
        assert failure is None


class TestReport:
    def test_ok_requires_every_cell_clean(self):
        good = _cell()
        bad = _cell(violations=["objective off the rails"])
        report = ChaosReport(outcomes=[good, bad], replay_failures=[], tolerance=0.15)
        assert not report.ok
        assert any("objective off the rails" in f for f in report.failures())

    def test_replay_failures_fail_the_report(self):
        report = ChaosReport(
            outcomes=[_cell()],
            replay_failures=["relaxed/vectorized: diverged"],
            tolerance=0.15,
        )
        assert not report.ok
        assert "relaxed/vectorized: diverged" in report.failures()

    def test_summary_mentions_every_cell(self):
        cells = [_cell(), _cell(kind="cas-fail", site="atomics", degraded=True)]
        report = ChaosReport(outcomes=cells, replay_failures=[], tolerance=0.15)
        text = report.summary()
        assert "ALL RECOVERED" in text
        for cell in cells:
            assert cell.label in text

    def test_as_dict_round_trips_through_json(self):
        import json

        report = ChaosReport(outcomes=[_cell()], replay_failures=[], tolerance=0.15)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert payload["cells"][0]["engine"] == "relaxed"
