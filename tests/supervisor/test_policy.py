"""Supervision policies: retry schedule, watchdog math, ladder order."""

import pytest

from repro.core.config import ClusteringConfig
from repro.errors import ConfigError
from repro.supervisor import FallbackLadder, RetryPolicy, Watchdog
from repro.supervisor.policy import Rung

pytestmark = pytest.mark.supervisor


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts_per_rung == 3

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0, backoff_cap=0.15)
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.10)
        assert policy.delay(3) == pytest.approx(0.15)  # capped
        assert policy.delay(10) == pytest.approx(0.15)

    def test_schedule_is_deterministic(self):
        a = RetryPolicy()
        b = RetryPolicy()
        assert [a.delay(i) for i in range(1, 6)] == [b.delay(i) for i in range(1, 6)]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts_per_rung": 0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_cap": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_delay_rejects_bad_index(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestWatchdog:
    def test_disabled_by_default(self):
        watchdog = Watchdog()
        assert not watchdog.enabled
        assert not watchdog.expired(1e9)
        assert watchdog.budget(0.0) is None

    def test_run_deadline_becomes_remaining_wall_budget(self):
        watchdog = Watchdog(run_deadline_seconds=10.0)
        assert watchdog.enabled
        budget = watchdog.budget(4.0)
        assert budget.max_wall_seconds == pytest.approx(6.0)
        assert budget.max_level_wall_seconds is None
        assert not watchdog.expired(9.9)
        assert watchdog.expired(10.0)

    def test_overshot_run_deadline_clamps_to_tiny_positive(self):
        budget = Watchdog(run_deadline_seconds=1.0).budget(5.0)
        assert 0 < budget.max_wall_seconds <= 1e-9

    def test_level_deadline_maps_straight_through(self):
        budget = Watchdog(level_deadline_seconds=2.5).budget(100.0)
        assert budget.max_level_wall_seconds == pytest.approx(2.5)
        assert budget.max_wall_seconds is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"run_deadline_seconds": 0.0}, {"level_deadline_seconds": -1.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            Watchdog(**kwargs)


class TestFallbackLadder:
    def test_default_ladder_order(self):
        ladder = FallbackLadder.for_run(ClusteringConfig())
        assert ladder.names() == [
            "as-configured",
            "reference-kernel",
            "sequential-engine",
            "graceful",
        ]

    def test_ladder_is_cumulative(self):
        ladder = FallbackLadder.for_run(ClusteringConfig())
        bottom = ladder.rungs[-1]
        assert bottom.graceful
        assert bottom.kernel == "reference"
        assert bottom.engine == "sequential"

    def test_already_at_bottom_skips_those_rungs(self):
        config = ClusteringConfig(kernel="reference", parallel=False)
        ladder = FallbackLadder.for_run(config)
        assert ladder.names() == ["as-configured", "graceful"]

    def test_sequential_engine_request_skips_engine_rung(self):
        ladder = FallbackLadder.for_run(ClusteringConfig(), engine="sequential")
        assert ladder.names() == ["as-configured", "reference-kernel", "graceful"]

    def test_reference_kernel_skips_kernel_rung(self):
        config = ClusteringConfig(kernel="reference")
        ladder = FallbackLadder.for_run(config, engine="relaxed")
        assert ladder.names() == ["as-configured", "sequential-engine", "graceful"]

    def test_same_config_same_ladder(self):
        first = FallbackLadder.for_run(ClusteringConfig(), engine="event")
        second = FallbackLadder.for_run(ClusteringConfig(), engine="event")
        assert first.names() == second.names()

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigError):
            FallbackLadder([])

    def test_custom_rungs_preserved(self):
        ladder = FallbackLadder([Rung("only", graceful=True)])
        assert ladder.names() == ["only"]
        assert len(ladder) == 1
