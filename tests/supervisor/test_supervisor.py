"""RunSupervisor behavior: clean runs, retries, watchdogs, salvage."""

import numpy as np
import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.errors import BudgetExhausted, CheckpointError
from repro.obs.instrument import (
    M_SUPERVISOR_ATTEMPTS,
    M_SUPERVISOR_FALLBACKS,
    M_SUPERVISOR_RETRIES,
    M_SUPERVISOR_WATCHDOG,
    Instrumentation,
)
from repro.resilience.context import ResiliencePolicy
from repro.resilience.faults import FaultKind, FaultPlan
from repro.resilience.guards import RunBudget
from repro.supervisor import (
    RetryPolicy,
    RunSupervisor,
    Watchdog,
    supervise,
)

pytestmark = pytest.mark.supervisor

CONFIG = ClusteringConfig(resolution=0.05, seed=7, num_workers=4)


def _fast_supervisor(**kwargs):
    """A supervisor that never really sleeps (test matrices stay fast)."""
    kwargs.setdefault(
        "retry", RetryPolicy(max_attempts_per_rung=2, backoff_base=0.0)
    )
    kwargs.setdefault("sleep", lambda _s: None)
    return RunSupervisor(**kwargs)


class TestCleanRun:
    def test_no_fault_run_is_invisible(self, karate):
        baseline = cluster(karate, CONFIG)
        supervised = _fast_supervisor().run(karate, CONFIG)
        assert np.array_equal(supervised.assignments, baseline.assignments)
        assert supervised.objective == baseline.objective
        assert not supervised.degraded
        meta = supervised.extras["supervisor"]
        assert meta == {
            "attempts": 1,
            "retries": 0,
            "fallbacks": 0,
            "watchdog_fires": 0,
            "rung": "as-configured",
            "salvaged": False,
        }

    def test_summary_reaches_stats_dict(self, karate):
        supervised = _fast_supervisor().run(karate, CONFIG)
        assert supervised.stats_dict()["supervisor"]["rung"] == "as-configured"

    def test_cluster_supervisor_kwarg_delegates(self, karate):
        via_kwarg = cluster(karate, CONFIG, supervisor=_fast_supervisor())
        assert via_kwarg.extras["supervisor"]["attempts"] == 1

    def test_supervise_convenience(self, karate):
        result = supervise(karate, CONFIG, sleep=lambda _s: None)
        assert result.extras["supervisor"]["rung"] == "as-configured"


class TestRetry:
    def test_recovers_from_bounded_transients(self, karate):
        plan = FaultPlan.single(
            FaultKind.TRANSIENT, rate=0.5, seed=3, max_injections=2
        )
        baseline = cluster(karate, CONFIG)
        result = _fast_supervisor().run(
            karate, CONFIG, resilience=ResiliencePolicy(faults=plan)
        )
        assert not result.degraded
        meta = result.extras["supervisor"]
        assert meta["attempts"] > 1
        # Once the hazard exhausts its injection budget, a clean rerun
        # must land on the same clustering as a never-faulted run.
        assert np.array_equal(result.assignments, baseline.assignments)
        assert result.objective == baseline.objective
        assert any("supervisor:" in line for line in result.failure_log)

    def test_unbounded_faults_end_in_explicit_degradation(self, karate):
        plan = FaultPlan.single(FaultKind.TRANSIENT, rate=0.9, seed=1)
        result = _fast_supervisor().run(
            karate, CONFIG, resilience=ResiliencePolicy(faults=plan)
        )
        # Nothing can converge under a permanent 90% fault rate; the
        # contract is an explicitly degraded result, not a hang or crash.
        assert result.degraded
        assert result.failure_log
        meta = result.extras["supervisor"]
        assert meta["fallbacks"] == 3  # walked the whole default ladder
        assert meta["rung"] in ("graceful", "salvage")

    def test_corrupt_resume_checkpoint_falls_back_to_cold_start(
        self, karate, tmp_path
    ):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not a checkpoint")
        baseline = cluster(karate, CONFIG)
        result = _fast_supervisor().run(
            karate, CONFIG,
            resilience=ResiliencePolicy(resume_from=str(bad)),
        )
        assert not result.degraded
        assert np.array_equal(result.assignments, baseline.assignments)
        meta = result.extras["supervisor"]
        assert meta["retries"] >= 1
        assert any("unusable" in line for line in result.failure_log)

    def test_unsupervised_corrupt_resume_still_raises(self, karate, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not a checkpoint")
        with pytest.raises(CheckpointError):
            cluster(
                karate, CONFIG,
                resilience=ResiliencePolicy(resume_from=str(bad)),
            )

    def test_eager_checkpoints_written_into_rotation(self, small_planted, tmp_path):
        supervisor = _fast_supervisor(
            checkpoint_dir=str(tmp_path), checkpoint_fraction=0.0
        )
        result = supervisor.run(small_planted.graph, CONFIG)
        assert not result.degraded
        written = list(tmp_path.glob("ckpt-*.npz"))
        assert written, "eager supervisor left no checkpoint behind"

    def test_supervised_resume_is_bit_identical(self, small_planted, tmp_path):
        # A checkpoint written by a plain run must resume under the
        # supervisor to the exact same answer — the property every
        # retry-from-checkpoint rests on.
        graph = small_planted.graph
        path = tmp_path / "resume.npz"
        full = cluster(
            graph, CONFIG,
            resilience=ResiliencePolicy(checkpoint_path=str(path)),
        )
        assert path.exists()
        resumed = _fast_supervisor().run(
            graph, CONFIG,
            resilience=ResiliencePolicy(resume_from=str(path)),
        )
        assert np.array_equal(resumed.assignments, full.assignments)
        assert resumed.objective == full.objective


class TestWatchdog:
    def test_level_deadline_degrades_on_graceful_rung(self, karate):
        instr = Instrumentation()
        supervisor = _fast_supervisor(
            watchdog=Watchdog(level_deadline_seconds=1e-7)
        )
        result = supervisor.run(karate, CONFIG, instrumentation=instr)
        # Every strict rung trips the level watchdog; the graceful rung
        # absorbs it and returns best-so-far, explicitly degraded.
        assert result.degraded
        meta = result.extras["supervisor"]
        assert meta["rung"] == "graceful"
        assert meta["watchdog_fires"] >= 1
        assert not meta["salvaged"]
        fired = instr.metrics.get(M_SUPERVISOR_WATCHDOG)
        assert fired is not None and fired.value(scope="level") >= 1

    def test_run_deadline_salvages(self, karate):
        # A fake clock that leaps 10s per reading: the run deadline is
        # already spent before the first attempt, forcing straight to
        # salvage.
        ticks = iter(range(0, 10_000, 10))
        instr = Instrumentation()
        supervisor = _fast_supervisor(
            watchdog=Watchdog(run_deadline_seconds=5.0),
            clock=lambda: float(next(ticks)),
        )
        result = supervisor.run(karate, CONFIG, instrumentation=instr)
        assert result.degraded
        meta = result.extras["supervisor"]
        assert meta["salvaged"]
        assert meta["rung"] == "salvage"
        assert meta["watchdog_fires"] == 1
        fired = instr.metrics.get(M_SUPERVISOR_WATCHDOG)
        assert fired.value(scope="run") == 1.0
        assert any("run deadline" in line for line in result.failure_log)


class TestCallerBudget:
    def test_strict_caller_budget_propagates(self, karate):
        with pytest.raises(BudgetExhausted):
            _fast_supervisor().run(
                karate, CONFIG,
                resilience=ResiliencePolicy(
                    strict=True, budget=RunBudget(max_rounds=1)
                ),
            )

    def test_graceful_caller_budget_salvages_best_so_far(self, karate):
        result = _fast_supervisor().run(
            karate, CONFIG,
            resilience=ResiliencePolicy(budget=RunBudget(max_rounds=1)),
        )
        assert result.degraded
        meta = result.extras["supervisor"]
        assert meta["salvaged"]
        assert any("caller budget" in line for line in result.failure_log)


class TestObservability:
    def test_supervise_span_and_counters(self, karate):
        instr = Instrumentation()
        plan = FaultPlan.single(
            FaultKind.TRANSIENT, rate=0.5, seed=3, max_injections=2
        )
        result = _fast_supervisor().run(
            karate, CONFIG,
            resilience=ResiliencePolicy(faults=plan),
            instrumentation=instr,
        )
        assert not result.degraded
        spans = [rec["name"] for rec in instr.tracer.span_records()]
        assert "supervise" in spans
        meta = result.extras["supervisor"]
        attempts = instr.metrics.get(M_SUPERVISOR_ATTEMPTS)
        assert attempts.total() == meta["attempts"]
        retries = instr.metrics.get(M_SUPERVISOR_RETRIES)
        if meta["retries"]:
            assert retries.total() == meta["retries"]
        if meta["fallbacks"]:
            fallbacks = instr.metrics.get(M_SUPERVISOR_FALLBACKS)
            assert fallbacks.total() == meta["fallbacks"]
        events = [
            rec for rec in instr.tracer.event_records()
            if rec["name"] == "supervisor"
        ]
        assert events, "supervisor decisions missing from the trace"
