"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.generators.planted import planted_partition_graph
from repro.graphs.builders import graph_from_edges
from repro.graphs.karate import karate_club_graph


@pytest.fixture
def karate():
    """Zachary's karate club graph (34 vertices, 78 edges)."""
    return karate_club_graph()


@pytest.fixture
def triangle_graph():
    """A 3-cycle."""
    return graph_from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def two_cliques():
    """Two 4-cliques joined by one bridge edge — an obvious 2-clustering."""
    edges = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    edges.append((0, 4))
    return graph_from_edges(edges)


@pytest.fixture
def weighted_path():
    """A weighted path 0-1-2 with unequal weights."""
    return graph_from_edges([(0, 1), (1, 2)], weights=np.asarray([2.0, 0.5]))


@pytest.fixture
def small_planted():
    """A small planted-partition instance with ground truth."""
    return planted_partition_graph(
        num_vertices=300,
        intra_degree=8.0,
        inter_degree=1.0,
        size_min=10,
        size_max=40,
        seed=42,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(0)
