import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, permutation, spawn_rngs


class TestMakeRng:
    def test_none_returns_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = make_rng(7).integers(0, 1000, size=10)
        b = make_rng(7).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 2**31, size=16)
        b = make_rng(2).integers(0, 2**31, size=16)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(
            a.integers(0, 2**31, size=16), b.integers(0, 2**31, size=16)
        )

    def test_deterministic(self):
        a = spawn_rngs(9, 3)[1].integers(0, 2**31, size=8)
        b = spawn_rngs(9, 3)[1].integers(0, 2**31, size=8)
        assert np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(4, 1) == derive_seed(4, 1)

    def test_salt_changes_seed(self):
        assert derive_seed(4, 1) != derive_seed(4, 2)

    def test_in_int32_range(self):
        s = derive_seed(123, 456)
        assert 0 <= s < 2**31


class TestPermutation:
    def test_none_rng_is_identity(self):
        assert np.array_equal(permutation(None, 5), np.arange(5))

    def test_is_permutation(self):
        p = permutation(np.random.default_rng(0), 100)
        assert np.array_equal(np.sort(p), np.arange(100))

    def test_dtype(self):
        assert permutation(np.random.default_rng(0), 10).dtype == np.int64
