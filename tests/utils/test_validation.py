import pytest

from repro.errors import ConfigError
from repro.utils.validation import (
    require,
    require_in_unit_interval,
    require_nonnegative,
    require_positive,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_value_error(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_custom_exception(self):
        with pytest.raises(ConfigError):
            require(False, "boom", exc=ConfigError)


class TestRequirePositive:
    def test_positive_ok(self):
        require_positive(0.1, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_nonpositive_raises(self, value):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(value, "x")


class TestRequireNonnegative:
    def test_zero_ok(self):
        require_nonnegative(0, "x")

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            require_nonnegative(-1e-9, "x")


class TestRequireUnitInterval:
    def test_open_interior_ok(self):
        require_in_unit_interval(0.5, "lam")

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_open_boundary_raises(self, value):
        with pytest.raises(ValueError):
            require_in_unit_interval(value, "lam")

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_closed_boundary_ok(self, value):
        require_in_unit_interval(value, "lam", open_ends=False)

    def test_closed_outside_raises(self):
        with pytest.raises(ValueError):
            require_in_unit_interval(1.5, "lam", open_ends=False)
