import time

from repro.utils.timing import WallTimer


class TestWallTimer:
    def test_measures_elapsed(self):
        with WallTimer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_running_without_entry_is_zero(self):
        assert WallTimer().running() == 0.0

    def test_running_increases(self):
        with WallTimer() as t:
            first = t.running()
            time.sleep(0.005)
            assert t.running() > first
