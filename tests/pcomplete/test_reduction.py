import numpy as np
import pytest

from repro.errors import CircuitError
from repro.pcomplete.circuit import Gate, GateKind, MonotoneCircuit, random_circuit
from repro.pcomplete.reduction import reduce_circuit


@pytest.fixture
def and_circuit():
    return MonotoneCircuit(2, [Gate(GateKind.AND, 0, 1)])


class TestLayout:
    def test_vertex_counts(self, and_circuit):
        red = reduce_circuit(and_circuit, [True, False])
        # t, f, 2 literals, 2 negations, 1 gate, 1 helper.
        assert red.graph.num_vertices == 8

    def test_node_vertex_mapping(self, and_circuit):
        red = reduce_circuit(and_circuit, [True, False])
        assert red.node_vertex(0) == red.literal_vertices[0]
        assert red.node_vertex(2) == red.gate_vertices[0]


class TestEdgeStructure:
    def test_tf_edge_large_negative(self, and_circuit):
        red = reduce_circuit(and_circuit, [True, True])
        g = red.graph
        nbrs, wts = g.neighborhood(red.t_vertex)
        tf = wts[nbrs == red.f_vertex]
        assert tf.size == 1
        assert tf[0] < 0
        assert abs(tf[0]) > 10 * 1.0  # dominates all gate mass

    def test_literal_anchor_edges(self, and_circuit):
        red = reduce_circuit(and_circuit, [True, False])
        g = red.graph
        # x0 (true) anchors to t; its negation anchors to f.
        nbrs, wts = g.neighborhood(int(red.literal_vertices[0]))
        assert red.t_vertex in nbrs
        nbrs_neg, _ = g.neighborhood(int(red.negation_vertices[0]))
        assert red.f_vertex in nbrs_neg

    def test_and_gate_prefers_f_terminal(self, and_circuit):
        red = reduce_circuit(and_circuit, [True, True])
        g = red.graph
        gate = int(red.gate_vertices[0])
        nbrs, wts = g.neighborhood(gate)
        to_t = wts[nbrs == red.t_vertex][0]
        to_f = wts[nbrs == red.f_vertex][0]
        # AND gates have the heavier edge toward f.
        assert to_f > to_t

    def test_or_gate_prefers_t_terminal(self):
        c = MonotoneCircuit(2, [Gate(GateKind.OR, 0, 1)])
        red = reduce_circuit(c, [False, False])
        g = red.graph
        gate = int(red.gate_vertices[0])
        nbrs, wts = g.neighborhood(gate)
        assert wts[nbrs == red.t_vertex][0] > wts[nbrs == red.f_vertex][0]

    def test_helper_edge_weight(self, and_circuit):
        red = reduce_circuit(and_circuit, [True, True])
        g = red.graph
        gate = int(red.gate_vertices[0])
        helper = int(red.helper_vertices[0])
        nbrs, wts = g.neighborhood(gate)
        w_helper = wts[nbrs == helper][0]
        assert w_helper == pytest.approx((2 + 2 / 3 * red.epsilon) * 1.0)


class TestInvariants:
    def test_out_edge_budget(self):
        """The proof's requirement: for every gate, the total weight of its
        edges toward consumer gates is below eps/6 of its own weight."""
        circuit = random_circuit(5, 15, seed=2)
        red = reduce_circuit(circuit, [True] * 5)
        g = red.graph
        eps = red.epsilon
        # Reconstruct gate weights from input edges.
        for gi, gate in enumerate(circuit.gates):
            gate_vertex = int(red.gate_vertices[gi])
            nbrs, wts = g.neighborhood(gate_vertex)
            in1 = red.node_vertex(gate.in1)
            w_gate = float(wts[nbrs == in1].min())
            consumer_vertices = {
                int(red.gate_vertices[cj])
                for cj, cg in enumerate(circuit.gates)
                if circuit.num_inputs + gi in (cg.in1, cg.in2)
            }
            consumer_mass = float(
                sum(w for n, w in zip(nbrs, wts) if int(n) in consumer_vertices)
            )
            assert consumer_mass < eps / 6 * w_gate + 1e-12

    def test_smallest_gate_weight_rescaled_to_one(self):
        circuit = random_circuit(4, 10, seed=0)
        red = reduce_circuit(circuit, [False] * 4)
        g = red.graph
        gate_in_weights = []
        for gi, gate in enumerate(circuit.gates):
            nbrs, wts = g.neighborhood(int(red.gate_vertices[gi]))
            in1 = red.node_vertex(gate.in1)
            gate_in_weights.append(float(wts[nbrs == in1].min()))
        assert min(gate_in_weights) == pytest.approx(1.0)


class TestValidation:
    def test_bad_epsilon(self, and_circuit):
        with pytest.raises(CircuitError):
            reduce_circuit(and_circuit, [True, True], epsilon=0.9)

    def test_bad_assignment_shape(self, and_circuit):
        with pytest.raises(CircuitError):
            reduce_circuit(and_circuit, [True])
