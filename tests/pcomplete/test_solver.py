import itertools

import numpy as np
import pytest

from repro.pcomplete.circuit import Gate, GateKind, MonotoneCircuit, random_circuit
from repro.pcomplete.reduction import reduce_circuit
from repro.pcomplete.solver import (
    louvain_clustering_of_reduction,
    solve_circuit_via_louvain,
)


class TestExhaustiveSmallCircuits:
    @pytest.mark.parametrize("kind", [GateKind.AND, GateKind.OR])
    def test_single_gate_all_inputs(self, kind):
        c = MonotoneCircuit(2, [Gate(kind, 0, 1)])
        for bits in itertools.product([False, True], repeat=2):
            expected = c.output(list(bits))
            assert solve_circuit_via_louvain(c, list(bits), seed=0) == expected

    def test_and_or_composition(self):
        # (x0 AND x1) OR x2 — the classic mixed case.
        c = MonotoneCircuit(3, [Gate(GateKind.AND, 0, 1), Gate(GateKind.OR, 3, 2)])
        for bits in itertools.product([False, True], repeat=3):
            expected = (bits[0] and bits[1]) or bits[2]
            assert solve_circuit_via_louvain(c, list(bits), seed=1) == expected

    def test_deep_chain(self):
        # x0 AND x1 AND x2 AND x3 as a chain of ANDs.
        gates = [Gate(GateKind.AND, 0, 1)]
        for i in (2, 3):
            gates.append(Gate(GateKind.AND, 4 + (i - 2), i))
        c = MonotoneCircuit(4, gates)
        assert solve_circuit_via_louvain(c, [True] * 4, seed=0)
        assert not solve_circuit_via_louvain(c, [True, True, False, True], seed=0)


class TestRandomCircuits:
    @pytest.mark.parametrize("trial", range(12))
    def test_matches_direct_evaluation(self, trial):
        rng = np.random.default_rng(trial)
        circuit = random_circuit(4, 9, seed=trial)
        bits = (rng.random(4) < 0.5).tolist()
        assert solve_circuit_via_louvain(circuit, bits, seed=trial) == circuit.output(
            bits
        )

    def test_robust_to_move_order(self):
        circuit = random_circuit(4, 8, seed=99)
        bits = [True, False, True, False]
        expected = circuit.output(bits)
        for seed in range(6):
            assert solve_circuit_via_louvain(circuit, bits, seed=seed) == expected


class TestClusteringInvariants:
    def test_terminals_separate(self):
        circuit = random_circuit(3, 6, seed=5)
        red = reduce_circuit(circuit, [True, False, True])
        clusters = louvain_clustering_of_reduction(red, seed=0)
        assert clusters[red.t_vertex] != clusters[red.f_vertex]

    def test_literals_with_their_terminals(self):
        circuit = random_circuit(3, 6, seed=5)
        assignment = [True, False, True]
        red = reduce_circuit(circuit, assignment)
        clusters = louvain_clustering_of_reduction(red, seed=0)
        for i, value in enumerate(assignment):
            lit = clusters[red.literal_vertices[i]]
            neg = clusters[red.negation_vertices[i]]
            terminal = clusters[red.t_vertex if value else red.f_vertex]
            other = clusters[red.f_vertex if value else red.t_vertex]
            assert lit == terminal
            assert neg == other

    def test_every_gate_resolves_to_its_value(self):
        """The constructive statement of Theorem D.1: each gate clusters
        with the terminal matching its truth value."""
        circuit = random_circuit(4, 10, seed=11)
        bits = [False, True, True, False]
        values = circuit.evaluate(bits)
        red = reduce_circuit(circuit, bits)
        clusters = louvain_clustering_of_reduction(red, seed=3)
        t_c = clusters[red.t_vertex]
        f_c = clusters[red.f_vertex]
        for gi in range(circuit.num_gates):
            expected = t_c if values[circuit.num_inputs + gi] else f_c
            assert clusters[red.gate_vertices[gi]] == expected, gi
