import numpy as np
import pytest

from repro.errors import CircuitError
from repro.pcomplete.circuit import Gate, GateKind, MonotoneCircuit, random_circuit


class TestConstruction:
    def test_valid(self):
        c = MonotoneCircuit(2, [Gate(GateKind.AND, 0, 1)])
        assert c.num_nodes == 3
        assert c.output_node == 2

    def test_no_inputs_rejected(self):
        with pytest.raises(CircuitError):
            MonotoneCircuit(0, [Gate(GateKind.AND, 0, 0)])

    def test_no_gates_rejected(self):
        with pytest.raises(CircuitError):
            MonotoneCircuit(2, [])

    def test_forward_reference_rejected(self):
        with pytest.raises(CircuitError):
            MonotoneCircuit(1, [Gate(GateKind.OR, 0, 1)])  # gate reads itself

    def test_cross_reference_rejected(self):
        with pytest.raises(CircuitError):
            MonotoneCircuit(1, [Gate(GateKind.OR, 0, 2)])


class TestEvaluation:
    def test_and_gate(self):
        c = MonotoneCircuit(2, [Gate(GateKind.AND, 0, 1)])
        assert c.output([True, True])
        assert not c.output([True, False])

    def test_or_gate(self):
        c = MonotoneCircuit(2, [Gate(GateKind.OR, 0, 1)])
        assert c.output([False, True])
        assert not c.output([False, False])

    def test_layered_circuit(self):
        # (x0 AND x1) OR (x1 AND x2)
        c = MonotoneCircuit(
            3,
            [
                Gate(GateKind.AND, 0, 1),
                Gate(GateKind.AND, 1, 2),
                Gate(GateKind.OR, 3, 4),
            ],
        )
        assert c.output([True, True, False])
        assert c.output([False, True, True])
        assert not c.output([True, False, True])

    def test_monotonicity(self, rng):
        """Flipping any input from 0 to 1 never flips the output 1 -> 0."""
        c = random_circuit(5, 12, seed=3)
        for _ in range(20):
            bits = (rng.random(5) < 0.5).tolist()
            base = c.output(bits)
            for i in range(5):
                if not bits[i]:
                    raised = list(bits)
                    raised[i] = True
                    assert c.output(raised) >= base

    def test_wrong_input_arity(self):
        c = MonotoneCircuit(2, [Gate(GateKind.AND, 0, 1)])
        with pytest.raises(CircuitError):
            c.output([True])

    def test_evaluate_all_nodes(self):
        c = MonotoneCircuit(2, [Gate(GateKind.OR, 0, 1)])
        values = c.evaluate([True, False])
        assert np.array_equal(values, [True, False, True])


class TestRandomCircuit:
    def test_deterministic(self):
        a = random_circuit(3, 5, seed=1)
        b = random_circuit(3, 5, seed=1)
        assert [(g.kind, g.in1, g.in2) for g in a.gates] == [
            (g.kind, g.in1, g.in2) for g in b.gates
        ]

    def test_sizes(self):
        c = random_circuit(4, 7, seed=0)
        assert c.num_inputs == 4
        assert c.num_gates == 7
