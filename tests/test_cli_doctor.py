"""CLI doctor surfaces: repro doctor, cluster --doctor, update --doctor."""

import json

import pytest

from repro.cli import main

RUN = ["cluster", "--karate", "--resolution", "0.05", "--seed", "3"]


def register_run(tmp_path, run_id="base", extra=()):
    runs = tmp_path / "runs.jsonl"
    assert main(RUN + ["--register", str(runs), "--run-id", run_id]
                + list(extra)) == 0
    return runs


def inject_regression(runs, run_id="regressed", factor=0.8):
    records = [json.loads(l) for l in runs.read_text().splitlines()]
    bad = json.loads(json.dumps(records[-1]))
    bad["run_id"] = run_id
    bad["metrics"]["f_objective"] *= factor
    with open(runs, "a") as handle:
        handle.write(json.dumps(bad) + "\n")
    return run_id


class TestClusterDoctorFlag:
    def test_healthy_karate_run_is_all_ok(self, capsys):
        assert main(RUN + ["--doctor"]) == 0
        out = capsys.readouterr().out
        assert "doctor:" in out
        assert " 0 warn, 0 crit" in out
        assert "CRIT" not in out

    def test_health_rules_file_implies_doctor(self, capsys):
        assert main(RUN + ["--health-rules",
                           "benchmarks/health_rules.json"]) == 0
        assert "doctor:" in capsys.readouterr().out

    def test_custom_rule_trips_on_real_run(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({
            "schema": "repro.obs.health/v1",
            "rules": [{"id": "too-many-rounds", "kind": "threshold",
                       "fact": "run.rounds", "direction": "above",
                       "crit": 1, "description": "paranoid cap"}],
        }))
        assert main(RUN + ["--health-rules", str(rules)]) == 1
        assert "CRIT too-many-rounds" in capsys.readouterr().out

    def test_bad_rules_file_is_usage_error(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text("{not json")
        assert main(RUN + ["--health-rules", str(rules)]) == 2


class TestDoctorCommand:
    def test_registered_run_with_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.jsonl"
        runs = register_run(
            tmp_path, extra=["--trace", str(trace), "--metrics", str(metrics)]
        )
        capsys.readouterr()
        code = main(["doctor", "base", "--runs", str(runs),
                     "--trace", str(trace), "--metrics", str(metrics),
                     "--iteration-cap", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 crit" in out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        runs = register_run(tmp_path)
        register_run(tmp_path, run_id="second")
        bad = inject_regression(runs)
        capsys.readouterr()
        assert main(["doctor", bad, "--runs", str(runs)]) == 1
        assert "CRIT objective-regression" in capsys.readouterr().out

    def test_last_flag_picks_newest(self, tmp_path, capsys):
        runs = register_run(tmp_path)
        bad = inject_regression(runs)
        capsys.readouterr()
        assert main(["doctor", "--last", "--runs", str(runs)]) == 1

    def test_json_verdict(self, tmp_path, capsys):
        runs = register_run(tmp_path)
        verdict = tmp_path / "verdict.json"
        capsys.readouterr()
        assert main(["doctor", "base", "--runs", str(runs),
                     "--json", str(verdict)]) == 0
        payload = json.loads(verdict.read_text())
        assert payload["schema"] == "repro.obs.doctor/v1"
        assert payload["worst"] in ("ok", "warn", "crit")
        assert "run.f_objective" in payload["facts"]

    def test_html_report_from_doctor(self, tmp_path, capsys):
        runs = register_run(tmp_path)
        html = tmp_path / "report.html"
        capsys.readouterr()
        assert main(["doctor", "base", "--runs", str(runs),
                     "--html", str(html)]) == 0
        assert "<script" not in html.read_text().lower()

    def test_no_inputs_is_usage_error(self, capsys):
        assert main(["doctor"]) == 2
        assert "nothing to diagnose" in capsys.readouterr().err

    def test_run_id_without_runs_is_usage_error(self, capsys):
        assert main(["doctor", "some-run"]) == 2
        assert "--runs" in capsys.readouterr().err

    def test_unknown_run_id_is_data_error(self, tmp_path, capsys):
        runs = register_run(tmp_path)
        capsys.readouterr()
        assert main(["doctor", "missing", "--runs", str(runs)]) == 2
        assert "not in registry" in capsys.readouterr().err

    def test_prometheus_metrics_file_is_accepted(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        assert main(RUN + ["--metrics", str(prom)]) == 0
        capsys.readouterr()
        assert main(["doctor", "--metrics", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "cas-retry-rate" in out

    def test_stats_file_from_profile_json(self, tmp_path, capsys):
        payload = tmp_path / "profile.json"
        assert main(RUN + ["--profile-json", str(payload)]) == 0
        capsys.readouterr()
        assert main(["doctor", "--stats", str(payload),
                     "--iteration-cap", "10"]) == 0
        out = capsys.readouterr().out
        assert "convergence-stall" in out


class TestUpdateDoctorFlag:
    def make_updates(self, tmp_path):
        updates = tmp_path / "updates.jsonl"
        lines = [
            {"op": "insert", "u": 0, "v": 9, "weight": 2.0},
            {"op": "delete", "u": 0, "v": 1},
            {"op": "reweight", "u": 2, "v": 3, "weight": 0.5},
        ]
        updates.write_text("".join(json.dumps(l) + "\n" for l in lines))
        return updates

    def test_doctor_with_slos_on_instrumented_session(self, tmp_path, capsys):
        updates = self.make_updates(tmp_path)
        metrics = tmp_path / "m.jsonl"
        code = main(["update", "--karate", "--seed", "3",
                     "--updates", str(updates), "--batch-size", "2",
                     "--snapshot-dir", str(tmp_path / "snaps"),
                     "--metrics", str(metrics), "--doctor"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving SLOs (p95 vs target):" in out
        assert "commit" in out and "save" in out
        # Staleness was reset by the snapshot rotation before the doctor.
        assert "updates applied since last snapshot save = 0" in out

    def test_doctor_without_instrumentation_skips_slos(self, tmp_path, capsys):
        updates = self.make_updates(tmp_path)
        code = main(["update", "--karate", "--seed", "3",
                     "--updates", str(updates), "--doctor"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving SLOs" not in out

    def test_tight_slo_spec_trips_crit(self, tmp_path, capsys):
        updates = self.make_updates(tmp_path)
        metrics = tmp_path / "m.jsonl"
        slo = tmp_path / "slo.json"
        slo.write_text(json.dumps({
            "schema": "repro.obs.slo/v1",
            # Impossibly tight: any real commit is slower than 1ns.
            "op_p95_seconds": {"commit": 1e-9},
        }))
        code = main(["update", "--karate", "--seed", "3",
                     "--updates", str(updates), "--metrics", str(metrics),
                     "--slo", str(slo)])
        out = capsys.readouterr().out
        assert code == 1
        assert "CRIT slo-commit-p95" in out
