"""Tests for the sweep / hierarchy / consensus CLI subcommands."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.io import write_communities, write_edge_list
from repro.graphs.karate import karate_club_graph


class TestSweepCommand:
    def test_basic_sweep(self, capsys):
        assert main(["sweep", "--karate", "--resolutions", "0.05,0.3",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "resolution" in out
        assert "0.05" in out and "0.3" in out

    def test_sweep_with_communities(self, tmp_path, capsys):
        comms = tmp_path / "c.txt"
        write_communities(
            [np.arange(0, 17), np.arange(17, 34)], comms
        )
        main(["sweep", "--karate", "--resolutions", "0.05",
              "--communities", str(comms), "--seed", "1"])
        out = capsys.readouterr().out
        assert "precision" in out
        assert "recall" in out

    def test_modularity_sweep(self, capsys):
        assert main(["sweep", "--karate", "--objective", "modularity",
                     "--resolutions", "0.5,2.0", "--seed", "1"]) == 0


class TestHierarchyCommand:
    def test_prints_levels(self, capsys):
        assert main(["hierarchy", "--karate", "--resolution", "0.1",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "level" in out
        assert "nested: True" in out

    def test_edge_list_input(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(karate_club_graph(), path)
        assert main(["hierarchy", "--input", str(path), "--seed", "0"]) == 0


class TestReportCommand:
    def test_report_fields(self, tmp_path, capsys):
        labels_path = tmp_path / "labels.txt"
        main(["cluster", "--karate", "--resolution", "0.1", "--seed", "1",
              "--output", str(labels_path)])
        capsys.readouterr()
        assert main(["report", "--karate", "--labels", str(labels_path),
                     "--resolution", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "CC objective" in out
        assert "modularity" in out
        assert "conductance" in out

    def test_report_with_communities(self, tmp_path, capsys):
        labels_path = tmp_path / "labels.txt"
        labels_path.write_text("\n".join("0" for _ in range(34)) + "\n")
        comms = tmp_path / "c.txt"
        write_communities([np.arange(0, 17)], comms)
        main(["report", "--karate", "--labels", str(labels_path),
              "--communities", str(comms)])
        out = capsys.readouterr().out
        assert "precision" in out

    def test_length_mismatch(self, tmp_path):
        labels_path = tmp_path / "labels.txt"
        labels_path.write_text("0\n1\n")
        with pytest.raises(SystemExit):
            main(["report", "--karate", "--labels", str(labels_path)])


class TestConsensusCommand:
    def test_consensus_runs(self, capsys):
        assert main(["consensus", "--karate", "--resolution", "0.1",
                     "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "consensus over 3 runs" in out

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "labels.txt"
        main(["consensus", "--karate", "--resolution", "0.1", "--runs", "2",
              "--output", str(path)])
        labels = [int(line) for line in path.read_text().splitlines()]
        assert len(labels) == 34

    def test_requires_graph_source(self):
        with pytest.raises(SystemExit):
            main(["consensus"])


class TestMetisInput:
    def test_cluster_metis_file(self, tmp_path, capsys):
        from repro.graphs.io import write_metis

        path = tmp_path / "karate.graph"
        write_metis(karate_club_graph(), path)
        assert main(["cluster", "--input", str(path), "--seed", "1"]) == 0
        assert "clusters" in capsys.readouterr().out
