"""CLI: ``repro update``, ``repro serve-sim``, and label round-trips."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.dynamic.updates import EdgeUpdate, write_update_log
from repro.errors import GraphFormatError
from repro.graphs.io import read_labels, write_labels

pytestmark = pytest.mark.dynamic


def write_log(path, updates):
    write_update_log(path, updates)
    return str(path)


BASIC_UPDATES = [
    EdgeUpdate("insert", 0, 9, 1.0),
    EdgeUpdate("delete", 0, 2),
    EdgeUpdate("reweight", 0, 1, 2.0),
]


class TestLabelsIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "labels.tsv"
        assignments = np.asarray([0, 1, 1, 0, 2], dtype=np.int64)
        write_labels(assignments, path)
        assert np.array_equal(read_labels(path), assignments)

    def test_header_present(self, tmp_path):
        path = tmp_path / "labels.tsv"
        write_labels(np.zeros(3, np.int64), path)
        assert path.read_text().startswith("# repro labels: n=3")

    def test_rejects_duplicates(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("0\t0\n0\t1\n")
        with pytest.raises(GraphFormatError, match="duplicate"):
            read_labels(path)

    def test_rejects_incomplete(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("0\t0\n2\t1\n")
        with pytest.raises(GraphFormatError):
            read_labels(path)


class TestClusterOutputLabels:
    def test_cluster_writes_labels(self, tmp_path, capsys):
        out = tmp_path / "labels.tsv"
        assert (
            main(
                ["cluster", "--karate", "--seed", "1",
                 "--output-labels", str(out)]
            )
            == 0
        )
        labels = read_labels(out)
        assert labels.size == 34
        assert "labels written" in capsys.readouterr().out


class TestUpdateCommand:
    def test_bootstrap_and_replay(self, tmp_path, capsys):
        log = write_log(tmp_path / "u.jsonl", BASIC_UPDATES)
        code = main(
            ["update", "--karate", "--seed", "1", "--updates", log,
             "--batch-size", "2", "--audit"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "batch 0: updates=2" in out
        assert "batch 1: updates=1" in out
        assert "audit: clean" in out

    def test_labels_round_trip(self, tmp_path, capsys):
        labels = tmp_path / "labels.tsv"
        main(["cluster", "--karate", "--seed", "1",
              "--output-labels", str(labels)])
        log = write_log(tmp_path / "u.jsonl", BASIC_UPDATES)
        code = main(
            ["update", "--karate", "--seed", "1", "--labels", str(labels),
             "--updates", log, "--output-labels", str(tmp_path / "out.tsv")]
        )
        assert code == 0
        final = read_labels(tmp_path / "out.tsv")
        assert final.size == 34
        capsys.readouterr()

    def test_snapshot_continuation(self, tmp_path, capsys):
        snapdir = tmp_path / "store"
        log1 = write_log(tmp_path / "u1.jsonl", BASIC_UPDATES[:1])
        assert (
            main(
                ["update", "--karate", "--seed", "1", "--updates", log1,
                 "--snapshot-dir", str(snapdir)]
            )
            == 0
        )
        # Second invocation restores from the rotation directory.
        log2 = write_log(tmp_path / "u2.jsonl", BASIC_UPDATES[1:])
        assert (
            main(
                ["update", "--seed", "1", "--updates", log2,
                 "--snapshot-dir", str(snapdir)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch 1:" in out  # counters continue across restarts

    def test_register_workload_tags(self, tmp_path, capsys):
        registry = tmp_path / "runs.jsonl"
        log = write_log(tmp_path / "u.jsonl", BASIC_UPDATES)
        code = main(
            ["update", "--karate", "--seed", "1", "--updates", log,
             "--batch-size", "2", "--register", str(registry),
             "--run-id", "u-test"]
        )
        assert code == 0
        record = json.loads(registry.read_text().splitlines()[-1])
        assert record["run_id"] == "u-test"
        tags = record["workload"]["update_batch"]
        assert tags["batches"] == 2
        assert tags["updates"] == {"insert": 1, "delete": 1, "reweight": 1}
        capsys.readouterr()

    def test_requires_state_source(self, tmp_path):
        log = write_log(tmp_path / "u.jsonl", BASIC_UPDATES[:1])
        with pytest.raises(SystemExit):
            main(["update", "--updates", log])


class TestServeSimCommand:
    def test_scripted_session(self, tmp_path, capsys):
        script = tmp_path / "session.txt"
        script.write_text(
            "get 0\nsame 0 1\ninsert 0 9\ncommit\nstats\naudit\n"
        )
        code = main(
            ["serve-sim", "--karate", "--seed", "1", "--script", str(script)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cluster_of(0) = " in out
        assert "commit[0]: updates=1" in out
        assert "audit: clean" in out

    def test_save_into_store(self, tmp_path, capsys):
        script = tmp_path / "session.txt"
        script.write_text("save\n")
        snapdir = tmp_path / "store"
        code = main(
            ["serve-sim", "--karate", "--seed", "1", "--script", str(script),
             "--snapshot-dir", str(snapdir)]
        )
        assert code == 0
        assert "saved snap-a.npz" in capsys.readouterr().out
        assert (snapdir / "snap-a.npz").exists()
