"""Hardened reader validation: malformed input names the file and line."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.io import read_edge_list, read_metis


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestEdgeListValidation:
    def test_clean_file_reads(self, tmp_path):
        path = _write(tmp_path, "g.txt", "# comment\n0 1\n1 2 2.5\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_non_integer_id_names_file_and_line(self, tmp_path):
        path = _write(tmp_path, "g.txt", "0 1\nx 2\n")
        with pytest.raises(GraphFormatError, match=r"g\.txt:2.*integers"):
            read_edge_list(path)

    def test_negative_id_rejected(self, tmp_path):
        path = _write(tmp_path, "g.txt", "0 1\n-3 2\n")
        with pytest.raises(GraphFormatError, match=r"g\.txt:2.*negative vertex id"):
            read_edge_list(path)

    def test_wrong_column_count(self, tmp_path):
        path = _write(tmp_path, "g.txt", "0 1 2 3\n")
        with pytest.raises(GraphFormatError, match=r"g\.txt:1.*expected"):
            read_edge_list(path)

    def test_unparsable_weight(self, tmp_path):
        path = _write(tmp_path, "g.txt", "0 1 heavy\n")
        with pytest.raises(GraphFormatError, match=r"g\.txt:1.*bad edge weight"):
            read_edge_list(path)

    @pytest.mark.parametrize("token", ["nan", "inf", "-inf"])
    def test_non_finite_weight_rejected(self, tmp_path, token):
        path = _write(tmp_path, "g.txt", f"0 1 {token}\n")
        with pytest.raises(GraphFormatError, match=r"g\.txt:1.*non-finite"):
            read_edge_list(path)

    def test_negative_weight_rejected_by_default(self, tmp_path):
        path = _write(tmp_path, "g.txt", "0 1 -2.0\n")
        with pytest.raises(GraphFormatError, match="negative edge weight"):
            read_edge_list(path)

    def test_allow_signed_accepts_negative_weight(self, tmp_path):
        path = _write(tmp_path, "g.txt", "0 1 -2.0\n")
        graph = read_edge_list(path, allow_signed=True)
        assert np.isclose(graph.weights.min(), -2.0)

    def test_signed_still_rejects_non_finite(self, tmp_path):
        path = _write(tmp_path, "g.txt", "0 1 nan\n")
        with pytest.raises(GraphFormatError, match="non-finite"):
            read_edge_list(path, allow_signed=True)


class TestMetisValidation:
    def test_clean_file_reads(self, tmp_path):
        path = _write(tmp_path, "g.metis", "3 2\n2 3\n1\n1\n")
        graph = read_metis(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_empty_file(self, tmp_path):
        path = _write(tmp_path, "g.metis", "% nothing here\n")
        with pytest.raises(GraphFormatError, match="empty METIS file"):
            read_metis(path)

    def test_non_integer_header(self, tmp_path):
        path = _write(tmp_path, "g.metis", "three 2\n")
        with pytest.raises(GraphFormatError, match="must be integers"):
            read_metis(path)

    def test_negative_header_counts(self, tmp_path):
        path = _write(tmp_path, "g.metis", "-3 2\n")
        with pytest.raises(GraphFormatError, match="negative counts"):
            read_metis(path)

    def test_bad_fmt_field(self, tmp_path):
        path = _write(tmp_path, "g.metis", "2 1 7\n2\n1\n")
        with pytest.raises(GraphFormatError, match="bad METIS fmt field"):
            read_metis(path)

    def test_vertex_count_mismatch(self, tmp_path):
        path = _write(tmp_path, "g.metis", "3 2\n2 3\n1\n")
        with pytest.raises(GraphFormatError, match="adjacency lines"):
            read_metis(path)

    def test_edge_count_mismatch(self, tmp_path):
        path = _write(tmp_path, "g.metis", "3 5\n2 3\n1\n1\n")
        with pytest.raises(GraphFormatError, match="declares 5 edges"):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = _write(tmp_path, "g.metis", "2 1\n9\n1\n")
        with pytest.raises(GraphFormatError, match="outside"):
            read_metis(path)

    def test_non_integer_neighbor(self, tmp_path):
        path = _write(tmp_path, "g.metis", "2 1\ntwo\n1\n")
        with pytest.raises(GraphFormatError, match="non-integer neighbor"):
            read_metis(path)

    def test_dangling_weight_token(self, tmp_path):
        path = _write(tmp_path, "g.metis", "2 1 1\n2 5.0 1\n1 5.0\n")
        with pytest.raises(GraphFormatError, match="dangling weight"):
            read_metis(path)

    def test_non_finite_edge_weight(self, tmp_path):
        path = _write(tmp_path, "g.metis", "2 1 1\n2 nan\n1 nan\n")
        with pytest.raises(GraphFormatError, match="non-finite or"):
            read_metis(path)

    def test_isolated_vertex_empty_line_ok(self, tmp_path):
        path = _write(tmp_path, "g.metis", "3 1\n2\n1\n\n")
        graph = read_metis(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 1
