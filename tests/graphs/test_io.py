import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.io import (
    load_npz,
    read_communities,
    read_edge_list,
    save_npz,
    write_communities,
    write_edge_list,
)


class TestEdgeListRoundtrip:
    def test_unweighted(self, karate, tmp_path):
        path = tmp_path / "karate.txt"
        write_edge_list(karate, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == karate.num_vertices
        assert loaded.num_edges == karate.num_edges

    def test_weighted(self, weighted_path, tmp_path):
        path = tmp_path / "weighted.txt"
        write_edge_list(weighted_path, path, weighted=True)
        loaded = read_edge_list(path)
        assert loaded.total_edge_weight == pytest.approx(
            weighted_path.total_edge_weight
        )

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% also comment\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="bad.txt:1"):
            read_edge_list(path)

    def test_num_vertices_override(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path, num_vertices=10).num_vertices == 10


class TestCommunities:
    def test_roundtrip(self, tmp_path):
        comms = [np.asarray([0, 1, 2]), np.asarray([3, 4])]
        path = tmp_path / "comms.txt"
        write_communities(comms, path)
        loaded = read_communities(path)
        assert len(loaded) == 2
        assert np.array_equal(loaded[0], [0, 1, 2])

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "comms.txt"
        path.write_text("# header\n5 6 7\n")
        assert len(read_communities(path)) == 1


class TestNpz:
    def test_roundtrip_exact(self, karate, tmp_path):
        path = tmp_path / "karate.npz"
        save_npz(karate, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.offsets, karate.offsets)
        assert np.array_equal(loaded.neighbors, karate.neighbors)
        assert np.allclose(loaded.weights, karate.weights)
        assert np.allclose(loaded.node_weights, karate.node_weights)
