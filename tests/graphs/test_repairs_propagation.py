"""Input-repair provenance must survive every graph derivation.

``read_edge_list(..., on_malformed="repair")`` attaches ``graph.repairs``;
a run on any graph derived from it — subgraphs, cores, quotients, weight
views, delta compactions — must still report
``stats_dict()["input_repairs"]``.
"""

import numpy as np
import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.graphs.karate import karate_club_graph
from repro.graphs.quotient import compress_graph, compress_graph_naive
from repro.graphs.transform import (
    cluster_subgraph,
    induced_subgraph,
    k_core,
    largest_component,
)

REPAIRS = {"bad_weight": 2, "self_loop": 1}


@pytest.fixture
def repaired_karate():
    graph = karate_club_graph()
    graph.repairs = dict(REPAIRS)
    return graph


def test_induced_subgraph(repaired_karate):
    sub, _ = induced_subgraph(repaired_karate, np.arange(10))
    assert sub.repairs == REPAIRS


def test_cluster_subgraph(repaired_karate):
    assignments = np.zeros(34, dtype=np.int64)
    assignments[17:] = 1
    sub, _ = cluster_subgraph(repaired_karate, assignments, 0)
    assert sub.repairs == REPAIRS


def test_largest_component(repaired_karate):
    sub, _ = largest_component(repaired_karate)
    assert sub.repairs == REPAIRS


def test_k_core(repaired_karate):
    core, _ = k_core(repaired_karate, 3)
    assert core.repairs == REPAIRS


@pytest.mark.parametrize("compress", [compress_graph, compress_graph_naive])
def test_quotient(repaired_karate, compress):
    assignments = np.arange(34, dtype=np.int64) % 5
    compressed, _ = compress(repaired_karate, assignments)
    assert compressed.repairs == REPAIRS


def test_quotient_edgeless(repaired_karate):
    # All-in-one-cluster quotient has no inter-cluster edges left.
    compressed, _ = compress_graph(repaired_karate, np.zeros(34, np.int64))
    assert compressed.num_directed_edges == 0
    assert compressed.repairs == REPAIRS


def test_weight_views(repaired_karate):
    assert repaired_karate.with_unit_weights().repairs == REPAIRS
    assert (
        repaired_karate.with_node_weights(np.ones(34)).repairs == REPAIRS
    )


def test_clean_graphs_stay_clean():
    graph = karate_club_graph()
    sub, _ = induced_subgraph(graph, np.arange(10))
    assert sub.repairs is None
    compressed, _ = compress_graph(graph, np.arange(34, dtype=np.int64) % 5)
    assert compressed.repairs is None
    assert graph.with_unit_weights().repairs is None


def test_multilevel_run_reports_repairs(repaired_karate):
    """The end-to-end guarantee: a coarsening run still reports them."""
    result = cluster(
        repaired_karate, ClusteringConfig(resolution=0.1, seed=1)
    )
    assert result.stats_dict()["input_repairs"] == REPAIRS


def test_preprocessed_run_reports_repairs(repaired_karate):
    """Preprocess (giant component) then cluster — provenance intact."""
    sub, _ = largest_component(repaired_karate)
    result = cluster(sub, ClusteringConfig(resolution=0.1, seed=1))
    assert result.stats_dict()["input_repairs"] == REPAIRS
