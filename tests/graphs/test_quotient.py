import numpy as np
import pytest

from repro.core.objective import lambdacc_objective
from repro.graphs.builders import graph_from_edges
from repro.graphs.quotient import compress_graph, compress_graph_naive
from repro.parallel.scheduler import SimulatedScheduler


class TestCompressBasics:
    def test_two_cliques_compress_to_two_vertices(self, two_cliques):
        assignments = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        compressed, v2s = compress_graph(two_cliques, assignments)
        assert compressed.num_vertices == 2
        # Six intra edges per clique become self-loops.
        assert np.allclose(compressed.self_loops, [6.0, 6.0])
        # One bridge edge remains.
        assert compressed.num_edges == 1
        assert compressed.weights[0] == 1.0

    def test_vertex_weights_accumulate(self, two_cliques):
        assignments = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        compressed, _ = compress_graph(two_cliques, assignments)
        assert np.allclose(compressed.node_weights, [4.0, 4.0])
        assert np.allclose(compressed.node_weight_sq, [4.0, 4.0])

    def test_vertex_to_super_is_dense_relabel(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        _, v2s = compress_graph(g, np.asarray([7, 7, 2]))
        assert np.array_equal(v2s, [1, 1, 0])  # sorted unique labels [2, 7]

    def test_parallel_edges_merge(self):
        # Path 0-1-2-3; clusters {0,1} and {2,3}; edges (1,2) only.
        g = graph_from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        compressed, _ = compress_graph(g, np.asarray([0, 0, 1, 1]))
        # (1,2) and (0,3) both become cluster edge (0,1) with weight 2.
        assert compressed.num_edges == 1
        assert compressed.weights[0] == 2.0

    def test_existing_self_loops_carry(self):
        g = graph_from_edges([(0, 0), (0, 1)], num_vertices=2)
        compressed, _ = compress_graph(g, np.asarray([0, 0]))
        assert compressed.self_loops[0] == pytest.approx(2.0)

    def test_singleton_clustering_is_isomorphic(self, karate):
        compressed, v2s = compress_graph(karate, np.arange(34))
        assert compressed.num_vertices == 34
        assert compressed.num_edges == karate.num_edges
        assert np.array_equal(v2s, np.arange(34))

    def test_shape_mismatch(self, karate):
        with pytest.raises(ValueError):
            compress_graph(karate, np.zeros(3, dtype=np.int64))


class TestObjectiveInvariance:
    """The core multilevel invariant: compressing preserves the objective."""

    @pytest.mark.parametrize("lam", [0.0, 0.05, 0.5, 0.9])
    def test_karate_random_clustering(self, karate, rng, lam):
        assignments = rng.integers(0, 6, size=34)
        before = lambdacc_objective(karate, assignments, lam)
        compressed, v2s = compress_graph(karate, assignments)
        # On the compressed graph the induced clustering is the identity.
        after = lambdacc_objective(
            compressed, np.arange(compressed.num_vertices), lam
        )
        assert after == pytest.approx(before)

    def test_two_level_composition(self, small_planted, rng):
        g = small_planted.graph
        lam = 0.1
        level1 = rng.integers(0, 40, size=g.num_vertices)
        c1, v2s1 = compress_graph(g, level1)
        level2 = rng.integers(0, 5, size=c1.num_vertices)
        c2, v2s2 = compress_graph(c1, level2)
        flattened = level2[v2s1]
        assert lambdacc_objective(
            c2, np.arange(c2.num_vertices), lam
        ) == pytest.approx(lambdacc_objective(g, flattened, lam))


class TestNaiveCompress:
    def test_same_graph_as_efficient(self, karate, rng):
        assignments = rng.integers(0, 5, size=34)
        a, v2s_a = compress_graph(karate, assignments)
        b, v2s_b = compress_graph_naive(karate, assignments)
        assert np.array_equal(v2s_a, v2s_b)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.neighbors, b.neighbors)
        assert np.allclose(a.weights, b.weights)

    def test_naive_charges_more(self, karate, rng):
        assignments = rng.integers(0, 5, size=34)
        fast = SimulatedScheduler(num_workers=8)
        slow = SimulatedScheduler(num_workers=8)
        compress_graph(karate, assignments, sched=fast)
        compress_graph_naive(karate, assignments, sched=slow)
        assert slow.ledger.total_work > fast.ledger.total_work
