import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.builders import graph_from_edges
from repro.graphs.io import read_metis, write_metis


class TestMetisRoundtrip:
    def test_unweighted(self, karate, tmp_path):
        path = tmp_path / "karate.graph"
        write_metis(karate, path)
        loaded = read_metis(path)
        assert loaded.num_vertices == 34
        assert loaded.num_edges == 78
        assert np.array_equal(loaded.neighbors, karate.neighbors)

    def test_weighted(self, weighted_path, tmp_path):
        path = tmp_path / "w.graph"
        write_metis(weighted_path, path, weighted=True)
        loaded = read_metis(path)
        assert loaded.total_edge_weight == pytest.approx(
            weighted_path.total_edge_weight
        )

    def test_isolated_vertices(self, tmp_path):
        g = graph_from_edges([(0, 1)], num_vertices=4)
        path = tmp_path / "iso.graph"
        write_metis(g, path)
        loaded = read_metis(path)
        assert loaded.num_vertices == 4
        assert loaded.degree(3) == 0


class TestMetisParsing:
    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.graph"
        path.write_text("% a comment\n2 1\n2\n1\n")
        g = read_metis(path)
        assert g.num_edges == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.graph"
        path.write_text("")
        with pytest.raises(GraphFormatError, match="empty"):
            read_metis(path)

    def test_wrong_line_count(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 1\n2\n1\n")  # declares 3 vertices, 2 lines
        with pytest.raises(GraphFormatError, match="adjacency lines"):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "oob.graph"
        path.write_text("2 1\n3\n1\n")
        with pytest.raises(GraphFormatError, match="outside"):
            read_metis(path)

    def test_edge_count_mismatch(self, tmp_path):
        path = tmp_path / "m.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphFormatError, match="declares 5 edges"):
            read_metis(path)

    def test_dangling_weight(self, tmp_path):
        path = tmp_path / "d.graph"
        path.write_text("2 1 001\n2\n1 1.0\n")
        with pytest.raises(GraphFormatError, match="dangling"):
            read_metis(path)

    def test_header_too_short(self, tmp_path):
        path = tmp_path / "h.graph"
        path.write_text("5\n")
        with pytest.raises(GraphFormatError, match="header"):
            read_metis(path)


class TestMetisInterop:
    def test_cluster_metis_input_end_to_end(self, tmp_path, two_cliques):
        from repro.core.api import correlation_clustering

        path = tmp_path / "g.graph"
        write_metis(two_cliques, path)
        graph = read_metis(path)
        result = correlation_clustering(graph, resolution=0.2, seed=0)
        assert result.num_clusters == 2
