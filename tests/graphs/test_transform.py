import numpy as np
import pytest

from repro.graphs.builders import graph_from_edges
from repro.graphs.transform import (
    cluster_subgraph,
    induced_subgraph,
    k_core,
    largest_component,
)


class TestInducedSubgraph:
    def test_identity(self, karate):
        sub, ids = induced_subgraph(karate, np.arange(34))
        assert sub.num_edges == karate.num_edges
        assert np.array_equal(ids, np.arange(34))

    def test_clique_extraction(self, two_cliques):
        sub, ids = induced_subgraph(two_cliques, np.asarray([0, 1, 2, 3]))
        assert sub.num_vertices == 4
        assert sub.num_edges == 6  # the full K4, bridge edge dropped

    def test_node_weights_carry(self):
        g = graph_from_edges([(0, 1), (1, 2)],
                             node_weights=np.asarray([1.0, 2.0, 3.0]))
        sub, _ = induced_subgraph(g, np.asarray([1, 2]))
        assert np.allclose(sub.node_weights, [2.0, 3.0])

    def test_self_loops_carry(self):
        g = graph_from_edges([(0, 0), (0, 1)], num_vertices=2)
        sub, _ = induced_subgraph(g, np.asarray([0]))
        assert sub.self_loops[0] == 1.0

    def test_out_of_range(self, karate):
        with pytest.raises(ValueError):
            induced_subgraph(karate, np.asarray([50]))

    def test_duplicate_ids_collapsed(self, karate):
        sub, ids = induced_subgraph(karate, np.asarray([3, 3, 5]))
        assert sub.num_vertices == 2
        assert np.array_equal(ids, [3, 5])


class TestClusterSubgraph:
    def test_extracts_members(self, two_cliques):
        labels = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        sub, ids = cluster_subgraph(two_cliques, labels, 1)
        assert np.array_equal(ids, [4, 5, 6, 7])
        assert sub.num_edges == 6

    def test_missing_cluster(self, two_cliques):
        with pytest.raises(ValueError):
            cluster_subgraph(two_cliques, np.zeros(8, dtype=np.int64), 5)


class TestLargestComponent:
    def test_picks_giant(self):
        g = graph_from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=5)
        sub, ids = largest_component(g)
        assert np.array_equal(ids, [0, 1, 2])

    def test_connected_graph_unchanged(self, karate):
        sub, ids = largest_component(karate)
        assert sub.num_vertices == 34


class TestKCore:
    def test_two_core_peels_leaves(self):
        # Triangle with a pendant vertex.
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        core, ids = k_core(g, 2)
        assert np.array_equal(ids, [0, 1, 2])
        assert core.num_edges == 3

    def test_zero_core_is_everything(self, karate):
        core, ids = k_core(karate, 0)
        assert ids.size == 34

    def test_impossible_core_empty(self):
        g = graph_from_edges([(0, 1)])
        core, ids = k_core(g, 5)
        assert ids.size == 0

    def test_cascading_peel(self):
        # A path: 2-core is empty (endpoints peel, then everything).
        g = graph_from_edges([(i, i + 1) for i in range(5)])
        _, ids = k_core(g, 2)
        assert ids.size == 0

    def test_negative_k(self, karate):
        with pytest.raises(ValueError):
            k_core(karate, -1)

    def test_karate_has_4core(self, karate):
        core, ids = k_core(karate, 4)
        assert ids.size > 0
        assert core.degrees().min() >= 4