import numpy as np
import pytest

from repro.graphs.builders import graph_from_edges
from repro.graphs.stats import (
    BYTES_PER_UNDIRECTED_EDGE,
    MemoryTracker,
    connected_components,
    degree_statistics,
    graph_footprint_bytes,
)


class TestFootprint:
    def test_paper_convention(self, karate):
        assert graph_footprint_bytes(karate) == 78 * BYTES_PER_UNDIRECTED_EDGE

    def test_actual_bytes(self, karate):
        assert graph_footprint_bytes(karate, paper_convention=False) == karate.nbytes

    def test_empty_graph_nonzero(self):
        g = graph_from_edges([], num_vertices=2)
        assert graph_footprint_bytes(g) >= 1


class TestMemoryTracker:
    def test_peak_tracks_holds(self, karate, two_cliques):
        tracker = MemoryTracker()
        tracker.hold(0, karate)
        tracker.hold(1, two_cliques)
        peak = tracker.peak_bytes
        assert peak == karate.nbytes + two_cliques.nbytes
        tracker.release(1)
        assert tracker.current_bytes == karate.nbytes
        assert tracker.peak_bytes == peak  # peak never decreases

    def test_rehold_replaces(self, karate):
        tracker = MemoryTracker()
        tracker.hold(0, karate)
        tracker.hold(0, karate)
        assert tracker.current_bytes == karate.nbytes

    def test_release_unknown_level_noop(self):
        tracker = MemoryTracker()
        tracker.release(5)
        assert tracker.current_bytes == 0

    def test_overhead(self, karate):
        tracker = MemoryTracker()
        tracker.hold(0, karate)
        assert tracker.overhead(karate.nbytes) == pytest.approx(1.0)


class TestDegreeStatistics:
    def test_karate(self, karate):
        stats = degree_statistics(karate)
        assert stats["max"] == 17
        assert stats["min"] == 1
        assert stats["mean"] == pytest.approx(156 / 34)

    def test_empty(self):
        g = graph_from_edges([], num_vertices=0)
        assert degree_statistics(g)["max"] == 0.0


class TestConnectedComponents:
    def test_single_component(self, karate):
        labels = connected_components(karate)
        assert np.all(labels == 0)

    def test_two_components(self):
        g = graph_from_edges([(0, 1), (2, 3)], num_vertices=4)
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_vertices(self):
        g = graph_from_edges([(0, 1)], num_vertices=4)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 3

    def test_labels_dense(self, rng):
        edges = rng.integers(0, 60, size=(40, 2))
        g = graph_from_edges(edges[edges[:, 0] != edges[:, 1]], num_vertices=60)
        labels = connected_components(g)
        assert labels.min() == 0
        assert set(labels.tolist()) == set(range(labels.max() + 1))

    def test_long_path(self):
        # Exercises the pointer-jumping convergence on a high-diameter graph.
        n = 500
        g = graph_from_edges([(i, i + 1) for i in range(n - 1)])
        assert np.all(connected_components(g) == 0)
