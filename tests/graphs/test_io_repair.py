"""Edge-list repair mode: tolerate crawl junk, count what was fixed."""

import numpy as np
import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.errors import GraphFormatError
from repro.graphs.io import read_edge_list


def _write(tmp_path, text):
    path = tmp_path / "graph.txt"
    path.write_text(text)
    return path


class TestRepairMode:
    def test_self_loops_dropped_and_counted(self, tmp_path):
        path = _write(tmp_path, "0 1\n1 1\n1 2\n2 2\n")
        graph = read_edge_list(path, on_malformed="repair")
        assert graph.num_edges == 2
        assert float(graph.self_loops.sum()) == 0.0
        assert graph.repairs == {
            "self_loops_dropped": 2,
            "duplicate_edges_merged": 0,
        }

    def test_strict_routes_self_loops_to_loop_channel(self, tmp_path):
        path = _write(tmp_path, "0 1\n1 1\n")
        graph = read_edge_list(path)
        assert graph.repairs is None
        assert float(graph.self_loops.sum()) > 0.0

    def test_duplicates_merged_and_counted_both_orientations(self, tmp_path):
        path = _write(tmp_path, "0 1\n1 0\n0 1\n1 2\n")
        graph = read_edge_list(path, on_malformed="repair")
        assert graph.num_edges == 2
        assert graph.repairs["duplicate_edges_merged"] == 2
        # Merging sums the duplicate weights.
        u, v, w = graph.edge_list()
        weights = {(int(a), int(b)): float(x) for a, b, x in zip(u, v, w)}
        assert weights[(0, 1)] == pytest.approx(3.0)
        assert weights[(1, 2)] == pytest.approx(1.0)

    def test_clean_file_reports_zero_repairs(self, tmp_path):
        path = _write(tmp_path, "0 1\n1 2\n")
        graph = read_edge_list(path, on_malformed="repair")
        assert graph.repairs == {
            "self_loops_dropped": 0,
            "duplicate_edges_merged": 0,
        }

    def test_structural_junk_still_raises_in_repair_mode(self, tmp_path):
        for body in ("0 nope\n", "-1 2\n", "0 1 nan\n", "0 1 inf\n", "0\n"):
            path = _write(tmp_path, body)
            with pytest.raises(GraphFormatError):
                read_edge_list(path, on_malformed="repair")

    def test_unknown_mode_rejected(self, tmp_path):
        path = _write(tmp_path, "0 1\n")
        with pytest.raises(ValueError):
            read_edge_list(path, on_malformed="lenient")

    def test_repaired_and_clean_reads_agree(self, tmp_path):
        dirty = _write(tmp_path, "0 1\n1 0\n1 1\n1 2\n")
        clean_path = tmp_path / "clean.txt"
        clean_path.write_text("0 1 2\n1 2\n")
        repaired = read_edge_list(dirty, on_malformed="repair")
        clean = read_edge_list(clean_path)
        assert np.array_equal(repaired.offsets, clean.offsets)
        assert np.array_equal(repaired.neighbors, clean.neighbors)
        assert np.array_equal(repaired.weights, clean.weights)


class TestRepairSurfacing:
    def test_counts_flow_into_cluster_stats(self, tmp_path):
        path = _write(
            tmp_path,
            "\n".join(f"{i} {(i + 1) % 8}" for i in range(8)) + "\n3 3\n0 1\n",
        )
        graph = read_edge_list(path, on_malformed="repair")
        result = cluster(graph, ClusteringConfig(seed=1))
        stats = result.stats_dict()
        assert stats["input_repairs"] == {
            "self_loops_dropped": 1,
            "duplicate_edges_merged": 1,
        }

    def test_clean_graph_has_no_input_repairs_key(self, karate):
        result = cluster(karate, ClusteringConfig(seed=1))
        assert "input_repairs" not in result.stats_dict()
