import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.builders import graph_from_adjacency, graph_from_edges


class TestGraphFromEdges:
    def test_symmetrizes(self):
        g = graph_from_edges([(0, 1)])
        assert np.array_equal(g.neighborhood(1)[0], [0])

    def test_combines_duplicates(self):
        g = graph_from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1
        assert g.weights[0] == 3.0

    def test_duplicate_rejected_when_disabled(self):
        with pytest.raises(GraphFormatError):
            graph_from_edges([(0, 1), (0, 1)], combine_duplicates=False)

    def test_weights_summed(self):
        g = graph_from_edges(
            [(0, 1), (1, 0)], weights=np.asarray([1.5, 2.5])
        )
        assert g.weights[0] == 4.0

    def test_num_vertices_override(self):
        g = graph_from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_too_small(self):
        with pytest.raises(GraphFormatError):
            graph_from_edges([(0, 3)], num_vertices=2)

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            graph_from_edges([(-1, 0)])

    def test_bad_shape(self):
        with pytest.raises(GraphFormatError):
            graph_from_edges(np.zeros((3, 3), dtype=np.int64))

    def test_weight_shape_mismatch(self):
        with pytest.raises(GraphFormatError):
            graph_from_edges([(0, 1)], weights=np.asarray([1.0, 2.0]))

    def test_self_loops_routed(self):
        g = graph_from_edges([(2, 2), (0, 1)], weights=np.asarray([5.0, 1.0]))
        assert g.self_loops[2] == 5.0
        assert g.num_edges == 1

    def test_empty_edge_list(self):
        g = graph_from_edges([], num_vertices=4)
        assert g.num_vertices == 4

    def test_node_weights_passthrough(self):
        g = graph_from_edges([(0, 1)], node_weights=np.asarray([2.0, 3.0]))
        assert np.allclose(g.node_weights, [2, 3])

    def test_csr_sorted_per_row(self, rng):
        edges = rng.integers(0, 30, size=(200, 2))
        g = graph_from_edges(edges[edges[:, 0] != edges[:, 1]], num_vertices=30)
        for v in range(30):
            nbrs, _ = g.neighborhood(v)
            assert np.all(np.diff(nbrs) > 0)  # sorted, no duplicates
        assert g.is_symmetric()


class TestGraphFromAdjacency:
    def test_simple(self):
        matrix = np.asarray(
            [[0.0, 2.0, 0.0], [2.0, 0.0, 1.0], [0.0, 1.0, 0.0]]
        )
        g = graph_from_adjacency(matrix)
        assert g.num_edges == 2
        assert g.total_edge_weight == pytest.approx(3.0)

    def test_diagonal_becomes_self_loops(self):
        matrix = np.asarray([[1.5, 1.0], [1.0, 0.0]])
        g = graph_from_adjacency(matrix)
        assert g.self_loops[0] == 1.5

    def test_asymmetric_rejected(self):
        with pytest.raises(GraphFormatError):
            graph_from_adjacency(np.asarray([[0.0, 1.0], [0.0, 0.0]]))

    def test_nonsquare_rejected(self):
        with pytest.raises(GraphFormatError):
            graph_from_adjacency(np.zeros((2, 3)))
