import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph


class TestBasics:
    def test_counts(self, karate):
        assert karate.num_vertices == 34
        assert karate.num_edges == 78
        assert karate.num_directed_edges == 156

    def test_degrees(self, karate):
        degs = karate.degrees()
        assert degs.sum() == 156
        assert degs[33] == 17  # the instructor hub
        assert degs[0] == 16

    def test_neighborhood(self, triangle_graph):
        nbrs, wts = triangle_graph.neighborhood(0)
        assert np.array_equal(np.sort(nbrs), [1, 2])
        assert np.allclose(wts, 1.0)

    def test_total_edge_weight(self, weighted_path):
        assert weighted_path.total_edge_weight == pytest.approx(2.5)

    def test_repr(self, triangle_graph):
        assert "n=3" in repr(triangle_graph)


class TestWeightedDegrees:
    def test_unweighted_equals_degree(self, karate):
        assert np.allclose(karate.weighted_degrees(), karate.degrees())

    def test_weighted(self, weighted_path):
        assert np.allclose(weighted_path.weighted_degrees(), [2.0, 2.5, 0.5])

    def test_self_loop_counts_twice(self):
        g = graph_from_edges([(0, 1), (1, 1)], num_vertices=2)
        assert g.weighted_degrees()[1] == pytest.approx(1.0 + 2.0)


class TestSelfLoops:
    def test_separated_from_adjacency(self):
        g = graph_from_edges([(0, 0), (0, 1)], num_vertices=2)
        assert g.self_loops[0] == 1.0
        assert g.num_edges == 1

    def test_total_weight_includes_self_loops(self):
        g = graph_from_edges([(0, 0), (0, 1)], num_vertices=2)
        assert g.total_edge_weight == pytest.approx(2.0)

    def test_adjacency_self_loop_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                offsets=np.asarray([0, 1]),
                neighbors=np.asarray([0]),
                weights=np.asarray([1.0]),
            )


class TestValidation:
    def test_bad_offsets_start(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.asarray([1, 2]), np.asarray([0]), np.asarray([1.0]))

    def test_decreasing_offsets(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.asarray([0, 2, 1]), np.asarray([1, 0]), np.asarray([1.0, 1.0]))

    def test_neighbor_out_of_range(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.asarray([0, 1, 2]), np.asarray([1, 5]), np.ones(2))

    def test_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.asarray([0, 2]), np.asarray([1, 0]), np.ones(3))


class TestDerivedGraphs:
    def test_with_node_weights(self, triangle_graph):
        g = triangle_graph.with_node_weights(np.asarray([2.0, 3.0, 4.0]))
        assert np.allclose(g.node_weights, [2, 3, 4])
        assert np.allclose(g.node_weight_sq, [4, 9, 16])
        # Shares adjacency arrays with the original.
        assert g.neighbors is triangle_graph.neighbors

    def test_with_unit_weights(self, weighted_path):
        g = weighted_path.with_unit_weights()
        assert np.allclose(g.weights, 1.0)
        assert weighted_path.weights.max() == 2.0  # original untouched


class TestIntrospection:
    def test_symmetry(self, karate):
        assert karate.is_symmetric()

    def test_asymmetric_detected(self):
        g = CSRGraph(
            offsets=np.asarray([0, 1, 1]),
            neighbors=np.asarray([1]),
            weights=np.asarray([1.0]),
            validate=False,
        )
        assert not g.is_symmetric()

    def test_edge_list_canonical(self, karate):
        u, v, w = karate.edge_list()
        assert u.size == 78
        assert np.all(u < v)
        assert np.allclose(w, 1.0)

    def test_nbytes_positive(self, karate):
        assert karate.nbytes > 0

    def test_empty_graph(self):
        g = graph_from_edges(np.zeros((0, 2), dtype=np.int64), num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 0
        assert g.total_edge_weight == 0.0
