import numpy as np

from repro.graphs.karate import karate_club_factions, karate_club_graph


class TestKarate:
    def test_size_matches_paper(self):
        # Appendix C.1: "the karate graph, which consists of 34 vertices
        # and 78 edges".
        g = karate_club_graph()
        assert g.num_vertices == 34
        assert g.num_edges == 78

    def test_unweighted(self):
        assert np.allclose(karate_club_graph().weights, 1.0)

    def test_symmetric(self):
        assert karate_club_graph().is_symmetric()

    def test_factions_are_binary_partition(self):
        labels = karate_club_factions()
        assert labels.shape == (34,)
        assert set(labels.tolist()) == {0, 1}

    def test_faction_sizes(self):
        labels = karate_club_factions()
        assert (labels == 0).sum() == 17
        assert (labels == 1).sum() == 17

    def test_hubs_in_opposite_factions(self):
        labels = karate_club_factions()
        assert labels[0] != labels[33]  # Mr. Hi vs the officer
