"""CLI: supervision flags, chaos subcommand, input-repair mode."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.supervisor


class TestSuperviseFlags:
    def test_supervised_clean_run(self, capsys):
        code = main(["cluster", "--karate", "--supervise"])
        assert code == 0
        err = capsys.readouterr().err
        assert "supervised: rung=as-configured" in err
        assert "attempts=1" in err

    def test_supervised_run_under_faults_still_exits_cleanly(self, capsys):
        code = main([
            "cluster", "--karate", "--supervise",
            "--inject", "transient=0.5", "--seed", "3",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "supervised: rung=" in err

    def test_deadline_flags_accepted(self, capsys):
        code = main([
            "cluster", "--karate",
            "--run-deadline", "600", "--level-deadline", "300",
        ])
        assert code == 0
        assert "supervised:" in capsys.readouterr().err

    def test_checkpoint_dir_is_used(self, tmp_path, capsys):
        code = main([
            "cluster", "--karate", "--supervise",
            "--checkpoint-dir", str(tmp_path),
        ])
        assert code == 0

    def test_max_attempts_flag(self, capsys):
        code = main([
            "cluster", "--karate", "--supervise", "--max-attempts", "1",
        ])
        assert code == 0


class TestOnMalformed:
    def test_repair_mode_reports_counts(self, tmp_path, capsys):
        path = tmp_path / "dirty.txt"
        path.write_text("0 1\n1 1\n1 0\n1 2\n")
        code = main([
            "cluster", "--input", str(path), "--on-malformed", "repair",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "input repairs:" in err
        assert "self_loops_dropped=1" in err
        assert "duplicate_edges_merged=1" in err

    def test_strict_is_the_default(self, tmp_path, capsys):
        path = tmp_path / "dirty.txt"
        path.write_text("0 1\n1 1\n")
        code = main(["cluster", "--input", str(path)])
        assert code == 0
        assert "input repairs" not in capsys.readouterr().err


class TestChaosCommand:
    def test_small_matrix_recovers(self, capsys):
        code = main([
            "chaos", "--karate",
            "--engines", "relaxed", "--kernels", "vectorized",
            "--kinds", "transient", "--no-replay",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos matrix:" in out
        assert "ALL RECOVERED" in out

    def test_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main([
            "chaos", "--karate",
            "--engines", "sequential", "--kernels", "reference",
            "--kinds", "transient", "--no-replay",
            "--json", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True
        assert payload["cells"][0]["engine"] == "sequential"

    def test_unknown_kind_is_a_typed_error(self, capsys):
        code = main(["chaos", "--karate", "--kinds", "meteor-strike"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown fault kind" in err and "meteor-strike" in err
