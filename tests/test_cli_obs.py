"""CLI observability flags: --trace / --metrics / --profile / --engine."""

import json

import pytest

from repro.cli import main
from repro.obs.schema import validate_trace_text
from repro.obs.tracer import Tracer


def _run(argv):
    return main(["cluster", "--karate", "--resolution", "0.05",
                 "--seed", "3"] + argv)


def test_trace_flag_writes_valid_jsonl(tmp_path, capsys):
    trace = tmp_path / "out.jsonl"
    assert _run(["--trace", str(trace)]) == 0
    assert f"trace written to {trace}" in capsys.readouterr().out
    assert validate_trace_text(trace.read_text()) == []


def test_metrics_flag_format_by_extension(tmp_path):
    jsonl = tmp_path / "m.jsonl"
    prom = tmp_path / "m.prom"
    assert _run(["--metrics", str(jsonl)]) == 0
    assert _run(["--metrics", str(prom)]) == 0
    # .jsonl: every line is a JSON sample object.
    samples = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert any(s["metric"] == "repro_moves_total" for s in samples)
    # anything else: Prometheus text exposition.
    assert "# TYPE repro_moves_total counter" in prom.read_text()


def test_profile_flag_prints_tables(capsys):
    assert _run(["--profile"]) == 0
    out = capsys.readouterr().out
    assert "per-level profile:" in out
    assert "top 8 regions by simulated work:" in out
    assert "round distributions (bucket-interpolated):" in out
    assert "p50=" in out and "p95=" in out


def test_profile_top_bounds_the_region_table(capsys):
    assert _run(["--profile", "--profile-top", "2"]) == 0
    out = capsys.readouterr().out
    assert "top 2 regions by simulated work:" in out
    regions = [
        line
        for line in out.splitlines()
        if line.startswith("  ") and "%" in line
    ]
    assert len(regions) == 2


def test_profile_json_writes_payload_without_profile_flag(tmp_path, capsys):
    path = tmp_path / "profile.json"
    assert _run(["--profile-json", str(path), "--profile-top", "3"]) == 0
    out = capsys.readouterr().out
    assert "per-level profile:" not in out  # table needs --profile
    payload = json.loads(path.read_text())
    assert payload["levels"]
    assert len(payload["top_regions"]) == 3
    metrics = {row["metric"] for row in payload["round_quantiles"]}
    assert any(m.startswith("round gain") for m in metrics)
    assert any(m.startswith("frontier size") for m in metrics)
    for row in payload["round_quantiles"]:
        assert row["p50"] <= row["p95"]
    assert payload["stats"]["num_clusters"] > 0


def test_no_flags_no_observability_output(capsys):
    assert _run([]) == 0
    out = capsys.readouterr().out
    assert "trace written" not in out
    assert "per-level profile" not in out


@pytest.mark.parametrize(
    "engine", ["relaxed", "prefix", "colored", "event", "sequential"]
)
def test_engine_override_traces_that_engine(tmp_path, engine):
    trace = tmp_path / "out.jsonl"
    assert _run(["--engine", engine, "--trace", str(trace)]) == 0
    records = Tracer.parse_jsonl(trace.read_text())
    engines = {
        r["attrs"]["engine"]
        for r in records
        if r["type"] == "span" and r["name"] == "round"
    }
    assert engines == {engine}


def test_observability_composes_with_resilience(tmp_path, capsys):
    trace = tmp_path / "out.jsonl"
    assert _run(
        ["--trace", str(trace), "--max-rounds", "1"]
    ) == 0
    err = capsys.readouterr().err
    assert "budget" in err
    records = Tracer.parse_jsonl(trace.read_text())
    kinds = {
        r["attrs"]["kind"]
        for r in records
        if r["type"] == "event" and r["name"] == "resilience"
    }
    assert "budget-stop" in kinds


def test_trace_contains_worker_lanes(tmp_path):
    trace = tmp_path / "out.jsonl"
    assert _run(["--trace", str(trace)]) == 0
    records = Tracer.parse_jsonl(trace.read_text())
    lanes = {r["worker"] for r in records if r["type"] == "worker"}
    assert len(lanes) > 1


def test_obs_timeline_subcommand(tmp_path, capsys):
    trace = tmp_path / "out.jsonl"
    assert _run(["--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["obs", "timeline", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "worker lanes" in out
    chrome = tmp_path / "out.chrome.json"
    assert chrome.exists()
    document = json.loads(chrome.read_text())
    pids = {e["pid"] for e in document["traceEvents"]}
    assert pids == {0, 1}


def test_obs_timeline_rejects_invalid_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "span", "name": "broken"}\n')
    assert main(["obs", "timeline", str(bad)]) == 2
    assert "invalid trace" in capsys.readouterr().err


def test_register_report_and_diff_flow(tmp_path, capsys):
    runs = tmp_path / "runs.jsonl"
    assert _run(["--register", str(runs), "--run-id", "base"]) == 0
    # A second entry with identical metrics (re-running would add real
    # wall-clock jitter and make the pass/fail assertion flaky).
    record = json.loads(runs.read_text().splitlines()[0])
    record["run_id"] = "same"
    with open(runs, "a") as handle:
        handle.write(json.dumps(record) + "\n")
    capsys.readouterr()

    assert main(["obs", "report", str(runs)]) == 0
    report_out = capsys.readouterr().out
    assert "base" in report_out and "same" in report_out

    # Identical workloads and metrics: the diff gate passes.
    assert main(["obs", "diff", str(runs), "base", "same"]) == 0
    assert "0 regression(s)" in capsys.readouterr().out


def test_obs_diff_fails_on_injected_wall_regression(tmp_path, capsys):
    runs = tmp_path / "runs.jsonl"
    assert _run(["--register", str(runs), "--run-id", "base"]) == 0
    record = json.loads(runs.read_text().splitlines()[0])
    record["run_id"] = "slow"
    record["metrics"]["wall_seconds"] *= 1.2  # > 10% wall regression
    with open(runs, "a") as handle:
        handle.write(json.dumps(record) + "\n")
    capsys.readouterr()
    assert main(["obs", "diff", str(runs), "base", "slow"]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_obs_diff_unknown_run_id(tmp_path, capsys):
    runs = tmp_path / "runs.jsonl"
    assert _run(["--register", str(runs), "--run-id", "base"]) == 0
    capsys.readouterr()
    assert main(["obs", "diff", str(runs), "base", "nope"]) == 2
    assert "not in registry" in capsys.readouterr().err


def test_obs_diff_vacuous_compare_fails(tmp_path, capsys):
    """A diff that compared zero metrics is a failure, not a silent pass."""
    runs = tmp_path / "runs.jsonl"
    assert _run(["--register", str(runs), "--run-id", "base"]) == 0
    record = json.loads(runs.read_text().splitlines()[0])
    record["run_id"] = "hollow"
    # Metrics present (schema requires them) but non-numeric after a
    # hand edit: every comparison row is skipped.
    for name in list(record["metrics"]):
        record["metrics"][name] = float("nan")
    with open(runs, "a") as handle:
        handle.write(json.dumps(record).replace("NaN", '"x"') + "\n")
    capsys.readouterr()
    # The corrupt record is rejected at load time -> data error (2) ...
    assert main(["obs", "diff", str(runs), "base", "hollow"]) == 2


def test_obs_diff_compared_zero_exit(monkeypatch, tmp_path, capsys):
    """compared == 0 on an otherwise-ok report exits 1."""
    import repro.obs.registry as registry_mod
    from repro.obs.bench import CompareReport

    runs = tmp_path / "runs.jsonl"
    assert _run(["--register", str(runs), "--run-id", "base"]) == 0
    record = json.loads(runs.read_text().splitlines()[0])
    record["run_id"] = "same"
    with open(runs, "a") as handle:
        handle.write(json.dumps(record) + "\n")
    monkeypatch.setattr(
        registry_mod, "diff_runs",
        lambda *a, **k: CompareReport(suite="runs"),
    )
    capsys.readouterr()
    assert main(["obs", "diff", str(runs), "base", "same"]) == 1
    assert "no metrics were comparable" in capsys.readouterr().err


def test_obs_report_html_from_cluster_artifacts(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.jsonl"
    runs = tmp_path / "runs.jsonl"
    html = tmp_path / "report.html"
    assert _run(["--trace", str(trace), "--metrics", str(metrics),
                 "--register", str(runs), "--run-id", "base"]) == 0
    capsys.readouterr()
    assert main(["obs", "report", str(runs), "--html", str(html),
                 "--trace", str(trace), "--metrics", str(metrics),
                 "--iteration-cap", "10"]) == 0
    assert f"report written to {html}" in capsys.readouterr().out
    text = html.read_text()
    assert "<script" not in text.lower()
    assert "Span waterfall" in text
    assert "Registry" in text


def test_obs_report_html_without_registry(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    html = tmp_path / "report.html"
    assert _run(["--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["obs", "report", "--html", str(html),
                 "--trace", str(trace)]) == 0
    assert html.exists()


def test_obs_report_requires_registry_or_html_inputs(capsys):
    assert main(["obs", "report"]) == 2
    assert "error" in capsys.readouterr().err
    assert main(["obs", "report", "--html", "/tmp/x.html"]) == 2
