"""CLI observability flags: --trace / --metrics / --profile / --engine."""

import json

import pytest

from repro.cli import main
from repro.obs.schema import validate_trace_text
from repro.obs.tracer import Tracer


def _run(argv):
    return main(["cluster", "--karate", "--resolution", "0.05",
                 "--seed", "3"] + argv)


def test_trace_flag_writes_valid_jsonl(tmp_path, capsys):
    trace = tmp_path / "out.jsonl"
    assert _run(["--trace", str(trace)]) == 0
    assert f"trace written to {trace}" in capsys.readouterr().out
    assert validate_trace_text(trace.read_text()) == []


def test_metrics_flag_format_by_extension(tmp_path):
    jsonl = tmp_path / "m.jsonl"
    prom = tmp_path / "m.prom"
    assert _run(["--metrics", str(jsonl)]) == 0
    assert _run(["--metrics", str(prom)]) == 0
    # .jsonl: every line is a JSON sample object.
    samples = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert any(s["metric"] == "repro_moves_total" for s in samples)
    # anything else: Prometheus text exposition.
    assert "# TYPE repro_moves_total counter" in prom.read_text()


def test_profile_flag_prints_tables(capsys):
    assert _run(["--profile"]) == 0
    out = capsys.readouterr().out
    assert "per-level profile:" in out
    assert "top regions by simulated work:" in out


def test_no_flags_no_observability_output(capsys):
    assert _run([]) == 0
    out = capsys.readouterr().out
    assert "trace written" not in out
    assert "per-level profile" not in out


@pytest.mark.parametrize(
    "engine", ["relaxed", "prefix", "colored", "event", "sequential"]
)
def test_engine_override_traces_that_engine(tmp_path, engine):
    trace = tmp_path / "out.jsonl"
    assert _run(["--engine", engine, "--trace", str(trace)]) == 0
    records = Tracer.parse_jsonl(trace.read_text())
    engines = {
        r["attrs"]["engine"]
        for r in records
        if r["type"] == "span" and r["name"] == "round"
    }
    assert engines == {engine}


def test_observability_composes_with_resilience(tmp_path, capsys):
    trace = tmp_path / "out.jsonl"
    assert _run(
        ["--trace", str(trace), "--max-rounds", "1"]
    ) == 0
    err = capsys.readouterr().err
    assert "budget" in err
    records = Tracer.parse_jsonl(trace.read_text())
    kinds = {
        r["attrs"]["kind"]
        for r in records
        if r["type"] == "event" and r["name"] == "resilience"
    }
    assert "budget-stop" in kinds
