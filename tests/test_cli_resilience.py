"""CLI: resilience flags, typed-error exit codes, --verbose re-raise."""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import CheckpointError, GraphFormatError


def _read_labels(path):
    return np.asarray(
        [int(line) for line in path.read_text().split()], dtype=np.int64
    )


class TestErrorBoundary:
    def test_typed_error_exits_2_with_one_line_message(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 1\nx 2\n")
        code = main(["cluster", "--input", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "GraphFormatError" in err and "bad.txt:2" in err

    def test_verbose_reraises(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 1\nx 2\n")
        with pytest.raises(GraphFormatError):
            main(["--verbose", "cluster", "--input", str(bad)])

    def test_resume_from_garbage_exits_2(self, tmp_path, capsys):
        garbage = tmp_path / "ck.npz"
        garbage.write_bytes(b"not an npz")
        code = main(
            ["cluster", "--karate", "--resume", str(garbage)]
        )
        assert code == 2
        assert "CheckpointError" in capsys.readouterr().err

    def test_verbose_reraises_checkpoint_error(self, tmp_path):
        garbage = tmp_path / "ck.npz"
        garbage.write_bytes(b"not an npz")
        with pytest.raises(CheckpointError):
            main(["--verbose", "cluster", "--karate", "--resume", str(garbage)])


class TestResilienceFlags:
    def test_audit_run_succeeds(self, capsys):
        code = main(
            ["cluster", "--karate", "--resolution", "0.05", "--seed", "7",
             "--audit"]
        )
        assert code == 0
        assert "DEGRADED" not in capsys.readouterr().out

    def test_budget_degrades_and_reports(self, capsys):
        code = main(
            ["cluster", "--karate", "--resolution", "0.05", "--seed", "7",
             "--max-rounds", "1"]
        )
        assert code == 0  # graceful degradation is a successful exit
        captured = capsys.readouterr()
        assert "DEGRADED" in captured.out
        assert "round budget" in captured.err

    def test_strict_budget_exits_2(self, capsys):
        code = main(
            ["cluster", "--karate", "--resolution", "0.05", "--seed", "7",
             "--max-rounds", "1", "--strict"]
        )
        assert code == 2
        assert "BudgetExhausted" in capsys.readouterr().err

    def test_inject_reports_fault_tally(self, capsys):
        code = main(
            ["cluster", "--karate", "--resolution", "0.05", "--seed", "7",
             "--inject", "drop-move=0.3", "--fault-seed", "3", "--audit"]
        )
        assert code == 0
        assert "faults injected:" in capsys.readouterr().err

    def test_bad_inject_spec_exits_2(self, capsys):
        code = main(["cluster", "--karate", "--inject", "segfault=0.5"])
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_checkpoint_then_resume_identical_labels(self, tmp_path, capsys):
        ckpt = tmp_path / "ck.npz"
        first = tmp_path / "first.txt"
        second = tmp_path / "second.txt"
        base = ["cluster", "--karate", "--resolution", "0.05", "--seed", "7"]
        assert main(base + ["--checkpoint", str(ckpt), "--output", str(first)]) == 0
        assert "checkpoint written to" in capsys.readouterr().out
        assert ckpt.exists()
        assert main(base + ["--resume", str(ckpt), "--output", str(second)]) == 0
        assert "resumed from" in capsys.readouterr().err
        assert np.array_equal(_read_labels(first), _read_labels(second))

    def test_resume_under_different_config_exits_2(self, tmp_path, capsys):
        ckpt = tmp_path / "ck.npz"
        base = ["cluster", "--karate", "--seed", "7"]
        assert main(base + ["--resolution", "0.05", "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        code = main(base + ["--resolution", "0.25", "--resume", str(ckpt)])
        assert code == 2
        assert "cannot resume under" in capsys.readouterr().err
