"""CLI: ``repro serve`` — the workload-driver front to the gateway."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.serving


def serve(*extra):
    return [
        "serve", "--karate", "--resolution", "0.1", "--seed", "3",
        "--requests", "80", "--workload-seed", "5", *extra,
    ]


class TestServeCommand:
    def test_sim_driver_with_replay_gate(self, capsys):
        assert main(serve("--verify-replay")) == 0
        out = capsys.readouterr().out
        assert "driver=sim" in out
        assert "bit-identical" in out
        assert "no silent drops" in out

    def test_serial_baseline(self, capsys):
        assert main(serve("--serial-baseline")) == 0
        assert "driver=serial-sim" in capsys.readouterr().out

    def test_threaded_driver(self, capsys):
        assert main(serve("--driver", "threads", "--threads", "2",
                          "--verify-replay")) == 0
        out = capsys.readouterr().out
        assert "driver=threads" in out
        assert "bit-identical" in out

    def test_doctor_reports_gateway_facts(self, capsys):
        assert main(serve("--doctor")) == 0
        out = capsys.readouterr().out
        assert "gateway-read-shed-rate" in out

    def test_metrics_include_gateway_series(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        assert main(serve("--metrics", str(metrics))) == 0
        text = metrics.read_text()
        assert "repro_gateway_requests_total" in text
        assert "repro_gateway_epoch" in text

    def test_identical_runs_identical_summaries(self, capsys):
        assert main(serve()) == 0
        first = capsys.readouterr().out
        assert main(serve()) == 0
        second = capsys.readouterr().out
        assert first == second
