import numpy as np
import pytest

from repro.eval.nmi import mutual_information, normalized_mutual_information


class TestMutualInformation:
    def test_identical_equals_entropy(self):
        labels = np.asarray([0, 0, 1, 1])
        assert mutual_information(labels, labels) == pytest.approx(np.log(2))

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert mutual_information(a, b) < 0.01

    def test_nonnegative(self, rng):
        for _ in range(5):
            a = rng.integers(0, 3, size=100)
            b = rng.integers(0, 5, size=100)
            assert mutual_information(a, b) >= -1e-12

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mutual_information(np.zeros(3), np.zeros(4))


class TestNMI:
    def test_identical_is_one(self):
        labels = np.asarray([0, 1, 1, 2, 2, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        a = np.asarray([0, 0, 1, 1])
        b = np.asarray([9, 9, 4, 4])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_bounded(self, rng):
        for _ in range(5):
            a = rng.integers(0, 6, size=300)
            b = rng.integers(0, 3, size=300)
            nmi = normalized_mutual_information(a, b)
            assert -1e-9 <= nmi <= 1.0 + 1e-9

    def test_trivial_partition_zero(self):
        a = np.zeros(10, dtype=np.int64)
        b = np.asarray([0, 1] * 5)
        assert normalized_mutual_information(a, b) == 0.0

    def test_both_trivial_is_one(self):
        a = np.zeros(5, dtype=np.int64)
        assert normalized_mutual_information(a, a) == 1.0

    def test_refinement_has_high_nmi(self):
        """Splitting each true cluster in half keeps substantial NMI."""
        truth = np.repeat(np.arange(4), 50)
        refined = truth * 2 + (np.arange(200) % 2)
        nmi = normalized_mutual_information(truth, refined)
        assert 0.5 < nmi < 1.0
