import numpy as np
import pytest

from repro.eval.ari import adjusted_rand_index, contingency_counts


class TestContingency:
    def test_counts(self):
        cells = contingency_counts(
            np.asarray([0, 0, 1, 1]), np.asarray([0, 1, 0, 1])
        )
        assert np.array_equal(np.sort(cells), [1, 1, 1, 1])

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            contingency_counts(np.zeros(3), np.zeros(4))


class TestARI:
    def test_identical_partitions(self):
        labels = np.asarray([0, 0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_label_permutation_invariant(self):
        a = np.asarray([0, 0, 1, 1, 2, 2])
        b = np.asarray([5, 5, 9, 9, 7, 7])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        a = rng.integers(0, 5, size=2000)
        b = rng.integers(0, 5, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_against_known_value(self):
        # A worked example: ARI of these two 6-item partitions is known.
        a = np.asarray([0, 0, 0, 1, 1, 1])
        b = np.asarray([0, 0, 1, 1, 2, 2])
        # index = C(2,2)*...: cells = [2,1,1,2] -> sum C(n,2) = 1+0+0+1 = 2
        # sum_a = 2*C(3,2)=6, sum_b = 3*C(2,2)=3, total = C(6,2)=15
        # expected = 6*3/15 = 1.2; max = 4.5; ari = (2-1.2)/(4.5-1.2)
        assert adjusted_rand_index(a, b) == pytest.approx((2 - 1.2) / (4.5 - 1.2))

    def test_trivial_inputs(self):
        assert adjusted_rand_index(np.asarray([0]), np.asarray([1])) == 1.0

    def test_all_same_vs_all_distinct(self):
        a = np.zeros(10, dtype=np.int64)
        b = np.arange(10)
        # Degenerate comparison: both sides have zero adjusted agreement
        # possibility; the convention gives max == expected -> 1.0? No:
        # sum_a = C(10,2) = 45, sum_b = 0 -> expected 0, max 22.5, index 0.
        assert adjusted_rand_index(a, b) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        a = rng.integers(0, 4, size=200)
        b = rng.integers(0, 6, size=200)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )
