import numpy as np
import pytest

from repro.eval.pr_curve import (
    PRPoint,
    best_recall_at_precision,
    paper_gamma_sweep,
    paper_lambda_sweep,
    pr_curve,
    pr_dominates,
)


class TestSweepGrids:
    def test_lambda_grid_matches_paper(self):
        grid = paper_lambda_sweep()
        assert grid.size == 99
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(0.99)

    def test_gamma_grid_matches_paper(self):
        grid = paper_gamma_sweep()
        assert grid[0] == pytest.approx(0.024)
        assert np.all(np.diff(grid) > 0)


class TestPrCurve:
    def test_sweep_calls_clusterer(self, small_planted):
        calls = []

        def fake_cluster(resolution):
            calls.append(resolution)
            return small_planted.labels

        points = pr_curve(fake_cluster, [0.1, 0.2], small_planted.communities)
        assert calls == [0.1, 0.2]
        assert len(points) == 2
        assert points[0].precision > 0.9

    def test_num_clusters_recorded(self, small_planted):
        points = pr_curve(
            lambda r: small_planted.labels, [0.5], small_planted.communities
        )
        assert points[0].num_clusters == small_planted.num_communities


class TestBestRecall:
    def test_filters_by_precision(self):
        points = [
            PRPoint(0.1, precision=0.9, recall=0.3),
            PRPoint(0.2, precision=0.4, recall=0.9),
        ]
        assert best_recall_at_precision(points, 0.5) == 0.3
        assert best_recall_at_precision(points, 0.3) == 0.9

    def test_none_qualify(self):
        points = [PRPoint(0.1, precision=0.2, recall=0.9)]
        assert best_recall_at_precision(points, 0.5) == 0.0


class TestDominates:
    def test_self_domination(self):
        points = [PRPoint(0.1, precision=0.8, recall=0.6)]
        assert pr_dominates(points, points) == 1.0

    def test_strictly_better_curve(self):
        better = [PRPoint(0.1, precision=0.9, recall=0.9)]
        worse = [PRPoint(0.1, precision=0.9, recall=0.2)]
        assert pr_dominates(better, worse) == 1.0
        assert pr_dominates(worse, better) < 1.0

    def test_f1(self):
        p = PRPoint(0.1, precision=0.5, recall=0.5)
        assert p.f1 == pytest.approx(0.5)
        assert PRPoint(0.1, precision=0.0, recall=0.0).f1 == 0.0
