import numpy as np
import pytest

from repro.eval.bcubed import bcubed


class TestBcubed:
    def test_perfect_clustering(self):
        assignments = np.asarray([0, 0, 1, 1])
        pr = bcubed(assignments, [np.asarray([0, 1]), np.asarray([2, 3])])
        assert pr.precision == pytest.approx(1.0)
        assert pr.recall == pytest.approx(1.0)

    def test_everything_one_cluster(self):
        assignments = np.zeros(4, dtype=np.int64)
        pr = bcubed(assignments, [np.asarray([0, 1]), np.asarray([2, 3])])
        assert pr.recall == pytest.approx(1.0)
        # Each item: 2 of its 4 cluster-mates (incl. itself) share a
        # community -> precision 0.5.
        assert pr.precision == pytest.approx(0.5)

    def test_singletons(self):
        assignments = np.arange(4)
        pr = bcubed(assignments, [np.asarray([0, 1, 2, 3])])
        assert pr.precision == pytest.approx(1.0)
        assert pr.recall == pytest.approx(0.25)

    def test_penalizes_giant_cluster_unlike_matching(self, small_planted):
        """The community-matching metric gives a giant cluster recall 1.0;
        B-cubed's precision collapses on it — the gaming-resistance that
        motivates reporting both."""
        from repro.eval.ground_truth import average_precision_recall

        n = small_planted.graph.num_vertices
        giant = np.zeros(n, dtype=np.int64)
        matching = average_precision_recall(giant, small_planted.communities)
        cubed = bcubed(giant, small_planted.communities)
        assert matching.recall == pytest.approx(1.0)
        assert cubed.precision < matching.recall / 2

    def test_agrees_on_good_clusterings(self, small_planted):
        from repro.core.api import correlation_clustering

        result = correlation_clustering(
            small_planted.graph, resolution=0.05, seed=0
        )
        pr = bcubed(result.assignments, small_planted.communities)
        assert pr.precision > 0.7
        assert pr.recall > 0.6

    def test_overlap_counts_once(self):
        # Items 0,1 share two communities; precision still capped at 1.
        assignments = np.asarray([0, 0])
        pr = bcubed(
            assignments, [np.asarray([0, 1]), np.asarray([0, 1])]
        )
        assert pr.precision == pytest.approx(1.0)

    def test_empty_communities_rejected(self):
        with pytest.raises(ValueError):
            bcubed(np.zeros(3, dtype=np.int64), [])

    def test_uncovered_items_penalize_mixed_clusters(self):
        # Item 2 belongs to no community but sits in a 3-item cluster.
        assignments = np.asarray([0, 0, 0])
        pr = bcubed(assignments, [np.asarray([0, 1])])
        assert pr.precision < 1.0
