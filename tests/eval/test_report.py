import numpy as np
import pytest

from repro.core.api import correlation_clustering
from repro.eval.report import (
    ClusterReport,
    cluster_report,
    compare_reports,
    intra_edge_fraction,
)
from repro.graphs.builders import graph_from_edges


class TestIntraEdgeFraction:
    def test_single_cluster_is_one(self, karate):
        assert intra_edge_fraction(karate, np.zeros(34)) == 1.0

    def test_singletons_zero(self, karate):
        assert intra_edge_fraction(karate, np.arange(34)) == 0.0

    def test_weighted_split(self, weighted_path):
        # Edges (0,1)=2.0 and (1,2)=0.5; cluster {0,1} keeps 2.0 of 2.5.
        frac = intra_edge_fraction(weighted_path, np.asarray([0, 0, 1]))
        assert frac == pytest.approx(2.0 / 2.5)

    def test_empty_graph(self):
        g = graph_from_edges([], num_vertices=3)
        assert intra_edge_fraction(g, np.zeros(3)) == 0.0


class TestClusterReport:
    def test_basic_fields(self, two_cliques):
        labels = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        report = cluster_report(two_cliques, labels, resolution=0.2)
        assert report.num_clusters == 2
        assert report.max_cluster_size == 4
        assert report.mean_cluster_size == 4.0
        assert report.singleton_fraction == 0.0
        assert report.cc_objective > 0

    def test_with_communities(self, small_planted):
        result = correlation_clustering(
            small_planted.graph, resolution=0.05, seed=0
        )
        report = cluster_report(
            small_planted.graph,
            result.assignments,
            resolution=0.05,
            communities=small_planted.communities,
            reference_labels=small_planted.labels,
        )
        assert report.precision is not None and report.precision > 0.5
        assert report.ari is not None and report.ari > 0.3
        assert report.nmi is not None

    def test_shape_validated(self, karate):
        with pytest.raises(ValueError):
            cluster_report(karate, np.zeros(5, dtype=np.int64))

    def test_as_row_lengths(self, karate):
        bare = cluster_report(karate, np.arange(34))
        assert len(bare.as_row()) == 6
        with_truth = cluster_report(
            karate, np.arange(34), reference_labels=np.arange(34)
        )
        assert len(with_truth.as_row()) == 8


class TestCompareReports:
    def test_multiple_methods(self, karate):
        reports = compare_reports(
            karate,
            {"singletons": np.arange(34), "whole": np.zeros(34, dtype=np.int64)},
            resolution=0.1,
        )
        assert set(reports) == {"singletons", "whole"}
        assert reports["singletons"].num_clusters == 34
        assert reports["whole"].num_clusters == 1
