import numpy as np
import pytest

from repro.eval.ground_truth import (
    PrecisionRecall,
    average_precision_recall,
    match_communities,
)


class TestMatchCommunities:
    def test_best_overlap_chosen(self):
        assignments = np.asarray([0, 0, 0, 1, 1])
        matches = match_communities(assignments, [np.asarray([0, 1, 3])])
        assert matches == [(0, 2)]

    def test_multiple_communities_can_match_same_cluster(self):
        assignments = np.zeros(6, dtype=np.int64)
        matches = match_communities(
            assignments, [np.asarray([0, 1]), np.asarray([2, 3])]
        )
        assert matches[0][0] == matches[1][0] == 0


class TestAveragePrecisionRecall:
    def test_perfect_clustering(self):
        assignments = np.asarray([0, 0, 1, 1])
        pr = average_precision_recall(
            assignments, [np.asarray([0, 1]), np.asarray([2, 3])]
        )
        assert pr.precision == 1.0
        assert pr.recall == 1.0
        assert pr.f1 == 1.0

    def test_everything_one_cluster(self):
        assignments = np.zeros(10, dtype=np.int64)
        pr = average_precision_recall(assignments, [np.asarray([0, 1])])
        assert pr.recall == 1.0
        assert pr.precision == pytest.approx(0.2)

    def test_singleton_clustering(self):
        assignments = np.arange(10)
        pr = average_precision_recall(assignments, [np.asarray([0, 1, 2, 3])])
        assert pr.precision == 1.0
        assert pr.recall == pytest.approx(0.25)

    def test_overlapping_communities_supported(self):
        assignments = np.asarray([0, 0, 0, 1, 1, 1])
        communities = [np.asarray([0, 1, 2, 3]), np.asarray([3, 4, 5])]
        pr = average_precision_recall(assignments, communities)
        # Community 1 matches cluster 0 (overlap 3/4); community 2 matches
        # cluster 1 (overlap 3/3... members 3,4,5 -> labels 1,1,1).
        assert pr.recall == pytest.approx((3 / 4 + 1.0) / 2)

    def test_empty_communities_rejected(self):
        with pytest.raises(ValueError):
            average_precision_recall(np.zeros(3, dtype=np.int64), [])

    def test_f1_zero_when_degenerate(self):
        pr = PrecisionRecall(precision=0.0, recall=0.0)
        assert pr.f1 == 0.0

    def test_matches_paper_methodology_on_planted(self, small_planted):
        """Clustering = ground-truth labels gives precision ~1 but recall
        below 1 when communities overlap (the overlapping members can only
        be in one cluster)."""
        pr = average_precision_recall(
            small_planted.labels, small_planted.communities
        )
        assert pr.precision > 0.95
        assert pr.recall > 0.95
