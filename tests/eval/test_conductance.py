import numpy as np
import pytest

from repro.eval.conductance import cluster_conductances, conductance_summary
from repro.graphs.builders import graph_from_edges


class TestClusterConductances:
    def test_perfect_split_zero_cut(self):
        g = graph_from_edges([(0, 1), (2, 3)])
        phis = cluster_conductances(g, np.asarray([0, 0, 1, 1]))
        assert np.allclose(phis, 0.0)

    def test_two_cliques_with_bridge(self, two_cliques):
        phis = cluster_conductances(
            two_cliques, np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        )
        # Each clique: cut = 1 (the bridge), volume = 12 intra-endpoints + 1.
        assert phis.shape == (2,)
        assert np.allclose(phis, 1.0 / 13.0)

    def test_bad_clustering_high_conductance(self, two_cliques):
        # Split a clique down the middle: heavy cut.
        labels = np.asarray([0, 0, 1, 1, 2, 2, 2, 2])
        phis = cluster_conductances(two_cliques, labels)
        assert phis[0] > 0.4

    def test_single_cluster_zero(self, karate):
        phis = cluster_conductances(karate, np.zeros(34, dtype=np.int64))
        assert np.allclose(phis, 0.0)

    def test_isolated_vertices_zero(self):
        g = graph_from_edges([(0, 1)], num_vertices=3)
        phis = cluster_conductances(g, np.asarray([0, 0, 1]))
        assert phis[1] == 0.0

    def test_shape_validated(self, karate):
        with pytest.raises(ValueError):
            cluster_conductances(karate, np.zeros(3, dtype=np.int64))

    def test_weighted_cut(self):
        g = graph_from_edges(
            [(0, 1), (1, 2)], weights=np.asarray([4.0, 1.0])
        )
        phis = cluster_conductances(g, np.asarray([0, 0, 1]))
        # Cluster {0,1}: cut 1, volume 4+4+1=9; cluster {2}: cut 1, vol 1.
        assert phis[0] == pytest.approx(1.0 / min(9.0, 1.0))


class TestSummary:
    def test_keys(self, karate):
        from repro.core.api import correlation_clustering

        result = correlation_clustering(karate, resolution=0.1, seed=1)
        summary = conductance_summary(karate, result.assignments)
        assert set(summary) == {"mean", "median", "max"}
        assert 0.0 <= summary["median"] <= summary["max"] <= 1.0

    def test_good_clustering_lower_conductance(self, small_planted):
        from repro.core.api import correlation_clustering

        g = small_planted.graph
        good = correlation_clustering(g, resolution=0.05, seed=1).assignments
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, len(np.unique(good)), size=g.num_vertices)
        assert (
            conductance_summary(g, good)["mean"]
            < conductance_summary(g, random_labels)["mean"]
        )
