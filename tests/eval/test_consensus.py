import numpy as np
import pytest

from repro.core.api import correlation_clustering
from repro.eval.ari import adjusted_rand_index
from repro.eval.consensus import (
    coassociation_counts,
    consensus_clustering,
    consensus_from_runs,
)
from repro.graphs.builders import graph_from_edges


class TestCoassociation:
    def test_counts(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        labelings = [np.asarray([0, 0, 1]), np.asarray([0, 0, 0])]
        counts = coassociation_counts(g, labelings)
        # Edge (0,1): co-clustered in both; edge (1,2): only in the second.
        src = np.repeat(np.arange(3), np.diff(g.offsets))
        for e in range(g.num_directed_edges):
            pair = (int(src[e]), int(g.neighbors[e]))
            expected = 2 if set(pair) == {0, 1} else 1
            assert counts[e] == expected

    def test_requires_labelings(self, karate):
        with pytest.raises(ValueError):
            coassociation_counts(karate, [])

    def test_shape_checked(self, karate):
        with pytest.raises(ValueError):
            coassociation_counts(karate, [np.zeros(3, dtype=np.int64)])


class TestConsensusClustering:
    def test_unanimous_agreement_preserved(self, two_cliques):
        labels = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        consensus = consensus_clustering(two_cliques, [labels, labels, labels])
        assert adjusted_rand_index(consensus, labels) == 1.0

    def test_no_agreement_gives_singletons(self, two_cliques):
        # Labelings that never co-cluster anything.
        a = np.arange(8)
        consensus = consensus_clustering(two_cliques, [a], threshold=0.99)
        assert np.unique(consensus).size == 8

    def test_majority_rules(self):
        g = graph_from_edges([(0, 1)])
        together = np.asarray([0, 0])
        apart = np.asarray([0, 1])
        consensus = consensus_clustering(g, [together, together, apart])
        assert consensus[0] == consensus[1]
        consensus = consensus_clustering(g, [together, apart, apart])
        assert consensus[0] != consensus[1]

    def test_threshold_validated(self, karate):
        with pytest.raises(ValueError):
            consensus_clustering(karate, [np.zeros(34, dtype=np.int64)], threshold=2.0)


class TestConsensusFromRuns:
    def test_stabilizes_async_nondeterminism(self, small_planted):
        """Consensus over seeds agrees with each individual run at least
        as well as the runs agree with each other — the stability payoff."""
        g = small_planted.graph

        def run(seed):
            return correlation_clustering(g, resolution=0.1, seed=seed).assignments

        consensus = consensus_from_runs(g, run, num_runs=5)
        runs = [run(seed) for seed in range(5)]
        inter_run = np.mean([
            adjusted_rand_index(runs[i], runs[j])
            for i in range(5) for j in range(i + 1, 5)
        ])
        to_consensus = np.mean([
            adjusted_rand_index(consensus, r) for r in runs
        ])
        assert to_consensus >= inter_run - 0.05

    def test_recovers_planted_structure(self, small_planted):
        g = small_planted.graph

        def run(seed):
            return correlation_clustering(g, resolution=0.1, seed=seed).assignments

        consensus = consensus_from_runs(g, run, num_runs=3)
        ari = adjusted_rand_index(consensus, small_planted.labels)
        assert ari > 0.5

    def test_custom_seeds(self, two_cliques):
        calls = []

        def run(seed):
            calls.append(seed)
            return np.asarray([0, 0, 0, 0, 1, 1, 1, 1])

        consensus_from_runs(two_cliques, run, seeds=[7, 11])
        assert calls == [7, 11]
