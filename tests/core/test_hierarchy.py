import numpy as np
import pytest

from repro.core.config import ClusteringConfig, Objective
from repro.core.hierarchy import ClusterHierarchy, HierarchyLevel, cluster_hierarchy
from repro.core.objective import lambdacc_objective
from repro.graphs.builders import graph_from_edges


class TestClusterHierarchy:
    def test_levels_recorded(self, small_planted):
        hierarchy = cluster_hierarchy(
            small_planted.graph, ClusteringConfig(resolution=0.05, seed=1)
        )
        assert hierarchy.num_levels >= 1
        assert hierarchy.finest().level == 0

    def test_cluster_counts_non_increasing(self, small_planted):
        hierarchy = cluster_hierarchy(
            small_planted.graph, ClusteringConfig(resolution=0.05, seed=1)
        )
        counts = [lv.num_clusters for lv in hierarchy.levels]
        assert counts == sorted(counts, reverse=True)

    def test_nesting_property(self, small_planted):
        hierarchy = cluster_hierarchy(
            small_planted.graph, ClusteringConfig(resolution=0.05, seed=1)
        )
        assert hierarchy.is_nested()

    def test_objectives_consistent(self, small_planted):
        g = small_planted.graph
        hierarchy = cluster_hierarchy(g, ClusteringConfig(resolution=0.05, seed=1))
        for level in hierarchy.levels:
            assert level.objective == pytest.approx(
                lambdacc_objective(g, level.assignments, 0.05)
            )

    def test_labels_dense_per_level(self, karate):
        hierarchy = cluster_hierarchy(karate, ClusteringConfig(resolution=0.1, seed=1))
        for level in hierarchy.levels:
            uniq = np.unique(level.assignments)
            assert np.array_equal(uniq, np.arange(uniq.size))

    def test_modularity_objective_supported(self, karate):
        hierarchy = cluster_hierarchy(
            karate,
            ClusteringConfig(
                objective=Objective.MODULARITY, resolution=1.0, seed=1
            ),
        )
        assert hierarchy.num_levels >= 1
        assert hierarchy.coarsest().num_clusters < 34

    def test_best_level_selection(self, small_planted):
        hierarchy = cluster_hierarchy(
            small_planted.graph, ClusteringConfig(resolution=0.05, seed=1)
        )
        best = hierarchy.best_level()
        assert best.objective == max(lv.objective for lv in hierarchy.levels)

    def test_level_with_clusters(self, small_planted):
        hierarchy = cluster_hierarchy(
            small_planted.graph, ClusteringConfig(resolution=0.05, seed=1)
        )
        coarse = hierarchy.coarsest().num_clusters
        pick = hierarchy.level_with_clusters(coarse)
        assert pick.num_clusters == coarse

    def test_edgeless_graph(self):
        g = graph_from_edges([], num_vertices=4)
        hierarchy = cluster_hierarchy(g, ClusteringConfig(resolution=0.5, seed=0))
        assert hierarchy.finest().num_clusters == 4


class TestNestingDetection:
    def test_detects_violation(self):
        fine = HierarchyLevel(0, np.asarray([0, 0, 1, 1]), 2, 0.0)
        split = HierarchyLevel(1, np.asarray([0, 1, 1, 1]), 2, 0.0)
        broken = ClusterHierarchy(levels=[fine, split])
        assert not broken.is_nested()

    def test_accepts_merge(self):
        fine = HierarchyLevel(0, np.asarray([0, 0, 1, 1]), 2, 0.0)
        merged = HierarchyLevel(1, np.asarray([0, 0, 0, 0]), 1, 0.0)
        ok = ClusterHierarchy(levels=[fine, merged])
        assert ok.is_nested()
