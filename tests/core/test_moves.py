import numpy as np
import pytest

from repro.core.moves import compute_batch_moves, compute_single_move
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.graphs.builders import graph_from_edges
from repro.parallel.scheduler import SimulatedScheduler


class TestBatchMoves:
    def test_empty_batch(self, karate):
        state = ClusterState.singletons(karate)
        targets, gains = compute_batch_moves(
            karate, state, np.zeros(0, dtype=np.int64), 0.1
        )
        assert targets.size == 0

    def test_clique_vertices_want_to_merge(self, two_cliques):
        state = ClusterState.singletons(two_cliques)
        targets, gains = compute_batch_moves(
            two_cliques, state, np.arange(8), 0.1
        )
        assert np.all(targets != np.arange(8))  # everyone finds a better home
        assert np.all(gains > 0)

    def test_isolated_vertex_stays(self):
        g = graph_from_edges([(0, 1)], num_vertices=3)
        state = ClusterState.singletons(g)
        targets, gains = compute_batch_moves(g, state, np.asarray([2]), 0.1)
        assert targets[0] == 2
        assert gains[0] == 0.0

    def test_gain_matches_objective_change_in_isolation(self, karate, rng):
        """Applying a single suggested move changes F by exactly the gain."""
        lam = 0.2
        assignments = rng.integers(0, 6, size=34).astype(np.int64)
        state = ClusterState.from_assignments(karate, assignments)
        for v in range(0, 34, 7):
            targets, gains = compute_batch_moves(
                karate, state, np.asarray([v]), lam
            )
            before = lambdacc_objective(karate, state.assignments, lam)
            moved = state.assignments.copy()
            moved[v] = targets[0]
            after = lambdacc_objective(karate, moved, lam)
            assert after - before == pytest.approx(gains[0]), v

    def test_gains_never_negative(self, small_planted, rng):
        g = small_planted.graph
        state = ClusterState.from_assignments(
            g, rng.integers(0, g.num_vertices // 3, size=g.num_vertices)
        )
        _, gains = compute_batch_moves(g, state, np.arange(g.num_vertices), 0.3)
        assert np.all(gains >= 0)

    def test_escape_used_when_all_options_negative(self):
        # Vertex 2 sits in cluster 0 with vertices it has no edges to, at a
        # high resolution; its own slot (2) is empty, so it escapes.
        g = graph_from_edges([(0, 1)], num_vertices=3)
        assignments = np.asarray([0, 0, 0])
        state = ClusterState.from_assignments(g, assignments)
        targets, gains = compute_batch_moves(g, state, np.asarray([2]), 0.5)
        assert targets[0] == 2
        assert gains[0] > 0

    def test_escape_blocked_when_home_slot_occupied(self):
        # Vertex 0's home slot still holds vertex 0 itself plus vertex 2 —
        # moving "back" is not an escape, and no better cluster exists.
        g = graph_from_edges([(0, 1)], num_vertices=3)
        assignments = np.asarray([2, 1, 2])
        state = ClusterState.from_assignments(g, assignments)
        # Home slot of vertex 2 is occupied by {0, 2}; no escape for 2.
        targets, _ = compute_batch_moves(g, state, np.asarray([2]), 0.9)
        assert targets[0] != 2 or state.cluster_sizes[2] > 0

    def test_charges_work(self, karate):
        state = ClusterState.singletons(karate)
        sched = SimulatedScheduler(num_workers=8)
        compute_batch_moves(karate, state, np.arange(34), 0.1, sched=sched)
        assert sched.ledger.total_work > 156  # at least the edge scans

    def test_high_degree_kernel_depth_smaller(self, rng):
        """With the parallel kernel, a star center costs log depth."""
        star = graph_from_edges([(0, i) for i in range(1, 2000)])
        state = ClusterState.singletons(star)
        low_thr = SimulatedScheduler(num_workers=8)
        high_thr = SimulatedScheduler(num_workers=8)
        compute_batch_moves(
            star, state, np.asarray([0]), 0.01, sched=low_thr, kernel_threshold=64
        )
        compute_batch_moves(
            star, state, np.asarray([0]), 0.01, sched=high_thr, kernel_threshold=10_000
        )
        assert low_thr.ledger.total_depth < high_thr.ledger.total_depth


class TestSingleMove:
    def test_matches_batch_kernel(self, small_planted, rng):
        """Size-1 batch and the sequential kernel agree bit-for-bit."""
        g = small_planted.graph
        lam = 0.15
        assignments = rng.integers(0, 50, size=g.num_vertices).astype(np.int64)
        state = ClusterState.from_assignments(g, assignments)
        for v in rng.choice(g.num_vertices, size=40, replace=False).tolist():
            batch_targets, batch_gains = compute_batch_moves(
                g, state, np.asarray([v]), lam
            )
            single_target, single_gain = compute_single_move(g, state, v, lam)
            assert single_target == batch_targets[0], v
            assert single_gain == pytest.approx(batch_gains[0]), v

    def test_karate_weighted_agreement(self, rng):
        g = graph_from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
            weights=np.asarray([3.0, 0.5, 2.0, 1.0, -1.0]),
        )
        state = ClusterState.from_assignments(g, np.asarray([0, 0, 2, 2]))
        for v in range(4):
            bt, bg = compute_batch_moves(g, state, np.asarray([v]), 0.1)
            st, sg = compute_single_move(g, state, v, 0.1)
            assert st == bt[0]
            assert sg == pytest.approx(bg[0])
