import numpy as np
import pytest

from repro.core.api import cluster, correlation_clustering, modularity_clustering
from repro.core.config import ClusteringConfig, Mode, Objective
from repro.core.objective import cc_objective, modularity
from repro.graphs.builders import graph_from_edges


class TestCorrelationClustering:
    def test_karate_smoke(self, karate):
        result = correlation_clustering(karate, resolution=0.1, seed=1)
        assert result.assignments.shape == (34,)
        assert result.num_clusters >= 2
        assert result.objective > 0

    def test_reported_objective_matches_recomputation(self, karate):
        result = correlation_clustering(karate, resolution=0.1, seed=1)
        assert result.objective == pytest.approx(
            cc_objective(karate, result.assignments, 0.1)
        )

    def test_labels_dense(self, karate):
        result = correlation_clustering(karate, resolution=0.3, seed=0)
        labels = np.unique(result.assignments)
        assert np.array_equal(labels, np.arange(labels.size))

    def test_sequential_variant(self, karate):
        result = correlation_clustering(karate, resolution=0.1, parallel=False, seed=1)
        assert not result.config.parallel
        assert result.objective > 0

    def test_convergence_variant_tagged(self, karate):
        result = correlation_clustering(
            karate, resolution=0.1, parallel=False, num_iter=None, seed=1
        )
        assert "^CON" in result.config.describe()

    def test_empty_graph_rejected(self):
        g = graph_from_edges([], num_vertices=0)
        with pytest.raises(ValueError):
            correlation_clustering(g)

    def test_modularity_always_reported(self, karate):
        result = correlation_clustering(karate, resolution=0.1, seed=1)
        assert result.modularity == pytest.approx(
            modularity(karate, result.assignments, gamma=1.0)
        )


class TestModularityClustering:
    def test_karate_quality(self, karate):
        result = modularity_clustering(karate, gamma=1.0, seed=1)
        # Known-good modularity territory for karate under the paper's
        # (diagonal-free) definition: Newman-optimal ~0.42 plus the
        # constant ~0.048.
        assert result.modularity > 0.4
        assert 2 <= result.num_clusters <= 10

    def test_reported_modularity_matches_recomputation(self, karate):
        result = modularity_clustering(karate, gamma=1.3, seed=1)
        assert result.modularity == pytest.approx(
            modularity(karate, result.assignments, gamma=1.3)
        )

    def test_gamma_controls_granularity(self, small_planted):
        g = small_planted.graph
        low = modularity_clustering(g, gamma=0.3, seed=0)
        high = modularity_clustering(g, gamma=12.0, seed=0)
        assert low.num_clusters <= high.num_clusters

    def test_effective_lambda(self, karate):
        result = modularity_clustering(karate, gamma=2.0, seed=0)
        assert result.effective_lambda == pytest.approx(2.0 / (2 * 78))


class TestClusterResult:
    def test_clusters_partition_vertices(self, karate):
        result = correlation_clustering(karate, resolution=0.2, seed=2)
        members = np.concatenate(result.clusters())
        assert np.array_equal(np.sort(members), np.arange(34))

    def test_sim_time_decreases_with_workers(self, small_planted):
        result = cluster(
            small_planted.graph, ClusteringConfig(resolution=0.05, seed=1)
        )
        assert result.sim_time(60) < result.sim_time(2)

    def test_sequential_sim_time_uses_one_worker(self, karate):
        result = correlation_clustering(karate, resolution=0.1, parallel=False, seed=1)
        assert result.sim_time() == pytest.approx(result.sim_time(1))

    def test_memory_overhead_at_least_one(self, karate):
        result = correlation_clustering(karate, resolution=0.1, seed=1)
        assert result.memory_overhead >= 1.0

    def test_summary_mentions_variant(self, karate):
        result = correlation_clustering(karate, resolution=0.1, seed=1)
        assert "PAR-CC" in result.summary()

    def test_rounds_counted(self, karate):
        result = correlation_clustering(karate, resolution=0.1, seed=1)
        assert result.rounds >= result.num_levels


class TestLambdaEffect:
    def test_resolution_controls_cluster_count(self, small_planted):
        """Lower resolutions produce fewer clusters (Section 4.1)."""
        g = small_planted.graph
        few = correlation_clustering(g, resolution=0.01, seed=0)
        many = correlation_clustering(g, resolution=0.9, seed=0)
        assert few.num_clusters < many.num_clusters


class TestSyncVsAsync:
    def test_async_objective_at_least_sync(self, small_planted):
        """Section 4.1: asynchronous improves the objective over
        synchronous (1.29–156% in the paper)."""
        g = small_planted.graph
        lam = 0.85
        sync = correlation_clustering(g, resolution=lam, mode=Mode.SYNC, seed=3)
        async_ = correlation_clustering(g, resolution=lam, mode=Mode.ASYNC, seed=3)
        assert async_.objective >= sync.objective
        assert async_.objective > 0
