import numpy as np
import pytest

from repro.core.moves import all_move_gains, compute_single_move
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.graphs.builders import graph_from_edges


class TestAllMoveGains:
    def test_staying_is_zero(self, karate):
        state = ClusterState.from_assignments(
            karate, np.arange(34) % 4
        )
        gains = all_move_gains(karate, state, 0, 0.2)
        assert gains[int(state.assignments[0])] == 0.0

    def test_gains_match_objective_differences(self, karate, rng):
        lam = 0.15
        labels = rng.integers(0, 5, size=34).astype(np.int64)
        state = ClusterState.from_assignments(karate, labels)
        v = 7
        base = lambdacc_objective(karate, labels, lam)
        for target, gain in all_move_gains(karate, state, v, lam).items():
            if target == labels[v]:
                continue
            moved = labels.copy()
            moved[v] = target
            assert gain == pytest.approx(
                lambdacc_objective(karate, moved, lam) - base
            ), target

    def test_argmax_matches_engine_choice(self, small_planted, rng):
        g = small_planted.graph
        lam = 0.1
        labels = rng.integers(0, 30, size=g.num_vertices).astype(np.int64)
        state = ClusterState.from_assignments(g, labels)
        for v in rng.choice(g.num_vertices, size=25, replace=False).tolist():
            gains = all_move_gains(g, state, v, lam)
            target, _ = compute_single_move(g, state, v, lam)
            best = max(gains.values())
            # The engine's target attains the maximum gain (within the
            # strict-improvement epsilon).
            assert gains[target] >= best - 1e-9, v

    def test_escape_slot_included_when_open(self):
        g = graph_from_edges([(0, 1)], num_vertices=3)
        state = ClusterState.from_assignments(g, np.asarray([0, 0, 0]))
        gains = all_move_gains(g, state, 2, 0.5)
        assert 2 in gains  # home slot of vertex 2 is empty
        assert gains[2] > 0  # escaping beats staying with strangers

    def test_isolated_vertex_only_stays(self):
        g = graph_from_edges([(0, 1)], num_vertices=3)
        state = ClusterState.singletons(g)
        gains = all_move_gains(g, state, 2, 0.5)
        assert gains == {2: 0.0}
