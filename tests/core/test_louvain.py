"""Tests for the multi-level drivers (PARALLEL-CC / SEQUENTIAL-CC)."""

import numpy as np
import pytest

from repro.core.config import ClusteringConfig, Frontier, Mode
from repro.core.louvain_par import parallel_cc, parallel_flatten
from repro.core.louvain_seq import sequential_cc
from repro.core.objective import lambdacc_objective
from repro.graphs.stats import MemoryTracker
from repro.utils.rng import make_rng


class TestParallelFlatten:
    def test_composition(self):
        deeper = np.asarray([5, 9])
        v2s = np.asarray([0, 0, 1, 1, 0])
        assert np.array_equal(parallel_flatten(deeper, v2s), [5, 5, 9, 9, 5])

    def test_identity(self):
        deeper = np.asarray([3, 1, 2])
        assert np.array_equal(
            parallel_flatten(deeper, np.arange(3)), deeper
        )


@pytest.mark.parametrize("driver", [parallel_cc, sequential_cc])
class TestMultiLevel:
    def test_two_cliques_found(self, two_cliques, driver):
        config = ClusteringConfig(resolution=0.2, parallel=driver is parallel_cc)
        assignments, stats = driver(two_cliques, 0.2, config, rng=make_rng(0))
        labels = np.unique(assignments)
        assert labels.size == 2
        assert len(np.unique(assignments[:4])) == 1
        assert len(np.unique(assignments[4:])) == 1

    def test_karate_objective_positive(self, karate, driver):
        config = ClusteringConfig(resolution=0.1, parallel=driver is parallel_cc)
        assignments, _ = driver(karate, 0.1, config, rng=make_rng(1))
        assert lambdacc_objective(karate, assignments, 0.1) > 0

    def test_high_resolution_mostly_singletons(self, karate, driver):
        # With lambda extremely high, any 2-cluster loses; expect many
        # clusters (pairs of adjacent vertices can still win: 1 - lam > 0).
        config = ClusteringConfig(resolution=0.99, parallel=driver is parallel_cc)
        assignments, _ = driver(karate, 0.99, config, rng=make_rng(1))
        assert np.unique(assignments).size >= 10

    def test_stats_levels_recorded(self, small_planted, driver):
        g = small_planted.graph
        config = ClusteringConfig(resolution=0.05, parallel=driver is parallel_cc)
        _, stats = driver(g, 0.05, config, rng=make_rng(0))
        assert stats.num_levels >= 1
        assert stats.levels[0].num_vertices == g.num_vertices
        assert stats.total_iterations >= stats.num_levels

    def test_deterministic_given_seed(self, small_planted, driver):
        g = small_planted.graph
        config = ClusteringConfig(resolution=0.1, parallel=driver is parallel_cc)
        a, _ = driver(g, 0.1, config, rng=make_rng(7))
        b, _ = driver(g, 0.1, config, rng=make_rng(7))
        assert np.array_equal(a, b)


class TestRefinementMemory:
    def test_refine_holds_more_memory(self, small_planted):
        g = small_planted.graph
        peaks = {}
        for refine in (True, False):
            config = ClusteringConfig(resolution=0.02, refine=refine)
            memory = MemoryTracker()
            parallel_cc(g, 0.02, config, rng=make_rng(0), memory=memory)
            peaks[refine] = memory.peak_bytes
        assert peaks[True] >= peaks[False]

    def test_refinement_never_lowers_objective(self, small_planted):
        """Refinement moves are individually improving, so the final
        objective with refinement should match or beat without (same seed,
        sequential driver for determinism)."""
        g = small_planted.graph
        lam = 0.05
        values = {}
        for refine in (True, False):
            config = ClusteringConfig(
                resolution=lam, parallel=False, refine=refine
            )
            assignments, _ = sequential_cc(g, lam, config, rng=make_rng(3))
            values[refine] = lambdacc_objective(g, assignments, lam)
        assert values[True] >= values[False] - 1e-9


class TestMaxLevels:
    def test_level_cap_respected(self, small_planted):
        g = small_planted.graph
        config = ClusteringConfig(resolution=0.02, max_levels=1)
        _, stats = parallel_cc(g, 0.02, config, rng=make_rng(0))
        assert stats.num_levels == 1


class TestConvergenceVariant:
    def test_seq_con_at_least_as_good(self, small_planted):
        g = small_planted.graph
        lam = 0.05
        bounded = ClusteringConfig(resolution=lam, parallel=False, num_iter=1)
        converged = ClusteringConfig(resolution=lam, parallel=False, num_iter=None)
        a, _ = sequential_cc(g, lam, bounded, rng=make_rng(0))
        b, _ = sequential_cc(g, lam, converged, rng=make_rng(0))
        assert lambdacc_objective(g, b, lam) >= lambdacc_objective(g, a, lam) - 1e-9
