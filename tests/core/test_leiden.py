import numpy as np
import pytest

from repro.core.api import correlation_clustering
from repro.core.leiden import (
    count_disconnected_clusters,
    leiden_refine,
    split_disconnected_clusters,
)
from repro.core.objective import lambdacc_objective
from repro.graphs.builders import graph_from_edges


@pytest.fixture
def disconnected_clustering():
    """Two disjoint edges labeled as ONE cluster (disconnected)."""
    g = graph_from_edges([(0, 1), (2, 3)])
    labels = np.zeros(4, dtype=np.int64)
    return g, labels


class TestCountDisconnected:
    def test_detects(self, disconnected_clustering):
        g, labels = disconnected_clustering
        assert count_disconnected_clusters(g, labels) == 1

    def test_connected_cluster_clean(self, two_cliques):
        labels = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        assert count_disconnected_clusters(two_cliques, labels) == 0

    def test_singletons_clean(self, karate):
        assert count_disconnected_clusters(karate, np.arange(34)) == 0

    def test_negative_edges_do_not_connect(self):
        g = graph_from_edges([(0, 1)], weights=np.asarray([-1.0]))
        labels = np.zeros(2, dtype=np.int64)
        # The only "link" is a negative edge: the cluster is disconnected
        # in the positive subgraph.
        assert count_disconnected_clusters(g, labels) == 1


class TestSplit:
    def test_splits_components(self, disconnected_clustering):
        g, labels = disconnected_clustering
        new_labels, num_split = split_disconnected_clusters(g, labels)
        assert num_split == 1
        assert new_labels[0] == new_labels[1]
        assert new_labels[2] == new_labels[3]
        assert new_labels[0] != new_labels[2]

    def test_noop_on_connected(self, two_cliques):
        labels = np.asarray([0, 0, 0, 0, 1, 1, 1, 1])
        new_labels, num_split = split_disconnected_clusters(two_cliques, labels)
        assert num_split == 0
        # Same partition up to relabeling.
        assert len(np.unique(new_labels)) == 2

    def test_split_never_lowers_objective(self, small_planted, rng):
        """Severing disconnected components removes only non-edge pairs,
        each contributing -lambda k_u k_v <= 0."""
        g = small_planted.graph
        for lam in (0.05, 0.5):
            labels = rng.integers(0, 10, size=g.num_vertices)
            before = lambdacc_objective(g, labels, lam)
            new_labels, _ = split_disconnected_clusters(g, labels)
            after = lambdacc_objective(g, new_labels, lam)
            assert after >= before - 1e-9


class TestLeidenRefine:
    def test_result_well_connected(self, small_planted):
        g = small_planted.graph
        base = correlation_clustering(g, resolution=0.03, seed=0)
        refined, _rounds = leiden_refine(g, base.assignments, 0.03)
        assert count_disconnected_clusters(g, refined) == 0

    def test_objective_not_degraded(self, small_planted):
        g = small_planted.graph
        lam = 0.05
        base = correlation_clustering(g, resolution=lam, seed=0)
        refined, _ = leiden_refine(g, base.assignments, lam)
        assert lambdacc_objective(g, refined, lam) >= (
            lambdacc_objective(g, base.assignments, lam) - 1e-9
        )

    def test_labels_dense(self, karate):
        base = correlation_clustering(karate, resolution=0.1, seed=0)
        refined, _ = leiden_refine(karate, base.assignments, 0.1)
        uniq = np.unique(refined)
        assert np.array_equal(uniq, np.arange(uniq.size))

    def test_rounds_reported(self, disconnected_clustering):
        g, labels = disconnected_clustering
        refined, rounds = leiden_refine(g, labels, 0.1)
        assert rounds >= 1
        assert count_disconnected_clusters(g, refined) == 0
