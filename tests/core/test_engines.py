import numpy as np
import pytest

from repro.core.config import ClusteringConfig
from repro.core.engines import ENGINES, get_engine, multilevel_with_engine
from repro.core.objective import lambdacc_objective
from repro.utils.rng import make_rng


class TestRegistry:
    def test_all_engines_listed(self):
        assert set(ENGINES) == {
            "relaxed", "prefix", "colored", "event", "sequential"
        }

    def test_lookup(self):
        assert get_engine("relaxed") is ENGINES["relaxed"]

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("quantum")


class TestMultilevelWithEngine:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_every_engine_finds_two_cliques(self, two_cliques, engine):
        config = ClusteringConfig(resolution=0.2, seed=1, num_workers=4)
        assignments, stats = multilevel_with_engine(
            two_cliques, 0.2, config, engine=engine, rng=make_rng(0)
        )
        assert len(np.unique(assignments[:4])) == 1
        assert len(np.unique(assignments[4:])) == 1
        assert stats.num_levels >= 1

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_every_engine_positive_on_karate(self, karate, engine):
        config = ClusteringConfig(resolution=0.1, seed=1, num_workers=4)
        assignments, _ = multilevel_with_engine(
            karate, 0.1, config, engine=engine, rng=make_rng(1)
        )
        assert lambdacc_objective(karate, assignments, 0.1) > 0

    def test_engines_quality_comparable(self, small_planted):
        """All conflict-managed engines land in the same objective band
        on a well-structured graph."""
        g = small_planted.graph
        lam = 0.1
        values = {}
        for engine in ("relaxed", "colored", "event", "sequential"):
            config = ClusteringConfig(resolution=lam, seed=1, num_workers=8)
            assignments, _ = multilevel_with_engine(
                g, lam, config, engine=engine, rng=make_rng(2)
            )
            values[engine] = lambdacc_objective(g, assignments, lam)
        best = max(values.values())
        for engine, value in values.items():
            assert value > 0.85 * best, (engine, values)
