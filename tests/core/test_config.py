import pytest

from repro.core.config import ClusteringConfig, Frontier, Mode, Objective
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_papers_best_settings(self):
        config = ClusteringConfig()
        assert config.mode is Mode.ASYNC
        assert config.frontier is Frontier.VERTEX_NEIGHBORS
        assert config.refine is True
        assert config.num_iter == 10  # the paper's default

    def test_cc_lambda_range(self):
        ClusteringConfig(resolution=0.0)  # degenerate allowed for tests
        with pytest.raises(ConfigError):
            ClusteringConfig(resolution=1.0)
        with pytest.raises(ConfigError):
            ClusteringConfig(resolution=-0.1)

    def test_modularity_gamma_positive(self):
        ClusteringConfig(objective=Objective.MODULARITY, resolution=5.0)
        with pytest.raises(ConfigError):
            ClusteringConfig(objective=Objective.MODULARITY, resolution=0.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_iter", 0),
            ("num_workers", -1),
            ("async_windows", 0),
            ("max_levels", 0),
            ("kernel_threshold", 0),
        ],
    )
    def test_positive_int_fields(self, field, value):
        with pytest.raises(ConfigError):
            ClusteringConfig(**{field: value})

    def test_zero_workers_means_auto(self):
        # 0 is not invalid — it asks for host-sized worker resolution.
        config = ClusteringConfig(num_workers=0)
        assert config.resolved_workers >= 1


class TestConvergenceMode:
    def test_none_num_iter_is_convergence(self):
        config = ClusteringConfig(num_iter=None)
        assert config.run_to_convergence
        assert config.iteration_bound == 10_000

    def test_bounded(self):
        config = ClusteringConfig(num_iter=7)
        assert not config.run_to_convergence
        assert config.iteration_bound == 7


class TestDescribe:
    def test_par_cc(self):
        assert ClusteringConfig().describe().startswith("PAR-CC[")

    def test_seq_mod_con(self):
        config = ClusteringConfig(
            objective=Objective.MODULARITY,
            resolution=1.0,
            parallel=False,
            num_iter=None,
        )
        assert config.describe().startswith("SEQ-MOD^CON[")

    def test_options_listed(self):
        tag = ClusteringConfig(mode=Mode.SYNC, refine=False).describe()
        assert "sync" in tag and "no-refine" in tag


class TestWithOptions:
    def test_copy_modified(self):
        base = ClusteringConfig()
        mod = base.with_options(mode=Mode.SYNC)
        assert mod.mode is Mode.SYNC
        assert base.mode is Mode.ASYNC

    def test_validation_applies_to_copy(self):
        with pytest.raises(ConfigError):
            ClusteringConfig().with_options(num_workers=-1)


class TestArgparseRoundTrip:
    """add_args/from_args is the single canonical CLI flag block."""

    def parser(self, **kwargs):
        import argparse

        parser = argparse.ArgumentParser()
        ClusteringConfig.add_args(parser, **kwargs)
        return parser

    def test_defaults_round_trip(self):
        args = self.parser().parse_args([])
        assert ClusteringConfig.from_args(args) == ClusteringConfig()

    def test_every_flag_lands_on_its_field(self):
        args = self.parser().parse_args(
            [
                "--objective", "modularity",
                "--resolution", "0.7",
                "--sequential",
                "--mode", "sync",
                "--frontier", "all",
                "--no-refine",
                "--converge",
                "--workers", "4",
                "--kernel", "reference",
                "--backend", "process",
                "--seed", "9",
            ]
        )
        config = ClusteringConfig.from_args(args)
        assert config == ClusteringConfig(
            objective=Objective.MODULARITY,
            resolution=0.7,
            parallel=False,
            mode=Mode.SYNC,
            frontier=Frontier.ALL,
            refine=False,
            num_iter=None,
            num_workers=4,
            kernel="reference",
            backend="process",
            seed=9,
        )

    def test_objective_pin_for_correlation_only_subcommands(self):
        parser = self.parser(include_objective=False)
        args = parser.parse_args(["--resolution", "0.05"])
        assert not hasattr(args, "objective")
        config = ClusteringConfig.from_args(
            args, objective=Objective.CORRELATION
        )
        assert config.objective is Objective.CORRELATION
        assert config.resolution == 0.05

    def test_converge_wins_over_num_iter(self):
        args = self.parser().parse_args(["--num-iter", "3", "--converge"])
        assert ClusteringConfig.from_args(args).num_iter is None
