import numpy as np
import pytest

from repro.core.config import ClusteringConfig, Frontier
from repro.core.moves import compute_batch_moves
from repro.core.objective import lambdacc_objective
from repro.core.prefix import conflict_free_prefix, run_prefix_best_moves
from repro.core.state import ClusterState
from repro.graphs.builders import graph_from_edges
from repro.parallel.scheduler import SimulatedScheduler
from repro.utils.rng import make_rng


def config(**kw):
    defaults = dict(resolution=0.1, refine=False, frontier=Frontier.ALL)
    defaults.update(kw)
    return ClusteringConfig(**defaults)


class TestConflictFreePrefix:
    def test_non_movers_never_conflict(self, karate):
        state = ClusterState.singletons(karate)
        order = np.arange(34)
        targets = state.assignments[order].copy()  # everyone stays
        assert conflict_free_prefix(karate, state, order, targets) == 34

    def test_adjacent_movers_conflict(self):
        # Path 0-1: both want to merge; the second conflicts with the first.
        g = graph_from_edges([(0, 1)])
        state = ClusterState.singletons(g)
        order = np.asarray([0, 1])
        targets, _ = compute_batch_moves(g, state, order, 0.1)
        length = conflict_free_prefix(g, state, order, targets)
        assert length == 1

    def test_disjoint_movers_allowed(self):
        # Two disjoint edges: all four vertices can move... the two later
        # vertices target already-touched clusters, so the prefix holds
        # exactly one mover per component pair ordering.
        g = graph_from_edges([(0, 1), (2, 3)])
        state = ClusterState.singletons(g)
        order = np.asarray([0, 2, 1, 3])
        targets, _ = compute_batch_moves(g, state, order, 0.1)
        length = conflict_free_prefix(g, state, order, targets)
        assert length == 2  # movers 0 and 2 touch disjoint cluster pairs

    def test_always_progresses(self, karate):
        state = ClusterState.singletons(karate)
        order = np.arange(34)
        targets, _ = compute_batch_moves(karate, state, order, 0.05)
        assert conflict_free_prefix(karate, state, order, targets) >= 1


class TestPrefixEquivalence:
    def test_prefix_moves_equal_sequential_application(self, small_planted, rng):
        """Applying a conflict-free prefix in parallel equals applying its
        moves one at a time: each vertex's recomputed gain is unchanged."""
        g = small_planted.graph
        lam = 0.1
        state = ClusterState.from_assignments(
            g, rng.integers(0, 40, size=g.num_vertices)
        )
        order = rng.permutation(g.num_vertices).astype(np.int64)[:500]
        targets, _ = compute_batch_moves(g, state, order, lam)
        length = conflict_free_prefix(g, state, order, targets)
        window = order[:length]
        window_targets = targets[:length]

        parallel_state = ClusterState(
            state.assignments.copy(), state.cluster_weights.copy(),
            state.cluster_sizes.copy(), state.node_weights,
        )
        parallel_state.apply_moves(window, window_targets)

        seq_state = ClusterState(
            state.assignments.copy(), state.cluster_weights.copy(),
            state.cluster_sizes.copy(), state.node_weights,
        )
        for v, t in zip(window.tolist(), window_targets.tolist()):
            # Each move is still this vertex's computed target: the earlier
            # prefix moves did not affect it (conflict freedom).
            new_target, _ = compute_batch_moves(
                g, seq_state, np.asarray([v]), lam
            )
            if seq_state.assignments[v] != t:
                assert new_target[0] == t, v
            seq_state.move_one(v, t)
        assert np.array_equal(parallel_state.assignments, seq_state.assignments)


class TestRunPrefixBestMoves:
    def test_two_cliques(self, two_cliques):
        state = ClusterState.singletons(two_cliques)
        stats = run_prefix_best_moves(
            two_cliques, state, 0.2, config(resolution=0.2), rng=make_rng(0)
        )
        assert stats.total_moves > 0
        labels = state.assignments
        assert len(np.unique(labels[:4])) == 1
        assert len(np.unique(labels[4:])) == 1

    def test_objective_positive(self, karate):
        state = ClusterState.singletons(karate)
        run_prefix_best_moves(karate, state, 0.1, config(), rng=make_rng(1))
        assert lambdacc_objective(karate, state.assignments, 0.1) > 0
        state.check_invariants()

    def test_charges_prefix_overhead(self, karate):
        sched = SimulatedScheduler(num_workers=8)
        state = ClusterState.singletons(karate)
        run_prefix_best_moves(
            karate, state, 0.1, config(), sched=sched, rng=make_rng(0)
        )
        assert "prefix-scan" in sched.ledger.work_by_label()

    def test_more_expensive_than_relaxed_async(self, small_planted):
        """The paper's rationale for rejecting this design: the prefix
        computation overhead makes it slower than the relaxed engine."""
        from repro.core.best_moves import run_best_moves

        g = small_planted.graph
        cfg = config(resolution=0.1)
        prefix_sched = SimulatedScheduler(num_workers=60)
        state = ClusterState.singletons(g)
        run_prefix_best_moves(g, state, 0.1, cfg, sched=prefix_sched, rng=make_rng(0))
        relaxed_sched = SimulatedScheduler(num_workers=60)
        state = ClusterState.singletons(g)
        run_best_moves(g, state, 0.1, cfg, sched=relaxed_sched, rng=make_rng(0))
        assert prefix_sched.simulated_time(60) > relaxed_sched.simulated_time(60)
