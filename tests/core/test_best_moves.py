import numpy as np
import pytest

from repro.core.best_moves import _windows, run_best_moves
from repro.core.config import ClusteringConfig, Frontier, Mode
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.parallel.scheduler import SimulatedScheduler
from repro.utils.rng import make_rng


def async_config(**kw):
    defaults = dict(mode=Mode.ASYNC, refine=False, resolution=0.0)
    defaults.update(kw)
    return ClusteringConfig(**defaults)


class TestWindows:
    def test_sync_single_window(self):
        config = async_config(mode=Mode.SYNC)
        windows = _windows(np.arange(100), config)
        assert len(windows) == 1
        assert windows[0].size == 100

    def test_async_splits_into_configured_windows(self):
        config = async_config(async_windows=8)
        windows = _windows(np.arange(100), config)
        assert len(windows) == 8
        assert sum(w.size for w in windows) == 100

    def test_async_small_frontier_single_vertex_windows(self):
        config = async_config(async_windows=32)
        windows = _windows(np.arange(5), config)
        assert len(windows) == 5
        assert all(w.size == 1 for w in windows)


class TestRunBestMoves:
    def test_two_cliques_cluster_together(self, two_cliques):
        state = ClusterState.singletons(two_cliques)
        config = async_config(resolution=0.2, num_iter=20)
        stats = run_best_moves(two_cliques, state, 0.2, config, rng=make_rng(0))
        labels = state.assignments
        assert len(np.unique(labels[:4])) == 1
        assert len(np.unique(labels[4:])) == 1
        assert stats.total_moves >= 6
        state.check_invariants()

    def test_converges_and_reports(self, two_cliques):
        state = ClusterState.singletons(two_cliques)
        config = async_config(resolution=0.2, num_iter=50)
        stats = run_best_moves(two_cliques, state, 0.2, config, rng=make_rng(0))
        assert stats.converged
        assert stats.iterations < 50

    def test_iteration_bound_respected(self, small_planted):
        g = small_planted.graph
        state = ClusterState.singletons(g)
        config = async_config(resolution=0.05, num_iter=2)
        stats = run_best_moves(g, state, 0.05, config, rng=make_rng(0))
        assert stats.iterations <= 2

    def test_initial_frontier_restricts_consideration(self, two_cliques):
        state = ClusterState.singletons(two_cliques)
        config = async_config(resolution=0.2, num_iter=1)
        stats = run_best_moves(
            two_cliques, state, 0.2, config, rng=make_rng(0),
            initial_frontier=np.asarray([0]),
        )
        assert stats.frontier_sizes[0] == 1
        assert stats.total_moves <= 1

    def test_empty_frontier_converges_immediately(self, karate):
        state = ClusterState.singletons(karate)
        config = async_config()
        stats = run_best_moves(
            karate, state, 0.1, config, initial_frontier=np.zeros(0, dtype=np.int64)
        )
        assert stats.converged
        assert stats.iterations == 0

    def test_objective_improves_from_singletons(self, karate):
        for mode in (Mode.ASYNC, Mode.SYNC):
            state = ClusterState.singletons(karate)
            config = async_config(mode=mode, resolution=0.1, num_iter=10)
            run_best_moves(karate, state, 0.1, config, rng=make_rng(1))
            if mode is Mode.ASYNC:
                assert lambdacc_objective(karate, state.assignments, 0.1) > 0

    def test_frontier_sizes_recorded(self, karate):
        state = ClusterState.singletons(karate)
        config = async_config(resolution=0.1, num_iter=10,
                              frontier=Frontier.VERTEX_NEIGHBORS)
        stats = run_best_moves(karate, state, 0.1, config, rng=make_rng(0))
        assert stats.frontier_sizes[0] == 34
        assert len(stats.frontier_sizes) == stats.iterations

    def test_vertex_neighbor_frontier_shrinks(self, small_planted):
        g = small_planted.graph
        state = ClusterState.singletons(g)
        config = async_config(resolution=0.1, num_iter=10,
                              frontier=Frontier.VERTEX_NEIGHBORS)
        stats = run_best_moves(g, state, 0.1, config, rng=make_rng(0))
        assert stats.frontier_sizes[-1] < stats.frontier_sizes[0]

    def test_all_frontier_stays_full_while_moving(self, small_planted):
        g = small_planted.graph
        state = ClusterState.singletons(g)
        config = async_config(resolution=0.1, num_iter=3, frontier=Frontier.ALL)
        stats = run_best_moves(g, state, 0.1, config, rng=make_rng(0))
        assert all(s == g.num_vertices for s in stats.frontier_sizes)

    def test_charges_to_scheduler(self, karate):
        sched = SimulatedScheduler(num_workers=8)
        state = ClusterState.singletons(karate)
        config = async_config(resolution=0.1)
        run_best_moves(karate, state, 0.1, config, sched=sched, rng=make_rng(0))
        assert sched.ledger.total_work > 0

    def test_deterministic_given_seed(self, small_planted):
        g = small_planted.graph
        config = async_config(resolution=0.1, num_iter=10)
        results = []
        for _ in range(2):
            state = ClusterState.singletons(g)
            run_best_moves(g, state, 0.1, config, rng=make_rng(123))
            results.append(state.assignments.copy())
        assert np.array_equal(results[0], results[1])
