"""The frozen public surface and the deprecated-kwarg shims.

Two gates:

* the live ``repro.api`` surface must match the committed
  ``benchmarks/api_surface.json`` snapshot (regenerate deliberately with
  ``python -m repro.api --write``);
* the deprecated per-subsystem ``cluster()`` keywords must warn *and*
  forward bit-identically to the ``options=RunOptions(...)`` spelling.
"""

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro
import repro.api as api
from repro import (
    ClusteringConfig,
    RunOptions,
    cluster,
    karate_club_graph,
)
from repro.errors import ConfigError
from repro.obs.instrument import Instrumentation

REPO_ROOT = Path(__file__).resolve().parents[2]
SNAPSHOT = REPO_ROOT / "benchmarks" / "api_surface.json"


class TestSurfaceSnapshot:
    def test_live_surface_matches_committed_snapshot(self):
        snapshot = json.loads(SNAPSHOT.read_text())["surface"]
        issues = api.diff_surface(snapshot)
        assert issues == [], (
            "public API drifted; if intentional run "
            "`python -m repro.api --write` and commit the diff:\n"
            + "\n".join(issues)
        )

    def test_every_facade_name_importable(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_top_level_all_is_sorted_and_exact(self):
        public = sorted(n for n in repro.__all__ if n != "__version__")
        assert public == sorted(set(public))
        for name in public:
            assert hasattr(repro, name), name

    def test_facade_covers_top_level(self):
        """repro.api must export at least everything repro does."""
        assert set(repro.__all__) <= set(api.__all__)

    def test_surface_entries_have_stable_signatures(self):
        # No memory addresses (default object reprs) may leak into the
        # snapshot — they would differ per process and flap CI.
        live = api.surface()
        for name, entry in live.items():
            assert " at 0x" not in entry["signature"], name


class TestDeprecatedKwargShims:
    def run_modern(self, **option_kwargs):
        graph = karate_club_graph()
        config = ClusteringConfig(resolution=0.05, seed=3)
        return cluster(graph, config, options=RunOptions(**option_kwargs))

    def test_engine_kwarg_warns_and_is_bit_identical(self):
        graph = karate_club_graph()
        config = ClusteringConfig(resolution=0.05, seed=3)
        with pytest.warns(DeprecationWarning, match="cluster\\(\\) keyword"):
            legacy = cluster(graph, config, engine="sequential")
        modern = self.run_modern(engine="sequential")
        assert np.array_equal(legacy.assignments, modern.assignments)
        assert legacy.objective == modern.objective

    def test_instrumentation_kwarg_warns_and_is_bit_identical(self):
        graph = karate_club_graph()
        config = ClusteringConfig(resolution=0.05, seed=3)
        with pytest.warns(DeprecationWarning, match="cluster\\(\\) keyword"):
            legacy = cluster(
                graph, config, instrumentation=Instrumentation(enabled=True)
            )
        modern = self.run_modern(
            instrumentation=Instrumentation(enabled=True)
        )
        assert np.array_equal(legacy.assignments, modern.assignments)

    def test_positional_resilience_policy_warns(self):
        from repro.resilience.context import ResiliencePolicy

        graph = karate_club_graph()
        config = ClusteringConfig(resolution=0.05, seed=3)
        with pytest.warns(
            DeprecationWarning, match="ResiliencePolicy positionally"
        ):
            legacy = cluster(graph, config, ResiliencePolicy())
        modern = self.run_modern(resilience=None)
        assert np.array_equal(legacy.assignments, modern.assignments)

    def test_both_spellings_conflict(self):
        graph = karate_club_graph()
        config = ClusteringConfig(resolution=0.05, seed=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigError, match="deprecated keyword"):
                cluster(
                    graph,
                    config,
                    options=RunOptions(engine="sequential"),
                    engine="sequential",
                )

    def test_no_warning_on_modern_spelling(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            self.run_modern(engine="sequential")
