import numpy as np
import pytest

from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig, Frontier
from repro.core.event_async import run_event_driven_best_moves
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.utils.rng import make_rng


def config(**kw):
    defaults = dict(resolution=0.1, refine=False, frontier=Frontier.ALL,
                    num_workers=8)
    defaults.update(kw)
    return ClusteringConfig(**defaults)


class TestEventDrivenEngine:
    def test_two_cliques(self, two_cliques):
        state = ClusterState.singletons(two_cliques)
        stats = run_event_driven_best_moves(
            two_cliques, state, 0.2, config(resolution=0.2), rng=make_rng(0)
        )
        assert stats.total_moves > 0
        labels = state.assignments
        assert len(np.unique(labels[:4])) == 1
        assert len(np.unique(labels[4:])) == 1
        state.check_invariants()

    def test_karate_positive_objective(self, karate):
        state = ClusterState.singletons(karate)
        run_event_driven_best_moves(karate, state, 0.1, config(), rng=make_rng(1))
        assert lambdacc_objective(karate, state.assignments, 0.1) > 0

    def test_single_worker_equals_sequential_semantics(self, karate):
        """With P=1 the event loop is plain sequential best moves over the
        permutation — state invariants and positivity must hold."""
        state = ClusterState.singletons(karate)
        stats = run_event_driven_best_moves(
            karate, state, 0.1, config(num_workers=1), rng=make_rng(0)
        )
        assert stats.total_moves > 0
        state.check_invariants()

    def test_deterministic_given_seed(self, small_planted):
        g = small_planted.graph
        results = []
        for _ in range(2):
            state = ClusterState.singletons(g)
            run_event_driven_best_moves(
                g, state, 0.1, config(num_iter=3), rng=make_rng(5)
            )
            results.append(state.assignments.copy())
        assert np.array_equal(results[0], results[1])

    def test_charges_to_scheduler(self, karate):
        from repro.parallel.scheduler import SimulatedScheduler

        sched = SimulatedScheduler(num_workers=8)
        state = ClusterState.singletons(karate)
        run_event_driven_best_moves(
            karate, state, 0.1, config(), sched=sched, rng=make_rng(0)
        )
        assert "event-async" in sched.ledger.work_by_label()

    def test_empty_frontier(self, karate):
        state = ClusterState.singletons(karate)
        stats = run_event_driven_best_moves(
            karate, state, 0.1, config(),
            initial_frontier=np.zeros(0, dtype=np.int64),
        )
        assert stats.converged


class TestBatchedApproximationValidity:
    """The load-bearing claim of DESIGN.md §2: batched windows approximate
    fine-grained asynchrony."""

    @pytest.mark.parametrize("lam", [0.1, 0.85])
    def test_objectives_match_within_noise(self, small_planted, lam):
        g = small_planted.graph
        event_objectives = []
        batched_objectives = []
        for seed in range(3):
            state = ClusterState.singletons(g)
            run_event_driven_best_moves(
                g, state, lam, config(resolution=lam), rng=make_rng(seed)
            )
            event_objectives.append(lambdacc_objective(g, state.assignments, lam))
            state = ClusterState.singletons(g)
            run_best_moves(
                g, state, lam, config(resolution=lam), rng=make_rng(seed)
            )
            batched_objectives.append(
                lambdacc_objective(g, state.assignments, lam)
            )
        event_mean = np.mean(event_objectives)
        batched_mean = np.mean(batched_objectives)
        assert batched_mean == pytest.approx(event_mean, rel=0.15)
        assert batched_mean > 0 and event_mean > 0
