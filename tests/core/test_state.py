import numpy as np
import pytest

from repro.core.state import ClusterState
from repro.parallel.scheduler import SimulatedScheduler


class TestSingletons:
    def test_layout(self, karate):
        state = ClusterState.singletons(karate)
        assert np.array_equal(state.assignments, np.arange(34))
        assert np.allclose(state.cluster_weights, 1.0)
        assert np.all(state.cluster_sizes == 1)
        assert state.num_clusters == 34

    def test_respects_node_weights(self, karate):
        g = karate.with_node_weights(np.full(34, 2.5))
        state = ClusterState.singletons(g)
        assert np.allclose(state.cluster_weights, 2.5)


class TestFromAssignments:
    def test_aggregates(self, karate):
        assignments = np.zeros(34, dtype=np.int64)
        state = ClusterState.from_assignments(karate, assignments)
        assert state.cluster_weights[0] == pytest.approx(34.0)
        assert state.cluster_sizes[0] == 34
        assert state.num_clusters == 1

    def test_out_of_range_rejected(self, karate):
        with pytest.raises(ValueError):
            ClusterState.from_assignments(karate, np.full(34, 40))

    def test_shape_rejected(self, karate):
        with pytest.raises(ValueError):
            ClusterState.from_assignments(karate, np.zeros(3, dtype=np.int64))

    def test_copies_input(self, karate):
        assignments = np.arange(34)
        state = ClusterState.from_assignments(karate, assignments)
        state.assignments[0] = 5
        assert assignments[0] == 0


class TestApplyMoves:
    def test_moves_and_aggregates(self, karate):
        state = ClusterState.singletons(karate)
        moved = state.apply_moves(np.asarray([1, 2]), np.asarray([0, 0]))
        assert moved == 2
        assert state.assignments[1] == 0
        assert state.cluster_weights[0] == pytest.approx(3.0)
        assert state.cluster_sizes[0] == 3
        assert state.cluster_sizes[1] == 0
        state.check_invariants(karate)

    def test_noop_moves_ignored(self, karate):
        state = ClusterState.singletons(karate)
        assert state.apply_moves(np.asarray([1]), np.asarray([1])) == 0

    def test_contention_charged_for_hot_target(self, karate):
        state = ClusterState.singletons(karate)
        sched = SimulatedScheduler(num_workers=8)
        state.apply_moves(np.asarray([1, 2, 3, 4]), np.zeros(4, dtype=np.int64), sched)
        assert sched.ledger.total_serial > 0

    def test_empty_window(self, karate):
        state = ClusterState.singletons(karate)
        assert state.apply_moves(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)) == 0


class TestMoveOne:
    def test_single_move(self, karate):
        state = ClusterState.singletons(karate)
        assert state.move_one(3, 0)
        assert not state.move_one(3, 0)
        state.check_invariants()

    def test_weights_follow(self, karate):
        g = karate.with_node_weights(np.arange(34, dtype=np.float64) + 1)
        state = ClusterState.singletons(g)
        state.move_one(5, 0)
        assert state.cluster_weights[0] == pytest.approx(1.0 + 6.0)
        assert state.cluster_weights[5] == pytest.approx(0.0)


class TestInvariantCheck:
    def test_detects_corruption(self, karate):
        state = ClusterState.singletons(karate)
        state.cluster_weights[0] += 1.0
        with pytest.raises(AssertionError):
            state.check_invariants()
