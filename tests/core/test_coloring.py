import numpy as np
import pytest

from repro.core.coloring import (
    greedy_coloring,
    run_colored_best_moves,
    verify_coloring,
)
from repro.core.config import ClusteringConfig, Frontier
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.graphs.builders import graph_from_edges
from repro.parallel.scheduler import SimulatedScheduler
from repro.utils.rng import make_rng


def config(**kw):
    defaults = dict(resolution=0.1, refine=False, frontier=Frontier.ALL)
    defaults.update(kw)
    return ClusteringConfig(**defaults)


class TestGreedyColoring:
    def test_valid_on_karate(self, karate):
        colors = greedy_coloring(karate)
        assert verify_coloring(karate, colors)

    def test_color_count_bounded_by_degree(self, karate):
        colors = greedy_coloring(karate)
        assert colors.max() + 1 <= karate.degrees().max() + 1

    def test_bipartite_two_colors(self):
        g = graph_from_edges([(i, i + 1) for i in range(9)])  # path
        colors = greedy_coloring(g)
        assert colors.max() + 1 == 2

    def test_complete_graph_needs_n_colors(self):
        g = graph_from_edges([(i, j) for i in range(5) for j in range(i + 1, 5)])
        colors = greedy_coloring(g)
        assert colors.max() + 1 == 5

    def test_edgeless(self):
        g = graph_from_edges([], num_vertices=4)
        colors = greedy_coloring(g)
        assert np.all(colors == 0)

    def test_charges(self, karate):
        sched = SimulatedScheduler(num_workers=8)
        greedy_coloring(karate, sched=sched)
        assert "coloring" in sched.ledger.work_by_label()

    def test_verify_detects_violation(self, karate):
        colors = np.zeros(34, dtype=np.int64)
        assert not verify_coloring(karate, colors)


class TestColoredBestMoves:
    def test_two_cliques(self, two_cliques):
        state = ClusterState.singletons(two_cliques)
        stats = run_colored_best_moves(
            two_cliques, state, 0.2, config(resolution=0.2), rng=make_rng(0)
        )
        assert stats.total_moves > 0
        labels = state.assignments
        assert len(np.unique(labels[:4])) == 1
        assert len(np.unique(labels[4:])) == 1
        state.check_invariants()

    def test_karate_positive_objective(self, karate):
        state = ClusterState.singletons(karate)
        run_colored_best_moves(karate, state, 0.1, config(), rng=make_rng(1))
        assert lambdacc_objective(karate, state.assignments, 0.1) > 0

    def test_high_resolution_stays_positive(self, small_planted):
        """Unlike plain synchronous lockstep, color classes never contain
        adjacent vertices, so the Figure-1 pathology cannot occur and the
        objective stays positive even at high resolutions."""
        g = small_planted.graph
        state = ClusterState.singletons(g)
        run_colored_best_moves(
            g, state, 0.85, config(resolution=0.85), rng=make_rng(0)
        )
        assert lambdacc_objective(g, state.assignments, 0.85) > 0

    def test_precomputed_colors_honoured(self, karate):
        colors = greedy_coloring(karate)
        state = ClusterState.singletons(karate)
        stats = run_colored_best_moves(
            karate, state, 0.1, config(), rng=make_rng(0), colors=colors
        )
        assert stats.total_moves > 0

    def test_deterministic(self, small_planted):
        g = small_planted.graph
        results = []
        for _ in range(2):
            state = ClusterState.singletons(g)
            run_colored_best_moves(g, state, 0.1, config(), rng=make_rng(4))
            results.append(state.assignments.copy())
        assert np.array_equal(results[0], results[1])
