import numpy as np
import pytest

from repro.core.objective import (
    cc_objective,
    cluster_weight_penalty,
    intra_cluster_edge_weight,
    lambdacc_objective,
    modularity,
    modularity_graph,
    modularity_lambda,
    move_delta,
)
from repro.core.state import ClusterState
from repro.graphs.builders import graph_from_edges


class TestIntraWeight:
    def test_singletons_zero(self, karate):
        assert intra_cluster_edge_weight(karate, np.arange(34)) == 0.0

    def test_single_cluster_counts_all(self, karate):
        assert intra_cluster_edge_weight(karate, np.zeros(34)) == 78.0

    def test_self_loops_always_intra(self):
        g = graph_from_edges([(0, 0), (0, 1)], num_vertices=2)
        assert intra_cluster_edge_weight(g, np.asarray([0, 1])) == 1.0

    def test_weighted(self, weighted_path):
        assert intra_cluster_edge_weight(
            weighted_path, np.asarray([0, 0, 1])
        ) == pytest.approx(2.0)


class TestPenalty:
    def test_singletons_zero(self, karate):
        assert cluster_weight_penalty(karate, np.arange(34)) == 0.0

    def test_pair(self):
        g = graph_from_edges([(0, 1)], node_weights=np.asarray([2.0, 3.0]))
        # One intra pair: k_u * k_v = 6.
        assert cluster_weight_penalty(g, np.zeros(2)) == pytest.approx(6.0)

    def test_matches_bruteforce(self, karate, rng):
        assignments = rng.integers(0, 4, size=34)
        expected = sum(
            float(karate.node_weights[i] * karate.node_weights[j])
            for i in range(34)
            for j in range(i + 1, 34)
            if assignments[i] == assignments[j]
        )
        assert cluster_weight_penalty(karate, assignments) == pytest.approx(expected)


class TestLambdaCCObjective:
    def test_matches_pair_sum_bruteforce(self, karate, rng):
        """F(C) equals the direct sum over intra pairs of rescaled weights."""
        lam = 0.3
        assignments = rng.integers(0, 5, size=34)
        adjacency = np.zeros((34, 34))
        src = np.repeat(np.arange(34), np.diff(karate.offsets))
        adjacency[src, karate.neighbors] = karate.weights
        expected = sum(
            adjacency[i, j] - lam
            for i in range(34)
            for j in range(i + 1, 34)
            if assignments[i] == assignments[j]
        )
        assert lambdacc_objective(karate, assignments, lam) == pytest.approx(expected)

    def test_cc_objective_is_double(self, karate, rng):
        assignments = rng.integers(0, 5, size=34)
        assert cc_objective(karate, assignments, 0.2) == pytest.approx(
            2 * lambdacc_objective(karate, assignments, 0.2)
        )

    def test_singletons_zero_everywhere(self, karate):
        assert lambdacc_objective(karate, np.arange(34), 0.7) == 0.0


class TestModularity:
    def test_paper_definition_excludes_diagonal(self, karate):
        """The paper's Q (Reichardt–Bornholdt over i != j) differs from
        Newman's Q by the constant gamma * sum(d^2) / (4 m^2)."""
        labels = np.zeros(34, dtype=np.int64)
        # Newman Q of the whole-graph cluster is exactly 1 - 1 = 0... with
        # the i != j convention it is sum(d^2) / (4 m^2) instead.
        degrees = karate.degrees().astype(float)
        m = 78.0
        expected = float((degrees**2).sum()) / (4 * m * m)
        assert modularity(karate, labels, gamma=1.0) == pytest.approx(expected)

    def test_singletons_zero(self, karate):
        assert modularity(karate, np.arange(34)) == pytest.approx(0.0)

    def test_equivalence_with_lambdacc(self, karate, rng):
        """Q == F(mod graph, gamma / 2m) / m — the Section 2 reduction."""
        gamma = 1.4
        assignments = rng.integers(0, 6, size=34)
        mod_graph = modularity_graph(karate)
        lam = modularity_lambda(karate, gamma)
        f_value = lambdacc_objective(mod_graph, assignments, lam)
        assert modularity(karate, assignments, gamma) == pytest.approx(
            f_value / karate.total_edge_weight
        )

    def test_known_good_partition_beats_random(self, karate, rng):
        from repro.graphs.karate import karate_club_factions

        good = modularity(karate, karate_club_factions())
        rand = modularity(karate, rng.integers(0, 2, size=34))
        assert good > rand
        assert good > 0.3

    def test_empty_weight_rejected(self):
        g = graph_from_edges([], num_vertices=2)
        with pytest.raises(ValueError):
            modularity(g, np.zeros(2))


class TestMoveDelta:
    def test_matches_objective_difference(self, karate, rng):
        """The Appendix A delta formula equals F(after) - F(before)."""
        lam = 0.25
        assignments = rng.integers(0, 5, size=34).astype(np.int64)
        state = ClusterState.from_assignments(karate, assignments)
        for v in [0, 5, 33]:
            for target in range(5):
                if target == assignments[v]:
                    continue
                before = lambdacc_objective(karate, assignments, lam)
                moved = assignments.copy()
                moved[v] = target
                after = lambdacc_objective(karate, moved, lam)
                delta = move_delta(
                    karate, assignments, state.cluster_weights, v, target, lam
                )
                assert delta == pytest.approx(after - before), (v, target)

    def test_same_cluster_zero(self, karate):
        assignments = np.zeros(34, dtype=np.int64)
        state = ClusterState.from_assignments(karate, assignments)
        assert move_delta(karate, assignments, state.cluster_weights, 0, 0, 0.3) == 0.0
