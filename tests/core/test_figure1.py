"""The paper's Figure 1: concurrent moves can lower the total objective.

Path graph a - b - c with lambda = 0 and singleton start.  If b and c move
simultaneously (synchronous scheduling), both pick cluster {a}, producing
{a, b, c} whose objective includes the missing (b, c) non-edge... with
lambda = 0 the non-edge costs nothing, so the paper's figure uses the
rescaled-weight convention where (b, c) is a -1 pair; we reproduce the
figure with an explicit negative edge, and separately show the lambda
version at a resolution where the merged cluster is strictly worse.
"""

import numpy as np

from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig, Frontier, Mode
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.graphs.builders import graph_from_edges
from repro.utils.rng import make_rng


def figure1_graph():
    """a=0, b=1, c=2: positive edges (a,b), (a,c); negative edge (b,c).

    The (b, c) weight of -3 makes the merged cluster {a, b, c} score
    1 + 1 - 3 = -1, the value in the paper's Figure 1 caption, while each
    of b and c individually stands to gain +1 by joining {a}.
    """
    return graph_from_edges(
        [(0, 1), (0, 2), (1, 2)], weights=np.asarray([1.0, 1.0, -3.0])
    )


class TestFigure1:
    def test_synchronous_single_step_merges_badly(self):
        """One synchronous iteration sends b and c both into {a}, producing
        the single cluster {a, b, c} with objective -1 (Figure 1)."""
        g = figure1_graph()
        state = ClusterState.singletons(g)
        config = ClusteringConfig(
            mode=Mode.SYNC, frontier=Frontier.ALL, refine=False, num_iter=1,
            resolution=0.0,
        )
        run_best_moves(g, state, 0.0, config)
        assert len(np.unique(state.assignments)) == 1
        assert lambdacc_objective(g, state.assignments, 0.0) == -1.0

    def test_asynchronous_converges_to_optimum(self):
        """Fine-grained asynchrony avoids the pathological joint move."""
        g = figure1_graph()
        config = ClusteringConfig(
            mode=Mode.ASYNC, frontier=Frontier.ALL, refine=False, num_iter=20,
            resolution=0.0,
        )
        best = -np.inf
        for seed in range(5):
            state = ClusterState.singletons(g)
            run_best_moves(g, state, 0.0, config, rng=make_rng(seed))
            best = max(best, lambdacc_objective(g, state.assignments, 0.0))
        # Optimum: {a, b, c} has value 1; {a,b} or {a,c} has value 1; but
        # async can also settle there — the invariant we check is that the
        # async objective never ends *below* the sync single-step result.
        assert best >= 1.0

    def test_paper_lambda_variant_sync_is_negative(self):
        """With unit weights and a high resolution, one synchronous round
        on a star merges leaves into a negative-objective cluster —
        the general phenomenon behind the paper's negative sync results."""
        star = graph_from_edges([(0, i) for i in range(1, 8)])
        config = ClusteringConfig(
            mode=Mode.SYNC, frontier=Frontier.ALL, refine=False, num_iter=1,
            resolution=0.6,
        )
        state = ClusterState.singletons(star)
        run_best_moves(star, state, 0.6, config)
        assert lambdacc_objective(star, state.assignments, 0.6) < 0
