"""Unit tests for the move-evaluation kernel layer (DESIGN.md §8)."""

import numpy as np
import pytest

from repro.core.config import ClusteringConfig
from repro.core.moves import compute_batch_moves, kernel_depth
from repro.core.state import ClusterState
from repro.errors import ConfigError
from repro.generators.planted import planted_partition_graph
from repro.graphs.karate import karate_club_graph
from repro.kernels import DEFAULT_KERNEL, KERNELS, get_kernel
from repro.kernels.reference import reference_batch_moves, reference_sweep
from repro.kernels.sweep import speculative_sweep
from repro.kernels.vectorized import vectorized_batch_moves
from repro.obs.instrument import (
    M_KERNEL_BATCH,
    M_KERNEL_FALLBACK,
    M_KERNEL_SEGMENTS,
    Instrumentation,
)
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultyClusterState

RESOLUTION = 0.05


class TestRegistry:
    def test_registry_contents(self):
        assert set(KERNELS) == {"reference", "vectorized"}
        assert DEFAULT_KERNEL == "vectorized"
        for name, kernel in KERNELS.items():
            assert kernel.name == name

    def test_get_kernel_unknown_raises_typed_error(self):
        with pytest.raises(ConfigError, match="reference"):
            get_kernel("simd")

    def test_config_validates_kernel(self):
        assert ClusteringConfig(kernel="reference").kernel == "reference"
        with pytest.raises(ConfigError):
            ClusteringConfig(kernel="nope")


class TestKernelDepth:
    def test_sequential_branch_is_max_degree(self):
        degrees = np.array([3, 7, 2], dtype=np.int64)
        assert kernel_depth(degrees, threshold=512) == 7.0

    def test_parallel_branch_is_logarithmic(self):
        degrees = np.array([1024], dtype=np.int64)
        assert kernel_depth(degrees, threshold=512) == 2.0 * 10.0

    def test_parallel_branch_clamps_to_one(self):
        # threshold=0 routes even degree-1 vertices to the hash-table
        # kernel; 2*log2(1) = 0 must clamp to a one-step floor rather
        # than claiming a free evaluation.
        degrees = np.array([1], dtype=np.int64)
        assert kernel_depth(degrees, threshold=0) == 1.0

    def test_empty_batch_depth_is_one(self):
        assert kernel_depth(np.array([], dtype=np.int64), threshold=512) == 1.0


class TestSmallBatchFallback:
    def test_fallback_is_bit_identical_and_counted(self):
        graph = karate_club_graph()
        state = ClusterState.singletons(graph)
        batch = np.arange(4, dtype=np.int64)  # tiny: below the cutoff
        instr = Instrumentation()
        ref = reference_batch_moves(graph, state, batch, RESOLUTION)
        vec = vectorized_batch_moves(
            graph, state, batch, RESOLUTION, instr=instr
        )
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[1], vec[1])
        fallbacks = instr.metrics.get(M_KERNEL_FALLBACK)
        assert fallbacks is not None
        assert fallbacks.value(site="batch") == 1.0

    def test_large_batch_takes_segment_path(self):
        graph = planted_partition_graph(300, seed=0).graph
        state = ClusterState.singletons(graph)
        batch = np.arange(graph.num_vertices, dtype=np.int64)
        instr = Instrumentation()
        vectorized_batch_moves(graph, state, batch, RESOLUTION, instr=instr)
        assert instr.metrics.get(M_KERNEL_FALLBACK) is None
        segments = instr.metrics.get(M_KERNEL_SEGMENTS)
        assert segments is not None and segments.total_count() == 1


class TestDispatch:
    def test_compute_batch_moves_observes_batch_size(self):
        graph = karate_club_graph()
        state = ClusterState.singletons(graph)
        batch = np.arange(graph.num_vertices, dtype=np.int64)

        class Sched:
            instr = Instrumentation()

            def charge(self, **kwargs):
                pass

        sched = Sched()
        compute_batch_moves(
            graph, state, batch, RESOLUTION, sched=sched, kernel="vectorized"
        )
        hist = sched.instr.metrics.get(M_KERNEL_BATCH)
        assert hist is not None
        assert hist.count(kernel="vectorized") == 1

    def test_kernels_agree_via_dispatch(self):
        graph = karate_club_graph()
        state = ClusterState.singletons(graph)
        batch = np.arange(graph.num_vertices, dtype=np.int64)
        ref = compute_batch_moves(
            graph, state, batch, RESOLUTION, kernel="reference"
        )
        vec = compute_batch_moves(
            graph, state, batch, RESOLUTION, kernel="vectorized"
        )
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[1], vec[1])


class TestSpeculativeSweep:
    def _parity(self, graph, order):
        ref_state = ClusterState.singletons(graph)
        vec_state = ClusterState.singletons(graph)
        ref = reference_sweep(graph, ref_state, order, RESOLUTION)
        vec = speculative_sweep(graph, vec_state, order, RESOLUTION)
        for got, want in zip(vec, ref):
            assert np.array_equal(np.asarray(got), np.asarray(want))
        assert np.array_equal(ref_state.assignments, vec_state.assignments)
        assert np.array_equal(
            ref_state.cluster_weights, vec_state.cluster_weights
        )

    def test_matches_reference_on_karate(self):
        graph = karate_club_graph()
        self._parity(graph, np.arange(graph.num_vertices, dtype=np.int64))

    def test_matches_reference_on_planted_permutations(self):
        graph = planted_partition_graph(200, seed=2).graph
        for seed in range(3):
            order = np.random.default_rng(seed).permutation(
                graph.num_vertices
            ).astype(np.int64)
            self._parity(graph, order)

    def test_faulty_state_falls_back_to_reference(self):
        # FaultyClusterState buffers and perturbs writes, which would
        # desynchronize the speculative replay's snapshot reasoning; the
        # sweep must detect the wrapper and take the dict path.
        graph = karate_club_graph()
        state = FaultyClusterState(
            ClusterState.singletons(graph), FaultPlan(seed=0)
        )
        instr = Instrumentation()
        order = np.arange(graph.num_vertices, dtype=np.int64)
        speculative_sweep(graph, state, order, RESOLUTION, instr=instr)
        fallbacks = instr.metrics.get(M_KERNEL_FALLBACK)
        assert fallbacks is not None
        assert fallbacks.value(site="sweep") == 1.0
