import numpy as np
import pytest

from repro.core.config import Frontier
from repro.core.frontier import next_frontier
from repro.graphs.builders import graph_from_edges


@pytest.fixture
def path5():
    return graph_from_edges([(i, i + 1) for i in range(4)])


class TestNextFrontier:
    def test_no_movers_empty(self, path5):
        out = next_frontier(
            path5, np.arange(5), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            Frontier.VERTEX_NEIGHBORS,
        )
        assert out.size == 0

    def test_all(self, path5):
        out = next_frontier(
            path5, np.arange(5), np.asarray([2]), np.asarray([2]),
            np.asarray([1]), Frontier.ALL,
        )
        assert np.array_equal(out, np.arange(5))

    def test_vertex_neighbors(self, path5):
        out = next_frontier(
            path5, np.arange(5), np.asarray([2]), np.asarray([2]),
            np.asarray([1]), Frontier.VERTEX_NEIGHBORS,
        )
        assert np.array_equal(out, [1, 3])

    def test_cluster_neighbors_superset(self, path5):
        # Vertex 2 moved from cluster 2 to cluster 1 (which contains 1).
        assignments = np.asarray([0, 1, 1, 3, 4])
        vertex_nbrs = next_frontier(
            path5, assignments, np.asarray([2]), np.asarray([2]),
            np.asarray([1]), Frontier.VERTEX_NEIGHBORS,
        )
        cluster_nbrs = next_frontier(
            path5, assignments, np.asarray([2]), np.asarray([2]),
            np.asarray([1]), Frontier.CLUSTER_NEIGHBORS,
        )
        # Figure 11's relationship: the cluster-neighbor frontier covers the
        # members of affected clusters plus their neighborhoods.
        assert set(vertex_nbrs.tolist()) - {2} <= set(cluster_nbrs.tolist())
        assert 1 in cluster_nbrs  # member of the destination cluster

    def test_unknown_kind(self, path5):
        with pytest.raises(ValueError):
            next_frontier(
                path5, np.arange(5), np.asarray([1]), np.asarray([1]),
                np.asarray([0]), "bogus",
            )
