"""Public-API edge cases: degenerate graphs, extreme resolutions, loops."""

import numpy as np
import pytest

from repro.core.api import cluster, correlation_clustering, modularity_clustering
from repro.core.config import ClusteringConfig
from repro.graphs.builders import graph_from_edges


class TestDegenerateGraphs:
    def test_single_vertex(self):
        g = graph_from_edges([], num_vertices=1)
        result = correlation_clustering(g, resolution=0.5, seed=0)
        assert result.num_clusters == 1
        assert result.objective == 0.0

    def test_edgeless_graph(self):
        g = graph_from_edges([], num_vertices=10)
        result = correlation_clustering(g, resolution=0.5, seed=0)
        assert result.num_clusters == 10

    def test_single_edge(self):
        g = graph_from_edges([(0, 1)])
        result = correlation_clustering(g, resolution=0.3, seed=0)
        assert result.num_clusters == 1
        assert result.f_objective == pytest.approx(1 - 0.3)

    def test_isolated_vertices_stay_singleton(self):
        g = graph_from_edges([(0, 1)], num_vertices=5)
        result = correlation_clustering(g, resolution=0.3, seed=0)
        labels = result.assignments
        assert labels[0] == labels[1]
        assert len({int(labels[i]) for i in (2, 3, 4)}) == 3

    def test_self_loop_only_graph(self):
        g = graph_from_edges([(0, 0), (1, 1)], num_vertices=2)
        result = correlation_clustering(g, resolution=0.5, seed=0)
        # Self-loops are intra by definition; singletons keep them.
        assert result.f_objective == pytest.approx(2.0)

    def test_modularity_needs_edges(self):
        g = graph_from_edges([], num_vertices=3)
        with pytest.raises(ValueError):
            modularity_clustering(g, gamma=1.0, seed=0)

    def test_star_graph(self):
        g = graph_from_edges([(0, i) for i in range(1, 20)])
        low = correlation_clustering(g, resolution=0.01, seed=0)
        assert low.num_clusters == 1
        high = correlation_clustering(g, resolution=0.95, seed=0)
        assert high.num_clusters >= 10  # mostly pairs/singletons


class TestExtremeResolutions:
    def test_lambda_zero_merges_connected(self, karate):
        result = correlation_clustering(karate, resolution=0.0, seed=0)
        assert result.num_clusters == 1  # everything positive, no penalty

    def test_lambda_near_one_only_dense_clusters(self, karate):
        # At lambda -> 1 only near-cliques remain profitable (every
        # non-edge pair costs ~1); karate's largest cliques have 5 members.
        result = correlation_clustering(karate, resolution=0.999, seed=0)
        sizes = np.bincount(result.assignments)
        assert sizes.max() <= 6
        assert np.median(sizes) <= 2

    def test_huge_gamma(self, karate):
        result = modularity_clustering(karate, gamma=100.0, seed=0)
        assert result.num_clusters > 10


class TestConfigPlumbing:
    def test_workers_affect_nothing_but_time(self, karate):
        a = cluster(karate, ClusteringConfig(resolution=0.1, num_workers=2, seed=3))
        b = cluster(karate, ClusteringConfig(resolution=0.1, num_workers=60, seed=3))
        assert np.array_equal(a.assignments, b.assignments)

    def test_kernel_threshold_affects_nothing_but_cost(self, karate):
        a = cluster(
            karate, ClusteringConfig(resolution=0.1, kernel_threshold=2, seed=3)
        )
        b = cluster(
            karate, ClusteringConfig(resolution=0.1, kernel_threshold=10**6, seed=3)
        )
        assert np.array_equal(a.assignments, b.assignments)
        assert a.ledger.total_work != b.ledger.total_work

    def test_max_levels_one_still_valid(self, small_planted):
        result = cluster(
            small_planted.graph,
            ClusteringConfig(resolution=0.05, max_levels=1, seed=0),
        )
        assert result.num_levels == 1
        assert result.objective > 0

    def test_escape_disabled_still_runs(self, karate):
        result = cluster(
            karate, ClusteringConfig(resolution=0.9, escape_moves=False, seed=0)
        )
        assert result.assignments.shape == (34,)
