import numpy as np
import pytest

from repro.core.api import correlation_clustering


@pytest.fixture(scope="module")
def result(request):
    from repro.graphs.karate import karate_club_graph

    return correlation_clustering(karate_club_graph(), resolution=0.1, seed=1)


class TestClusterResult:
    def test_clusters_grouped_by_label(self, result):
        for label, members in enumerate(result.clusters()):
            assert np.all(result.assignments[members] == label)

    def test_clusters_cover_everything(self, result):
        total = sum(len(c) for c in result.clusters())
        assert total == 34

    def test_num_clusters_consistent(self, result):
        assert result.num_clusters == len(result.clusters())

    def test_summary_contains_key_numbers(self, result):
        text = result.summary()
        assert str(result.num_clusters) in text
        assert "resolution=0.1" in text

    def test_rounds_and_levels(self, result):
        assert result.num_levels >= 1
        assert result.rounds >= result.num_levels

    def test_memory_fields(self, result):
        assert result.input_bytes > 0
        assert result.peak_memory_bytes >= result.input_bytes
        assert result.memory_overhead >= 1.0

    def test_extras_default_empty(self, result):
        assert result.extras == {}

    def test_seed_recorded(self, result):
        assert result.seed == 1

    def test_effective_lambda_for_cc(self, result):
        assert result.effective_lambda == result.resolution

    def test_wall_seconds_positive(self, result):
        assert result.wall_seconds > 0

    def test_ledger_snapshot_keys(self, result):
        snap = result.ledger.snapshot()
        assert set(snap) == {"work", "depth", "serial"}
        assert snap["work"] > 0
