import numpy as np
import pytest

from repro.baselines.tectonic import edge_supports, tectonic_cluster
from repro.eval.ground_truth import average_precision_recall
from repro.graphs.builders import graph_from_edges


class TestEdgeSupports:
    def test_triangle_fully_supported(self, triangle_graph):
        supports = edge_supports(triangle_graph)
        assert np.allclose(supports, 1.0)

    def test_path_unsupported(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        assert np.all(edge_supports(g) == 0.0)

    def test_in_unit_interval(self, karate):
        supports = edge_supports(karate)
        assert supports.min() >= 0.0
        assert supports.max() <= 1.0


class TestTectonicCluster:
    def test_zero_theta_is_components(self, two_cliques):
        labels = tectonic_cluster(two_cliques, theta=0.0)
        assert np.unique(labels).size == 1  # whole graph connected

    def test_moderate_theta_splits_cliques(self, two_cliques):
        # The bridge edge closes no triangles; any positive theta cuts it.
        labels = tectonic_cluster(two_cliques, theta=0.1)
        assert labels[0] == labels[1] == labels[2] == labels[3]
        assert labels[4] == labels[5] == labels[6] == labels[7]
        assert labels[0] != labels[4]

    def test_huge_theta_singletons(self, karate):
        labels = tectonic_cluster(karate, theta=2.0)
        assert np.unique(labels).size == 34

    def test_theta_monotone_in_cluster_count(self, karate):
        counts = [
            np.unique(tectonic_cluster(karate, theta=t)).size
            for t in (0.0, 0.2, 0.5, 1.1)
        ]
        assert counts == sorted(counts)

    def test_negative_theta_rejected(self, karate):
        with pytest.raises(ValueError):
            tectonic_cluster(karate, theta=-0.1)

    def test_quality_on_planted(self, small_planted):
        labels = tectonic_cluster(small_planted.graph, theta=0.15)
        pr = average_precision_recall(labels, small_planted.communities)
        assert pr.precision > 0.5
        assert pr.recall > 0.3
