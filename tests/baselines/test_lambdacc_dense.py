import numpy as np
import pytest

from repro.baselines.lambdacc_dense import MAX_DENSE_VERTICES, dense_lambdacc_cluster
from repro.core.api import correlation_clustering
from repro.core.objective import lambdacc_objective
from repro.graphs.builders import graph_from_edges
from repro.parallel.scheduler import SimulatedScheduler


class TestDenseLambdaCC:
    def test_karate_quality_matches_sparse(self, karate):
        """Same algorithm, different data structure: objective should land
        in the same band as SEQ-CC."""
        lam = 0.05
        labels, _ = dense_lambdacc_cluster(karate, resolution=lam, seed=0)
        dense_obj = lambdacc_objective(karate, labels, lam)
        sparse_obj = correlation_clustering(
            karate, resolution=lam, parallel=False, seed=0
        ).f_objective
        assert dense_obj > 0
        assert dense_obj >= 0.8 * sparse_obj

    def test_two_cliques(self, two_cliques):
        labels, sweeps = dense_lambdacc_cluster(two_cliques, resolution=0.2, seed=0)
        assert np.unique(labels).size == 2
        assert sweeps >= 1

    def test_scaling_wall(self):
        g = graph_from_edges([(0, 1)], num_vertices=MAX_DENSE_VERTICES + 1)
        with pytest.raises(ValueError, match="refuses"):
            dense_lambdacc_cluster(g)

    def test_quadratic_work_charged(self, karate):
        """The point of the baseline: Theta(n) work per vertex visit."""
        sched = SimulatedScheduler(num_workers=1)
        dense_lambdacc_cluster(karate, resolution=0.05, seed=0, sched=sched)
        n = karate.num_vertices
        # At least one full sweep of n vertices at 4n each.
        assert sched.ledger.total_work >= 4 * n * n

    def test_orders_of_magnitude_slower_than_sparse(self, small_planted):
        """Appendix C.1: the dense-matrix LambdaCC is orders of magnitude
        slower than the sparse implementation.  At n=300 the Theta(n^2)
        per-sweep wall already dominates the sparse cost by >10x (on the
        paper's hundreds-of-vertices karate comparison the gap is ~300x,
        amplified further by MATLAB's interpreter, which we don't model)."""
        g = small_planted.graph
        sched = SimulatedScheduler(num_workers=1)
        dense_lambdacc_cluster(g, resolution=0.05, seed=0, sched=sched)
        dense_time = sched.ledger.simulated_time(1)
        seq = correlation_clustering(g, resolution=0.05, parallel=False, seed=0)
        assert dense_time > 10 * seq.sim_time(1)
