import pytest

from repro.baselines.plm import NETWORKIT_NUM_ITER, plm_cluster
from repro.core.api import modularity_clustering


class TestPlm:
    def test_networkit_iteration_default(self, karate):
        result = plm_cluster(karate, gamma=1.0, seed=0)
        assert result.config.num_iter == NETWORKIT_NUM_ITER == 32

    def test_quality_comparable_to_par_mod(self, small_planted):
        """Paper: PAR-MOD obtains 0.99-1.00x NetworKit's modularity."""
        g = small_planted.graph
        plm = plm_cluster(g, gamma=1.0, seed=1)
        ours = modularity_clustering(g, gamma=1.0, seed=1, num_iter=32, refine=False)
        assert ours.modularity == pytest.approx(plm.modularity, rel=0.05)

    def test_par_mod_faster_in_simulated_time(self, small_planted):
        """Paper Figure 17: PAR-MOD beats NetworKit via the work-efficient
        compression (up to 3.5x, 1.89x average)."""
        g = small_planted.graph
        plm = plm_cluster(g, gamma=1.0, seed=1)
        ours = modularity_clustering(g, gamma=1.0, seed=1, num_iter=32, refine=False)
        assert ours.sim_time(60) < plm.sim_time(60)

    def test_result_tagged(self, karate):
        assert plm_cluster(karate, seed=0).extras["baseline"] == "networkit-plm"

    def test_no_refinement(self, karate):
        assert plm_cluster(karate, seed=0).config.refine is False
