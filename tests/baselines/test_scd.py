import numpy as np
import pytest

from repro.baselines.scd import _initial_partition, _wcc_of_vertex, scd_cluster
from repro.baselines.triangles import vertex_triangle_pairs
from repro.eval.ground_truth import average_precision_recall
from repro.graphs.builders import graph_from_edges


class TestWccOfVertex:
    def test_no_triangles_zero(self):
        pairs = np.zeros((0, 2), dtype=np.int64)
        assert _wcc_of_vertex(pairs, np.zeros(3, dtype=np.int64), np.ones(3, dtype=np.int64), 0, True) == 0.0

    def test_fully_internal_triangle(self, triangle_graph):
        pairs = vertex_triangle_pairs(triangle_graph)
        labels = np.zeros(3, dtype=np.int64)
        sizes = np.asarray([3, 0, 0], dtype=np.int64)
        wcc = _wcc_of_vertex(pairs[0], labels, sizes, 0, True)
        # t_in/t_tot = 1, vt = 2, |C\x| = 2, vt_out = 0 -> 1 * 2/2 = 1.
        assert wcc == pytest.approx(1.0)

    def test_external_triangle_scores_zero_inside(self, triangle_graph):
        pairs = vertex_triangle_pairs(triangle_graph)
        labels = np.asarray([0, 1, 1], dtype=np.int64)
        sizes = np.asarray([1, 2, 0], dtype=np.int64)
        assert _wcc_of_vertex(pairs[0], labels, sizes, 0, True) == 0.0


class TestInitialPartition:
    def test_covers_everyone(self, karate):
        pairs = vertex_triangle_pairs(karate)
        labels = _initial_partition(karate, pairs)
        assert np.all(labels >= 0)

    def test_clique_seeded_together(self, two_cliques):
        pairs = vertex_triangle_pairs(two_cliques)
        labels = _initial_partition(two_cliques, pairs)
        assert np.unique(labels[:4]).size == 1 or np.unique(labels[4:]).size == 1


class TestScdCluster:
    def test_two_cliques(self, two_cliques):
        labels = scd_cluster(two_cliques, seed=0)
        assert labels[0] == labels[1] == labels[2] == labels[3]
        assert labels[4] == labels[5] == labels[6] == labels[7]
        assert labels[0] != labels[4]

    def test_dense_labels(self, karate):
        labels = scd_cluster(karate, seed=0)
        assert labels.min() == 0
        assert set(labels.tolist()) == set(range(labels.max() + 1))

    def test_precomputed_pairs_reused(self, karate):
        pairs = vertex_triangle_pairs(karate)
        a = scd_cluster(karate, seed=1, triangle_pairs=pairs)
        b = scd_cluster(karate, seed=1)
        assert np.array_equal(a, b)

    def test_quality_on_planted(self, small_planted):
        labels = scd_cluster(small_planted.graph, seed=0)
        pr = average_precision_recall(labels, small_planted.communities)
        assert pr.precision > 0.5
        assert pr.recall > 0.3

    def test_triangle_free_graph_degrades(self):
        """SCD has no signal without triangles (the WCC is 0 everywhere),
        the known failure mode the paper's triangle-based baselines share."""
        star = graph_from_edges([(0, i) for i in range(1, 10)])
        labels = scd_cluster(star, seed=0)
        assert labels.shape == (10,)
