"""KwikCluster / C4 / ClusterWild! tests (Appendix C.1 baselines)."""

import numpy as np
import pytest

from repro.baselines.c4 import c4_cluster, lex_first_mis
from repro.baselines.clusterwild import clusterwild_cluster
from repro.baselines.kwikcluster import kwikcluster
from repro.core.objective import cc_objective
from repro.generators.rmat import rmat_graph
from repro.graphs.builders import graph_from_edges
from repro.parallel.scheduler import SimulatedScheduler


class TestKwikCluster:
    def test_two_cliques(self, two_cliques):
        labels = kwikcluster(two_cliques, seed=0)
        # Pivot clustering keeps cliques mostly intact.
        assert np.unique(labels).size <= 4

    def test_pivot_claims_neighbors(self):
        star = graph_from_edges([(0, i) for i in range(1, 6)])
        labels = kwikcluster(star, permutation=np.arange(6))
        assert np.all(labels == labels[0])  # 0 pivots first, claims all

    def test_negative_edges_not_claimed(self):
        g = graph_from_edges([(0, 1), (0, 2)], weights=np.asarray([1.0, -1.0]))
        labels = kwikcluster(g, permutation=np.arange(3))
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]

    def test_deterministic_with_seed(self, karate):
        assert np.array_equal(
            kwikcluster(karate, seed=5), kwikcluster(karate, seed=5)
        )

    def test_charged_sequentially(self, karate):
        sched = SimulatedScheduler(num_workers=8)
        kwikcluster(karate, seed=0, sched=sched)
        assert sched.ledger.total_depth == sched.ledger.total_work


class TestC4:
    @pytest.mark.parametrize("seed", range(8))
    def test_serializability(self, seed):
        """C4's output equals sequential KwikCluster on the same ranks."""
        g = rmat_graph(9, 4 * 512, seed=seed)
        perm = np.random.default_rng(seed).permutation(g.num_vertices)
        assert np.array_equal(
            kwikcluster(g, permutation=perm), c4_cluster(g, permutation=perm)
        )

    def test_serializability_on_karate(self, karate):
        perm = np.random.default_rng(3).permutation(34)
        assert np.array_equal(
            kwikcluster(karate, permutation=perm),
            c4_cluster(karate, permutation=perm),
        )

    def test_mis_is_maximal_and_independent(self, karate):
        n = karate.num_vertices
        rank = np.random.default_rng(0).permutation(n)
        src = np.repeat(np.arange(n), np.diff(karate.offsets))
        in_mis, rounds = lex_first_mis(src, karate.neighbors, rank, n)
        # Independence: no edge inside the MIS.
        assert not np.any(in_mis[src] & in_mis[karate.neighbors])
        # Maximality: every non-member has a member neighbor.
        covered = np.zeros(n, dtype=bool)
        covered[src[in_mis[karate.neighbors]]] = True
        assert np.all(in_mis | covered)
        assert rounds >= 1

    def test_parallel_depth_charged(self, karate):
        sched = SimulatedScheduler(num_workers=8)
        c4_cluster(karate, seed=0, sched=sched)
        assert sched.ledger.total_depth < sched.ledger.total_work


class TestClusterWild:
    def test_partitions_all_vertices(self, karate):
        labels = clusterwild_cluster(karate, seed=0)
        assert labels.shape == (34,)
        assert labels.min() == 0

    def test_epsilon_validated(self, karate):
        with pytest.raises(ValueError):
            clusterwild_cluster(karate, epsilon=0.0)

    def test_deterministic(self, karate):
        assert np.array_equal(
            clusterwild_cluster(karate, seed=2), clusterwild_cluster(karate, seed=2)
        )

    def test_isolated_vertices_singletons(self):
        g = graph_from_edges([(0, 1)], num_vertices=4)
        labels = clusterwild_cluster(g, seed=0)
        assert labels[2] != labels[3]


class TestPivotQualityStory:
    """Appendix C.1: pivots are fast but lose badly on the CC objective."""

    def test_par_cc_beats_pivots_on_objective(self, small_planted):
        from repro.core.api import correlation_clustering

        g = small_planted.graph
        ours = correlation_clustering(g, resolution=0.5, seed=0).objective
        kwik = cc_objective(g, kwikcluster(g, seed=0), 0.5)
        wild = cc_objective(g, clusterwild_cluster(g, seed=0), 0.5)
        assert ours > kwik
        assert ours > wild
