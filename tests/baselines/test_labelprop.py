import numpy as np
import pytest

from repro.baselines.labelprop import label_propagation
from repro.eval.ground_truth import average_precision_recall
from repro.graphs.builders import graph_from_edges
from repro.parallel.scheduler import SimulatedScheduler


class TestLabelPropagation:
    def test_two_cliques(self, two_cliques):
        labels = label_propagation(two_cliques, seed=0)
        assert len(np.unique(labels[:4])) == 1
        assert len(np.unique(labels[4:])) == 1

    def test_dense_labels(self, karate):
        labels = label_propagation(karate, seed=0)
        uniq = np.unique(labels)
        assert np.array_equal(uniq, np.arange(uniq.size))

    def test_deterministic_given_seed(self, karate):
        assert np.array_equal(
            label_propagation(karate, seed=3), label_propagation(karate, seed=3)
        )

    def test_isolated_vertices_keep_own_label(self):
        g = graph_from_edges([(0, 1)], num_vertices=4)
        labels = label_propagation(g, seed=0)
        assert labels[2] != labels[3]

    def test_weighted_majority(self):
        # Vertex 2 ties to 0 (weight 3) and 1 (weight 1): joins 0's label.
        g = graph_from_edges([(0, 2), (1, 2)], weights=np.asarray([3.0, 1.0]))
        labels = label_propagation(g, seed=0, max_iterations=5)
        assert labels[2] == labels[0]

    def test_quality_on_planted(self, small_planted):
        labels = label_propagation(small_planted.graph, seed=0)
        pr = average_precision_recall(labels, small_planted.communities)
        assert pr.recall > 0.3

    def test_charges_work(self, karate):
        sched = SimulatedScheduler(num_workers=8)
        label_propagation(karate, seed=0, sched=sched)
        assert sched.ledger.total_work > 0

    def test_synchronous_variant_runs(self, karate):
        labels = label_propagation(karate, seed=0, synchronous=True,
                                   max_iterations=10)
        assert labels.shape == (34,)
