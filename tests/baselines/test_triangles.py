import numpy as np
import pytest

from repro.baselines.triangles import (
    edge_triangle_counts,
    total_triangles,
    vertex_triangle_pairs,
)
from repro.graphs.builders import graph_from_edges


class TestEdgeCounts:
    def test_triangle(self, triangle_graph):
        counts = edge_triangle_counts(triangle_graph)
        assert np.all(counts == 1)

    def test_path_has_none(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        assert np.all(edge_triangle_counts(g) == 0)

    def test_k4(self):
        g = graph_from_edges(
            [(i, j) for i in range(4) for j in range(i + 1, 4)]
        )
        counts = edge_triangle_counts(g)
        assert np.all(counts == 2)  # each K4 edge is in two triangles

    def test_bowtie(self):
        # Two triangles sharing vertex 2.
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        total = total_triangles(g)
        assert total == 2

    def test_empty_graph(self):
        g = graph_from_edges([], num_vertices=3)
        assert edge_triangle_counts(g).size == 0
        assert total_triangles(g) == 0

    def test_matches_bruteforce(self, rng):
        edges = rng.integers(0, 20, size=(60, 2))
        g = graph_from_edges(edges[edges[:, 0] != edges[:, 1]], num_vertices=20)
        counts = edge_triangle_counts(g)
        nbr_sets = [
            set(g.neighbors[g.offsets[v]: g.offsets[v + 1]].tolist())
            for v in range(20)
        ]
        src = np.repeat(np.arange(20), np.diff(g.offsets))
        for e in range(g.num_directed_edges):
            u, v = int(src[e]), int(g.neighbors[e])
            assert counts[e] == len(nbr_sets[u] & nbr_sets[v])


class TestTotalTriangles:
    def test_karate_known_count(self, karate):
        # Zachary's karate club has exactly 45 triangles.
        assert total_triangles(karate) == 45


class TestVertexTrianglePairs:
    def test_triangle(self, triangle_graph):
        pairs = vertex_triangle_pairs(triangle_graph)
        assert pairs[0].shape == (1, 2)
        assert np.array_equal(pairs[0][0], [1, 2])

    def test_pair_ordering(self, karate):
        pairs = vertex_triangle_pairs(karate)
        for p in pairs:
            if p.size:
                assert np.all(p[:, 0] < p[:, 1])

    def test_total_consistent_with_counts(self, karate):
        pairs = vertex_triangle_pairs(karate)
        # Each triangle contributes one pair to each of its 3 vertices.
        assert sum(p.shape[0] for p in pairs) == 3 * total_triangles(karate)

    def test_isolated_vertex_empty(self):
        g = graph_from_edges([(0, 1)], num_vertices=3)
        pairs = vertex_triangle_pairs(g)
        assert pairs[2].shape == (0, 2)
