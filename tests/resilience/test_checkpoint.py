"""Checkpoint serialization: round-trip fidelity and load validation."""

import json

import numpy as np
import pytest

from repro.core.louvain_par import LevelStats, MultiLevelStats
from repro.errors import CheckpointError
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    MultilevelCheckpoint,
    capture_rng,
    load_checkpoint,
    restore_rng,
    save_checkpoint,
)


@pytest.fixture
def ckpt(karate):
    stats = MultiLevelStats()
    stats.levels.append(
        LevelStats(
            num_vertices=karate.num_vertices,
            num_edges=karate.num_edges,
            iterations=3,
            moves=20,
            frontier_sizes=[34, 12, 0],
        )
    )
    v2s = np.arange(karate.num_vertices, dtype=np.int64) % 5
    return MultilevelCheckpoint(
        level=1,
        current=karate,
        retained=[(karate, v2s)],
        rng_state=capture_rng(np.random.default_rng(123)),
        stats=stats,
        config_tag="mode=parallel|lambda=0.05",
        num_vertices=karate.num_vertices,
        total_moves=20,
        total_rounds=3,
    )


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        loaded = load_checkpoint(path, config_tag=ckpt.config_tag)
        assert loaded.level == ckpt.level
        assert loaded.config_tag == ckpt.config_tag
        assert loaded.num_vertices == ckpt.num_vertices
        assert loaded.total_moves == 20 and loaded.total_rounds == 3
        assert np.array_equal(loaded.current.offsets, ckpt.current.offsets)
        assert np.array_equal(loaded.current.neighbors, ckpt.current.neighbors)
        assert np.allclose(loaded.current.weights, ckpt.current.weights)
        assert len(loaded.retained) == 1
        assert np.array_equal(loaded.retained[0][1], ckpt.retained[0][1])
        assert loaded.stats.levels[0].moves == 20
        assert loaded.stats.levels[0].frontier_sizes == [34, 12, 0]

    def test_rng_state_round_trip_is_bit_identical(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        loaded = load_checkpoint(path)
        reference = np.random.default_rng(123)
        restored = np.random.default_rng(999)  # wrong seed on purpose
        restore_rng(restored, loaded.rng_state)
        assert np.array_equal(
            reference.integers(0, 1 << 62, size=64),
            restored.integers(0, 1 << 62, size=64),
        )

    def test_restore_rng_none_is_noop(self):
        restore_rng(None, None)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        restore_rng(rng, None)
        assert rng.bit_generator.state == before


class TestLoadValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, x=np.arange(3))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_corrupt_header(self, ckpt, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, meta=np.frombuffer(b"{not json", dtype=np.uint8))
        with pytest.raises(CheckpointError, match="corrupt checkpoint header"):
            load_checkpoint(path)

    def test_version_mismatch(self, ckpt, tmp_path):
        path = tmp_path / "v.npz"
        save_checkpoint(path, ckpt)
        data = dict(np.load(path).items())
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = CHECKPOINT_VERSION + 99
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="unsupported checkpoint version"):
            load_checkpoint(path)

    def test_config_tag_mismatch(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        with pytest.raises(CheckpointError, match="cannot resume under"):
            load_checkpoint(path, config_tag="something-else")

    def test_num_vertices_mismatch(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        with pytest.raises(CheckpointError, match="vertices"):
            load_checkpoint(path, num_vertices=ckpt.num_vertices + 1)

    def test_missing_graph_array(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        data = dict(np.load(path).items())
        del data["cur_neighbors"]
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="missing graph array"):
            load_checkpoint(path)

    def test_rng_family_mismatch(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        loaded = load_checkpoint(path)
        rng = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(CheckpointError, match="MT19937"):
            restore_rng(rng, loaded.rng_state)


class TestCorruptFiles:
    """Torn/garbage checkpoint bytes must surface as CheckpointError only."""

    def test_truncated_zip_raises_checkpoint_error(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        blob = path.read_bytes()
        for cut in (len(blob) // 3, len(blob) // 2, len(blob) - 8):
            path.write_bytes(blob[:cut])
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    def test_garbage_bytes_raise_checkpoint_error(self, tmp_path):
        path = tmp_path / "ck.npz"
        path.write_bytes(b"\x00" * 512)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_empty_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "ck.npz"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_corrupted_member_bytes_raise_checkpoint_error(self, ckpt, tmp_path):
        # Flip bytes in the middle of the archive: the zip directory may
        # still parse, but extracting a member hits torn compressed data.
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        blob = bytearray(path.read_bytes())
        mid = len(blob) // 2
        for i in range(mid, min(mid + 64, len(blob))):
            blob[i] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestAtomicSave:
    def test_no_temp_file_left_behind(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]

    def test_failed_save_preserves_previous_checkpoint(self, ckpt, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ckpt)
        good = path.read_bytes()
        broken = MultilevelCheckpoint(
            level=ckpt.level,
            current=object(),  # not a graph: save blows up mid-pack
            retained=[],
            rng_state=None,
            stats=ckpt.stats,
            config_tag=ckpt.config_tag,
            num_vertices=ckpt.num_vertices,
        )
        with pytest.raises(Exception):
            save_checkpoint(path, broken)
        assert path.read_bytes() == good
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]
