"""StateAuditor: detection, strictness, and graceful resync."""

import numpy as np
import pytest

from repro.core.state import ClusterState
from repro.errors import InvariantViolation
from repro.resilience.audit import StateAuditor


@pytest.fixture
def state(karate):
    state = ClusterState.singletons(karate)
    state.apply_moves(
        np.asarray([0, 1, 2], dtype=np.int64), np.asarray([5, 5, 5], dtype=np.int64)
    )
    return state


class TestVerifyState:
    def test_clean_state_passes(self, karate, state):
        assert StateAuditor().verify_state(karate, state, resolution=0.05) == []

    def test_check_state_raises_typed_error(self, karate, state):
        state.cluster_weights[5] += 3.0
        with pytest.raises(InvariantViolation, match="best-moves"):
            StateAuditor().check_state(karate, state, where="best-moves")

    def test_detects_weight_drift(self, karate, state):
        state.cluster_weights[5] += 1.0
        issues = StateAuditor().verify_state(karate, state)
        assert any("cluster_weights" in issue for issue in issues)

    def test_detects_size_drift(self, karate, state):
        state.cluster_sizes[5] += 1
        issues = StateAuditor().verify_state(karate, state)
        assert any("cluster_sizes" in issue for issue in issues)

    def test_detects_out_of_range_labels(self, karate, state):
        state.assignments[0] = -3
        issues = StateAuditor().verify_state(karate, state)
        assert any("labels" in issue for issue in issues)

    def test_detects_non_finite_weights(self, karate, state):
        state.cluster_weights[5] = np.nan
        issues = StateAuditor().verify_state(karate, state)
        assert any("non-finite" in issue for issue in issues)

    def test_tolerance_absorbs_float_noise(self, karate, state):
        state.cluster_weights[5] += 1e-12
        assert StateAuditor().verify_state(karate, state, resolution=0.05) == []


class TestResync:
    def test_resync_repairs_weights_and_sizes(self, karate, state):
        state.cluster_weights[5] += 7.0
        state.cluster_sizes[2] += 4
        auditor = StateAuditor()
        repaired = auditor.resync(state)
        assert set(repaired) == {"cluster_weights", "cluster_sizes"}
        assert auditor.verify_state(karate, state, resolution=0.05) == []

    def test_resync_noop_on_clean_state(self, karate, state):
        assert StateAuditor().resync(state) == []


class TestVerifyResult:
    def test_clean_result_passes(self, karate):
        from repro.core.objective import lambdacc_objective

        labels = np.zeros(karate.num_vertices, dtype=np.int64)
        f_value = lambdacc_objective(karate, labels, 0.05)
        assert StateAuditor().verify_result(karate, labels, 0.05, f_value) == []

    def test_detects_objective_mismatch(self, karate):
        labels = np.zeros(karate.num_vertices, dtype=np.int64)
        issues = StateAuditor().verify_result(karate, labels, 0.05, 1e9)
        assert any("objective" in issue for issue in issues)

    def test_detects_non_dense_labels(self, karate):
        labels = np.zeros(karate.num_vertices, dtype=np.int64)
        labels[0] = 7  # labels {0, 7}: valid range but not dense
        issues = StateAuditor().verify_result(karate, labels, 0.05, 0.0)
        assert any("dense" in issue for issue in issues)
