"""FaultPlan mechanics: determinism, rate parsing, injection accounting."""

import numpy as np
import pytest

from repro.core.state import ClusterState
from repro.errors import ConfigError, TransientFault
from repro.resilience.faults import (
    DEFAULT_RATE,
    FaultKind,
    FaultPlan,
    FaultyClusterState,
)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(stale_read_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(cas_fail_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(max_injections=-1)

    def test_single_sets_one_rate(self):
        plan = FaultPlan.single(FaultKind.DROP_MOVE, rate=0.25)
        assert plan.drop_move_rate == 0.25
        assert plan.stale_read_rate == 0.0
        assert plan.transient_rate == 0.0

    def test_from_spec(self):
        plan = FaultPlan.from_spec("stale-read=0.2, cas-fail ,drop-move=0.05")
        assert plan.stale_read_rate == 0.2
        assert plan.cas_fail_rate == DEFAULT_RATE
        assert plan.drop_move_rate == 0.05

    def test_from_spec_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultPlan.from_spec("segfault=0.5")

    def test_from_spec_rejects_bad_rate(self):
        with pytest.raises(ConfigError, match="bad fault rate"):
            FaultPlan.from_spec("cas-fail=lots")

    def test_from_spec_rejects_empty(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_spec("  , ")

    def test_deterministic_replay(self):
        a = FaultPlan(drop_move_rate=0.5, seed=42)
        b = FaultPlan(drop_move_rate=0.5, seed=42)
        for _ in range(5):
            assert np.array_equal(a.drop_mask(100), b.drop_mask(100))
        assert a.counts == b.counts

    def test_max_injections_caps_total(self):
        plan = FaultPlan(drop_move_rate=1.0, max_injections=7)
        plan.drop_mask(5)
        mask = plan.drop_mask(5)
        assert plan.total_injections == 7
        assert int(mask.sum()) == 2  # only 2 of the second batch fire
        assert not plan.drop_mask(5).any()  # exhausted

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=0)
        assert not plan.drop_mask(1000).any()
        assert not plan.transient_fires()
        assert plan.cas_failures(1000) == 0
        assert plan.total_injections == 0

    def test_counts_by_kind(self):
        plan = FaultPlan(drop_move_rate=1.0, cas_fail_rate=1.0)
        plan.drop_mask(3)
        plan.cas_failures(2)
        assert plan.counts[FaultKind.DROP_MOVE.value] == 3
        assert plan.counts[FaultKind.CAS_FAIL.value] == 2
        assert "drop-move=3" in plan.summary()

    def test_delay_frontier_defers_not_drops(self):
        plan = FaultPlan(delay_frontier_rate=1.0, seed=1)
        first = plan.delay_frontier(np.arange(10, dtype=np.int64))
        assert first.size == 0  # everything held back
        released = plan.delay_frontier(np.zeros(0, dtype=np.int64))
        assert np.array_equal(released, np.arange(10))  # ...and released later

    def test_reset_frontier_discards_deferred(self):
        plan = FaultPlan(delay_frontier_rate=1.0, seed=1)
        plan.delay_frontier(np.arange(10, dtype=np.int64))
        plan.reset_frontier()
        assert plan.delay_frontier(np.zeros(0, dtype=np.int64)).size == 0


class TestFaultyClusterState:
    def _state(self, karate):
        return ClusterState.singletons(karate)

    def test_no_faults_behaves_identically(self, karate):
        clean = self._state(karate)
        faulty = FaultyClusterState(self._state(karate), FaultPlan())
        vertices = np.asarray([0, 1, 2], dtype=np.int64)
        targets = np.asarray([5, 5, 6], dtype=np.int64)
        assert clean.apply_moves(vertices, targets) == faulty.apply_moves(
            vertices, targets
        )
        assert np.array_equal(clean.assignments, faulty.assignments)
        assert np.allclose(clean.cluster_weights, faulty.cluster_weights)
        faulty.check_invariants()

    def test_drop_move_keeps_state_consistent(self, karate):
        plan = FaultPlan(drop_move_rate=1.0)
        state = FaultyClusterState(self._state(karate), plan)
        moved = state.apply_moves(
            np.asarray([0, 1], dtype=np.int64), np.asarray([5, 5], dtype=np.int64)
        )
        assert moved == 0
        state.check_invariants()  # nothing applied, nothing corrupt

    def test_stale_read_defers_weight_visibility(self, karate):
        plan = FaultPlan(stale_read_rate=1.0)
        state = FaultyClusterState(self._state(karate), plan)
        before = state.cluster_weights.copy()
        state.apply_moves(
            np.asarray([0], dtype=np.int64), np.asarray([5], dtype=np.int64)
        )
        # The assignment moved but the weight update is not yet visible.
        assert state.assignments[0] == 5
        assert np.allclose(state.cluster_weights, before)
        state.flush_pending()
        state.check_invariants()

    def test_dup_move_corrupts_weights_until_resync(self, karate):
        plan = FaultPlan(dup_move_rate=1.0)
        state = FaultyClusterState(self._state(karate), plan)
        state.apply_moves(
            np.asarray([0], dtype=np.int64), np.asarray([5], dtype=np.int64)
        )
        with pytest.raises(AssertionError):
            state.check_invariants()

    def test_transient_raises_before_mutation(self, karate):
        plan = FaultPlan(transient_rate=1.0)
        state = FaultyClusterState(self._state(karate), plan)
        before = state.assignments.copy()
        with pytest.raises(TransientFault):
            state.apply_moves(
                np.asarray([0], dtype=np.int64), np.asarray([5], dtype=np.int64)
            )
        assert np.array_equal(state.assignments, before)
        state.check_invariants()

    def test_move_one_faults(self, karate):
        plan = FaultPlan(drop_move_rate=1.0)
        state = FaultyClusterState(self._state(karate), plan)
        assert state.move_one(0, 5) is False
        state.check_invariants()
