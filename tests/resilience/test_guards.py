"""Run budgets: graceful degradation, strict raising, retry/backoff."""

import numpy as np
import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.errors import BudgetExhausted, ConfigError, TransientFault
from repro.parallel.scheduler import SimulatedScheduler
from repro.resilience import FaultPlan, ResiliencePolicy, RunBudget
from repro.resilience.guards import (
    BudgetGuard,
    backoff_seconds,
    is_watchdog_reason,
    merge_budgets,
)


class TestRunBudget:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RunBudget(max_moves=0)
        with pytest.raises(ConfigError):
            RunBudget(max_sim_seconds=-1.0)

    def test_unlimited(self):
        assert RunBudget().unlimited
        assert not RunBudget(max_rounds=5).unlimited

    def test_guard_moves_and_rounds(self):
        guard = BudgetGuard(RunBudget(max_moves=10, max_rounds=100))
        assert guard.exceeded(moves=5, rounds=5) is None
        assert "move budget" in guard.exceeded(moves=10, rounds=5)
        guard = BudgetGuard(RunBudget(max_rounds=3))
        assert "round budget" in guard.exceeded(moves=0, rounds=3)

    def test_guard_sim_seconds(self):
        sched = SimulatedScheduler(num_workers=4)
        sched.charge(work=1e12, depth=1.0, label="x")
        guard = BudgetGuard(RunBudget(max_sim_seconds=1e-3), sched=sched)
        assert "simulated-time" in guard.exceeded(moves=0, rounds=0)

    def test_backoff_is_exponential(self):
        assert backoff_seconds(1, base=0.5) == pytest.approx(1.0)
        assert backoff_seconds(3, base=0.5) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            backoff_seconds(-1)


class TestGracefulDegradation:
    def test_round_budget_returns_degraded_result(self, karate):
        config = ClusteringConfig(resolution=0.05, seed=7)
        result = cluster(
            karate,
            config,
            resilience=ResiliencePolicy(budget=RunBudget(max_rounds=1), audit=True),
        )
        assert result.degraded
        assert any("round budget" in line for line in result.failure_log)
        # Best-so-far clustering is still a valid partition.
        n = karate.num_vertices
        assert result.assignments.shape == (n,)
        assert 0 <= result.assignments.min() <= result.assignments.max() < n

    def test_strict_budget_raises_typed_error(self, karate):
        config = ClusteringConfig(resolution=0.05, seed=7)
        with pytest.raises(BudgetExhausted):
            cluster(
                karate,
                config,
                resilience=ResiliencePolicy(
                    budget=RunBudget(max_rounds=1), strict=True
                ),
            )

    def test_unbudgeted_run_not_degraded(self, karate):
        config = ClusteringConfig(resolution=0.05, seed=7)
        result = cluster(karate, config, resilience=ResiliencePolicy(audit=True))
        assert not result.degraded
        assert result.failure_log == []

    def test_budgeted_run_matches_clean_when_not_exhausted(self, karate):
        config = ClusteringConfig(resolution=0.05, seed=7)
        clean = cluster(karate, config)
        guarded = cluster(
            karate,
            config,
            resilience=ResiliencePolicy(budget=RunBudget(max_rounds=10_000)),
        )
        assert not guarded.degraded
        assert np.array_equal(clean.assignments, guarded.assignments)


class TestTransientRetries:
    def test_retries_then_degrades(self, karate):
        config = ClusteringConfig(resolution=0.05, seed=7)
        plan = FaultPlan(transient_rate=1.0, seed=0)
        result = cluster(
            karate,
            config,
            resilience=ResiliencePolicy(faults=plan, audit=True, max_retries=2),
        )
        assert result.degraded
        assert any("backing off" in line for line in result.failure_log)
        assert any("giving up" in line for line in result.failure_log)

    def test_strict_reraises_transient(self, karate):
        config = ClusteringConfig(resolution=0.05, seed=7)
        plan = FaultPlan(transient_rate=1.0, seed=0)
        with pytest.raises(TransientFault):
            cluster(
                karate,
                config,
                resilience=ResiliencePolicy(faults=plan, strict=True, max_retries=1),
            )

    def test_occasional_transients_are_absorbed(self, karate):
        config = ClusteringConfig(resolution=0.05, seed=7)
        plan = FaultPlan(transient_rate=0.05, seed=3, max_injections=2)
        result = cluster(
            karate,
            config,
            resilience=ResiliencePolicy(faults=plan, audit=True),
        )
        # Bounded injections: retries absorb them and the run completes.
        assert result.assignments.size == karate.num_vertices


class TestWatchdogBudgetFields:
    def test_level_wall_deadline_needs_an_armed_invocation(self):
        guard = BudgetGuard(RunBudget(max_level_wall_seconds=1e-9))
        # Never armed: the per-level deadline cannot fire.
        assert guard.exceeded(moves=0, rounds=0) is None
        guard.start_invocation()
        reason = guard.exceeded(moves=0, rounds=0)
        assert reason is not None
        assert is_watchdog_reason(reason)

    def test_rearming_resets_the_level_clock(self):
        guard = BudgetGuard(RunBudget(max_level_wall_seconds=30.0))
        guard.start_invocation()
        assert guard.exceeded(moves=0, rounds=0) is None
        guard.start_invocation()
        assert guard.exceeded(moves=0, rounds=0) is None

    def test_is_watchdog_reason_distinguishes_budget_messages(self):
        assert is_watchdog_reason("watchdog: level wall deadline exceeded")
        assert not is_watchdog_reason("round budget exhausted (3 >= 3)")
        assert not is_watchdog_reason("")

    def test_level_wall_must_be_positive(self):
        with pytest.raises(ConfigError):
            RunBudget(max_level_wall_seconds=0.0)


class TestMergeBudgets:
    def test_none_passes_through(self):
        budget = RunBudget(max_rounds=2)
        assert merge_budgets(None, None) is None
        assert merge_budgets(budget, None) is budget
        assert merge_budgets(None, budget) is budget

    def test_takes_the_tightest_of_each_cap(self):
        merged = merge_budgets(
            RunBudget(max_rounds=5, max_wall_seconds=10.0),
            RunBudget(max_rounds=3, max_moves=100),
        )
        assert merged.max_rounds == 3
        assert merged.max_wall_seconds == 10.0
        assert merged.max_moves == 100
        assert merged.max_sim_seconds is None

    def test_merge_is_commutative(self):
        a = RunBudget(max_moves=7, max_level_wall_seconds=1.0)
        b = RunBudget(max_moves=9, max_rounds=4)
        assert merge_budgets(a, b) == merge_budgets(b, a)
