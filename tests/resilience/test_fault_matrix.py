"""The fault matrix: every engine under every fault class.

Each cell of the matrix runs the full multilevel pipeline with one
engine under one injected hazard and asserts the resilience contract:
the run either converges to a valid, audited clustering (possibly
degraded, with the incident recorded in the failure log) or raises a
typed :class:`~repro.errors.ReproError` — never a silent wrong answer,
never an untyped crash.
"""

import numpy as np
import pytest

from repro.core.config import ClusteringConfig
from repro.core.engines import ENGINES, multilevel_with_engine
from repro.core.objective import lambdacc_objective
from repro.errors import ReproError
from repro.generators.planted import planted_partition_graph
from repro.parallel.scheduler import SimulatedScheduler
from repro.resilience import (
    FaultKind,
    FaultPlan,
    ResilienceContext,
    ResiliencePolicy,
    StateAuditor,
)

pytestmark = pytest.mark.faults

ENGINE_NAMES = sorted(ENGINES)
FAULT_KINDS = [kind.value for kind in FaultKind]
RESOLUTION = 0.05


def _run(graph, engine, plan, strict=False, seed=7):
    config = ClusteringConfig(resolution=RESOLUTION, seed=seed)
    sched = SimulatedScheduler(num_workers=8)
    ctx = ResilienceContext(
        ResiliencePolicy(faults=plan, audit=True, strict=strict, max_retries=3),
        sched=sched,
    )
    ctx.bind(graph, RESOLUTION, config)
    labels, stats = multilevel_with_engine(
        graph,
        RESOLUTION,
        config,
        engine=engine,
        sched=sched,
        rng=np.random.default_rng(seed),
        resilience=ctx,
    )
    return labels, stats, ctx


def _assert_valid(graph, labels, ctx):
    """The resilience contract for a run that returned."""
    n = graph.num_vertices
    assert labels.shape == (n,) and labels.dtype == np.int64
    assert 0 <= labels.min() and labels.max() < n
    # Independent audit: the returned clustering is internally consistent
    # and its objective is recomputable (finite, not NaN-poisoned).
    objective = lambdacc_objective(graph, labels, RESOLUTION)
    assert np.isfinite(objective)
    dense = np.unique(labels, return_inverse=True)[1].astype(np.int64)
    recomputed = lambdacc_objective(graph, dense, RESOLUTION)
    assert StateAuditor().verify_result(graph, dense, RESOLUTION, recomputed) == []
    if ctx.degraded:
        assert ctx.failure_log  # degradation is always explained


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("fault", FAULT_KINDS)
def test_engine_survives_fault_on_karate(karate, engine, fault):
    plan = FaultPlan.from_spec(f"{fault}=0.3", seed=11)
    try:
        labels, stats, ctx = _run(karate, engine, plan)
    except ReproError:
        return  # a typed refusal satisfies the contract
    _assert_valid(karate, labels, ctx)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_engine_survives_combined_faults(karate, engine):
    plan = FaultPlan(
        stale_read_rate=0.1,
        cas_fail_rate=0.1,
        drop_move_rate=0.1,
        dup_move_rate=0.1,
        delay_frontier_rate=0.1,
        seed=5,
        max_injections=200,
    )
    try:
        labels, stats, ctx = _run(karate, engine, plan)
    except ReproError:
        return
    _assert_valid(karate, labels, ctx)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_engine_on_planted_partition_under_faults(engine):
    graph = planted_partition_graph(100, seed=3).graph
    plan = FaultPlan.from_spec("drop-move=0.2,stale-read=0.2", seed=19)
    try:
        labels, stats, ctx = _run(graph, engine, plan)
    except ReproError:
        return
    _assert_valid(graph, labels, ctx)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_strict_mode_never_degrades_silently(karate, engine):
    plan = FaultPlan(dup_move_rate=0.5, seed=2)
    try:
        labels, stats, ctx = _run(karate, engine, plan, strict=True)
    except ReproError:
        return  # typed error: contract satisfied
    # If no fault actually corrupted state, the run must be pristine.
    assert not ctx.degraded
    _assert_valid(karate, labels, ctx)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_fault_free_plan_matches_clean_run(karate, engine):
    config = ClusteringConfig(resolution=RESOLUTION, seed=7)
    clean_labels, _ = multilevel_with_engine(
        karate,
        RESOLUTION,
        config,
        engine=engine,
        sched=SimulatedScheduler(num_workers=8),
        rng=np.random.default_rng(7),
    )
    labels, stats, ctx = _run(karate, engine, FaultPlan(seed=11))
    assert not ctx.degraded
    assert np.array_equal(clean_labels, labels)
