import numpy as np
import pytest

from repro.cli import main
from repro.graphs.io import write_edge_list
from repro.graphs.karate import karate_club_graph


class TestClusterCommand:
    def test_karate(self, capsys):
        assert main(["cluster", "--karate", "--resolution", "0.1", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "PAR-CC" in out
        assert "clusters" in out

    def test_sequential_convergence(self, capsys):
        code = main(
            ["cluster", "--karate", "--sequential", "--converge", "--seed", "1"]
        )
        assert code == 0
        assert "SEQ-CC^CON" in capsys.readouterr().out

    def test_modularity(self, capsys):
        main(["cluster", "--karate", "--objective", "modularity",
              "--resolution", "1.0", "--seed", "1"])
        assert "PAR-MOD" in capsys.readouterr().out

    def test_labels_output(self, tmp_path, capsys):
        out = tmp_path / "labels.txt"
        main(["cluster", "--karate", "--seed", "1", "--output", str(out)])
        labels = [int(line) for line in out.read_text().splitlines()]
        assert len(labels) == 34

    def test_edge_list_input(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(karate_club_graph(), path)
        assert main(["cluster", "--input", str(path), "--seed", "0"]) == 0

    def test_source_required(self):
        with pytest.raises(SystemExit):
            main(["cluster"])

    def test_multiple_sources_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(karate_club_graph(), path)
        with pytest.raises(SystemExit):
            main(["cluster", "--karate", "--input", str(path)])


class TestGenerateCommand:
    def test_rmat(self, tmp_path, capsys):
        out = tmp_path / "rmat.txt"
        assert main(
            ["generate", "--kind", "rmat", "--scale", "8", "--output", str(out)]
        ) == 0
        assert out.exists()
        assert "rmat" in capsys.readouterr().out

    def test_planted_with_communities(self, tmp_path, capsys):
        graph_out = tmp_path / "g.txt"
        comm_out = tmp_path / "c.txt"
        main([
            "generate", "--kind", "planted", "--vertices", "200",
            "--output", str(graph_out), "--communities", str(comm_out),
        ])
        assert graph_out.exists()
        assert comm_out.exists()

    def test_surrogate_requires_name(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "surrogate", "--output",
                  str(tmp_path / "g.txt")])


class TestEvaluateCommand:
    def test_precision_recall(self, tmp_path, capsys):
        labels = tmp_path / "labels.txt"
        labels.write_text("0\n0\n1\n1\n")
        comms = tmp_path / "comms.txt"
        comms.write_text("0 1\n2 3\n")
        assert main(["evaluate", "--labels", str(labels),
                     "--communities", str(comms)]) == 0
        out = capsys.readouterr().out
        assert "precision=1.0000" in out
        assert "recall=1.0000" in out

    def test_ari_nmi(self, tmp_path, capsys):
        a = tmp_path / "a.txt"
        a.write_text("0\n0\n1\n1\n")
        b = tmp_path / "b.txt"
        b.write_text("5\n5\n9\n9\n")
        main(["evaluate", "--labels", str(a), "--reference", str(b)])
        out = capsys.readouterr().out
        assert "ARI=1.0000" in out
        assert "NMI=1.0000" in out

    def test_length_mismatch(self, tmp_path):
        a = tmp_path / "a.txt"
        a.write_text("0\n1\n")
        b = tmp_path / "b.txt"
        b.write_text("0\n")
        with pytest.raises(SystemExit):
            main(["evaluate", "--labels", str(a), "--reference", str(b)])

    def test_requires_a_target(self, tmp_path):
        a = tmp_path / "a.txt"
        a.write_text("0\n")
        with pytest.raises(SystemExit):
            main(["evaluate", "--labels", str(a)])


class TestTable1Command:
    def test_prints_all_surrogates(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("amazon", "dblp", "livejournal", "orkut", "twitter",
                     "friendster"):
            assert name in out


class TestRoundtrip:
    def test_generate_cluster_evaluate(self, tmp_path, capsys):
        """Full pipeline through the CLI."""
        graph_path = tmp_path / "g.txt"
        comm_path = tmp_path / "c.txt"
        labels_path = tmp_path / "l.txt"
        main([
            "generate", "--kind", "planted", "--vertices", "300",
            "--intra-degree", "8", "--inter-degree", "1",
            "--output", str(graph_path), "--communities", str(comm_path),
            "--seed", "3",
        ])
        main([
            "cluster", "--input", str(graph_path), "--resolution", "0.05",
            "--seed", "1", "--output", str(labels_path),
        ])
        main([
            "evaluate", "--labels", str(labels_path),
            "--communities", str(comm_path),
        ])
        out = capsys.readouterr().out
        # Planted structure is recoverable through the whole pipeline.
        recall = float(out.rsplit("recall=", 1)[1].split()[0])
        assert recall > 0.5
