import numpy as np
import pytest

from repro.eval.ari import adjusted_rand_index
from repro.graphs.builders import graph_from_edges
from repro.graphs.stats import connected_components
from repro.parallel.union_find import UnionFind, connected_components_uf


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.num_components == 5
        assert not uf.connected(0, 1)

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.num_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.num_components == 2

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_component_labels_dense(self):
        uf = UnionFind(5)
        uf.union(0, 4)
        uf.union(1, 2)
        labels = uf.component_labels()
        assert labels[0] == labels[4]
        assert labels[1] == labels[2]
        assert len(set(labels.tolist())) == 3

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_path_compression_flattens(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        uf.find(0)
        # After compression, 0's parent chain is at most a couple of hops.
        hops = 0
        x = 0
        while uf.parent[x] != x:
            x = int(uf.parent[x])
            hops += 1
        assert hops <= 2


class TestCrossCheck:
    def test_matches_label_propagation_components(self, rng):
        """Union-find and the vectorized connectivity agree on random
        graphs (each validates the other)."""
        for trial in range(5):
            edges = rng.integers(0, 50, size=(40, 2))
            g = graph_from_edges(
                edges[edges[:, 0] != edges[:, 1]], num_vertices=50
            )
            a = connected_components(g)
            b = connected_components_uf(g)
            assert adjusted_rand_index(a, b) == 1.0

    def test_karate_single_component(self, karate):
        assert np.all(connected_components_uf(karate) == 0)
