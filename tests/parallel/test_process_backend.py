"""Process execution backend: parity, sizing, fallback, leak hygiene.

The backend's whole contract is DESIGN.md §13: running batch work on
real OS workers over shared memory must be *bit-identical* to the
simulated inline path — same targets, same gains, same assignments,
same ``f_objective`` — and must never leave a shared-memory segment
behind, whether the run exits normally or a worker is killed mid-run.
"""

import os
import warnings

import numpy as np
import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig, Frontier, Mode
from repro.core.engines import ENGINES
from repro.errors import ConfigError
from repro.generators.lfr import lfr_like_graph
from repro.generators.rmat import rmat_graph
from repro.graphs.karate import karate_club_graph
from repro.parallel.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SimulatedBackend,
    create_backend,
    resolve_workers,
)
from repro.parallel.backend.process import (
    BackendUnavailable,
    leaked_segment_files,
)

pytestmark = pytest.mark.parallel_backend


def _graphs():
    return {
        "karate": karate_club_graph(),
        "rmat": rmat_graph(9, 4096, seed=5),
        "lfr": lfr_like_graph(500, seed=7).graph,
    }


@pytest.fixture(scope="module")
def graphs():
    return _graphs()


@pytest.fixture(scope="class")
def pool():
    """One warm pool shared by the parity sweep (the intended usage).

    Class-scoped so it is fully closed before the leak-hygiene tests
    scan ``/dev/shm`` — a live pool's segments are not leaks.
    """
    backend = ProcessBackend(workers=2)
    yield backend
    backend.close()


class TestParity:
    """Process backend is bit-identical to simulated, all engines."""

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @pytest.mark.parametrize("gname", ["karate", "rmat", "lfr"])
    def test_engine_bit_identical(self, graphs, pool, engine, gname):
        graph = graphs[gname]
        for seed in (1, 12):
            config = ClusteringConfig(seed=seed, num_workers=4)
            base = cluster(graph, config, engine=engine)
            proc = cluster(graph, config, engine=engine, backend=pool)
            assert np.array_equal(base.assignments, proc.assignments)
            assert base.objective == proc.objective
            assert base.stats.total_moves == proc.stats.total_moves
        assert not pool.stats()["faulted"]

    def test_sync_all_frontier_dispatches(self, graphs):
        """A config with big batch windows exercises real dispatch."""
        graph = graphs["rmat"]
        config = ClusteringConfig(
            seed=3,
            mode=Mode.SYNC,
            frontier=Frontier.ALL,
            num_workers=2,
        )
        base = cluster(graph, config)
        with ProcessBackend(workers=2, min_dispatch=64) as backend:
            proc = cluster(graph, config, backend=backend)
            stats = backend.stats()
        assert np.array_equal(base.assignments, proc.assignments)
        assert base.objective == proc.objective
        assert stats["dispatches"] > 0
        assert not stats["faulted"]
        assert stats["bytes_shared"] > 0

    def test_simulated_time_identical(self, graphs, pool):
        """The cost model is charged identically on both paths."""
        graph = graphs["rmat"]
        config = ClusteringConfig(seed=9, num_workers=4)
        base = cluster(graph, config)
        proc = cluster(graph, config, backend=pool)
        assert (
            base.stats_dict()["sim_time_seconds"]
            == proc.stats_dict()["sim_time_seconds"]
        )

    def test_config_backend_field_end_to_end(self, graphs):
        """`config.backend = "process"` wires everything internally."""
        graph = graphs["karate"]
        base = cluster(graph, ClusteringConfig(seed=2))
        proc = cluster(graph, ClusteringConfig(seed=2, backend="process"))
        assert np.array_equal(base.assignments, proc.assignments)
        assert proc.extras["backend"]["name"] == "process"

    def test_backend_excluded_from_config_tag(self):
        sim = ClusteringConfig(seed=1)
        proc = ClusteringConfig(seed=1, backend="process")
        assert sim.config_tag(0.01) == proc.config_tag(0.01)


class TestWorkerSizing:
    def test_resolve_auto(self):
        resolved = resolve_workers(0, None)
        assert resolved >= 1
        assert resolve_workers(None, None) == resolved

    def test_resolve_explicit(self):
        assert resolve_workers(3, None) == 3

    def test_config_zero_means_auto(self):
        config = ClusteringConfig(num_workers=0)
        assert config.resolved_workers >= 1

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigError):
            ClusteringConfig(num_workers=-1)

    def test_backend_name_validated(self):
        with pytest.raises(ConfigError):
            ClusteringConfig(backend="gpu")
        for name in BACKEND_NAMES:
            ClusteringConfig(backend=name)


class TestFallback:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            create_backend("threads")

    def test_unavailable_process_pool_degrades_to_simulated(self):
        with pytest.raises(BackendUnavailable):
            ProcessBackend(workers=1, start_method="no-such-method")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = create_backend(
                "process", workers=1, start_method="no-such-method"
            )
        assert isinstance(backend, SimulatedBackend)
        assert backend.inline
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )

    def test_simulated_backend_is_inline(self):
        backend = create_backend("simulated")
        assert isinstance(backend, ExecutionBackend)
        assert backend.inline
        backend.close()  # no-op, must not raise


class TestLeakHygiene:
    def test_no_segments_after_normal_exit(self, graphs):
        graph = graphs["rmat"]
        config = ClusteringConfig(seed=4, mode=Mode.SYNC, frontier=Frontier.ALL)
        with ProcessBackend(workers=2, min_dispatch=64) as backend:
            cluster(graph, config, backend=backend)
            assert backend.stats()["dispatches"] > 0
        assert leaked_segment_files() == []

    def test_no_segments_after_worker_crash(self, graphs):
        """A killed worker degrades the run to inline — same results,
        faulted stats, zero surviving segments."""
        graph = graphs["rmat"]
        config = ClusteringConfig(seed=4, mode=Mode.SYNC, frontier=Frontier.ALL)
        base = cluster(graph, config)
        backend = ProcessBackend(
            workers=2, min_dispatch=64, chaos_kill_after=2
        )
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                proc = cluster(graph, config, backend=backend)
            stats = backend.stats()
        finally:
            backend.close()
        assert np.array_equal(base.assignments, proc.assignments)
        assert base.objective == proc.objective
        assert stats["faulted"]
        assert stats["fault_reason"]
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )
        assert leaked_segment_files() == []

    def test_close_is_idempotent(self):
        backend = ProcessBackend(workers=1)
        backend.close()
        backend.close()
        assert leaked_segment_files() == []


class TestDynamicReuse:
    def test_update_batches_reuse_one_pool(self, graphs):
        from repro.dynamic.clusterer import DynamicClusterer
        from repro.dynamic.updates import EdgeUpdate, UpdateBatch

        graph = graphs["rmat"]
        rng = np.random.default_rng(8)

        def run(backend_name):
            config = ClusteringConfig(seed=6, backend=backend_name)
            boot = cluster(graph, ClusteringConfig(seed=6))
            clusterer = DynamicClusterer(graph, boot.assignments, config)
            rng_local = np.random.default_rng(8)
            objectives = []
            pool_ids = set()
            with clusterer:
                for _ in range(3):
                    pairs = rng_local.integers(
                        0, graph.num_vertices, size=(60, 2)
                    )
                    ups = [
                        EdgeUpdate("insert", int(u), int(v), 1.0)
                        for u, v in pairs
                        if u != v
                    ]
                    report = clusterer.apply(UpdateBatch(ups))
                    objectives.append(report.f_objective)
                    if clusterer._backend is not None:
                        pool_ids.add(id(clusterer._backend))
            return objectives, pool_ids

        sim_obj, _ = run("simulated")
        proc_obj, pools = run("process")
        assert sim_obj == proc_obj
        assert len(pools) <= 1  # one persistent pool, never respawned
        assert leaked_segment_files() == []


class TestChaosBackendAxis:
    @pytest.mark.supervisor
    def test_matrix_covers_backends(self):
        from repro.resilience.chaos import chaos_matrix
        from repro.resilience.faults import FaultKind

        graph = karate_club_graph()
        report = chaos_matrix(
            graph,
            ClusteringConfig(num_iter=3),
            engines=["relaxed"],
            kernels=["vectorized"],
            backends=["simulated", "process"],
            kinds=[FaultKind.TRANSIENT],
            check_replay=False,
        )
        assert report.ok, report.failures()
        backends = {cell.backend for cell in report.outcomes}
        assert backends == {"simulated", "process"}
        assert leaked_segment_files() == []


class TestSupervisorLadder:
    def test_process_backend_adds_rung(self):
        from repro.supervisor.policy import FallbackLadder

        ladder = FallbackLadder.for_run(ClusteringConfig(backend="process"))
        assert "simulated-backend" in ladder.names()
        # The rung substitution is cumulative: every later rung also
        # pins the simulated backend.
        names = ladder.names()
        idx = names.index("simulated-backend")
        for rung in ladder.rungs[idx:]:
            assert rung.backend == "simulated"

    def test_simulated_backend_adds_no_rung(self):
        from repro.supervisor.policy import FallbackLadder

        ladder = FallbackLadder.for_run(ClusteringConfig())
        assert "simulated-backend" not in ladder.names()


class TestObservability:
    def test_wall_clock_worker_lanes(self, graphs):
        from repro.obs.instrument import Instrumentation
        from repro.obs.schema import validate_trace_records
        from repro.obs.timeline import PID_BACKEND, chrome_trace_events

        graph = graphs["rmat"]
        config = ClusteringConfig(
            seed=2, mode=Mode.SYNC, frontier=Frontier.ALL
        )
        instr = Instrumentation()
        with ProcessBackend(workers=2, min_dispatch=64) as backend:
            cluster(
                graph, config, instrumentation=instr, backend=backend
            )
        records = list(instr.tracer.records)
        assert validate_trace_records(records) == []
        wall = [
            r
            for r in records
            if r.get("type") == "worker" and r.get("clock") == "wall"
        ]
        assert wall
        assert all(r["end"] >= r["start"] for r in wall)
        pids = {e.get("pid") for e in chrome_trace_events(records)}
        assert PID_BACKEND in pids

    def test_dispatch_metric_recorded(self, graphs):
        from repro.obs.instrument import M_BACKEND_DISPATCH, Instrumentation

        graph = graphs["rmat"]
        config = ClusteringConfig(
            seed=2, mode=Mode.SYNC, frontier=Frontier.ALL
        )
        instr = Instrumentation()
        with ProcessBackend(workers=2, min_dispatch=64) as backend:
            cluster(graph, config, instrumentation=instr, backend=backend)
        metric = instr.metrics.get(M_BACKEND_DISPATCH)
        assert metric is not None
        assert any(
            s["metric"] == M_BACKEND_DISPATCH for s in metric.samples()
        )
