"""Tests for the ledger's profiling view."""

from repro.parallel.scheduler import CostLedger


class TestProfile:
    def test_ranked_by_work(self):
        ledger = CostLedger()
        ledger.charge(10, 1, "small")
        ledger.charge(100, 1, "big")
        ledger.charge(50, 1, "mid")
        profile = ledger.profile()
        assert [label for label, _w, _s in profile] == ["big", "mid", "small"]

    def test_shares_sum_to_one(self):
        ledger = CostLedger()
        ledger.charge(60, 1, "a")
        ledger.charge(40, 1, "b")
        shares = [share for _l, _w, share in ledger.profile()]
        assert abs(sum(shares) - 1.0) < 1e-12

    def test_top_limits(self):
        ledger = CostLedger()
        for i in range(20):
            ledger.charge(i + 1, 1, f"region-{i}")
        assert len(ledger.profile(top=5)) == 5

    def test_empty_ledger(self):
        assert CostLedger().profile() == []

    def test_clustering_profile_dominated_by_best_moves(self, karate):
        from repro.core.api import correlation_clustering

        result = correlation_clustering(karate, resolution=0.1, seed=1)
        profile = result.ledger.profile(top=3)
        assert profile[0][0].startswith("best-moves")
        assert profile[0][2] > 0.3
