import pytest

from repro.errors import SchedulerError
from repro.parallel.scheduler import (
    CostLedger,
    Machine,
    OPS_PER_SECOND,
    SimulatedScheduler,
)


class TestMachine:
    def test_paper_machines(self):
        c2 = Machine.c2_standard_60()
        m1 = Machine.m1_megamem_96()
        assert c2.max_workers == 60
        assert m1.max_workers == 96

    def test_effective_parallelism_linear_up_to_cores(self):
        m = Machine(cores=30, smt=2)
        assert m.effective_parallelism(1) == 1
        assert m.effective_parallelism(30) == 30

    def test_hyperthread_knee(self):
        m = Machine(cores=30, smt=2, smt_yield=0.35)
        # Beyond the physical cores each extra thread adds only smt_yield.
        assert m.effective_parallelism(60) == pytest.approx(30 + 0.35 * 30)
        # And the marginal gain drops at the knee.
        gain_below = m.effective_parallelism(30) - m.effective_parallelism(29)
        gain_above = m.effective_parallelism(31) - m.effective_parallelism(30)
        assert gain_above < gain_below

    def test_workers_capped_at_hardware(self):
        m = Machine(cores=4, smt=2)
        assert m.effective_parallelism(100) == m.effective_parallelism(8)

    def test_invalid_workers(self):
        with pytest.raises(SchedulerError):
            Machine(cores=4).effective_parallelism(0)

    def test_invalid_machine(self):
        with pytest.raises(SchedulerError):
            Machine(cores=0)


class TestCostLedger:
    def test_totals_accumulate(self):
        ledger = CostLedger()
        ledger.charge(100, 5, "a")
        ledger.charge(50, 2, "b", serial=7)
        assert ledger.total_work == 150
        assert ledger.total_depth == 7
        assert ledger.total_serial == 7
        assert ledger.num_regions == 2

    def test_negative_cost_rejected(self):
        with pytest.raises(SchedulerError):
            CostLedger().charge(-1, 0)

    def test_sequential_time_is_pure_work(self):
        ledger = CostLedger()
        ledger.charge(1000, 100, serial=50)
        assert ledger.simulated_time(1) == pytest.approx(1050 / OPS_PER_SECOND)

    def test_parallel_time_brent_bound(self):
        ledger = CostLedger()
        ledger.charge(work=6000, depth=0, serial=0)
        machine = Machine(cores=30, smt=2)
        t6 = ledger.simulated_time(6, machine=machine, tau=0)
        t30 = ledger.simulated_time(30, machine=machine, tau=0)
        assert t6 == pytest.approx(5 * t30)

    def test_more_workers_never_slower(self):
        ledger = CostLedger()
        ledger.charge(work=1e6, depth=100, serial=500)
        machine = Machine(cores=30, smt=2)
        times = [ledger.simulated_time(p, machine=machine) for p in (2, 4, 8, 16, 30, 60)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_serial_term_limits_speedup(self):
        # With costs dominated by the serial term, P=60 gains little.
        ledger = CostLedger()
        ledger.charge(work=1000, depth=1, serial=100000)
        machine = Machine(cores=30, smt=2)
        speedup = ledger.simulated_time(2, machine=machine) / ledger.simulated_time(
            60, machine=machine
        )
        assert speedup < 1.2

    def test_work_by_label(self):
        ledger = CostLedger()
        ledger.charge(10, 1, "x")
        ledger.charge(15, 1, "x")
        ledger.charge(2, 1, "y")
        assert ledger.work_by_label() == {"x": 25.0, "y": 2.0}

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge(10, 1)
        b.charge(20, 2, serial=3)
        a.merge(b)
        assert a.total_work == 30
        assert a.total_serial == 3

    def test_snapshot(self):
        ledger = CostLedger()
        ledger.charge(5, 1)
        snap = ledger.snapshot()
        assert snap["work"] == 5.0


class TestSimulatedScheduler:
    def test_charges_reach_ledger(self):
        sched = SimulatedScheduler(num_workers=8)
        sched.charge(100, 3, "region")
        assert sched.ledger.total_work == 100

    def test_cas_contention_charges(self):
        sched = SimulatedScheduler(num_workers=8)
        sched.charge_cas_contention([5, 1, 3])
        # 4 + 0 + 2 retries of work; max queue 5 serialized.
        assert sched.ledger.total_work > 0
        assert sched.ledger.total_serial > 0

    def test_cas_no_contention_is_free(self):
        sched = SimulatedScheduler(num_workers=8)
        sched.charge_cas_contention([1, 1, 1])
        assert sched.ledger.num_regions == 0

    def test_fork_and_absorb(self):
        parent = SimulatedScheduler(num_workers=8)
        child = parent.fork()
        child.charge(40, 2)
        parent.absorb(child)
        assert parent.ledger.total_work == 40

    def test_invalid_worker_count(self):
        with pytest.raises(SchedulerError):
            SimulatedScheduler(num_workers=0)

    def test_simulated_time_default_workers(self):
        sched = SimulatedScheduler(num_workers=4)
        sched.charge(4000, 0)
        assert sched.simulated_time() == pytest.approx(
            sched.ledger.simulated_time(4, machine=sched.machine, tau=sched.tau)
        )
