import numpy as np
import pytest

from repro.parallel.primitives import (
    parallel_histogram,
    parallel_max,
    parallel_pack,
    parallel_reduce,
    parallel_scan,
    ragged_gather_indices,
)
from repro.parallel.scheduler import SimulatedScheduler


@pytest.fixture
def sched():
    return SimulatedScheduler(num_workers=8)


class TestReduce:
    def test_sum(self, sched):
        assert parallel_reduce(np.arange(10), sched) == 45

    def test_charges_linear_work(self, sched):
        parallel_reduce(np.ones(1000), sched)
        assert sched.ledger.total_work == 1000

    def test_empty(self):
        assert parallel_reduce(np.zeros(0)) == 0.0


class TestMax:
    def test_max(self):
        assert parallel_max(np.asarray([3.0, -1.0, 9.0])) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            parallel_max(np.zeros(0))


class TestScan:
    def test_exclusive_prefix(self):
        prefix, total = parallel_scan(np.asarray([3, 1, 4]))
        assert np.array_equal(prefix, [0, 3, 4])
        assert total == 8

    def test_empty(self):
        prefix, total = parallel_scan(np.zeros(0))
        assert prefix.size == 0
        assert total == 0

    def test_matches_cumsum(self, rng):
        values = rng.integers(0, 100, size=257)
        prefix, total = parallel_scan(values)
        expected = np.concatenate([[0], np.cumsum(values)[:-1]])
        assert np.array_equal(prefix, expected)
        assert total == values.sum()


class TestPack:
    def test_filters(self):
        out = parallel_pack(np.arange(6), np.asarray([1, 0, 1, 0, 1, 0], dtype=bool))
        assert np.array_equal(out, [0, 2, 4])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            parallel_pack(np.arange(3), np.asarray([True]))


class TestHistogram:
    def test_counts(self):
        counts = parallel_histogram(np.asarray([0, 1, 1, 2]), 4)
        assert np.array_equal(counts, [1, 2, 1, 0])

    def test_weighted(self):
        counts = parallel_histogram(
            np.asarray([0, 0, 1]), 2, weights=np.asarray([1.5, 0.5, 3.0])
        )
        assert np.allclose(counts, [2.0, 3.0])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            parallel_histogram(np.asarray([5]), 3)


class TestRaggedGather:
    def test_simple_csr(self):
        offsets = np.asarray([0, 2, 2, 5])
        edge_idx, rows = ragged_gather_indices(offsets, np.asarray([0, 2]))
        assert np.array_equal(edge_idx, [0, 1, 2, 3, 4])
        assert np.array_equal(rows, [0, 0, 1, 1, 1])

    def test_empty_rows(self):
        offsets = np.asarray([0, 0, 0])
        edge_idx, rows = ragged_gather_indices(offsets, np.asarray([0, 1]))
        assert edge_idx.size == 0
        assert rows.size == 0

    def test_subset_of_rows(self):
        offsets = np.asarray([0, 3, 4, 6])
        edge_idx, rows = ragged_gather_indices(offsets, np.asarray([2]))
        assert np.array_equal(edge_idx, [4, 5])
        assert np.array_equal(rows, [0, 0])

    def test_repeated_rows_allowed(self):
        offsets = np.asarray([0, 2])
        edge_idx, rows = ragged_gather_indices(offsets, np.asarray([0, 0]))
        assert np.array_equal(edge_idx, [0, 1, 0, 1])
        assert np.array_equal(rows, [0, 0, 1, 1])
