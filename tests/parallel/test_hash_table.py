import numpy as np
import pytest

from repro.parallel.hash_table import (
    DEGREE_THRESHOLD,
    aggregate_by_key,
    choose_parallel_kernel,
)
from repro.parallel.scheduler import SimulatedScheduler


class TestAggregateByKey:
    def test_sums(self):
        uk, sums = aggregate_by_key(
            np.asarray([2, 2, 7]), np.asarray([1.0, 2.5, 4.0])
        )
        assert np.array_equal(uk, [2, 7])
        assert np.allclose(sums, [3.5, 4.0])

    def test_empty(self):
        uk, sums = aggregate_by_key(np.zeros(0, dtype=np.int64), np.zeros(0))
        assert uk.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_by_key(np.asarray([1, 2]), np.asarray([1.0]))

    def test_parallel_and_sequential_agree(self, rng):
        keys = rng.integers(0, 20, size=500)
        weights = rng.random(500)
        uk1, s1 = aggregate_by_key(keys, weights, parallel=False)
        uk2, s2 = aggregate_by_key(keys, weights, parallel=True)
        assert np.array_equal(uk1, uk2)
        assert np.allclose(s1, s2)

    def test_sequential_kernel_depth_is_linear(self):
        sched = SimulatedScheduler(num_workers=8)
        aggregate_by_key(np.arange(100, dtype=np.int64), np.ones(100), sched, parallel=False)
        assert sched.ledger.total_depth == 100

    def test_parallel_kernel_depth_is_logarithmic(self):
        sched = SimulatedScheduler(num_workers=8)
        aggregate_by_key(np.arange(1024, dtype=np.int64), np.ones(1024), sched, parallel=True)
        assert sched.ledger.total_depth == pytest.approx(20.0)

    def test_parallel_kernel_charges_more_work(self):
        seq = SimulatedScheduler(num_workers=8)
        par = SimulatedScheduler(num_workers=8)
        keys = np.arange(256, dtype=np.int64)
        aggregate_by_key(keys, np.ones(256), seq, parallel=False)
        aggregate_by_key(keys, np.ones(256), par, parallel=True)
        assert par.ledger.total_work > seq.ledger.total_work


class TestKernelChoice:
    def test_threshold(self):
        assert not choose_parallel_kernel(DEGREE_THRESHOLD)
        assert choose_parallel_kernel(DEGREE_THRESHOLD + 1)

    def test_custom_threshold(self):
        assert choose_parallel_kernel(10, threshold=5)
