import numpy as np

from repro.graphs.builders import graph_from_edges
from repro.parallel.edge_map import edge_map
from repro.parallel.scheduler import SimulatedScheduler
from repro.parallel.vertex_subset import VertexSubset


def path_graph(n):
    return graph_from_edges([(i, i + 1) for i in range(n - 1)])


class TestEdgeMap:
    def test_neighbors_of_single_vertex(self):
        g = path_graph(5)
        out = edge_map(g, VertexSubset.from_ids(5, np.asarray([2])))
        assert np.array_equal(out.ids(), [1, 3])

    def test_neighbors_of_empty_frontier(self):
        g = path_graph(5)
        out = edge_map(g, VertexSubset.empty(5))
        assert len(out) == 0

    def test_full_frontier_dense_path(self):
        g = path_graph(50)
        sched = SimulatedScheduler(num_workers=8)
        out = edge_map(g, VertexSubset.full(50), sched=sched)
        assert len(out) == 50  # every vertex has a neighbor in the frontier
        labels = sched.ledger.work_by_label()
        assert any("dense" in k for k in labels)

    def test_sparse_path_charged(self):
        g = path_graph(200)
        sched = SimulatedScheduler(num_workers=8)
        edge_map(g, VertexSubset.from_ids(200, np.asarray([0])), sched=sched)
        labels = sched.ledger.work_by_label()
        assert any("sparse" in k for k in labels)

    def test_sparse_and_dense_agree(self, rng):
        g = graph_from_edges(rng.integers(0, 40, size=(120, 2)), num_vertices=40)
        ids = rng.choice(40, size=6, replace=False)
        sparse = edge_map(g, VertexSubset.from_ids(40, ids))
        # Force the dense direction with a full-mask frontier of just ids.
        mask = np.zeros(40, dtype=bool)
        mask[ids] = True
        dense = edge_map(g, VertexSubset(40, mask=mask))
        assert np.array_equal(sparse.ids(), dense.ids())

    def test_isolated_vertices_excluded(self):
        g = graph_from_edges([(0, 1)], num_vertices=4)
        out = edge_map(g, VertexSubset.from_ids(4, np.asarray([3])))
        assert len(out) == 0
