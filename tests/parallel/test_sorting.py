import numpy as np
import pytest

from repro.parallel.scheduler import SimulatedScheduler
from repro.parallel.sorting import (
    naive_group_aggregate,
    parallel_integer_sort,
    parallel_sample_sort,
    parallel_semisort_aggregate,
)


class TestSampleSort:
    def test_sorts(self, rng):
        keys = rng.integers(0, 1000, size=500)
        order = parallel_sample_sort(keys)
        assert np.array_equal(keys[order], np.sort(keys))

    def test_stable(self):
        keys = np.asarray([2, 1, 2, 1])
        order = parallel_sample_sort(keys)
        assert np.array_equal(order, [1, 3, 0, 2])

    def test_charges_nlogn(self):
        sched = SimulatedScheduler(num_workers=8)
        parallel_sample_sort(np.arange(1024), sched)
        assert sched.ledger.total_work == pytest.approx(1024 * 10)


class TestSemisortAggregate:
    def test_groups_and_sums(self):
        keys = np.asarray([5, 3, 5, 3, 9])
        weights = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        uk, sums = parallel_semisort_aggregate(keys, weights)
        assert np.array_equal(uk, [3, 5, 9])
        assert np.allclose(sums, [6.0, 4.0, 5.0])

    def test_empty(self):
        uk, sums = parallel_semisort_aggregate(
            np.zeros(0, dtype=np.int64), np.zeros(0)
        )
        assert uk.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            parallel_semisort_aggregate(np.asarray([1]), np.asarray([1.0, 2.0]))

    def test_linear_work_charge(self):
        sched = SimulatedScheduler(num_workers=8)
        parallel_semisort_aggregate(
            np.arange(512, dtype=np.int64), np.ones(512), sched
        )
        assert sched.ledger.total_work == 512


class TestNaiveAggregate:
    def test_same_result_as_semisort(self, rng):
        keys = rng.integers(0, 50, size=300)
        weights = rng.random(300)
        uk1, s1 = parallel_semisort_aggregate(keys, weights)
        uk2, s2 = naive_group_aggregate(keys, weights, 50)
        assert np.array_equal(uk1, uk2)
        assert np.allclose(s1, s2)

    def test_charges_more_than_semisort(self):
        keys = np.arange(1000, dtype=np.int64) % 100
        weights = np.ones(1000)
        fast = SimulatedScheduler(num_workers=8)
        slow = SimulatedScheduler(num_workers=8)
        parallel_semisort_aggregate(keys, weights, fast)
        naive_group_aggregate(keys, weights, 100, slow)
        assert slow.ledger.total_work > fast.ledger.total_work
        assert slow.ledger.total_depth > fast.ledger.total_depth


class TestIntegerSort:
    def test_sorts(self, rng):
        keys = rng.integers(0, 64, size=200)
        order = parallel_integer_sort(keys, max_key=64)
        assert np.array_equal(keys[order], np.sort(keys))

    def test_empty(self):
        order = parallel_integer_sort(np.zeros(0, dtype=np.int64))
        assert order.size == 0
