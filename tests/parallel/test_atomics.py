import numpy as np
import pytest

from repro.parallel.atomics import atomic_add_window, contention_profile
from repro.parallel.scheduler import SimulatedScheduler


class TestContentionProfile:
    def test_empty(self):
        queues, max_q = contention_profile(np.asarray([], dtype=np.int64))
        assert queues.size == 0
        assert max_q == 0

    def test_distinct_targets(self):
        queues, max_q = contention_profile(np.asarray([1, 2, 3]))
        assert np.array_equal(np.sort(queues), [1, 1, 1])
        assert max_q == 1

    def test_hot_target(self):
        queues, max_q = contention_profile(np.asarray([7, 7, 7, 7, 2]))
        assert max_q == 4
        assert queues.sum() == 5

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            contention_profile(np.zeros((2, 2), dtype=np.int64))


class TestAtomicAddWindow:
    def test_values_exact(self):
        values = np.zeros(4)
        atomic_add_window(values, np.asarray([1, 1, 3]), np.asarray([2.0, 3.0, 1.0]))
        assert np.allclose(values, [0, 5, 0, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            atomic_add_window(np.zeros(4), np.asarray([1]), np.asarray([1.0, 2.0]))

    def test_contention_charged(self):
        sched = SimulatedScheduler(num_workers=8)
        values = np.zeros(4)
        atomic_add_window(
            values, np.asarray([0, 0, 0]), np.asarray([1.0, 1.0, 1.0]), sched=sched
        )
        assert sched.ledger.total_serial > 0

    def test_no_contention_no_serial(self):
        sched = SimulatedScheduler(num_workers=8)
        values = np.zeros(4)
        atomic_add_window(
            values, np.asarray([0, 1, 2]), np.asarray([1.0, 1.0, 1.0]), sched=sched
        )
        assert sched.ledger.total_serial == 0
