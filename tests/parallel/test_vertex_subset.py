import numpy as np
import pytest

from repro.parallel.vertex_subset import VertexSubset, should_densify


class TestConstruction:
    def test_requires_exactly_one_representation(self):
        with pytest.raises(ValueError):
            VertexSubset(4)
        with pytest.raises(ValueError):
            VertexSubset(4, ids=np.asarray([0]), mask=np.zeros(4, dtype=bool))

    def test_out_of_range_ids(self):
        with pytest.raises(ValueError):
            VertexSubset(4, ids=np.asarray([4]))

    def test_mask_shape(self):
        with pytest.raises(ValueError):
            VertexSubset(4, mask=np.zeros(3, dtype=bool))


class TestBasics:
    def test_empty_and_full(self):
        assert len(VertexSubset.empty(10)) == 0
        assert len(VertexSubset.full(10)) == 10

    def test_from_ids_dedups_and_sorts(self):
        s = VertexSubset.from_ids(10, np.asarray([3, 1, 3, 7]))
        assert np.array_equal(s.ids(), [1, 3, 7])

    def test_contains(self):
        s = VertexSubset.from_ids(10, np.asarray([2, 5]))
        assert 2 in s and 5 in s and 3 not in s

    def test_dense_contains(self):
        s = VertexSubset.full(4)
        assert 3 in s

    def test_mask_roundtrip(self):
        s = VertexSubset.from_ids(6, np.asarray([0, 4]))
        assert np.array_equal(np.flatnonzero(s.mask()), [0, 4])

    def test_ids_from_dense(self):
        mask = np.zeros(5, dtype=bool)
        mask[[1, 3]] = True
        s = VertexSubset(5, mask=mask)
        assert np.array_equal(s.ids(), [1, 3])


class TestUnion:
    def test_sparse_union(self):
        a = VertexSubset.from_ids(10, np.asarray([1, 2]))
        b = VertexSubset.from_ids(10, np.asarray([2, 3]))
        assert np.array_equal(a.union(b).ids(), [1, 2, 3])

    def test_dense_union(self):
        a = VertexSubset.full(4)
        b = VertexSubset.from_ids(4, np.asarray([0]))
        assert len(a.union(b)) == 4

    def test_mismatched_n(self):
        with pytest.raises(ValueError):
            VertexSubset.empty(3).union(VertexSubset.empty(4))


class TestDensify:
    def test_small_frontier_stays_sparse(self):
        assert not should_densify(1, 10, 10000)

    def test_large_frontier_goes_dense(self):
        assert should_densify(600, 600, 10000)
