"""DynamicClusterer: incremental bookkeeping, replay identity, drift guard."""

import numpy as np
import pytest

from repro.core.config import ClusteringConfig, Objective
from repro.core.engines import run_engine_restricted
from repro.core.frontier import seed_frontier
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.errors import ConfigError, UpdateError
from repro.graphs.delta import DeltaOverlayGraph
from repro.graphs.karate import karate_club_graph
from repro.resilience.audit import StateAuditor
from repro.resilience.checkpoint import capture_rng, restore_rng
from repro.utils.rng import make_rng

pytestmark = pytest.mark.dynamic

RESOLUTION = 0.1

#: Pure-incremental guard: no periodic recompute, no cascade trigger.
NO_GUARD = DriftGuard(recompute_every=0, max_frontier_fraction=1.0)


def make_clusterer(engine=None, guard=NO_GUARD, seed=1):
    config = ClusteringConfig(resolution=RESOLUTION, seed=seed)
    return DynamicClusterer.bootstrap(
        karate_club_graph(), config, engine=engine, guard=guard
    )


def materialize(graph, batch):
    """Independently apply ``batch``'s edge semantics to a fresh overlay."""
    overlay = DeltaOverlayGraph(graph)
    for upd in batch:
        current = overlay.edge_weight(upd.u, upd.v)
        if upd.op == "insert":
            overlay.set_edge(upd.u, upd.v, current + upd.weight)
        elif upd.op == "delete":
            overlay.set_edge(upd.u, upd.v, 0.0)
        else:
            overlay.set_edge(upd.u, upd.v, upd.weight)
    return overlay.compact()


MIXED_BATCH = [
    EdgeUpdate("insert", 0, 9, 1.0),
    EdgeUpdate("delete", 0, 2),
    EdgeUpdate("reweight", 0, 1, 3.0),
    EdgeUpdate("insert", 15, 20, 2.0),
]


class TestConstruction:
    def test_modularity_rejected(self):
        config = ClusteringConfig(objective=Objective.MODULARITY, resolution=1.0)
        with pytest.raises(ConfigError, match="correlation"):
            DynamicClusterer(karate_club_graph(), np.zeros(34, np.int64), config)

    def test_bootstrap_matches_exact_objective(self):
        dc = make_clusterer()
        assert dc.f_objective == pytest.approx(dc.exact_objective(), abs=1e-9)
        assert dc.audit() == []

    def test_engine_default_follows_parallel_flag(self):
        par = ClusteringConfig(resolution=RESOLUTION, seed=1)
        seq = ClusteringConfig(resolution=RESOLUTION, seed=1, parallel=False)
        g = karate_club_graph()
        a = np.arange(34, dtype=np.int64)
        assert DynamicClusterer(g, a, par).engine_name == "relaxed"
        assert DynamicClusterer(g, a, seq).engine_name == "sequential"


class TestApply:
    def test_incremental_objective_stays_exact(self):
        dc = make_clusterer()
        batches = [
            [EdgeUpdate("insert", 0, 9, 1.0)],
            [EdgeUpdate("delete", 0, 2)],
            [EdgeUpdate("reweight", 0, 1, 2.5)],
            [
                EdgeUpdate("insert", 0, 9, 1.0),
                EdgeUpdate("delete", 0, 3),
                EdgeUpdate("reweight", 0, 1, 3.0),
                EdgeUpdate("insert", 15, 20, 2.0),
            ],
        ]
        for updates in batches:
            dc.apply(UpdateBatch(updates))
            assert dc.f_objective == pytest.approx(
                dc.exact_objective(), abs=1e-9
            )
            assert dc.audit() == []

    def test_report_contents(self):
        dc = make_clusterer()
        report = dc.apply(UpdateBatch(MIXED_BATCH))
        assert report.num_updates == 4
        assert report.op_counts == {"insert": 2, "delete": 1, "reweight": 1}
        assert report.seed_size == 6  # {0, 1, 2, 9, 15, 20}
        assert report.candidate_evaluations == sum(report.frontier_sizes)
        assert report.f_objective == pytest.approx(dc.f_objective)
        payload = report.as_dict()
        assert payload["seed_size"] == 6
        assert payload["escalated"] is None

    def test_counters_accumulate(self):
        dc = make_clusterer()
        dc.apply(UpdateBatch(MIXED_BATCH))
        dc.apply(UpdateBatch([EdgeUpdate("delete", 0, 9)]))
        assert dc.batches_applied == 2
        assert dc.updates_applied == {"insert": 2, "delete": 2, "reweight": 1}
        stats = dc.stats()
        assert stats["batches_applied"] == 2
        assert stats["objective"] == pytest.approx(2.0 * dc.f_objective)

    def test_insert_accumulates_weight(self):
        dc = make_clusterer()
        dc.apply(UpdateBatch([EdgeUpdate("insert", 0, 1, 2.0)]))
        assert dc.overlay.edge_weight(0, 1) == 3.0  # karate weight 1 + 2

    def test_delete_absent_edge_rejected(self):
        dc = make_clusterer()
        with pytest.raises(UpdateError, match="absent"):
            dc.apply(UpdateBatch([EdgeUpdate("delete", 0, 9)]))

    def test_reweight_absent_edge_rejected(self):
        dc = make_clusterer()
        with pytest.raises(UpdateError, match="absent"):
            dc.apply(UpdateBatch([EdgeUpdate("reweight", 0, 9, 1.0)]))

    def test_empty_batch_is_noop(self):
        dc = make_clusterer()
        before = dc.state.assignments.copy()
        report = dc.apply(UpdateBatch())
        assert report.moves == 0
        assert np.array_equal(dc.state.assignments, before)

    def test_new_vertices_join_as_singletons(self):
        dc = make_clusterer()
        dc.apply(UpdateBatch([EdgeUpdate("insert", 33, 40, 1.0)]))
        assert dc.num_vertices == 41
        assert dc.state.assignments.size == 41
        assert dc.f_objective == pytest.approx(dc.exact_objective(), abs=1e-9)
        assert dc.audit() == []
        # Vertices 34..39 have no edges; they stay in their own clusters.
        for v in range(34, 40):
            assert dc.members(dc.cluster_of(v)).tolist() == [v]


class TestReplayIdentity:
    """Acceptance: apply() == from-scratch restricted run, bit for bit."""

    @pytest.mark.parametrize("engine", ["relaxed", "sequential"])
    def test_batch_replay_is_bit_identical(self, engine):
        dc = make_clusterer(engine=engine)
        batch = UpdateBatch(MIXED_BATCH)
        pre_assignments = dc.state.assignments.copy()
        pre_rng = capture_rng(dc.rng)

        dc.apply(batch)

        # Independently materialize the updated graph and re-run the same
        # engine from the same partition, frontier, and RNG stream.
        updated = materialize(karate_club_graph(), batch)
        grown = updated.num_vertices - pre_assignments.size
        replay_assignments = np.concatenate(
            [
                pre_assignments,
                np.arange(
                    pre_assignments.size, updated.num_vertices, dtype=np.int64
                ),
            ]
        ) if grown else pre_assignments
        state = ClusterState.from_assignments(updated, replay_assignments)
        rng = make_rng(dc.config.seed)
        restore_rng(rng, pre_rng)
        run_engine_restricted(
            updated,
            state,
            RESOLUTION,
            dc.config,
            engine=engine,
            frontier=seed_frontier(updated, batch.touched_vertices()),
            rng=rng,
        )

        assert np.array_equal(dc.state.assignments, state.assignments)
        assert np.array_equal(dc.state.cluster_weights, state.cluster_weights)
        assert np.array_equal(dc.state.cluster_sizes, state.cluster_sizes)
        assert dc.f_objective == pytest.approx(
            lambdacc_objective(updated, state.assignments, RESOLUTION), abs=1e-9
        )

        auditor = StateAuditor()
        assert auditor.verify_state(dc.graph, dc.state, RESOLUTION) == []
        # verify_result expects dense result labels; the live state keeps
        # engine slot ids, so densify (objective is renaming-invariant).
        dense = np.unique(dc.state.assignments, return_inverse=True)[1]
        assert (
            auditor.verify_result(
                dc.graph, dense, RESOLUTION, dc.exact_objective()
            )
            == []
        )


class TestDriftGuard:
    def test_periodic_recompute_resyncs(self):
        dc = make_clusterer(guard=DriftGuard(recompute_every=1))
        report = dc.apply(UpdateBatch([EdgeUpdate("insert", 0, 9, 1.0)]))
        assert report.drift is not None
        assert report.drift <= 1e-9
        assert report.escalated is None
        assert dc.escalations == 0
        assert dc.last_drift == report.drift

    def test_objective_drift_escalates(self):
        dc = make_clusterer(guard=DriftGuard(recompute_every=1, max_drift=1e-6))
        dc._intra += 5.0  # corrupt the incremental ledger
        report = dc.apply(UpdateBatch([EdgeUpdate("insert", 0, 9, 1.0)]))
        assert report.escalated == "objective-drift"
        assert dc.escalations == 1
        # Escalation rebuilt the partition and resynced the ledger.
        assert dc.f_objective == pytest.approx(dc.exact_objective(), abs=1e-9)
        assert dc.audit() == []
        assert dc.last_drift == 0.0

    def test_frontier_growth_escalates(self):
        guard = DriftGuard(recompute_every=0, max_frontier_fraction=0.05)
        dc = make_clusterer(guard=guard)
        # Six touched endpoints out of 34 vertices > 5% -> cascade trigger.
        report = dc.apply(UpdateBatch(MIXED_BATCH))
        assert report.escalated == "frontier-growth"
        assert dc.escalations == 1
        assert dc.audit() == []


class TestServingFacade:
    def test_cluster_of_range_check(self):
        dc = make_clusterer()
        with pytest.raises(UpdateError, match="out of range"):
            dc.cluster_of(34)
        with pytest.raises(UpdateError, match="out of range"):
            dc.cluster_of(-1)

    def test_queries_counted(self):
        dc = make_clusterer()
        dc.cluster_of(0)
        dc.assignments()
        dc.members(dc.cluster_of(1))
        assert dc.queries_answered == 4  # members() called cluster_of too

    def test_assignments_returns_copy(self):
        dc = make_clusterer()
        arr = dc.assignments()
        arr[:] = -1
        assert dc.state.assignments[0] >= 0

    def test_members_matches_assignments(self):
        dc = make_clusterer()
        c = dc.cluster_of(0)
        members = dc.members(c)
        assert 0 in members
        assert np.all(dc.state.assignments[members] == c)
