"""Snapshot persistence: exact round-trips, rotation, corruption fallback."""

import numpy as np
import pytest

from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.snapshot import (
    SnapshotStore,
    load_snapshot,
    read_snapshot_meta,
    save_snapshot,
)
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.errors import CheckpointError, SnapshotError
from repro.graphs.karate import karate_club_graph

pytestmark = pytest.mark.dynamic

RESOLUTION = 0.1
NO_GUARD = DriftGuard(recompute_every=0, max_frontier_fraction=1.0)


def make_clusterer(seed=1):
    config = ClusteringConfig(resolution=RESOLUTION, seed=seed)
    return DynamicClusterer.bootstrap(
        karate_club_graph(), config, guard=NO_GUARD
    )


BATCH_A = UpdateBatch(
    [EdgeUpdate("insert", 0, 9, 1.0), EdgeUpdate("reweight", 0, 1, 2.0)]
)
BATCH_B = UpdateBatch(
    [EdgeUpdate("delete", 0, 2), EdgeUpdate("insert", 20, 40, 1.5)]
)


def assert_same_live_state(a, b):
    assert np.array_equal(a.state.assignments, b.state.assignments)
    assert np.array_equal(a.state.cluster_weights, b.state.cluster_weights)
    assert np.array_equal(a.state.cluster_sizes, b.state.cluster_sizes)
    assert np.array_equal(a._k2, b._k2)
    assert a.f_objective == b.f_objective  # exact, not approx
    assert a.batches_applied == b.batches_applied
    assert a.updates_applied == b.updates_applied


class TestSaveLoad:
    def test_round_trip_is_exact(self, tmp_path):
        dc = make_clusterer()
        dc.apply(BATCH_A)
        path = tmp_path / "snap.npz"
        save_snapshot(path, dc)
        restored = load_snapshot(path, dc.config, guard=NO_GUARD)
        assert_same_live_state(dc, restored)
        assert restored.engine_name == dc.engine_name
        assert restored.audit() == []

    def test_restart_equivalence(self, tmp_path):
        """save -> restore -> updates == uninterrupted session."""
        live = make_clusterer()
        live.apply(BATCH_A)
        path = tmp_path / "snap.npz"
        save_snapshot(path, live)
        restored = load_snapshot(path, live.config, guard=NO_GUARD)

        live.apply(BATCH_B)
        restored.apply(BATCH_B)
        assert_same_live_state(live, restored)

    def test_meta_contents(self, tmp_path):
        dc = make_clusterer()
        dc.apply(BATCH_A)
        path = tmp_path / "snap.npz"
        save_snapshot(path, dc, generation=3)
        meta = read_snapshot_meta(path)
        assert meta["kind"] == "repro-dynamic-snapshot"
        assert meta["generation"] == 3
        assert meta["num_vertices"] == 34
        assert meta["counters"]["batches_applied"] == 1

    def test_repairs_survive(self, tmp_path):
        dc = make_clusterer()
        dc.graph.repairs = {"bad_weight": 1}
        path = tmp_path / "snap.npz"
        save_snapshot(path, dc)
        restored = load_snapshot(path, dc.config, guard=NO_GUARD)
        assert restored.graph.repairs == {"bad_weight": 1}

    def test_config_tag_mismatch_rejected(self, tmp_path):
        dc = make_clusterer()
        path = tmp_path / "snap.npz"
        save_snapshot(path, dc)
        other = ClusteringConfig(resolution=0.5, seed=1)
        with pytest.raises(SnapshotError, match="config"):
            load_snapshot(path, other)

    def test_corrupt_file_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "snap.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(SnapshotError):
            read_snapshot_meta(path)

    def test_snapshot_error_is_checkpoint_error(self):
        # Supervisor-style fall-back-to-elder-slot handling applies as-is.
        assert issubclass(SnapshotError, CheckpointError)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(SnapshotError, match="not a repro snapshot"):
            read_snapshot_meta(path)


class TestSnapshotStore:
    def test_rotation_alternates_slots(self, tmp_path):
        dc = make_clusterer()
        store = SnapshotStore(tmp_path)
        first = store.save(dc)
        dc.apply(BATCH_A)
        second = store.save(dc)
        assert {first.name, second.name} == {"snap-a.npz", "snap-b.npz"}
        assert store.latest() == second
        dc.apply(BATCH_B)
        third = store.save(dc)
        assert third == first  # elder slot is overwritten
        assert store.latest() == third

    def test_load_newest(self, tmp_path):
        dc = make_clusterer()
        store = SnapshotStore(tmp_path)
        store.save(dc)
        dc.apply(BATCH_A)
        store.save(dc)
        restored = store.load(dc.config, guard=NO_GUARD)
        assert_same_live_state(dc, restored)

    def test_corrupt_newest_falls_back_to_elder(self, tmp_path):
        dc = make_clusterer()
        store = SnapshotStore(tmp_path)
        store.save(dc)
        elder_state = dc.state.assignments.copy()
        dc.apply(BATCH_A)
        newest = store.save(dc)
        # Truncate the newest snapshot: the payload (not the header) rots.
        newest.write_bytes(newest.read_bytes()[:150])
        restored = store.load(dc.config, guard=NO_GUARD)
        assert np.array_equal(restored.state.assignments, elder_state)

    def test_empty_store_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "empty")
        with pytest.raises(SnapshotError, match="no snapshot"):
            store.load(ClusteringConfig(resolution=RESOLUTION))
