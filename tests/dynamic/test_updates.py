"""EdgeUpdate / UpdateBatch validation and the JSONL update-log format."""

import numpy as np
import pytest

from repro.dynamic.updates import (
    EdgeUpdate,
    UpdateBatch,
    batched,
    read_update_log,
    write_update_log,
)
from repro.errors import UpdateError

pytestmark = pytest.mark.dynamic


class TestEdgeUpdate:
    def test_valid_ops(self):
        for op in ("insert", "delete", "reweight"):
            upd = EdgeUpdate(op, 1, 2, 3.0)
            assert upd.op == op

    def test_unknown_op_rejected(self):
        with pytest.raises(UpdateError, match="unknown update op"):
            EdgeUpdate("upsert", 1, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(UpdateError, match="self-loop"):
            EdgeUpdate("insert", 3, 3)

    def test_negative_vertex_rejected(self):
        with pytest.raises(UpdateError, match="negative"):
            EdgeUpdate("insert", -1, 2)

    def test_non_finite_weight_rejected(self):
        with pytest.raises(UpdateError, match="non-finite"):
            EdgeUpdate("insert", 1, 2, float("nan"))

    def test_delete_normalizes_weight(self):
        assert EdgeUpdate("delete", 1, 2, 7.5).weight == 1.0

    def test_key_is_canonical(self):
        assert EdgeUpdate("insert", 9, 2).key == (2, 9)
        assert EdgeUpdate("insert", 2, 9).key == (2, 9)

    def test_dict_round_trip(self):
        upd = EdgeUpdate("reweight", 4, 1, 2.5)
        assert EdgeUpdate.from_dict(upd.as_dict()) == upd

    def test_delete_dict_omits_weight(self):
        assert "weight" not in EdgeUpdate("delete", 1, 2).as_dict()

    def test_from_dict_rejects_junk(self):
        with pytest.raises(UpdateError):
            EdgeUpdate.from_dict(["insert", 1, 2])
        with pytest.raises(UpdateError, match="malformed"):
            EdgeUpdate.from_dict({"op": "insert", "u": 1})
        with pytest.raises(UpdateError, match="weight"):
            EdgeUpdate.from_dict({"op": "insert", "u": 1, "v": 2, "weight": "x"})


class TestUpdateBatch:
    def test_op_counts(self):
        batch = UpdateBatch(
            [
                EdgeUpdate("insert", 0, 1),
                EdgeUpdate("insert", 1, 2),
                EdgeUpdate("delete", 0, 2),
            ]
        )
        assert batch.op_counts() == {"insert": 2, "delete": 1, "reweight": 0}

    def test_touched_vertices_unique_sorted(self):
        batch = UpdateBatch(
            [EdgeUpdate("insert", 5, 1), EdgeUpdate("delete", 1, 3)]
        )
        assert np.array_equal(batch.touched_vertices(), [1, 3, 5])

    def test_empty_batch(self):
        batch = UpdateBatch()
        assert len(batch) == 0
        assert batch.touched_vertices().size == 0
        assert batch.max_vertex == -1

    def test_max_vertex(self):
        assert UpdateBatch([EdgeUpdate("insert", 2, 40)]).max_vertex == 40

    def test_rejects_non_updates(self):
        with pytest.raises(UpdateError, match="not an EdgeUpdate"):
            UpdateBatch([("insert", 0, 1)])

    def test_convenience_constructors(self):
        ins = UpdateBatch.inserts([(0, 1), (1, 2)], weight=2.0)
        assert all(u.op == "insert" and u.weight == 2.0 for u in ins)
        dels = UpdateBatch.deletes([(0, 1)])
        assert dels.op_counts()["delete"] == 1


class TestUpdateLog:
    def test_round_trip(self, tmp_path):
        updates = [
            EdgeUpdate("insert", 0, 1, 2.0),
            EdgeUpdate("delete", 0, 1),
            EdgeUpdate("reweight", 3, 4, 0.5),
        ]
        path = tmp_path / "log.jsonl"
        write_update_log(path, updates)
        assert read_update_log(path) == updates

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('# header\n\n{"op": "insert", "u": 0, "v": 1}\n')
        assert read_update_log(path) == [EdgeUpdate("insert", 0, 1)]

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"op": "insert", "u": 0, "v": 1}\nnot json\n')
        with pytest.raises(UpdateError, match=r"log\.jsonl:2"):
            read_update_log(path)

    def test_invalid_update_reports_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"op": "frobnicate", "u": 0, "v": 1}\n')
        with pytest.raises(UpdateError, match=r"log\.jsonl:1"):
            read_update_log(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(UpdateError, match="cannot read"):
            read_update_log(tmp_path / "absent.jsonl")


class TestBatched:
    def test_chunks_in_order(self):
        updates = [EdgeUpdate("insert", i, i + 1) for i in range(5)]
        groups = batched(updates, 2)
        assert [len(g) for g in groups] == [2, 2, 1]
        assert groups[0].updates[0].u == 0
        assert groups[2].updates[0].u == 4

    def test_invalid_batch_size(self):
        with pytest.raises(UpdateError, match="batch_size"):
            batched([], 0)
