"""serve-sim sessions: deterministic transcripts over the serving facade."""

import pytest

from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.serve import ClusterServer, run_session
from repro.dynamic.snapshot import SnapshotStore
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.errors import UpdateError
from repro.graphs.karate import karate_club_graph

pytestmark = pytest.mark.dynamic

NO_GUARD = DriftGuard(recompute_every=0, max_frontier_fraction=1.0)


def make_clusterer(seed=1):
    config = ClusteringConfig(resolution=0.1, seed=seed)
    return DynamicClusterer.bootstrap(
        karate_club_graph(), config, guard=NO_GUARD
    )


class TestQueries:
    def test_get_and_same(self):
        dc = make_clusterer()
        out = run_session(dc, ["get 0", "same 0 1", "same 0 33"])
        assert out[0] == f"cluster_of(0) = {dc.state.assignments[0]}"
        assert out[1].startswith("same(0, 1) = ")
        assert out[2].startswith("same(0, 33) = ")

    def test_members_and_stats(self):
        dc = make_clusterer()
        out = run_session(dc, [f"members {dc.state.assignments[0]}", "stats"])
        assert out[0].startswith("members(")
        assert "num_vertices=34" in out[1]
        assert "batches_applied=0" in out[1]
        # Wall/sim seconds stay out of the transcript (determinism).
        assert "sim" not in out[1]

    def test_comments_and_blanks_skipped(self):
        dc = make_clusterer()
        assert run_session(dc, ["# nothing", "", "   "]) == []

    def test_audit_clean(self):
        dc = make_clusterer()
        assert run_session(dc, ["audit"]) == ["audit: clean"]


class TestUpdatesAndCommit:
    def test_commit_applies_staged_batch(self):
        dc = make_clusterer()
        out = run_session(
            dc,
            ["insert 0 9", "reweight 0 1 2.0", "delete 0 2", "commit", "audit"],
        )
        assert out[0] == "staged insert (0, 9) w=1"
        assert out[1] == "staged reweight (0, 1) w=2"
        assert out[2] == "staged delete (0, 2)"
        assert out[3].startswith("commit[0]: updates=3 seed=4 ")
        assert out[4] == "audit: clean"
        assert dc.batches_applied == 1

    def test_transcript_is_deterministic(self):
        script = ["insert 0 9", "commit", "get 9", "stats"]
        assert run_session(make_clusterer(), script) == run_session(
            make_clusterer(), script
        )

    def test_uncommitted_warning(self):
        dc = make_clusterer()
        out = run_session(dc, ["insert 0 9"])
        assert out[-1] == "warning: 1 staged updates never committed"
        assert dc.batches_applied == 0

    def test_save_requires_store(self):
        dc = make_clusterer()
        with pytest.raises(UpdateError, match="snapshot store"):
            run_session(dc, ["save"])

    def test_save_rotates_store(self, tmp_path):
        dc = make_clusterer()
        store = SnapshotStore(tmp_path)
        out = run_session(dc, ["save", "insert 0 9", "commit", "save"], store)
        assert out[0] == "saved snap-a.npz"
        assert out[3] == "saved snap-b.npz"
        assert store.latest().name == "snap-b.npz"


class TestErrors:
    def test_unknown_command_reports_line(self):
        with pytest.raises(UpdateError, match="line 2.*frobnicate"):
            run_session(make_clusterer(), ["get 0", "frobnicate"])

    def test_bad_arity(self):
        with pytest.raises(UpdateError, match="argument"):
            run_session(make_clusterer(), ["get 0 1"])
        with pytest.raises(UpdateError, match="commit takes no"):
            run_session(make_clusterer(), ["commit now"])
        with pytest.raises(UpdateError, match="insert takes"):
            run_session(make_clusterer(), ["insert 0"])

    def test_bad_integers(self):
        with pytest.raises(UpdateError, match="line 1"):
            run_session(make_clusterer(), ["get zero"])

    def test_update_error_carries_script_context(self):
        # The stage fails at commit time, so the commit line is blamed.
        with pytest.raises(UpdateError, match="line 2.*absent"):
            run_session(make_clusterer(), ["delete 0 9", "commit"])


class TestServingTelemetry:
    """SLO instrumentation on the facade: per-op latency + staleness."""

    def make_instrumented(self, seed=1):
        from repro.obs.instrument import Instrumentation

        instr = Instrumentation()
        config = ClusteringConfig(resolution=0.1, seed=seed)
        dc = DynamicClusterer.bootstrap(
            karate_club_graph(), config, guard=NO_GUARD,
            instrumentation=instr,
        )
        return dc, instr

    def latency_counts(self, instr):
        from repro.obs.instrument import M_SERVE_LATENCY

        return {
            s["labels"]["op"]: s["count"]
            for s in instr.metrics.collect()
            if s["metric"] == M_SERVE_LATENCY
        }

    def test_instrumented_ops_populate_per_op_histograms(self, tmp_path):
        dc, instr = self.make_instrumented()
        server = ClusterServer(dc, SnapshotStore(tmp_path))
        server.cluster_of(0)
        server.same(0, 1)
        server.stage(EdgeUpdate("insert", 0, 9, 1.0))
        server.commit()
        server.save()
        server.audit()
        counts = self.latency_counts(instr)
        assert counts["query"] == 2
        assert counts["stage"] == 1
        assert counts["commit"] == 1
        assert counts["save"] == 1
        assert counts["audit"] == 1

    def test_disabled_instrumentation_registers_nothing(self):
        from repro.obs.instrument import Instrumentation

        dc = make_clusterer()
        server = ClusterServer(dc)
        server.cluster_of(0)
        server.stage(EdgeUpdate("insert", 0, 9, 1.0))
        server.commit()
        # The no-op Instrumentation has an empty registry: the op path
        # never touched perf_counter or a histogram.
        assert isinstance(dc.instr, Instrumentation)
        assert not dc.instr.enabled
        assert dc.instr.metrics.collect() == []

    def test_staleness_gauge_tracks_apply_and_save(self, tmp_path):
        from repro.obs.instrument import M_SERVE_STALENESS

        dc, instr = self.make_instrumented()
        server = ClusterServer(dc, SnapshotStore(tmp_path))

        def staleness():
            for s in instr.metrics.collect():
                if s["metric"] == M_SERVE_STALENESS:
                    return s["value"]
            return None

        server.apply(UpdateBatch([EdgeUpdate("insert", 0, 9, 2.0)]))
        assert staleness() == 1.0
        server.apply(UpdateBatch([EdgeUpdate("delete", 0, 9)]))
        assert staleness() == 2.0
        server.save()
        assert staleness() == 0.0
        assert dc.stats()["updates_since_save"] == 0

    def test_transcripts_identical_with_and_without_telemetry(self, tmp_path):
        script = ["get 0", "insert 0 9", "commit", "save", "stats", "audit"]
        plain = run_session(make_clusterer(), script,
                            SnapshotStore(tmp_path / "a"))
        dc, _ = self.make_instrumented()
        timed = run_session(ClusterServer(dc, SnapshotStore(tmp_path / "b")),
                            script)
        assert plain == timed

    def test_run_session_accepts_prebuilt_server(self, tmp_path):
        dc = make_clusterer()
        server = ClusterServer(dc)
        out = run_session(server, ["save"], SnapshotStore(tmp_path))
        assert out == ["saved snap-a.npz"]
        assert server.store is not None


class TestLifecycle:
    """close() is idempotent; ops on a closed server raise typed errors."""

    def test_double_close_is_noop(self):
        server = ClusterServer(make_clusterer())
        server.close()
        server.close()  # must not raise
        assert server.closed

    def test_exit_after_explicit_close(self):
        with ClusterServer(make_clusterer()) as server:
            server.close()
        assert server.closed  # __exit__ re-close was a no-op

    def test_ops_after_close_raise_typed_error(self):
        from repro.errors import ServerClosedError

        server = ClusterServer(make_clusterer())
        server.stage(EdgeUpdate("insert", 0, 9))
        server.close()
        for op in (
            lambda: server.cluster_of(0),
            lambda: server.same(0, 1),
            lambda: server.members(0),
            lambda: server.stats(),
            lambda: server.stage(EdgeUpdate("insert", 0, 10)),
            lambda: server.commit(),
            lambda: server.apply(UpdateBatch([EdgeUpdate("insert", 0, 10)])),
            lambda: server.audit(),
            lambda: server.save(),
        ):
            with pytest.raises(ServerClosedError):
                op()

    def test_server_closed_error_is_repro_error(self):
        from repro.errors import ReproError, ServerClosedError

        assert issubclass(ServerClosedError, ReproError)
