"""DeltaOverlayGraph: staged mutation, fast-path vs rebuild equivalence."""

import numpy as np
import pytest

from repro.errors import UpdateError
from repro.graphs.builders import graph_from_edges
from repro.graphs.delta import DeltaOverlayGraph, base_edge_weight
from repro.graphs.karate import karate_club_graph

pytestmark = pytest.mark.dynamic


def edge_dict(graph):
    u, v, w = graph.edge_list()
    return {(int(a), int(b)): float(x) for a, b, x in zip(u, v, w)}


class TestBaseEdgeWeight:
    def test_present_edge(self):
        g = graph_from_edges([(0, 1), (1, 2)], weights=np.asarray([2.0, 0.5]))
        assert base_edge_weight(g, 0, 1) == 2.0
        assert base_edge_weight(g, 1, 0) == 2.0

    def test_absent_edge(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        assert base_edge_weight(g, 0, 2) == 0.0

    def test_out_of_range(self):
        g = graph_from_edges([(0, 1)])
        assert base_edge_weight(g, 0, 99) == 0.0


class TestOverlayReads:
    def test_reads_through_to_base(self):
        g = karate_club_graph()
        overlay = DeltaOverlayGraph(g)
        assert overlay.edge_weight(0, 1) == 1.0
        assert overlay.edge_weight(0, 9) == 0.0

    def test_pending_shadows_base(self):
        overlay = DeltaOverlayGraph(graph_from_edges([(0, 1)]))
        overlay.set_edge(0, 1, 5.0)
        assert overlay.edge_weight(0, 1) == 5.0
        assert overlay.edge_weight(1, 0) == 5.0

    def test_self_loop_query_rejected(self):
        overlay = DeltaOverlayGraph(graph_from_edges([(0, 1)]))
        with pytest.raises(UpdateError, match="self-loop"):
            overlay.edge_weight(2, 2)


class TestCompaction:
    def test_noop_compact_returns_base(self):
        g = karate_club_graph()
        overlay = DeltaOverlayGraph(g)
        assert overlay.compact() is g

    def test_reweight_uses_fast_path(self):
        g = karate_club_graph()
        overlay = DeltaOverlayGraph(g)
        overlay.set_edge(0, 1, 3.0)
        assert not overlay.is_structural
        compacted = overlay.compact()
        # Fast path: topology arrays are shared, only weights are new.
        assert compacted.offsets is g.offsets
        assert compacted.neighbors is g.neighbors
        assert base_edge_weight(compacted, 0, 1) == 3.0
        assert compacted.num_edges == g.num_edges

    def test_insert_and_delete_rebuild(self):
        g = karate_club_graph()
        overlay = DeltaOverlayGraph(g)
        overlay.set_edge(0, 9, 1.0)  # absent in karate -> structural
        overlay.set_edge(0, 1, 0.0)  # delete
        assert overlay.is_structural
        compacted = overlay.compact()
        expected = edge_dict(g)
        expected[(0, 9)] = 1.0
        del expected[(0, 1)]
        assert edge_dict(compacted) == expected

    def test_fast_path_matches_rebuild(self):
        """The same reweights through either path give the same graph."""
        g = karate_club_graph()
        fast = DeltaOverlayGraph(g)
        slow = DeltaOverlayGraph(g)
        for (u, v), w in [((0, 1), 2.5), ((2, 3), 0.25)]:
            fast.set_edge(u, v, w)
            slow.set_edge(u, v, w)
        slow._structural = True  # force the rebuild path
        a, b = fast.compact(), slow.compact()
        assert edge_dict(a) == edge_dict(b)
        assert np.array_equal(a.self_loops, b.self_loops)
        assert np.array_equal(a.node_weights, b.node_weights)
        assert np.array_equal(a.node_weight_sq, b.node_weight_sq)

    def test_vertex_growth(self):
        g = graph_from_edges([(0, 1)])
        overlay = DeltaOverlayGraph(g)
        overlay.set_edge(1, 4, 2.0)
        assert overlay.num_vertices == 5
        compacted = overlay.compact()
        assert compacted.num_vertices == 5
        assert np.array_equal(compacted.node_weights, np.ones(5))
        assert np.array_equal(compacted.node_weight_sq, np.ones(5))
        assert base_edge_weight(compacted, 1, 4) == 2.0

    def test_insert_then_delete_cancels(self):
        g = graph_from_edges([(0, 1)])
        overlay = DeltaOverlayGraph(g)
        overlay.set_edge(0, 2, 1.0)
        overlay.set_edge(0, 2, 0.0)
        compacted = overlay.compact()
        assert base_edge_weight(compacted, 0, 2) == 0.0
        assert compacted.num_edges == 1

    def test_compact_rebases(self):
        overlay = DeltaOverlayGraph(graph_from_edges([(0, 1)]))
        overlay.set_edge(0, 1, 4.0)
        first = overlay.compact()
        assert overlay.base is first
        assert overlay.pending_count == 0
        overlay.set_edge(0, 1, 0.0)
        second = overlay.compact()
        assert second.num_edges == 0

    def test_repairs_propagate_through_compaction(self):
        g = karate_club_graph()
        g.repairs = {"bad_weight": 2}
        overlay = DeltaOverlayGraph(g)
        overlay.set_edge(0, 1, 3.0)
        assert overlay.compact().repairs == {"bad_weight": 2}
        overlay.set_edge(0, 9, 1.0)
        assert overlay.compact().repairs == {"bad_weight": 2}

    def test_set_edge_validation(self):
        overlay = DeltaOverlayGraph(graph_from_edges([(0, 1)]))
        with pytest.raises(UpdateError, match="self-loop"):
            overlay.set_edge(1, 1, 1.0)
        with pytest.raises(UpdateError, match="non-finite"):
            overlay.set_edge(0, 1, float("inf"))
        with pytest.raises(UpdateError, match="negative"):
            overlay.ensure_vertex(-2)
