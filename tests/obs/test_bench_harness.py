"""Bench harness: timing, suite files, and the regression compare gate."""

import json

import pytest

from repro.obs.bench import (
    BASELINE_SCHEMA,
    BenchSuite,
    compare,
    compare_files,
    load_baseline,
    main,
    metric_direction,
    time_callable,
)


def test_metric_direction_heuristics():
    assert metric_direction("wall_seconds") == "lower"
    assert metric_direction("sim_time_seconds") == "lower"
    assert metric_direction("peak_bytes") == "lower"
    assert metric_direction("slowdown") == "lower"
    assert metric_direction("f_objective") == "higher"
    assert metric_direction("speedup") == "higher"
    assert metric_direction("quality") == "higher"
    assert metric_direction("rounds") == "info"


def test_time_callable_repeats_and_result():
    calls = []
    result, timing = time_callable(
        lambda: calls.append(1) or "out", repeats=3, warmup=2
    )
    assert result == "out"
    assert len(calls) == 5  # 2 warmups + 3 timed
    assert timing.repeats == 3
    assert timing.best <= timing.mean
    with pytest.raises(ValueError, match="repeats"):
        time_callable(lambda: None, repeats=0)


def test_time_callable_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "2")
    _, timing = time_callable(lambda: None)
    assert timing.repeats == 2


def _suite(sim: float, objective: float) -> BenchSuite:
    suite = BenchSuite("demo", meta={"workload": "unit-test"})
    suite.add_row(
        "relaxed",
        metrics={"sim_time_seconds": sim, "f_objective": objective},
        rounds=7,
    )
    return suite


def test_suite_rejects_duplicate_keys_and_bad_names():
    suite = _suite(1.0, 10.0)
    with pytest.raises(ValueError, match="duplicate row key"):
        suite.add_row("relaxed", metrics={"sim_time_seconds": 2.0})
    with pytest.raises(ValueError, match="invalid suite name"):
        BenchSuite("has/slash")


def test_suite_write_and_load_round_trip(tmp_path):
    path = _suite(1.0, 10.0).write(tmp_path)
    assert path.name == "BENCH_demo.json"
    payload = load_baseline(path)
    assert payload["schema"] == BASELINE_SCHEMA
    assert payload["directions"]["sim_time_seconds"] == "lower"
    assert payload["rows"][0]["info"]["rounds"] == 7


def test_load_baseline_rejects_wrong_schema(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"schema": "other/v9", "name": "x", "rows": []}))
    with pytest.raises(ValueError, match="unsupported baseline schema"):
        load_baseline(path)


def test_compare_flags_regressions_beyond_tolerance():
    baseline = _suite(1.0, 10.0).payload()
    # 50% slower and 50% worse objective: both directions regress.
    current = _suite(1.5, 5.0).payload()
    report = compare(baseline, current, tolerance=0.10)
    assert not report.ok
    flagged = {(r.metric, round(r.change, 2)) for r in report.regressions}
    assert ("sim_time_seconds", 0.5) in flagged
    assert ("f_objective", 0.5) in flagged
    assert report.compared == 2


def test_compare_within_tolerance_and_improvements_pass():
    baseline = _suite(1.0, 10.0).payload()
    within = compare(baseline, _suite(1.05, 9.8).payload(), tolerance=0.10)
    assert within.ok and not within.improvements
    better = compare(baseline, _suite(0.5, 20.0).payload(), tolerance=0.10)
    assert better.ok
    assert len(better.improvements) == 2


def test_compare_reports_missing_rows_and_metrics():
    baseline = _suite(1.0, 10.0).payload()
    empty = compare(baseline, {"name": "demo", "rows": []})
    assert empty.ok  # nothing compared, but coverage loss is surfaced
    assert empty.skipped == ["relaxed: row missing from current run"]

    stripped = _suite(1.0, 10.0).payload()
    del stripped["rows"][0]["metrics"]["f_objective"]
    report = compare(baseline, stripped)
    assert any("f_objective" in note for note in report.skipped)


def test_info_metrics_never_fail_compare():
    suite = BenchSuite("demo")
    suite.add_row("row", metrics={"rounds": 10.0})
    baseline = suite.payload()
    other = BenchSuite("demo")
    other.add_row("row", metrics={"rounds": 1000.0})
    assert compare(baseline, other.payload()).ok


def test_cli_compare_exit_codes(tmp_path, capsys):
    base_dir = tmp_path / "base"
    cur_dir = tmp_path / "cur"
    _suite(1.0, 10.0).write(base_dir)
    _suite(1.0, 10.0).write(cur_dir)
    assert main(
        ["compare", str(base_dir / "BENCH_demo.json"),
         str(cur_dir / "BENCH_demo.json")]
    ) == 0
    _suite(9.0, 1.0).write(cur_dir)
    assert main(
        ["compare", str(base_dir / "BENCH_demo.json"),
         str(cur_dir / "BENCH_demo.json")]
    ) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out


def test_cli_compare_files_helper(tmp_path):
    a = _suite(1.0, 10.0).write(tmp_path / "a")
    b = _suite(1.2, 10.0).write(tmp_path / "b")
    report = compare_files(a, b, tolerance=0.10)
    assert [r.metric for r in report.regressions] == ["sim_time_seconds"]


def test_cli_validate_trace(tmp_path, capsys):
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    with tracer.span("run"):
        pass
    good = tmp_path / "good.jsonl"
    tracer.write_jsonl(good)
    assert main(["validate-trace", str(good)]) == 0

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "event", "name": "orphan"}\n')
    assert main(["validate-trace", str(bad)]) == 1
    assert "invalid" in capsys.readouterr().err


def test_committed_baselines_load_and_self_compare():
    """The committed BENCH_*.json files parse and compare clean vs selves."""
    from pathlib import Path

    baseline_dir = Path(__file__).resolve().parents[2] / "benchmarks/baselines"
    paths = sorted(baseline_dir.glob("BENCH_*.json"))
    assert {p.name for p in paths} >= {
        "BENCH_engines.json", "BENCH_overhead.json",
    }
    for path in paths:
        payload = load_baseline(path)
        report = compare(payload, payload)
        assert report.ok and not report.skipped
