"""Tracer invariants: nesting, LIFO closing, round trips, null path."""

import pytest

from repro.obs.tracer import (
    NULL_SPAN,
    Tracer,
    peak_rss_bytes,
    span_tree,
)


def test_nested_spans_record_parent_and_depth():
    tracer = Tracer()
    with tracer.span("run") as run:
        with tracer.span("level", level=0) as level:
            with tracer.span("round", iteration=0) as round_span:
                assert round_span.parent_id == level.span_id
                assert round_span.depth == 2
            assert level.parent_id == run.span_id
            assert level.depth == 1
    assert run.parent_id is None
    assert run.depth == 0
    assert tracer.open_spans == 0


def test_records_written_in_completion_order():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    names = [r["name"] for r in tracer.span_records()]
    assert names == ["inner", "outer"]


def test_out_of_order_close_raises():
    tracer = Tracer()
    outer = tracer.span("outer")
    tracer.span("inner")
    with pytest.raises(RuntimeError, match="out of order"):
        tracer._finish(outer)


def test_export_with_open_spans_raises():
    tracer = Tracer()
    tracer.span("still-open")
    with pytest.raises(RuntimeError, match="open spans"):
        tracer.to_jsonl()


def test_span_timing_and_rss_populated():
    tracer = Tracer()
    with tracer.span("timed") as span:
        pass
    assert span.wall_seconds >= 0.0
    assert span.cpu_seconds >= 0.0
    if peak_rss_bytes() is not None:
        assert span.peak_rss_bytes > 0


def test_exception_inside_span_closes_and_tags_it():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    assert tracer.open_spans == 0
    (record,) = tracer.span_records()
    assert record["attrs"]["error"] == "ValueError"


def test_jsonl_round_trip_and_tree_rebuild():
    tracer = Tracer()
    with tracer.span("run"):
        with tracer.span("level", level=0):
            with tracer.span("round", iteration=0):
                pass
            with tracer.span("round", iteration=1):
                pass
        tracer.event("resilience", kind="note", message="hi")
    records = Tracer.parse_jsonl(tracer.to_jsonl())
    roots = span_tree(records)
    assert [r.name for r in roots] == ["run"]
    (level,) = roots[0].children
    assert [c.name for c in level.children] == ["round", "round"]
    # Children are ordered by start time.
    iterations = [c.record["attrs"]["iteration"] for c in level.children]
    assert iterations == [0, 1]
    assert len(list(roots[0].walk())) == 4


def test_span_tree_missing_parent_raises():
    tracer = Tracer()
    with tracer.span("run"):
        with tracer.span("child"):
            pass
    records = tracer.span_records()
    orphan = [r for r in records if r["name"] == "child"]
    with pytest.raises(ValueError, match="missing parent"):
        span_tree(orphan)


def test_events_attach_to_innermost_open_span():
    tracer = Tracer()
    free = tracer.event("unattached")
    assert free["span"] is None
    with tracer.span("run") as run:
        attached = tracer.event("attached", detail=1)
    assert attached["span"] == run.span_id
    assert [r["name"] for r in tracer.event_records()] == [
        "unattached", "attached",
    ]


def test_null_span_is_inert():
    with NULL_SPAN as span:
        span.set(anything="goes")
    assert span is NULL_SPAN


def test_set_overwrites_attributes():
    tracer = Tracer()
    with tracer.span("s", moves=0) as span:
        span.set(moves=7, gain=1.5)
    (record,) = tracer.span_records()
    assert record["attrs"] == {"moves": 7, "gain": 1.5}


def test_write_jsonl(tmp_path):
    tracer = Tracer()
    with tracer.span("run"):
        pass
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path)
    records = Tracer.parse_jsonl(path.read_text())
    assert records[0]["name"] == "run"
