"""HTML observability report: self-contained, renders every section."""

import re

import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.serve import ClusterServer
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.graphs.karate import karate_club_graph
from repro.obs.doctor import DoctorInputs, cluster_decomposition, diagnose
from repro.obs.instrument import Instrumentation
from repro.obs.report import render_report, write_report

pytestmark = pytest.mark.obs

RESOLUTION = 0.05


def assert_self_contained(html):
    """No scripts, no external fetches: the ISSUE's report contract."""
    lowered = html.lower()
    assert "<script" not in lowered
    assert not re.search(r'(?:src|href)\s*=\s*["\']https?://', html)
    assert "url(" not in lowered
    assert "@import" not in lowered


@pytest.fixture(scope="module")
def batch_doctor():
    instr = Instrumentation()
    config = ClusteringConfig(resolution=RESOLUTION, seed=3)
    result = cluster(karate_club_graph(), config, instrumentation=instr)
    return diagnose(DoctorInputs(
        stats=result.stats_dict(),
        trace=list(instr.tracer.records),
        metric_samples=instr.metrics.collect(),
        decomposition=cluster_decomposition(
            karate_club_graph(), result.assignments, RESOLUTION
        ),
        iteration_cap=10,
    ))


@pytest.fixture(scope="module")
def update_doctor():
    instr = Instrumentation()
    config = ClusteringConfig(resolution=RESOLUTION, seed=3)
    clusterer = DynamicClusterer.bootstrap(
        karate_club_graph(), config, instrumentation=instr,
        guard=DriftGuard(recompute_every=0, max_frontier_fraction=1.0),
    )
    server = ClusterServer(clusterer)
    server.cluster_of(0)
    server.apply(UpdateBatch([EdgeUpdate("insert", 0, 9, 2.0)]))
    return diagnose(DoctorInputs(
        trace=list(instr.tracer.records),
        metric_samples=instr.metrics.collect(),
        dynamic_stats=clusterer.stats(),
    ))


class TestBatchReport:
    def test_self_contained(self, batch_doctor):
        assert_self_contained(render_report(batch_doctor))

    def test_sections_present(self, batch_doctor):
        html = render_report(batch_doctor, source="karate")
        for section in ("Findings", "Span waterfall", "Worker lanes",
                        "Quality panels", "Run summary"):
            assert f"<h2>{section}</h2>" in html
        assert "<svg" in html
        assert "karate" in html

    def test_no_nan_coordinates(self, batch_doctor):
        html = render_report(batch_doctor)
        assert "NaN" not in html
        assert "Infinity" not in html

    def test_registry_section_only_with_runs(self, batch_doctor):
        without = render_report(batch_doctor)
        assert "<h2>Registry</h2>" not in without
        record = {
            "run_id": "r1", "workload": {"graph": "karate",
                                         "engine": "relaxed",
                                         "resolution": 0.05},
            "metrics": {"wall_seconds": 0.1, "sim_time_seconds": 0.01,
                        "f_objective": 54.0, "modularity": 0.42},
            "info": {},
        }
        with_runs = render_report(batch_doctor, runs=[record])
        assert "<h2>Registry</h2>" in with_runs
        assert "r1" in with_runs

    def test_write_report(self, batch_doctor, tmp_path):
        out = tmp_path / "report.html"
        write_report(out, batch_doctor, title="test run")
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "test run" in html
        assert_self_contained(html)


class TestUpdateReport:
    def test_self_contained(self, update_doctor):
        assert_self_contained(render_report(update_doctor))

    def test_slo_table_present(self, update_doctor):
        html = render_report(update_doctor)
        assert "<h2>Serving SLOs</h2>" in html
        # Query and commit ops were both exercised.
        assert re.search(r"<td[^>]*>query</td>", html)
        assert re.search(r"<td[^>]*>commit</td>", html)

    def test_findings_chips_are_labeled_not_color_alone(self, update_doctor):
        html = render_report(update_doctor)
        # Status is icon+label per the dataviz contract, never color alone.
        assert "✓ ok<" in html


class TestEmptyInputs:
    def test_report_renders_from_bare_findings(self):
        doctor = diagnose(DoctorInputs(stats={"rounds": 3, "moves": 10}))
        html = render_report(doctor)
        assert_self_contained(html)
        assert "<h2>Findings</h2>" in html
        # Sections without data stay out instead of rendering empty shells.
        assert "<h2>Span waterfall</h2>" not in html
        assert "<h2>Serving SLOs</h2>" not in html
