"""Run registry: schema, append/load, and the cross-run diff gate."""

import json

import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.graphs.karate import karate_club_graph
from repro.obs.registry import (
    OBJECTIVE_TOLERANCE,
    RUNS_SCHEMA,
    RunRegistryError,
    append_run,
    diff_runs,
    find_run,
    load_runs,
    make_run_record,
    validate_run_record,
)


@pytest.fixture(scope="module")
def result():
    config = ClusteringConfig(resolution=0.05, seed=3)
    return cluster(karate_club_graph(), config)


def test_make_run_record_satisfies_schema(result):
    record = make_run_record(result, run_id="r1", graph="karate")
    assert record["schema"] == RUNS_SCHEMA
    assert validate_run_record(record) == []
    assert record["workload"]["graph"] == "karate"
    assert record["metrics"]["wall_seconds"] > 0
    assert record["info"]["num_clusters"] == result.num_clusters


def test_append_and_load_round_trip(result, tmp_path):
    path = tmp_path / "runs.jsonl"
    first = make_run_record(result, run_id="a", graph="karate", timestamp=1.0)
    second = make_run_record(result, run_id="b", graph="karate", timestamp=2.0)
    append_run(path, first)
    append_run(path, second)
    records = load_runs(path)
    assert [r["run_id"] for r in records] == ["a", "b"]
    assert find_run(records, "b")["timestamp"] == 2.0
    with pytest.raises(RunRegistryError, match="not in registry"):
        find_run(records, "missing")


def test_append_rejects_invalid_record(tmp_path):
    with pytest.raises(RunRegistryError, match="refusing to register"):
        append_run(tmp_path / "runs.jsonl", {"schema": RUNS_SCHEMA})


def test_load_rejects_corrupt_registry(tmp_path):
    path = tmp_path / "runs.jsonl"
    path.write_text('{"schema": "nope"}\n')
    with pytest.raises(RunRegistryError, match="line 0"):
        load_runs(path)
    path.write_text("not json\n")
    with pytest.raises(RunRegistryError, match="invalid JSON"):
        load_runs(path)


def test_find_run_latest_wins_on_reused_id(result, tmp_path):
    path = tmp_path / "runs.jsonl"
    append_run(
        path, make_run_record(result, run_id="r", graph="karate", timestamp=1.0)
    )
    append_run(
        path, make_run_record(result, run_id="r", graph="karate", timestamp=2.0)
    )
    assert find_run(load_runs(path), "r")["timestamp"] == 2.0


def _record(result, run_id, **metric_overrides):
    record = make_run_record(result, run_id=run_id, graph="karate")
    record["metrics"].update(metric_overrides)
    return record


def test_diff_passes_identical_runs(result):
    base = _record(result, "base")
    report = diff_runs(base, _record(result, "same"))
    assert report.ok
    assert report.compared == 4


def test_diff_flags_wall_regression_over_ten_percent(result):
    base = _record(result, "base")
    slower = _record(
        result, "slower", wall_seconds=base["metrics"]["wall_seconds"] * 1.2
    )
    report = diff_runs(base, slower)
    assert not report.ok
    assert [r.metric for r in report.regressions] == ["wall_seconds"]
    # 5% slower stays within the wall tolerance.
    ok = _record(
        result, "ok", wall_seconds=base["metrics"]["wall_seconds"] * 1.05
    )
    assert diff_runs(base, ok).ok


def test_diff_flags_small_objective_regression(result):
    base = _record(result, "base")
    worse = _record(
        result, "worse", f_objective=base["metrics"]["f_objective"] * 0.995
    )
    report = diff_runs(base, worse)
    assert not report.ok
    assert [r.metric for r in report.regressions] == ["f_objective"]
    assert report.regressions[0].change > OBJECTIVE_TOLERANCE
    # The same 0.5% change on wall time would be far below its tolerance,
    # which is the point of the split thresholds.
    jitter = _record(
        result, "jitter", wall_seconds=base["metrics"]["wall_seconds"] * 1.005
    )
    assert diff_runs(base, jitter).ok


def test_diff_notes_workload_mismatch(result):
    base = _record(result, "base")
    other = make_run_record(result, run_id="other", graph="different-graph")
    report = diff_runs(base, other)
    assert any("workloads differ" in note for note in report.skipped)


def test_registry_record_is_json_line(result, tmp_path):
    path = tmp_path / "runs.jsonl"
    append_run(path, make_run_record(result, run_id="x", graph="karate"))
    (line,) = path.read_text().splitlines()
    assert json.loads(line)["run_id"] == "x"


class TestCrashSafeAppend:
    def test_append_drops_torn_tail_from_earlier_crash(self, result, tmp_path):
        path = tmp_path / "runs.jsonl"
        good = make_run_record(result, run_id="good", graph="karate", timestamp=1.0)
        append_run(path, good)
        # Simulate an earlier non-atomic writer dying mid-line: no newline.
        with open(path, "a") as handle:
            handle.write('{"schema": "repro.obs.runs/v1", "run_id": "to')
        fresh = make_run_record(result, run_id="fresh", graph="karate", timestamp=2.0)
        append_run(path, fresh)
        records = load_runs(path)
        assert [r["run_id"] for r in records] == ["good", "fresh"]

    def test_append_leaves_no_temp_file(self, result, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_run(path, make_run_record(result, run_id="a", graph="karate"))
        append_run(path, make_run_record(result, run_id="b", graph="karate"))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["runs.jsonl"]

    def test_registry_always_ends_with_newline(self, result, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_run(path, make_run_record(result, run_id="a", graph="karate"))
        assert path.read_bytes().endswith(b"\n")

    def test_append_creates_parent_directories(self, result, tmp_path):
        path = tmp_path / "nested" / "deeper" / "runs.jsonl"
        append_run(path, make_run_record(result, run_id="a", graph="karate"))
        assert len(load_runs(path)) == 1

    def test_rejected_record_leaves_registry_untouched(self, result, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_run(path, make_run_record(result, run_id="a", graph="karate"))
        before = path.read_bytes()
        with pytest.raises(RunRegistryError):
            append_run(path, {"schema": "wrong"})
        assert path.read_bytes() == before
