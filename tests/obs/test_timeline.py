"""Worker timelines: schema validation, lane exclusivity, Chrome export."""

import json

import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.graphs.karate import karate_club_graph
from repro.obs.instrument import Instrumentation
from repro.obs.schema import TraceSchemaError, validate_trace_records
from repro.obs.timeline import (
    PID_SPANS,
    PID_WORKERS,
    chrome_trace,
    load_trace_records,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer


def _traced_run(**config_kwargs):
    instr = Instrumentation()
    config = ClusteringConfig(resolution=0.05, seed=3, **config_kwargs)
    result = cluster(karate_club_graph(), config, instrumentation=instr)
    return result, instr


def test_traced_run_emits_worker_chunks_per_lane():
    _, instr = _traced_run()
    workers = instr.tracer.worker_records()
    assert workers, "instrumented run produced no worker chunks"
    lanes = {w["worker"] for w in workers}
    assert len(lanes) > 1  # parallel run spreads over multiple lanes
    assert all(w["end"] >= w["start"] for w in workers)
    assert all(w["items"] >= 0 and w["wait"] >= 0.0 for w in workers)
    # The trace (spans + events + worker chunks) passes schema validation,
    # which includes the strict per-lane non-overlap check.
    assert validate_trace_records(instr.tracer.records) == []


def test_worker_chunks_never_overlap_within_a_lane():
    _, instr = _traced_run()
    by_lane = {}
    for chunk in instr.tracer.worker_records():
        by_lane.setdefault(chunk["worker"], []).append(chunk)
    for chunks in by_lane.values():
        chunks.sort(key=lambda c: c["start"])
        for prev, nxt in zip(chunks, chunks[1:]):
            assert nxt["start"] >= prev["end"] - 1e-9


def test_schema_flags_overlapping_worker_chunks():
    tracer = Tracer()
    with tracer.span("run"):
        tracer.worker_chunk(0, 0.0, 2.0, "a")
        tracer.worker_chunk(0, 1.0, 3.0, "b")  # overlaps chunk "a"
        tracer.worker_chunk(1, 1.0, 3.0, "c")  # different lane: fine
    problems = validate_trace_records(tracer.records)
    assert any("worker 0" in p and "starts at" in p for p in problems)
    assert not any("worker 1" in p for p in problems)


def test_schema_rejects_malformed_worker_records():
    tracer = Tracer()
    with tracer.span("run"):
        tracer.worker_chunk(0, 0.0, 1.0, "ok")
    good = list(tracer.records)
    bad = [dict(r) for r in good]
    for record in bad:
        if record["type"] == "worker":
            record["end"] = record["start"] - 1.0
    assert any("ends before" in p for p in validate_trace_records(bad))
    bad = [dict(r) for r in good]
    for record in bad:
        if record["type"] == "worker":
            record["worker"] = -2
    assert any("non-negative" in p for p in validate_trace_records(bad))


def test_chrome_trace_shape_and_lane_exclusivity(tmp_path):
    result, instr = _traced_run()
    trace_path = tmp_path / "run.jsonl"
    out_path = tmp_path / "run.chrome.json"
    instr.write_trace(trace_path)
    write_chrome_trace(trace_path, out_path)

    document = json.loads(out_path.read_text())  # valid JSON on disk
    events = document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"

    span_events = [
        e for e in events if e["ph"] == "X" and e["pid"] == PID_SPANS
    ]
    worker_events = [
        e for e in events if e["ph"] == "X" and e["pid"] == PID_WORKERS
    ]
    assert {e["name"] for e in span_events} >= {"run", "level", "phase"}
    assert worker_events

    # One lane per simulated worker, and within each lane the complete
    # events are strictly non-overlapping.
    lanes = {}
    for event in worker_events:
        lanes.setdefault(event["tid"], []).append(event)
    assert len(lanes) > 1
    for chunks in lanes.values():
        chunks.sort(key=lambda e: e["ts"])
        for prev, nxt in zip(chunks, chunks[1:]):
            assert nxt["ts"] >= prev["ts"] + prev["dur"] - 1e-3  # us slack

    # Thread-name metadata names every lane.
    named = {
        e["tid"]
        for e in events
        if e["ph"] == "M" and e["pid"] == PID_WORKERS and "tid" in e
    }
    assert named == set(lanes)


def test_chrome_trace_rejects_invalid_records():
    with pytest.raises(TraceSchemaError):
        chrome_trace([{"type": "span", "name": "broken"}])


def test_sequential_run_uses_single_lane():
    _, instr = _traced_run(parallel=False, num_workers=1)
    workers = instr.tracer.worker_records()
    assert workers
    assert {w["worker"] for w in workers} == {0}


def test_load_trace_records_round_trip(tmp_path):
    _, instr = _traced_run()
    path = tmp_path / "t.jsonl"
    instr.write_trace(path)
    records = load_trace_records(path)
    assert len(records) == len(instr.tracer.records)
    assert validate_trace_records(records) == []
