"""Health-rule engine: rule kinds, severities, files, and serving SLOs."""

import json

import pytest

from repro.obs.health import (
    DEFAULT_RULES_SPEC,
    HealthRule,
    HealthRuleError,
    SLOSpec,
    default_rules,
    evaluate_rules,
    evaluate_slos,
    load_rules,
    load_slo,
    rules_from_dict,
    slo_from_dict,
)
from repro.obs.instrument import M_SERVE_LATENCY, M_SERVE_STALENESS

pytestmark = pytest.mark.obs


def threshold_rule(**overrides):
    spec = dict(id="r", kind="threshold", fact="x", direction="above", warn=1.0)
    spec.update(overrides)
    return HealthRule(**spec)


class TestThresholdRules:
    def test_ok_below_warn(self):
        finding, skip = threshold_rule(warn=1.0, crit=5.0).evaluate({"x": 0.5})
        assert skip is None
        assert finding.severity == "ok"

    def test_warn_then_crit_escalation(self):
        rule = threshold_rule(warn=1.0, crit=5.0)
        assert rule.evaluate({"x": 2.0})[0].severity == "warn"
        assert rule.evaluate({"x": 6.0})[0].severity == "crit"

    def test_bound_is_exclusive(self):
        finding, _ = threshold_rule(warn=1.0).evaluate({"x": 1.0})
        assert finding.severity == "ok"

    def test_direction_below(self):
        rule = threshold_rule(direction="below", warn=0.5)
        assert rule.evaluate({"x": 0.1})[0].severity == "warn"
        assert rule.evaluate({"x": 0.9})[0].severity == "ok"

    def test_missing_fact_skips_not_fails(self):
        finding, skip = threshold_rule().evaluate({})
        assert finding is None
        assert "unavailable" in skip


class TestRatioRules:
    def ratio_rule(self):
        return HealthRule(
            id="rate", kind="ratio", numerator="num", denominator="den",
            direction="above", warn=0.05, crit=0.25,
        )

    def test_severity_from_ratio(self):
        rule = self.ratio_rule()
        assert rule.evaluate({"num": 1, "den": 100})[0].severity == "ok"
        assert rule.evaluate({"num": 10, "den": 100})[0].severity == "warn"
        assert rule.evaluate({"num": 30, "den": 100})[0].severity == "crit"

    def test_zero_denominator_skips(self):
        _, skip = self.ratio_rule().evaluate({"num": 1, "den": 0})
        assert "denominator" in skip

    def test_missing_side_skips(self):
        _, skip = self.ratio_rule().evaluate({"num": 1})
        assert "den" in skip


def trend_rule(metric="f_objective", **overrides):
    spec = dict(
        id="trend", kind="trend", metric=metric, baseline="median",
        window=20, warn=0.001, crit=0.01,
    )
    spec.update(overrides)
    return HealthRule(**spec)


def run_record(value, metric="f_objective"):
    return {"metrics": {metric: value}, "workload": {"graph": "karate"}}


class TestTrendRules:
    def test_regression_vs_median_history(self):
        history = [run_record(100.0), run_record(102.0), run_record(98.0)]
        finding, _ = trend_rule().evaluate(
            {}, record=run_record(80.0), history=history
        )
        # f_objective is higher-is-better: 80 vs median 100 is a 20% drop.
        assert finding.severity == "crit"
        assert finding.value == pytest.approx(0.20)

    def test_improvement_is_ok(self):
        finding, _ = trend_rule().evaluate(
            {}, record=run_record(120.0), history=[run_record(100.0)]
        )
        assert finding.severity == "ok"

    def test_lower_is_better_metric(self):
        finding, _ = trend_rule(
            metric="wall_seconds", warn=0.10, crit=0.50
        ).evaluate(
            {},
            record=run_record(2.0, metric="wall_seconds"),
            history=[run_record(1.0, metric="wall_seconds")],
        )
        assert finding.severity == "crit"  # 2x slower

    def test_window_keeps_recent_history_only(self):
        history = [run_record(1000.0)] + [run_record(100.0)] * 5
        finding, _ = trend_rule(window=5).evaluate(
            {}, record=run_record(100.0), history=history
        )
        assert finding.severity == "ok"
        assert finding.detail["history"] == 5

    def test_best_baseline(self):
        finding, _ = trend_rule(baseline="best").evaluate(
            {}, record=run_record(100.0),
            history=[run_record(90.0), run_record(110.0)],
        )
        assert finding.detail["baseline"] == 110.0

    def test_no_record_skips(self):
        _, skip = trend_rule().evaluate({})
        assert "no registry record" in skip

    def test_no_history_skips(self):
        _, skip = trend_rule().evaluate({}, record=run_record(1.0), history=[])
        assert "no comparable history" in skip


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(HealthRuleError, match="unknown kind"):
            HealthRule(id="x", kind="magic", fact="f", warn=1)

    def test_needs_a_bound(self):
        with pytest.raises(HealthRuleError, match="warn/crit"):
            HealthRule(id="x", kind="threshold", fact="f")

    def test_threshold_needs_fact(self):
        with pytest.raises(HealthRuleError, match="needs fact"):
            HealthRule(id="x", kind="threshold", warn=1)

    def test_trend_needs_metric(self):
        with pytest.raises(HealthRuleError, match="needs metric"):
            HealthRule(id="x", kind="trend", warn=1)

    def test_bad_schema_rejected(self):
        with pytest.raises(HealthRuleError, match="schema"):
            rules_from_dict({"schema": "nope", "rules": []})

    def test_unknown_field_rejected(self):
        spec = {
            "schema": "repro.obs.health/v1",
            "rules": [{"id": "x", "kind": "threshold", "fact": "f",
                       "warn": 1, "bogus": True}],
        }
        with pytest.raises(HealthRuleError, match="unknown fields"):
            rules_from_dict(spec)

    def test_duplicate_id_rejected(self):
        rule = {"id": "x", "kind": "threshold", "fact": "f", "warn": 1}
        spec = {"schema": "repro.obs.health/v1", "rules": [rule, dict(rule)]}
        with pytest.raises(HealthRuleError, match="duplicate"):
            rules_from_dict(spec)


class TestRuleFiles:
    def test_load_rules_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(DEFAULT_RULES_SPEC))
        loaded = load_rules(path)
        assert [r.id for r in loaded] == [r.id for r in default_rules()]

    def test_load_rules_bad_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{nope")
        with pytest.raises(HealthRuleError, match="cannot read"):
            load_rules(path)

    def test_committed_ruleset_matches_builtin(self):
        """benchmarks/health_rules.json is DEFAULT_RULES_SPEC, verbatim."""
        with open("benchmarks/health_rules.json") as handle:
            committed = json.load(handle)
        assert committed == DEFAULT_RULES_SPEC


class TestReport:
    def test_exit_code_only_on_crit(self):
        rules = [threshold_rule(id="a", warn=1.0), threshold_rule(id="b", crit=1.0, warn=None)]
        report = evaluate_rules(rules, {"x": 2.0})
        assert report.exit_code == 1
        assert report.worst == "crit"
        report = evaluate_rules([rules[0]], {"x": 2.0})
        assert report.exit_code == 0
        assert report.worst == "warn"

    def test_describe_orders_worst_first(self):
        rules = [
            threshold_rule(id="fine", warn=10.0),
            threshold_rule(id="bad", crit=1.0, warn=None),
        ]
        text = evaluate_rules(rules, {"x": 5.0}).describe()
        lines = text.splitlines()
        assert lines[0].startswith("doctor: 1 ok, 0 warn, 1 crit")
        assert "CRIT bad" in lines[1]


def latency_sample(op, values, buckets=(0.001, 0.01, 0.1, 1.0)):
    """Build one exported histogram sample the way Histogram.samples does."""
    from repro.obs.metrics import Histogram

    hist = Histogram(M_SERVE_LATENCY, buckets=list(buckets))
    for v in values:
        hist.observe(v, op=op)
    (sample,) = hist.samples()
    return sample


class TestSLOs:
    def test_spec_file_round_trip(self, tmp_path):
        spec = SLOSpec.default()
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(spec.as_dict()))
        loaded = load_slo(path)
        assert loaded.op_p95_seconds == spec.op_p95_seconds
        assert loaded.max_staleness_updates == spec.max_staleness_updates

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(HealthRuleError, match="unknown fields"):
            slo_from_dict({"schema": "repro.obs.slo/v1", "surprise": 1})

    def test_p95_within_target_is_ok(self):
        spec = SLOSpec(op_p95_seconds={"query": 0.05})
        report, rows = evaluate_slos(spec, [latency_sample("query", [0.001] * 20)])
        assert report.exit_code == 0
        (row,) = rows
        assert row["op"] == "query"
        assert row["count"] == 20
        assert row["severity"] == "ok"

    def test_p95_over_twice_target_is_crit(self):
        spec = SLOSpec(op_p95_seconds={"query": 0.005})
        report, rows = evaluate_slos(spec, [latency_sample("query", [0.05] * 20)])
        assert rows[0]["severity"] == "crit"
        assert report.exit_code == 1

    def test_p95_between_one_and_two_targets_warns(self):
        spec = SLOSpec(op_p95_seconds={"query": 0.04})
        report, rows = evaluate_slos(spec, [latency_sample("query", [0.05] * 20)])
        assert rows[0]["severity"] == "warn"
        assert report.exit_code == 0

    def test_missing_op_is_skipped_not_failed(self):
        spec = SLOSpec(op_p95_seconds={"save": 1.0})
        report, rows = evaluate_slos(spec, [])
        assert rows == []
        assert any("save" in s for s in report.skipped)
        assert report.exit_code == 0

    def test_staleness_bound(self):
        spec = SLOSpec(max_staleness_updates=10)
        stale = {"metric": M_SERVE_STALENESS, "type": "gauge",
                 "labels": {}, "value": 25.0}
        report, _ = evaluate_slos(spec, [stale])
        (finding,) = report.findings
        assert finding.rule == "slo-staleness"
        assert finding.severity == "crit"

    def test_escalation_and_drift_bounds_from_facts(self):
        spec = SLOSpec(max_escalations=0, max_drift_abs=1e-6)
        report, _ = evaluate_slos(
            spec, [],
            facts={"dynamic.escalations": 2.0, "dynamic.last_drift": 1e-3},
        )
        severities = {f.rule: f.severity for f in report.findings}
        assert severities == {"slo-escalations": "crit", "slo-drift": "crit"}
