"""Metrics registry: kinds, labels, and both exporter round trips."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)


def test_counter_accumulates_per_label_set():
    counter = Counter("moves_total")
    counter.inc(3, engine="relaxed")
    counter.inc(2, engine="relaxed")
    counter.inc(5, engine="colored")
    assert counter.value(engine="relaxed") == 5
    assert counter.value(engine="colored") == 5
    assert counter.value(engine="missing") == 0
    assert counter.total() == 10


def test_counter_rejects_negative_increment():
    counter = Counter("c_total")
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)


def test_gauge_last_write_wins():
    gauge = Gauge("objective")
    gauge.set(1.0)
    gauge.set(2.5)
    assert gauge.value() == 2.5
    assert gauge.value(run="other") is None


def test_histogram_summary_and_cumulative_buckets():
    hist = Histogram("sizes", buckets=[1.0, 10.0, 100.0])
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.count() == 4
    assert hist.sum() == 555.5
    (sample,) = hist.samples()
    assert sample["min"] == 0.5
    assert sample["max"] == 500.0
    # Cumulative: <=1 catches 0.5; <=10 adds 5.0; <=100 adds 50.0; the
    # 500.0 observation lives only in the implicit +Inf bucket.
    assert sample["buckets"] == {"1": 1, "10": 2, "100": 3}


def test_invalid_names_rejected():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("0starts-with-digit")
    counter = Counter("ok_total")
    with pytest.raises(ValueError, match="invalid label name"):
        counter.inc(1, **{"bad-label": "x"})


def test_registry_lazy_creation_and_kind_conflict():
    registry = MetricsRegistry()
    assert registry.counter("x_total") is registry.counter("x_total")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x_total")
    assert registry.get("x_total").kind == "counter"
    assert registry.get("nope") is None


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("moves_total", "moves").inc(7, engine="relaxed")
    registry.counter("moves_total").inc(3, engine="event")
    registry.gauge("objective_f", "final F").set(12.5)
    hist = registry.histogram("gain", "round gains", buckets=[1.0, 10.0])
    hist.observe(0.5, engine="relaxed")
    hist.observe(5.0, engine="relaxed")
    return registry


def test_jsonl_round_trip(tmp_path):
    registry = _populated_registry()
    path = tmp_path / "metrics.jsonl"
    registry.write_jsonl(path)
    samples = MetricsRegistry.parse_jsonl(path.read_text())
    assert samples == registry.collect()
    by_metric = {}
    for sample in samples:
        by_metric.setdefault(sample["metric"], []).append(sample)
    assert sum(s["value"] for s in by_metric["moves_total"]) == 10
    assert by_metric["gain"][0]["count"] == 2


def test_prometheus_round_trip(tmp_path):
    registry = _populated_registry()
    path = tmp_path / "metrics.prom"
    registry.write_prometheus(path)
    text = path.read_text()
    assert "# HELP moves_total moves" in text
    assert "# TYPE gain histogram" in text
    samples = parse_prometheus(text)
    by = {
        (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
        for s in samples
    }
    assert by[("moves_total", (("engine", "relaxed"),))] == 7
    assert by[("objective_f", ())] == 12.5
    assert by[("gain_count", (("engine", "relaxed"),))] == 2
    assert by[("gain_sum", (("engine", "relaxed"),))] == 5.5
    # Cumulative bucket series, including the implicit +Inf.
    assert by[("gain_bucket", (("engine", "relaxed"), ("le", "1")))] == 1
    assert by[("gain_bucket", (("engine", "relaxed"), ("le", "10")))] == 2
    assert by[("gain_bucket", (("engine", "relaxed"), ("le", "+Inf")))] == 2


def test_empty_registry_exports_empty():
    registry = MetricsRegistry()
    assert registry.to_jsonl() == ""
    assert registry.to_prometheus() == ""
    assert registry.collect() == []
