"""Metrics registry: kinds, labels, and both exporter round trips."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)


def test_counter_accumulates_per_label_set():
    counter = Counter("moves_total")
    counter.inc(3, engine="relaxed")
    counter.inc(2, engine="relaxed")
    counter.inc(5, engine="colored")
    assert counter.value(engine="relaxed") == 5
    assert counter.value(engine="colored") == 5
    assert counter.value(engine="missing") == 0
    assert counter.total() == 10


def test_counter_rejects_negative_increment():
    counter = Counter("c_total")
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)


def test_gauge_last_write_wins():
    gauge = Gauge("objective")
    gauge.set(1.0)
    gauge.set(2.5)
    assert gauge.value() == 2.5
    assert gauge.value(run="other") is None


def test_histogram_summary_and_cumulative_buckets():
    hist = Histogram("sizes", buckets=[1.0, 10.0, 100.0])
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.count() == 4
    assert hist.sum() == 555.5
    (sample,) = hist.samples()
    assert sample["min"] == 0.5
    assert sample["max"] == 500.0
    # Cumulative: <=1 catches 0.5; <=10 adds 5.0; <=100 adds 50.0; the
    # 500.0 observation lives only in the implicit +Inf bucket.
    assert sample["buckets"] == {"1": 1, "10": 2, "100": 3}


def test_invalid_names_rejected():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("0starts-with-digit")
    counter = Counter("ok_total")
    with pytest.raises(ValueError, match="invalid label name"):
        counter.inc(1, **{"bad-label": "x"})


def test_registry_lazy_creation_and_kind_conflict():
    registry = MetricsRegistry()
    assert registry.counter("x_total") is registry.counter("x_total")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x_total")
    assert registry.get("x_total").kind == "counter"
    assert registry.get("nope") is None


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("moves_total", "moves").inc(7, engine="relaxed")
    registry.counter("moves_total").inc(3, engine="event")
    registry.gauge("objective_f", "final F").set(12.5)
    hist = registry.histogram("gain", "round gains", buckets=[1.0, 10.0])
    hist.observe(0.5, engine="relaxed")
    hist.observe(5.0, engine="relaxed")
    return registry


def test_jsonl_round_trip(tmp_path):
    registry = _populated_registry()
    path = tmp_path / "metrics.jsonl"
    registry.write_jsonl(path)
    samples = MetricsRegistry.parse_jsonl(path.read_text())
    assert samples == registry.collect()
    by_metric = {}
    for sample in samples:
        by_metric.setdefault(sample["metric"], []).append(sample)
    assert sum(s["value"] for s in by_metric["moves_total"]) == 10
    assert by_metric["gain"][0]["count"] == 2


def test_prometheus_round_trip(tmp_path):
    registry = _populated_registry()
    path = tmp_path / "metrics.prom"
    registry.write_prometheus(path)
    text = path.read_text()
    assert "# HELP moves_total moves" in text
    assert "# TYPE gain histogram" in text
    samples = parse_prometheus(text)
    by = {
        (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
        for s in samples
    }
    assert by[("moves_total", (("engine", "relaxed"),))] == 7
    assert by[("objective_f", ())] == 12.5
    assert by[("gain_count", (("engine", "relaxed"),))] == 2
    assert by[("gain_sum", (("engine", "relaxed"),))] == 5.5
    # Cumulative bucket series, including the implicit +Inf.
    assert by[("gain_bucket", (("engine", "relaxed"), ("le", "1")))] == 1
    assert by[("gain_bucket", (("engine", "relaxed"), ("le", "10")))] == 2
    assert by[("gain_bucket", (("engine", "relaxed"), ("le", "+Inf")))] == 2


def test_empty_registry_exports_empty():
    registry = MetricsRegistry()
    assert registry.to_jsonl() == ""
    assert registry.to_prometheus() == ""
    assert registry.collect() == []


def test_histogram_quantile_interpolates_within_buckets():
    hist = Histogram("lat", buckets=[1.0, 10.0, 100.0])
    for value in (2.0, 4.0, 6.0, 8.0):  # all inside the (1, 10] bucket
        hist.observe(value)
    # All mass in one bucket, edges clamped to observed [2, 8]: the p50
    # interpolation lands at the midpoint of the observed range.
    assert hist.quantile(0.5) == pytest.approx(5.0)
    assert hist.quantile(0.0) == 2.0
    assert hist.quantile(1.0) == 8.0


def test_histogram_quantile_spans_buckets_and_overflow():
    hist = Histogram("lat", buckets=[10.0, 100.0])
    for value in (1.0, 5.0, 50.0, 500.0):
        hist.observe(value)
    # p25 rank sits in the first bucket, p95 in the +Inf overflow, which
    # resolves to the observed max.
    assert 1.0 <= hist.quantile(0.25) <= 10.0
    assert hist.quantile(0.95) == 500.0
    assert hist.quantile(0.99) == 500.0


def test_histogram_quantile_edge_cases():
    hist = Histogram("lat", buckets=[1.0, 10.0])
    assert hist.quantile(0.5) is None  # empty series
    hist.observe(3.0)
    # A single observation returns itself at every quantile.
    assert hist.quantile(0.0) == 3.0
    assert hist.quantile(0.5) == 3.0
    assert hist.quantile(1.0) == 3.0
    assert hist.quantile(0.5, engine="other") is None  # unseen labels
    with pytest.raises(ValueError, match="quantile"):
        hist.quantile(1.5)


def test_prometheus_escaped_label_values_round_trip():
    registry = MetricsRegistry()
    nasty = 'say "hi", {a}=b\\c\nnewline'
    registry.counter("weird_total").inc(4, site=nasty, plain="ok")
    text = registry.to_prometheus()
    # The emitted line escapes backslash, quote, and newline.
    assert '\\"hi\\"' in text
    assert "\\\\c" in text
    assert "\\n" in text
    (sample,) = [s for s in parse_prometheus(text) if s["name"] == "weird_total"]
    assert sample["labels"] == {"site": nasty, "plain": "ok"}
    assert sample["value"] == 4


def test_prometheus_histogram_bucket_lines_round_trip_with_labels():
    registry = MetricsRegistry()
    hist = registry.histogram("probe", buckets=[1.0, 2.5, 5.0])
    for value in (0.5, 2.0, 2.0, 4.0, 9.0):
        hist.observe(value, kernel="par", site='a,"b"')
    samples = parse_prometheus(registry.to_prometheus())
    buckets = {
        s["labels"]["le"]: s["value"]
        for s in samples
        if s["name"] == "probe_bucket"
    }
    assert buckets == {"1": 1, "2.5": 3, "5": 4, "+Inf": 5}
    for sample in samples:
        if sample["name"].startswith("probe"):
            assert sample["labels"]["kernel"] == "par"
            assert sample["labels"]["site"] == 'a,"b"'
    (count,) = [s for s in samples if s["name"] == "probe_count"]
    assert count["value"] == 5


def test_parse_prometheus_rejects_malformed_labels():
    with pytest.raises(ValueError, match="unterminated"):
        parse_prometheus('bad{site="open 1')
    with pytest.raises(ValueError, match="unquoted"):
        parse_prometheus("bad{site=open} 1")


# ----------------------------------------------------------------------
# Quantile edge cases, offline sample quantiles, exposition round trips
# ----------------------------------------------------------------------

def test_quantile_edges_with_all_mass_in_overflow():
    # Every observation above the top bound: only the implicit +Inf
    # bucket holds mass, yet q=0/q=1 still return the exact extremes.
    hist = Histogram("lat", buckets=[1.0, 10.0])
    for value in (50.0, 75.0, 200.0):
        hist.observe(value)
    assert hist.quantile(0.0) == 50.0
    assert hist.quantile(1.0) == 200.0
    assert 50.0 <= hist.quantile(0.5) <= 200.0


def test_quantile_single_bucket_histogram():
    hist = Histogram("lat", buckets=[10.0])
    for value in (2.0, 4.0, 6.0):
        hist.observe(value)
    assert hist.quantile(0.0) == 2.0
    assert hist.quantile(1.0) == 6.0
    assert 2.0 <= hist.quantile(0.5) <= 6.0


def test_sample_quantile_matches_histogram_quantile():
    from repro.obs.metrics import sample_quantile

    hist = Histogram("lat", buckets=[1.0, 10.0, 100.0])
    values = [0.5, 2.0, 3.0, 7.0, 20.0, 40.0, 90.0, 400.0]
    for value in values:
        hist.observe(value, op="query")
    (sample,) = hist.samples()
    for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0):
        assert sample_quantile(sample, q) == pytest.approx(
            hist.quantile(q, op="query")
        )


def test_sample_quantile_empty_and_validation():
    from repro.obs.metrics import sample_quantile

    empty = {"count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {}}
    assert sample_quantile(empty, 0.5) is None
    with pytest.raises(ValueError, match="quantile"):
        sample_quantile(empty, -0.1)


def test_sample_quantile_survives_jsonl_round_trip():
    from repro.obs.metrics import sample_quantile

    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=[0.001, 0.01, 0.1])
    for value in (0.0005, 0.002, 0.004, 0.05):
        hist.observe(value, op="commit")
    (parsed,) = MetricsRegistry.parse_jsonl(registry.to_jsonl())
    assert sample_quantile(parsed, 0.95) == pytest.approx(
        hist.quantile(0.95, op="commit")
    )


def test_help_text_escaping_round_trip():
    from repro.obs.metrics import parse_prometheus_headers

    registry = MetricsRegistry()
    weird = "line one\nline two \\ backslash"
    registry.counter("c_total", weird).inc(1)
    registry.gauge("g", "plain help").set(2.0)
    text = registry.to_prometheus()
    # The exposition stays single-line per comment.
    for line in text.splitlines():
        assert line.count("# HELP") <= 1
    headers = parse_prometheus_headers(text)
    assert headers["c_total"] == {"help": weird, "type": "counter"}
    assert headers["g"] == {"help": "plain help", "type": "gauge"}


def test_parse_headers_ignores_short_comment_lines():
    from repro.obs.metrics import parse_prometheus_headers

    headers = parse_prometheus_headers("# HELP incomplete\n# hello\nx 1\n")
    assert headers == {}


def test_samples_from_prometheus_round_trip():
    from repro.obs.metrics import samples_from_prometheus

    registry = MetricsRegistry()
    registry.counter("moves_total", "moves").inc(7, engine="relaxed")
    registry.gauge("objective", "F").set(54.4)
    hist = registry.histogram("lat", "latency", buckets=[0.001, 0.01, 0.1])
    for value in (0.0005, 0.002, 0.004, 0.05):
        hist.observe(value, op="commit")
    reconstructed = {
        (s["metric"], tuple(sorted(s["labels"].items()))): s
        for s in samples_from_prometheus(registry.to_prometheus())
    }
    counter = reconstructed[("moves_total", (("engine", "relaxed"),))]
    assert counter["type"] == "counter" and counter["value"] == 7
    gauge = reconstructed[("objective", ())]
    assert gauge["type"] == "gauge" and gauge["value"] == pytest.approx(54.4)
    histo = reconstructed[("lat", (("op", "commit"),))]
    assert histo["type"] == "histogram"
    assert histo["count"] == 4
    assert histo["sum"] == pytest.approx(0.0565)
    assert histo["buckets"] == {"0.001": 1, "0.01": 3, "0.1": 4}
    # min/max are approximations (the format drops them), but they must
    # bracket the occupied buckets so sample_quantile stays in range.
    from repro.obs.metrics import sample_quantile

    assert histo["min"] <= 0.001
    assert histo["max"] == pytest.approx(0.1)
    assert 0.0 <= sample_quantile(histo, 0.5) <= 0.1


def test_prometheus_fuzzish_label_round_trip():
    """Property-style sweep: nasty label values survive the exposition."""
    import itertools

    fragments = ['"', "\\", "\n", ",", "{", "}", "=", " ", "a", "é"]
    cases = ["".join(combo) for combo in itertools.permutations(fragments, 3)]
    # Keep runtime sane: a deterministic striding sample of permutations.
    for i, value in enumerate(cases[::17]):
        registry = MetricsRegistry()
        registry.counter("fuzz_total").inc(i + 1, site=value, idx=str(i))
        parsed = [
            s for s in parse_prometheus(registry.to_prometheus())
            if s["name"] == "fuzz_total"
        ]
        (sample,) = parsed
        assert sample["labels"]["site"] == value, repr(value)
        assert sample["value"] == i + 1
