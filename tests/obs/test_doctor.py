"""Run doctor: facts, series, decomposition, and verdicts on canned runs."""

import numpy as np
import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.core.objective import lambdacc_objective
from repro.graphs.karate import karate_club_graph
from repro.obs.doctor import (
    DoctorInputs,
    cluster_decomposition,
    collect_facts,
    diagnose,
    dynamic_facts,
    stats_facts,
    trace_series,
)
from repro.obs.instrument import Instrumentation

pytestmark = pytest.mark.obs

RESOLUTION = 0.05


@pytest.fixture(scope="module")
def karate_run():
    """One instrumented healthy clustering of the karate club."""
    instr = Instrumentation()
    config = ClusteringConfig(resolution=RESOLUTION, seed=3)
    result = cluster(karate_club_graph(), config, instrumentation=instr)
    return result, instr


def round_span(span_id, parent, iteration, moves, frontier, gain=0.0):
    return {
        "type": "span", "name": "round", "id": span_id, "parent": parent,
        "start": float(iteration), "wall_seconds": 0.001,
        "attrs": {"engine": "relaxed", "iteration": iteration,
                  "frontier": frontier, "moves": moves, "gain": gain},
    }


def phase_span(span_id, phase="best-moves", level=0):
    return {
        "type": "span", "name": "phase", "id": span_id, "parent": None,
        "start": 0.0, "wall_seconds": 0.01,
        "attrs": {"phase": phase, "level": level},
    }


def stalled_trace(rounds=6):
    """A phase that churns ~the same moves every round: never converging."""
    records = [phase_span("p0")]
    for i in range(rounds):
        records.append(round_span(f"r{i}", "p0", i, moves=20, frontier=30,
                                  gain=0.01))
    return records


def converging_trace(rounds=6):
    records = [phase_span("p0")]
    moves = 64
    for i in range(rounds):
        records.append(round_span(f"r{i}", "p0", i, moves=moves,
                                  frontier=2 * moves, gain=1.0 / (i + 1)))
        moves //= 4
    return records


class TestHealthyRun:
    def test_all_ok_and_exit_zero(self, karate_run):
        result, instr = karate_run
        decomposition = cluster_decomposition(
            karate_club_graph(), result.assignments, RESOLUTION
        )
        doctor = diagnose(DoctorInputs(
            stats=result.stats_dict(),
            trace=list(instr.tracer.records),
            metric_samples=instr.metrics.collect(),
            decomposition=decomposition,
            iteration_cap=10,
        ))
        assert doctor.report.exit_code == 0
        assert doctor.report.count("crit") == 0
        assert doctor.report.count("warn") == 0
        # The core convergence facts must all have been observable.
        for fact in ("run.rounds", "run.f_objective",
                     "convergence.stall_levels",
                     "quality.singleton_fraction"):
            assert fact in doctor.facts

    def test_uninstrumented_run_skips_instead_of_failing(self, karate_run):
        result, _ = karate_run
        doctor = diagnose(DoctorInputs(stats=result.stats_dict()))
        assert doctor.report.exit_code == 0
        assert doctor.report.count("crit") == 0
        assert any("unavailable" in s for s in doctor.report.skipped)


class TestStallDetection:
    def test_stalled_trace_trips_convergence_stall(self):
        doctor = diagnose(DoctorInputs(trace=stalled_trace()))
        assert doctor.facts["convergence.stall_levels"] >= 1
        by_rule = {f.rule: f.severity for f in doctor.report.findings}
        assert by_rule["convergence-stall"] == "crit"
        assert doctor.report.exit_code == 1

    def test_converging_trace_is_clean(self):
        doctor = diagnose(DoctorInputs(trace=converging_trace()))
        assert doctor.facts["convergence.stalled_phases"] == 0
        by_rule = {f.rule: f.severity for f in doctor.report.findings}
        assert by_rule["convergence-stall"] == "ok"

    def test_short_phases_never_count_as_stalled(self):
        records = [phase_span("p0")]
        for i in range(3):  # under STALL_MIN_ROUNDS
            records.append(round_span(f"r{i}", "p0", i, moves=20, frontier=30))
        series = trace_series(records)
        assert series["phases"][0]["stalled"] is False

    def test_stats_based_cap_detection(self):
        stats = {
            "levels": [
                {"iterations": 10, "refine_iterations": 2,
                 "frontier_sizes": [30, 28, 29, 30, 28, 30, 29, 28, 30, 29]},
                {"iterations": 3, "refine_iterations": 10,
                 "frontier_sizes": [20, 4, 1]},
            ],
        }
        facts = stats_facts(stats, iteration_cap=10)
        assert facts["convergence.capped_levels"] == 1
        assert facts["convergence.refine_capped_levels"] == 1
        assert facts["convergence.stall_levels"] == 1


class TestRegistryRegression:
    def make_record(self, f, wall=1.0, run_id="r"):
        return {
            "run_id": run_id,
            "workload": {"graph": "karate", "engine": "relaxed"},
            "metrics": {"f_objective": f, "modularity": 0.4,
                        "wall_seconds": wall, "sim_time_seconds": wall},
            "info": {},
        }

    def test_injected_objective_regression_is_crit(self):
        history = [self.make_record(100.0, run_id=f"h{i}") for i in range(5)]
        doctor = diagnose(DoctorInputs(
            record=self.make_record(80.0, run_id="bad"),
            history=history,
        ))
        by_rule = {f.rule: f.severity for f in doctor.report.findings}
        assert by_rule["objective-regression"] == "crit"
        assert doctor.report.exit_code == 1

    def test_matching_objective_passes(self):
        history = [self.make_record(100.0, run_id=f"h{i}") for i in range(5)]
        doctor = diagnose(DoctorInputs(
            record=self.make_record(100.0, run_id="same"),
            history=history,
        ))
        by_rule = {f.rule: f.severity for f in doctor.report.findings}
        assert by_rule["objective-regression"] == "ok"
        assert doctor.report.exit_code == 0


class TestDecomposition:
    def test_per_cluster_f_sums_to_objective(self, karate_run):
        result, _ = karate_run
        graph = karate_club_graph()
        decomposition = cluster_decomposition(
            graph, result.assignments, RESOLUTION
        )
        expected = lambdacc_objective(graph, result.assignments, RESOLUTION)
        assert decomposition["f_total"] == pytest.approx(expected, rel=1e-12)
        assert decomposition["per_cluster_f"].sum() == pytest.approx(
            expected, rel=1e-12
        )

    def test_all_singletons(self):
        graph = karate_club_graph()
        labels = np.arange(graph.num_vertices)
        decomposition = cluster_decomposition(graph, labels, RESOLUTION)
        assert decomposition["singleton_fraction"] == 1.0
        assert decomposition["num_clusters"] == graph.num_vertices
        # Singletons have no intra weight and no pair penalty.
        assert decomposition["f_total"] == pytest.approx(
            lambdacc_objective(graph, labels, RESOLUTION)
        )

    def test_size_histogram_covers_every_cluster(self, karate_run):
        result, _ = karate_run
        decomposition = cluster_decomposition(
            karate_club_graph(), result.assignments, RESOLUTION
        )
        total = sum(b["count"] for b in decomposition["size_histogram"])
        assert total == decomposition["num_clusters"]

    def test_worst_clusters_sorted_ascending(self, karate_run):
        result, _ = karate_run
        decomposition = cluster_decomposition(
            karate_club_graph(), result.assignments, RESOLUTION, top_k=4
        )
        fs = [row["f"] for row in decomposition["worst"]]
        assert fs == sorted(fs)

    def test_singleton_warn_rule_fires(self):
        graph = karate_club_graph()
        labels = np.arange(graph.num_vertices)
        decomposition = cluster_decomposition(graph, labels, RESOLUTION)
        doctor = diagnose(DoctorInputs(decomposition=decomposition))
        by_rule = {f.rule: f.severity for f in doctor.report.findings}
        assert by_rule["singleton-fraction"] == "warn"


class TestFacts:
    def test_dynamic_facts_mapping(self):
        stats = {
            "batches_applied": 3, "moves_applied": 7, "escalations": 1,
            "queries_answered": 12, "last_drift": 2e-7,
            "updates_since_save": 5, "f_objective": 75.0,
            "num_clusters": 4, "updates_applied": {"insert": 5, "delete": 2},
        }
        facts = dynamic_facts(stats)
        assert facts["dynamic.batches"] == 3
        assert facts["dynamic.staleness"] == 5
        assert facts["dynamic.updates"] == 7
        assert facts["run.f_objective"] == 75.0

    def test_trace_stall_merges_with_stats_stall(self):
        stats = {
            "levels": [{"iterations": 10, "refine_iterations": 0,
                        "frontier_sizes": [10] * 10}] * 2,
        }
        inputs = DoctorInputs(
            stats=stats, trace=stalled_trace(), iteration_cap=10
        )
        facts = collect_facts(inputs)
        # stats sees 2 stalled levels, the trace 1 — max wins.
        assert facts["convergence.stall_levels"] == 2

    def test_worker_utilization_series(self):
        records = [
            {"type": "worker", "worker": 0, "start": 0.0, "end": 1.0,
             "label": "bm", "items": 10, "wait": 0.0},
            {"type": "worker", "worker": 1, "start": 0.0, "end": 0.5,
             "label": "bm", "items": 5, "wait": 0.5},
        ]
        series = trace_series(records)
        lanes = {w["worker"]: w for w in series["workers"]}
        assert lanes[0]["utilization"] == pytest.approx(1.0)
        assert lanes[1]["utilization"] == pytest.approx(0.5)
