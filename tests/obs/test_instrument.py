"""Instrumentation threading: engines, driver, resilience, no-op path."""

import numpy as np
import pytest

from repro.core.api import cluster
from repro.core.config import ClusteringConfig
from repro.core.engines import ENGINES
from repro.obs.instrument import (
    M_COMPRESSION,
    M_FRONTIER,
    M_MOVES,
    M_RESILIENCE_EVENTS,
    M_ROUND_GAIN,
    M_ROUNDS,
    NULL_INSTRUMENTATION,
    Instrumentation,
    instr_of,
)
from repro.obs.schema import validate_trace_records
from repro.obs.tracer import NULL_SPAN, span_tree
from repro.parallel.scheduler import SimulatedScheduler
from repro.resilience import ResiliencePolicy, RunBudget


def test_instr_of_defaults_to_disabled_null():
    assert instr_of(None) is NULL_INSTRUMENTATION
    assert instr_of(SimulatedScheduler(num_workers=4)) is NULL_INSTRUMENTATION
    assert not NULL_INSTRUMENTATION.enabled


def test_disabled_instrumentation_records_nothing():
    instr = Instrumentation(enabled=False)
    assert instr.span("run") is NULL_SPAN
    instr.event("e")
    instr.count(M_MOVES, 5, engine="relaxed")
    instr.observe(M_ROUND_GAIN, 1.0)
    instr.set_gauge("g", 1.0)
    instr.record_round("relaxed", 10, 5, 1.0)
    assert instr.tracer.records == []
    assert instr.metrics.collect() == []


def test_scheduler_fork_propagates_instrumentation():
    instr = Instrumentation()
    sched = SimulatedScheduler(num_workers=4, instr=instr)
    assert instr_of(sched.fork()) is instr


def test_disabled_run_identical_to_uninstrumented(karate):
    config = ClusteringConfig(resolution=0.05, seed=3)
    plain = cluster(karate, config)
    shadowed = cluster(
        karate, config, instrumentation=Instrumentation(enabled=False)
    )
    assert np.array_equal(plain.assignments, shadowed.assignments)
    assert plain.sim_time() == shadowed.sim_time()


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_every_engine_emits_moves_and_gains(karate, engine):
    instr = Instrumentation()
    config = ClusteringConfig(resolution=0.05, seed=3)
    result = cluster(karate, config, instrumentation=instr, engine=engine)
    assert result.num_clusters > 1

    moves = instr.metrics.get(M_MOVES)
    rounds = instr.metrics.get(M_ROUNDS)
    gains = instr.metrics.get(M_ROUND_GAIN)
    assert moves.value(engine=engine) > 0
    assert moves.value(engine=engine) == result.stats.total_moves
    assert rounds.value(engine=engine) == result.rounds
    assert gains.sum(engine=engine) > 0
    assert instr.metrics.get(M_FRONTIER).count(engine=engine) == result.rounds
    assert instr.metrics.get(M_COMPRESSION).total_count() >= 1

    assert validate_trace_records(instr.tracer.records) == []


@pytest.mark.parametrize("engine", ["sequential", "relaxed"])
def test_trace_agrees_with_result_stats(karate, engine):
    """The trace's round spans and ClusterResult.stats tell one story."""
    instr = Instrumentation()
    config = ClusteringConfig(resolution=0.05, seed=3)
    result = cluster(karate, config, instrumentation=instr, engine=engine)

    (root,) = span_tree(instr.tracer.records)
    assert root.name == "run"
    rounds = [n for n in root.walk() if n.name == "round"]
    levels = [n for n in root.walk() if n.name == "level"]
    assert len(rounds) == result.rounds
    assert len(levels) == result.num_levels
    assert (
        sum(n.record["attrs"]["moves"] for n in rounds)
        == result.stats.total_moves
    )
    assert root.record["attrs"]["rounds"] == result.rounds
    assert root.record["attrs"]["moves"] == result.stats.total_moves
    assert root.record["attrs"]["clusters"] == result.num_clusters
    assert root.record["attrs"]["objective"] == pytest.approx(result.objective)

    # Per-level frontier history matches the level's round spans.
    for level_node, level_stats in zip(levels, result.stats.levels):
        level_rounds = [
            n for n in level_node.walk()
            if n.name == "round"
        ]
        assert [
            n.record["attrs"]["frontier"] for n in level_rounds
        ] == [int(x) for x in level_stats.frontier_sizes]
        assert level_stats.wall_seconds > 0.0

    summary = result.stats_dict()
    assert summary["rounds"] == result.rounds
    assert summary["levels_wall_seconds"] > 0.0
    assert len(summary["levels"]) == result.num_levels


def test_phase_spans_cover_the_taxonomy(karate):
    instr = Instrumentation()
    config = ClusteringConfig(resolution=0.05, seed=3)
    cluster(karate, config, instrumentation=instr)
    (root,) = span_tree(instr.tracer.records)
    phases = {
        n.record["attrs"]["phase"]
        for n in root.walk()
        if n.name == "phase"
    }
    assert {"best-moves", "compress", "flatten", "refine"} <= phases


def test_resilience_events_land_in_trace_and_metrics(karate):
    instr = Instrumentation()
    config = ClusteringConfig(resolution=0.05, seed=3)
    policy = ResiliencePolicy(budget=RunBudget(max_rounds=1))
    result = cluster(
        karate, config, resilience=policy, instrumentation=instr
    )
    assert result.degraded
    assert result.failure_log

    events = [
        r for r in instr.tracer.event_records() if r["name"] == "resilience"
    ]
    kinds = {e["attrs"]["kind"] for e in events}
    assert "budget-stop" in kinds
    # Every failure_log line has a matching trace event message.
    messages = {e["attrs"]["message"] for e in events}
    assert set(result.failure_log) <= messages
    counter = instr.metrics.get(M_RESILIENCE_EVENTS)
    assert counter.value(kind="budget-stop") >= 1
    assert validate_trace_records(instr.tracer.records) == []
