"""End-to-end observability smoke (the ``obs``-marked CI job).

Runs one traced clustering through the real CLI, then validates the
trace JSONL against the schema and parses the metrics back — the exact
gate ``make smoke-obs`` runs.
"""

import pytest

from repro.cli import main as cli_main
from repro.obs.bench import main as bench_main
from repro.obs.metrics import parse_prometheus
from repro.obs.schema import validate_trace_file
from repro.obs.tracer import Tracer, span_tree

pytestmark = pytest.mark.obs


def test_traced_cli_clustering_smoke(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    metrics = tmp_path / "run.prom"
    assert cli_main(
        [
            "cluster", "--karate", "--resolution", "0.05", "--seed", "3",
            "--trace", str(trace), "--metrics", str(metrics), "--profile",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "per-level profile:" in out
    assert "regions by simulated work:" in out
    assert "round distributions (bucket-interpolated):" in out

    # The trace validates and rebuilds into the run -> level -> phase ->
    # round taxonomy.
    validate_trace_file(trace)
    records = Tracer.parse_jsonl(trace.read_text())
    (root,) = span_tree(records)
    assert root.name == "run"
    names = {n.name for n in root.walk()}
    assert names == {"run", "level", "phase", "round"}

    # Metrics parse back with nonzero moves and a final objective.
    samples = parse_prometheus(metrics.read_text())
    by_name = {}
    for sample in samples:
        by_name.setdefault(sample["name"], []).append(sample["value"])
    assert sum(by_name["repro_moves_total"]) > 0
    assert by_name["repro_objective_f"][0] > 0

    # The bench CLI's validate-trace gate agrees.
    assert bench_main(["validate-trace", str(trace)]) == 0
