"""A guided mini-tour of the paper's main experimental claims.

Run with::

    python examples/paper_tour.py

Reruns a pocket-sized version of each headline experiment and prints
PASS/DEVIATION per claim — a quick way to see the reproduction working
end to end without the full benchmark suite (which lives in
``benchmarks/``; see EXPERIMENTS.md for the full numbers).
"""

from repro.baselines import kwikcluster, tectonic_cluster
from repro.core.api import correlation_clustering, modularity_clustering
from repro.core.config import Mode
from repro.core.objective import cc_objective
from repro.eval import average_precision_recall
from repro.generators import load_snap_surrogate


def check(label: str, condition: bool, detail: str) -> None:
    verdict = "PASS     " if condition else "DEVIATION"
    print(f"[{verdict}] {label}: {detail}")


def main() -> None:
    amazon = load_snap_surrogate("amazon", seed=0, scale=0.5)
    orkut = load_snap_surrogate("orkut", seed=0, scale=0.3)
    graph = amazon.graph
    communities = amazon.top_communities(5000)
    print(f"workload: amazon surrogate n={graph.num_vertices} "
          f"m={graph.num_edges}\n")

    # Claim 1 (Section 4.1): async beats sync on objective; sync can go
    # negative at high resolution.
    sync = correlation_clustering(graph, resolution=0.85, mode=Mode.SYNC, seed=1)
    async_ = correlation_clustering(graph, resolution=0.85, mode=Mode.ASYNC, seed=1)
    check(
        "async > sync objective",
        async_.objective > sync.objective and async_.objective > 0,
        f"async={async_.objective:.0f} vs sync={sync.objective:.0f}",
    )

    # Claim 2 (Section 4.2): PAR-CC ~ SEQ-CC objective with speedup.
    par = correlation_clustering(graph, resolution=0.1, seed=1)
    seq = correlation_clustering(graph, resolution=0.1, parallel=False, seed=1)
    speedup = seq.sim_time(1) / par.sim_time(60)
    check(
        "parallel speedup at objective parity",
        speedup > 2 and abs(par.objective / seq.objective - 1) < 0.1,
        f"simulated speedup {speedup:.1f}x, objective ratio "
        f"{par.objective / seq.objective:.3f}",
    )

    # Claim 3 (Section 4.3): CC beats modularity on ground truth.
    cc_pr = average_precision_recall(par.assignments, communities)
    mod = modularity_clustering(graph, gamma=1.0, seed=1)
    mod_pr = average_precision_recall(mod.assignments, communities)
    check(
        "PAR-CC >= PAR-MOD on ground truth (F1)",
        cc_pr.f1 >= mod_pr.f1 - 0.02,
        f"CC F1={cc_pr.f1:.3f} vs MOD F1={mod_pr.f1:.3f}",
    )

    # Claim 4 (Appendix C.1): pivots fast but poor.
    pivot_labels = kwikcluster(graph, seed=1)
    pivot_obj = cc_objective(graph, pivot_labels, 0.5)
    ours = correlation_clustering(graph, resolution=0.5, seed=1)
    check(
        "KwikCluster loses on CC objective",
        pivot_obj < ours.objective,
        f"pivot={pivot_obj:.0f} vs PAR-CC={ours.objective:.0f}",
    )

    # Claim 5 (Figure 10): Tectonic degrades on the denser graph.
    tect_amazon = average_precision_recall(
        tectonic_cluster(graph, theta=0.15), communities
    )
    tect_orkut = average_precision_recall(
        tectonic_cluster(orkut.graph, theta=0.15), orkut.top_communities(5000)
    )
    cc_orkut = average_precision_recall(
        correlation_clustering(orkut.graph, resolution=0.1, seed=1).assignments,
        orkut.top_communities(5000),
    )
    check(
        "Tectonic degrades on denser graph while PAR-CC holds",
        cc_orkut.f1 > tect_orkut.f1,
        f"orkut: PAR-CC F1={cc_orkut.f1:.3f} vs Tectonic F1={tect_orkut.f1:.3f} "
        f"(amazon Tectonic F1={tect_amazon.f1:.3f})",
    )

    # Claim 6 (Figure 7): parallel scaling with a hyper-threading knee.
    times = {p: par.sim_time(p) for p in (1, 30, 60)}
    check(
        "thread scaling with SMT knee",
        times[1] > times[30] > times[60]
        and (times[1] / times[30]) > 3 * (times[30] / times[60]),
        f"speedup@30={times[1] / times[30]:.1f}x, @60={times[1] / times[60]:.1f}x",
    )


if __name__ == "__main__":
    main()
