"""Scalability demo on rMAT graphs (the Figure 6/7 pipeline, small scale).

Run with::

    python examples/scaling_rmat.py

Generates rMAT graphs (a=0.5, b=c=0.1, d=0.3 — the paper's parameters)
across sizes and density regimes, runs PAR-CC on each, and prints both
the edge-scaling series (simulated time vs m) and the thread-scaling
series (simulated time vs worker count on the largest instance).
"""

from repro import correlation_clustering
from repro.bench.harness import ExperimentTable
from repro.generators.rmat import rmat_graph


def main() -> None:
    edge_table = ExperimentTable(
        "PAR-CC over rMAT sizes (lambda = 0.01)",
        ["scale", "n", "m", "sim_time(60)", "time/edge (ns)"],
    )
    results = {}
    for scale in (10, 11, 12, 13):
        graph = rmat_graph(scale, 20 * 2**scale, seed=scale)
        result = correlation_clustering(graph, resolution=0.01, seed=1)
        results[scale] = (graph, result)
        sim = result.sim_time(60)
        edge_table.add_row(
            scale,
            graph.num_vertices,
            graph.num_edges,
            sim,
            1e9 * sim / max(graph.num_edges, 1),
        )
    edge_table.emit()
    print("Expected shape (Figure 6): near-linear scaling in m (the\n"
          "time-per-edge column stays roughly flat).\n")

    graph, result = results[13]
    thread_table = ExperimentTable(
        f"PAR-CC thread scaling on rMAT scale-13 (n={graph.num_vertices})",
        ["workers", "sim_time", "self-relative speedup"],
    )
    base = result.sim_time(1)
    for workers in (1, 2, 4, 8, 15, 30, 60):
        t = result.sim_time(workers)
        thread_table.add_row(workers, t, base / t)
    thread_table.emit()
    print("Expected shape (Figure 7): near-linear speedup up to the 30\n"
          "physical cores, a shallower hyper-threading tail to 60.")


if __name__ == "__main__":
    main()
