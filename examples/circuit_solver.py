"""Evaluate a monotone circuit by clustering (the Appendix D reduction).

Run with::

    python examples/circuit_solver.py

Builds the paper's P-completeness gadget graph for a small monotone
circuit and shows that running Louvain best-moves to convergence solves
the circuit: every gate vertex ends up clustered with the `t` or `f`
terminal according to its truth value.
"""

import itertools

from repro.pcomplete import (
    Gate,
    GateKind,
    MonotoneCircuit,
    reduce_circuit,
    solve_circuit_via_louvain,
)
from repro.pcomplete.solver import louvain_clustering_of_reduction


def main() -> None:
    # (x0 AND x1) OR (x2 AND x3)
    circuit = MonotoneCircuit(
        4,
        [
            Gate(GateKind.AND, 0, 1),
            Gate(GateKind.AND, 2, 3),
            Gate(GateKind.OR, 4, 5),
        ],
    )
    print("circuit: (x0 AND x1) OR (x2 AND x3)")
    print(f"{'x0':>5} {'x1':>5} {'x2':>5} {'x3':>5} | direct | via Louvain")
    for bits in itertools.product([False, True], repeat=4):
        direct = circuit.output(list(bits))
        clustered = solve_circuit_via_louvain(circuit, list(bits), seed=0)
        marker = "" if direct == clustered else "  <-- MISMATCH"
        row = " ".join(f"{int(b):>5}" for b in bits)
        print(f"{row} | {int(direct):>6} | {int(clustered):>11}{marker}")

    # Peek inside one instance: which cluster did each gate land in?
    bits = [True, True, False, False]
    reduction = reduce_circuit(circuit, bits)
    clusters = louvain_clustering_of_reduction(reduction, seed=0)
    t_cluster = clusters[reduction.t_vertex]
    values = circuit.evaluate(bits)
    print(f"\ninput {bits}: gate placements")
    for index in range(circuit.num_gates):
        vertex = reduction.gate_vertices[index]
        side = "t" if clusters[vertex] == t_cluster else "f"
        print(
            f"gate {index} (value={bool(values[circuit.num_inputs + index])}) "
            f"clustered with '{side}'"
        )


if __name__ == "__main__":
    main()
