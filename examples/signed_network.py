"""Correlation clustering of a signed social network.

Run with::

    python examples/signed_network.py

The LambdaCC objective natively handles negative (dissimilarity) edges —
the setting correlation clustering was invented for (Bansal et al.,
reference [4] of the paper).  This example builds a synthetic signed
network of rival factions with noisy relations and shows PAR-CC
recovering the factions at lambda ~ 0 (pure correlation clustering),
something modularity-based methods cannot express at all.
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.api import correlation_clustering
from repro.eval import adjusted_rand_index
from repro.graphs.builders import graph_from_edges


def signed_factions(num_factions=4, size=30, flip_probability=0.08, seed=0):
    """Factions with friendly intra edges, hostile inter edges, and a
    fraction of relations flipped (noise)."""
    rng = np.random.default_rng(seed)
    n = num_factions * size
    labels = np.repeat(np.arange(num_factions), size)
    edges, weights = [], []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() > 0.15:  # sparse acquaintance
                continue
            friendly = labels[u] == labels[v]
            if rng.random() < flip_probability:
                friendly = not friendly
            edges.append((u, v))
            weights.append(1.0 if friendly else -1.0)
    graph = graph_from_edges(edges, weights=np.asarray(weights), num_vertices=n)
    return graph, labels


def main() -> None:
    table = ExperimentTable(
        "signed-network clustering (PAR-CC, lambda = 0)",
        ["noise", "clusters found", "true factions", "ARI", "objective F"],
    )
    for flip in (0.0, 0.05, 0.15, 0.3):
        graph, labels = signed_factions(flip_probability=flip, seed=1)
        result = correlation_clustering(graph, resolution=0.0, seed=1)
        table.add_row(
            flip,
            result.num_clusters,
            int(labels.max()) + 1,
            adjusted_rand_index(result.assignments, labels),
            result.f_objective,
        )
    table.emit()
    print(
        "Expected shape: perfect faction recovery at low noise, graceful\n"
        "degradation as relations flip — the classic correlation-clustering\n"
        "setting the LambdaCC objective generalizes."
    )


if __name__ == "__main__":
    main()
