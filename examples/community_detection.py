"""Community detection with ground truth: PAR-CC vs PAR-MOD vs baselines.

Run with::

    python examples/community_detection.py [graph-name]

Generates a SNAP-like surrogate graph (default: amazon) with overlapping
ground-truth communities, clusters it with PAR-CC, PAR-MOD, Tectonic, SCD
and KwikCluster, and reports the paper's quality metrics (average
precision/recall against the top communities) plus simulated running
times — a miniature of the paper's Sections 4.2–4.3.
"""

import sys

from repro import correlation_clustering, modularity_clustering
from repro.baselines import kwikcluster, scd_cluster, tectonic_cluster
from repro.bench.harness import ExperimentTable
from repro.core.objective import cc_objective
from repro.eval import average_precision_recall
from repro.generators import load_snap_surrogate


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "amazon"
    part = load_snap_surrogate(name, seed=0)
    graph = part.graph
    communities = part.top_communities(5000)
    print(f"{name}: n={graph.num_vertices:,} m={graph.num_edges:,} "
          f"ground-truth communities={len(communities):,}")

    table = ExperimentTable(
        f"community detection on {name}",
        ["method", "clusters", "precision", "recall", "F1", "cc-objective"],
    )

    def add(label, labels):
        pr = average_precision_recall(labels, communities)
        table.add_row(
            label,
            int(labels.max()) + 1,
            pr.precision,
            pr.recall,
            pr.f1,
            cc_objective(graph, labels, 0.05),
        )

    for lam in (0.03, 0.1):
        result = correlation_clustering(graph, resolution=lam, seed=1)
        add(f"PAR-CC(lambda={lam})", result.assignments)
    result = modularity_clustering(graph, gamma=1.0, seed=1)
    add("PAR-MOD(gamma=1)", result.assignments)
    add("Tectonic(theta=0.15)", tectonic_cluster(graph, theta=0.15))
    add("SCD", scd_cluster(graph, seed=1))
    add("KwikCluster", kwikcluster(graph, seed=1))

    table.emit()
    print(
        "Expected shape (paper Sections 4.2-4.3): PAR-CC dominates the\n"
        "precision/recall trade-off; PAR-MOD is close behind; pivot\n"
        "clustering (KwikCluster) collapses on recall."
    )


if __name__ == "__main__":
    main()
