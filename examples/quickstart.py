"""Quickstart: cluster Zachary's karate club with PAR-CC and PAR-MOD.

Run with::

    python examples/quickstart.py

Demonstrates the two primary entry points, the resolution knob, and the
result record (objective, modularity, simulated parallel time).
"""

from repro import (
    correlation_clustering,
    karate_club_graph,
    modularity_clustering,
)
from repro.eval import adjusted_rand_index
from repro.graphs.karate import karate_club_factions


def main() -> None:
    graph = karate_club_graph()
    print(f"graph: {graph}")
    truth = karate_club_factions()

    print("\n-- correlation clustering (PAR-CC) across resolutions --")
    for lam in (0.01, 0.05, 0.1, 0.5):
        result = correlation_clustering(graph, resolution=lam, seed=1)
        ari = adjusted_rand_index(result.assignments, truth)
        print(
            f"lambda={lam:<5} clusters={result.num_clusters:<3} "
            f"objective={result.objective:>8.2f}  "
            f"ARI-vs-factions={ari:.3f}"
        )

    print("\n-- modularity clustering (PAR-MOD) --")
    result = modularity_clustering(graph, gamma=1.0, seed=1)
    print(result.summary())
    for index, members in enumerate(result.clusters()):
        print(f"cluster {index}: {sorted(members.tolist())}")

    print("\n-- simulated parallel scaling of the last run --")
    for workers in (1, 4, 15, 30, 60):
        print(f"P={workers:<3} simulated time = {result.sim_time(workers):.3e}s")


if __name__ == "__main__":
    main()
