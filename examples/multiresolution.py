"""Multi-resolution analysis via the coarsening hierarchy.

Run with::

    python examples/multiresolution.py

One clustering run yields a whole dendrogram: each coarsening level is a
valid clustering of the original graph, nested within the next.  This
example prints the hierarchy of a planted-partition graph, showing how
cluster counts collapse level by level and which level best matches the
planted structure — without any resolution sweep.
"""

from repro.bench.harness import ExperimentTable
from repro.core.config import ClusteringConfig
from repro.core.hierarchy import cluster_hierarchy
from repro.eval import adjusted_rand_index, average_precision_recall
from repro.generators.planted import planted_partition_graph


def main() -> None:
    part = planted_partition_graph(
        2000, intra_degree=10.0, inter_degree=2.0,
        size_min=15, size_max=60, seed=0,
    )
    print(
        f"planted graph: n={part.graph.num_vertices} m={part.graph.num_edges} "
        f"communities={part.num_communities}"
    )

    hierarchy = cluster_hierarchy(
        part.graph, ClusteringConfig(resolution=0.05, seed=1)
    )
    table = ExperimentTable(
        "coarsening hierarchy (lambda = 0.05)",
        ["level", "clusters", "objective F", "ARI vs truth", "recall"],
    )
    for level in hierarchy.levels:
        pr = average_precision_recall(level.assignments, part.communities)
        table.add_row(
            level.level,
            level.num_clusters,
            level.objective,
            adjusted_rand_index(level.assignments, part.labels),
            pr.recall,
        )
    table.emit()

    target = hierarchy.level_with_clusters(part.num_communities)
    print(
        f"level closest to the planted {part.num_communities} communities: "
        f"level {target.level} with {target.num_clusters} clusters"
    )
    print(f"hierarchy is nested: {hierarchy.is_nested()}")


if __name__ == "__main__":
    main()
