"""Weighted-graph clustering from pointset data (the Appendix C.2 pipeline).

Run with::

    python examples/weighted_knn_clustering.py

Builds a cosine k-NN graph (k = 50, as the paper does with ScaNN) from a
digits-like Gaussian-mixture pointset, clusters it with PAR-CC treating
the graph both weighted (PAR-CC^W) and unweighted (PAR-CC), plus PAR-MOD,
and reports ARI and NMI against the ground-truth classes — the axes of
the paper's Figures 15–16.
"""

from repro import correlation_clustering, modularity_clustering
from repro.bench.harness import ExperimentTable
from repro.eval import adjusted_rand_index, normalized_mutual_information
from repro.generators import knn_graph
from repro.generators.pointsets import digits_like_pointset


def main() -> None:
    pointset = digits_like_pointset(seed=0)
    print(
        f"pointset: {pointset.name}, {pointset.num_points} points, "
        f"{pointset.num_classes} classes, {pointset.points.shape[1]} features"
    )
    graph = knn_graph(pointset.points, k=50)
    print(f"k-NN graph: {graph}")

    table = ExperimentTable(
        "weighted clustering quality (digits surrogate)",
        ["method", "resolution", "clusters", "ARI", "NMI"],
    )

    def add(label, resolution, labels):
        table.add_row(
            label,
            resolution,
            int(labels.max()) + 1,
            adjusted_rand_index(labels, pointset.labels),
            normalized_mutual_information(labels, pointset.labels),
        )

    for lam in (0.02, 0.05, 0.15):
        weighted = correlation_clustering(graph, resolution=lam, seed=1)
        add("PAR-CC^W", lam, weighted.assignments)
        unweighted = correlation_clustering(
            graph.with_unit_weights(), resolution=lam, seed=1
        )
        add("PAR-CC", lam, unweighted.assignments)
    mod = modularity_clustering(graph, gamma=1.0, seed=1)
    add("PAR-MOD^W", 1.0, mod.assignments)

    table.emit()
    print(
        "Expected shape (Figure 15): the weighted treatment (PAR-CC^W) is\n"
        "the most robust across resolutions."
    )


if __name__ == "__main__":
    main()
