"""Legacy setup shim.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments without the ``wheel`` package (pip falls back to the legacy
``setup.py develop`` editable path).
"""

from setuptools import setup

setup()
