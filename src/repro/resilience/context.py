"""Resilience policy and per-run context.

:class:`ResiliencePolicy` is the user-facing bundle — which faults to
inject, what budget to enforce, whether to audit, where to checkpoint —
attached to a run via ``cluster(graph, config, resilience=policy)`` or the
``--audit/--time-budget/--checkpoint/--resume/--inject`` CLI flags.

:class:`ResilienceContext` is the runtime companion the multilevel driver
consults: it wraps states for fault injection, wraps engine invocations in
retry-with-exponential-backoff, audits (and under graceful degradation
repairs) state at level boundaries, evaluates budget guards, and writes
checkpoints.  One context serves one run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.state import ClusterState
from repro.obs.instrument import (
    M_RESILIENCE_EVENTS,
    M_SUPERVISOR_WATCHDOG,
    instr_of,
)
from repro.errors import (
    BudgetExhausted,
    InvariantViolation,
    TransientFault,
    WatchdogTimeout,
)
from repro.resilience.audit import DEFAULT_TOLERANCE, StateAuditor
from repro.resilience.checkpoint import (
    MultilevelCheckpoint,
    capture_rng,
    load_checkpoint,
    restore_rng,
    save_checkpoint,
)
from repro.resilience.faults import FaultPlan, FaultyClusterState
from repro.resilience.guards import (
    DEFAULT_BACKOFF_BASE,
    BudgetGuard,
    RunBudget,
    backoff_seconds,
    is_watchdog_reason,
)

#: Simulated core frequency (mirrors the scheduler's constant) used to
#: charge backoff delays to the ledger as serialized operations.
_OPS_PER_SECOND = 2.0e9

#: Assumed cost of a checkpoint write before the first one is measured.
#: Under a nonzero ``checkpoint_budget_fraction`` this floor is what makes
#: short runs write nothing: the first write only becomes eligible once
#: ``floor / fraction`` seconds of run wall have passed.
_CHECKPOINT_COST_FLOOR = 0.005


@dataclass
class ResiliencePolicy:
    """What the resilience layer should do for one run."""

    #: Hazards to inject (``None`` = run clean).
    faults: Optional[FaultPlan] = None
    #: Resource caps (``None`` = unlimited).
    budget: Optional[RunBudget] = None
    #: Audit state at level boundaries and the final result.
    audit: bool = False
    #: Raise typed errors instead of degrading gracefully.
    strict: bool = False
    #: Engine retries on injected transient faults before degrading.
    max_retries: int = 3
    #: First-retry backoff in simulated seconds (doubles per attempt).
    backoff_base: float = DEFAULT_BACKOFF_BASE
    audit_tolerance: float = DEFAULT_TOLERANCE
    #: Write a checkpoint here after every ``checkpoint_every`` levels.
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    #: Resume from this checkpoint file instead of starting fresh.
    resume_from: Optional[str] = None
    #: Cap checkpoint I/O at this fraction of run wall time (0 = write at
    #: every eligible level boundary).  With fraction ``f``, a write is
    #: skipped until ``f *`` (wall since the last write) covers the last
    #: write's measured cost — so short runs write nothing and long runs
    #: spend at most ~``f`` of their wall on checkpointing.  The
    #: supervisor uses this to keep its no-fault overhead under budget.
    checkpoint_budget_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if not 0.0 <= self.checkpoint_budget_fraction < 1.0:
            raise ValueError(
                "checkpoint_budget_fraction must be in [0, 1), got "
                f"{self.checkpoint_budget_fraction}"
            )


class ResilienceContext:
    """Runtime state of one resilient run (see module docstring)."""

    def __init__(self, policy: ResiliencePolicy, sched=None) -> None:
        self.policy = policy
        self.sched = sched
        if sched is not None:
            # The scheduler is the conduit to the atomics/frontier hooks.
            sched.faults = policy.faults
        # Observability rides the same conduit (a disabled no-op otherwise).
        self.instr = instr_of(sched)
        self.failure_log: List[str] = []
        self.degraded = False
        self.stopped = False  # budget exhausted: no further engine work
        self.auditor = StateAuditor(policy.audit_tolerance) if policy.audit else None
        self.guard = (
            BudgetGuard(policy.budget, sched=sched) if policy.budget else None
        )
        self._tag: Optional[str] = None
        self._num_vertices = 0
        # Checkpoint-throttle state (checkpoint_budget_fraction > 0).
        self._ckpt_epoch = time.perf_counter()
        self._last_ckpt_time: Optional[float] = None
        self._last_ckpt_cost = _CHECKPOINT_COST_FLOOR

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, graph, resolution: float, config) -> None:
        """Associate the context with the run it will guard."""
        self._tag = config.config_tag(resolution)
        self._num_vertices = graph.num_vertices
        self._ckpt_epoch = time.perf_counter()

    def note(self, message: str, kind: str = "note") -> None:
        self.failure_log.append(message)
        self.instr.event("resilience", kind=kind, message=message)
        self.instr.count(M_RESILIENCE_EVENTS, 1.0, kind=kind)

    def degrade(self, message: str, kind: str = "degrade") -> None:
        self.degraded = True
        self.note(message, kind=kind)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def wrap_state(self, state: ClusterState) -> ClusterState:
        if self.policy.faults is None:
            return state
        return FaultyClusterState(state, self.policy.faults)

    # ------------------------------------------------------------------
    # engine invocation: retry with backoff, then audit/repair
    # ------------------------------------------------------------------
    def run_engine(
        self,
        best_moves_fn,
        graph,
        state: ClusterState,
        resolution: float,
        config,
        sched=None,
        rng=None,
        where: str = "best-moves",
    ):
        """Run one engine invocation under the policy.

        Returns the engine's stats, or ``None`` when retries were
        exhausted and the run degraded (the caller accepts the current
        state as best-so-far).  The state is always left consistent:
        pending (stale) updates are flushed and, when auditing with
        graceful degradation, corrupted aggregates are resynced.
        """
        stats = None
        if self.guard is not None:
            # Arm the per-level watchdog: max_level_wall_seconds measures
            # this one invocation, not the run.
            self.guard.start_invocation()
        for attempt in range(self.policy.max_retries + 1):
            if self.policy.faults is not None:
                # Deferred frontier vertices are ids on *this* level's
                # graph; they must not leak across engine invocations.
                self.policy.faults.reset_frontier()
            try:
                stats = best_moves_fn(
                    graph, state, resolution, config, sched=sched, rng=rng
                )
                break
            except TransientFault as exc:
                if attempt == self.policy.max_retries:
                    if self.policy.strict:
                        raise
                    self.degrade(
                        f"{where}: giving up after {attempt + 1} attempts: {exc}",
                        kind="retries-exhausted",
                    )
                    break
                delay = backoff_seconds(attempt, self.policy.backoff_base)
                self.note(
                    f"{where}: transient fault (attempt {attempt + 1}/"
                    f"{self.policy.max_retries + 1}), backing off {delay:g}s: {exc}",
                    kind="retry",
                )
                if self.sched is not None:
                    self.sched.charge(
                        work=0.0,
                        depth=0.0,
                        serial=delay * _OPS_PER_SECOND,
                        label="retry-backoff",
                    )
        if isinstance(state, FaultyClusterState):
            state.flush_pending(sched=sched)
        self.audit_state(graph, state, resolution, where=where)
        return stats

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------
    def audit_state(self, graph, state, resolution, where: str = "") -> None:
        """Audit ``state``; repair (non-strict) or raise (strict/fatal)."""
        if self.auditor is None:
            return
        issues = self.auditor.verify_state(graph, state, resolution)
        if not issues:
            return
        label = where or "audit"
        if self.policy.strict:
            raise InvariantViolation(f"{label}: " + "; ".join(issues))
        fatal = [i for i in issues if "labels" in i or "shape" in i]
        if fatal:
            # Corrupt labels cannot be repaired from aggregates.
            raise InvariantViolation(f"{label}: " + "; ".join(fatal))
        repaired = self.auditor.resync(state)
        self.degrade(
            f"{label}: invariant violation ({'; '.join(issues)}); "
            f"resynced {', '.join(repaired) or 'nothing'}",
            kind="audit-repair",
        )

    # ------------------------------------------------------------------
    # budget guards
    # ------------------------------------------------------------------
    def budget_stop(self, total_moves: int, total_rounds: int) -> bool:
        """True once the budget is exhausted (then stays true)."""
        if self.stopped:
            return True
        if self.guard is None:
            return False
        reason = self.guard.exceeded(total_moves, total_rounds)
        if reason is None:
            return False
        watchdog = is_watchdog_reason(reason)
        if self.policy.strict:
            if watchdog:
                raise WatchdogTimeout(reason)
            raise BudgetExhausted(reason)
        self.stopped = True
        if watchdog:
            self.instr.count(M_SUPERVISOR_WATCHDOG, 1.0, scope="level")
            self.degrade(
                f"{reason}; returning best-so-far clustering",
                kind="watchdog-stop",
            )
        else:
            self.degrade(
                f"{reason}; returning best-so-far clustering", kind="budget-stop"
            )
        return True

    # ------------------------------------------------------------------
    # checkpoint/resume
    # ------------------------------------------------------------------
    def load_resume(self, rng=None) -> Optional[MultilevelCheckpoint]:
        """Load the resume checkpoint (restoring ``rng`` in place), if any."""
        if self.policy.resume_from is None:
            return None
        ckpt = load_checkpoint(
            self.policy.resume_from,
            config_tag=self._tag,
            num_vertices=self._num_vertices,
        )
        restore_rng(rng, ckpt.rng_state)
        self.note(
            f"resumed from {self.policy.resume_from} at level {ckpt.level}",
            kind="resume",
        )
        return ckpt

    def maybe_checkpoint(self, level, current, retained, stats, rng=None) -> None:
        """Write a checkpoint at this level boundary if the policy asks."""
        if self.policy.checkpoint_path is None:
            return
        if level % self.policy.checkpoint_every != 0:
            return
        fraction = self.policy.checkpoint_budget_fraction
        if fraction > 0.0:
            since = time.perf_counter() - (
                self._last_ckpt_time
                if self._last_ckpt_time is not None
                else self._ckpt_epoch
            )
            if since * fraction < self._last_ckpt_cost:
                return
        started = time.perf_counter()
        self.instr.event(
            "resilience",
            kind="checkpoint",
            level=level,
            path=str(self.policy.checkpoint_path),
        )
        self.instr.count(M_RESILIENCE_EVENTS, 1.0, kind="checkpoint")
        save_checkpoint(
            self.policy.checkpoint_path,
            MultilevelCheckpoint(
                level=level,
                current=current,
                retained=list(retained),
                rng_state=capture_rng(rng),
                stats=stats,
                config_tag=self._tag or "",
                num_vertices=self._num_vertices,
            ),
        )
        self._last_ckpt_time = time.perf_counter()
        self._last_ckpt_cost = self._last_ckpt_time - started
