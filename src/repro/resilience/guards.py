"""Run budgets and graceful degradation guards.

A long multilevel run that blows its budget should not die with a
traceback: the :class:`RunBudget` caps simulated seconds (the ledger's
Brent-bound time), wall-clock seconds, total vertex moves, and total
best-move rounds.  The :class:`BudgetGuard` is consulted by the multilevel
driver after every engine invocation; on exhaustion the run stops
coarsening/refining, flattens the best-so-far clustering, and returns a
:class:`~repro.core.result.ClusterResult` flagged ``degraded=True`` with
the reason in ``failure_log`` — unless the resilience policy is strict, in
which case a typed :class:`~repro.errors.BudgetExhausted` is raised.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

#: Base simulated-seconds backoff for the first engine retry; doubles per
#: attempt (exponential backoff), charged to the ledger as serial time.
DEFAULT_BACKOFF_BASE = 1e-4


_BUDGET_FIELDS = (
    "max_sim_seconds",
    "max_wall_seconds",
    "max_moves",
    "max_rounds",
    "max_level_wall_seconds",
)


@dataclass(frozen=True)
class RunBudget:
    """Resource caps for one clustering run (``None`` = unlimited).

    ``max_level_wall_seconds`` is the supervisor watchdog's per-level
    deadline: wall seconds one engine invocation (a level's best-moves or
    refine pass) may take before the guard reports a watchdog reason
    (``watchdog:`` prefix, raised as
    :class:`~repro.errors.WatchdogTimeout` under strict policy).  Being a
    cooperative guard it fires at the next consultation point, not
    mid-invocation.
    """

    max_sim_seconds: Optional[float] = None
    max_wall_seconds: Optional[float] = None
    max_moves: Optional[int] = None
    max_rounds: Optional[int] = None
    max_level_wall_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        for name in _BUDGET_FIELDS:
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")

    @property
    def unlimited(self) -> bool:
        return all(getattr(self, name) is None for name in _BUDGET_FIELDS)


def merge_budgets(
    a: Optional[RunBudget], b: Optional[RunBudget]
) -> Optional[RunBudget]:
    """The tightest combination of two budgets (min of each cap).

    Used by the supervisor to overlay watchdog deadlines on whatever
    budget the caller already configured.  ``None`` inputs pass the other
    through.
    """
    if a is None:
        return b
    if b is None:
        return a

    def tightest(name: str):
        x, y = getattr(a, name), getattr(b, name)
        if x is None:
            return y
        if y is None:
            return x
        return min(x, y)

    return RunBudget(**{name: tightest(name) for name in _BUDGET_FIELDS})


def is_watchdog_reason(reason: str) -> bool:
    """Whether a guard message reports a watchdog deadline (vs a budget)."""
    return reason.startswith("watchdog:")


class BudgetGuard:
    """Evaluates a :class:`RunBudget` against a run's live counters."""

    def __init__(self, budget: RunBudget, sched=None) -> None:
        self.budget = budget
        self.sched = sched
        self._start_wall = time.perf_counter()
        self._invocation_started: Optional[float] = None

    def start_invocation(self) -> None:
        """Mark the start of one engine invocation (per-level watchdog).

        Called by :meth:`~repro.resilience.context.ResilienceContext.
        run_engine` so ``max_level_wall_seconds`` measures a single level's
        best-moves/refine pass, not the whole run.
        """
        self._invocation_started = time.perf_counter()

    def exceeded(self, moves: int, rounds: int) -> Optional[str]:
        """The first exhausted limit as a message, or ``None``.

        ``moves``/``rounds`` are the run's cumulative totals so far; the
        simulated time is read from the attached scheduler's ledger.
        """
        budget = self.budget
        if budget.max_moves is not None and moves >= budget.max_moves:
            return f"move budget exhausted ({moves} >= {budget.max_moves})"
        if budget.max_rounds is not None and rounds >= budget.max_rounds:
            return f"round budget exhausted ({rounds} >= {budget.max_rounds})"
        if budget.max_sim_seconds is not None and self.sched is not None:
            sim = self.sched.simulated_time()
            if sim >= budget.max_sim_seconds:
                return (
                    f"simulated-time budget exhausted "
                    f"({sim:.4g}s >= {budget.max_sim_seconds:g}s)"
                )
        if budget.max_wall_seconds is not None:
            wall = time.perf_counter() - self._start_wall
            if wall >= budget.max_wall_seconds:
                return (
                    f"wall-clock budget exhausted "
                    f"({wall:.3f}s >= {budget.max_wall_seconds:g}s)"
                )
        if (
            budget.max_level_wall_seconds is not None
            and self._invocation_started is not None
        ):
            level_wall = time.perf_counter() - self._invocation_started
            if level_wall >= budget.max_level_wall_seconds:
                return (
                    f"watchdog: level wall deadline exceeded "
                    f"({level_wall:.3f}s >= {budget.max_level_wall_seconds:g}s)"
                )
        return None


def backoff_seconds(attempt: int, base: float = DEFAULT_BACKOFF_BASE) -> float:
    """Exponential backoff delay (simulated seconds) before retry ``attempt``."""
    if attempt < 0:
        raise ValueError(f"attempt must be non-negative, got {attempt}")
    return base * (2.0**attempt)
