"""Deterministic fault injection for the relaxed concurrency model.

The paper's central engineering claim (Section 3.2) is that *relaxed*
concurrent vertex moves — stale cluster-weight reads, racy CAS updates,
interleaved best-move decisions — still converge to high-quality
clusterings.  This module adversarially exercises that relaxation inside
the simulated scheduler: a :class:`FaultPlan` deterministically injects
the exact hazards a real lock-free implementation faces, parameterized by
per-hazard rates and a seed.

Hazard classes (:class:`FaultKind`):

* ``STALE_READ``     — a mover's cluster-weight updates become visible to
  later readers only at the *next* move window (delayed fetch-and-add
  visibility), so concurrent best-move decisions read stale ``K_c``;
* ``CAS_FAIL``       — compare-and-swap updates fail and retry, charging
  extra contention cost to the ledger (timing hazard, values exact);
* ``DROP_MOVE``      — a vertex's move CAS loses the race and is abandoned
  (the vertex stays put although the engine believes it moved);
* ``DUP_MOVE``       — the unguarded double fetch-and-add hazard: a move's
  destination weight update is applied twice, corrupting ``K_c`` until an
  audit resyncs it;
* ``DELAY_FRONTIER`` — frontier updates arrive late: a subset of the next
  frontier is deferred to the following iteration;
* ``TRANSIENT``      — an injected :class:`~repro.errors.TransientFault`
  raised before any mutation, exercising the retry/backoff path.

Injection sites are the choke points every engine goes through:
:meth:`FaultyClusterState.apply_moves` / ``move_one`` (all five engines
mutate state only through these), :func:`repro.parallel.atomics.
atomic_add_window` (CAS retries), and :func:`repro.core.frontier.
next_frontier` (frontier delays) — the latter two consult the plan
attached to the simulated scheduler (``sched.faults``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

import numpy as np

from repro.core.state import ClusterState
from repro.errors import ConfigError, TransientFault
from repro.parallel.atomics import atomic_add_window


class FaultKind(Enum):
    """The injectable hazard classes of the relaxed concurrency model."""

    STALE_READ = "stale-read"
    CAS_FAIL = "cas-fail"
    DROP_MOVE = "drop-move"
    DUP_MOVE = "dup-move"
    DELAY_FRONTIER = "delay-frontier"
    TRANSIENT = "transient"


#: Rate used by :meth:`FaultPlan.single` and the CLI when none is given.
DEFAULT_RATE = 0.1

_KIND_TO_FIELD: Dict[FaultKind, str] = {
    FaultKind.STALE_READ: "stale_read_rate",
    FaultKind.CAS_FAIL: "cas_fail_rate",
    FaultKind.DROP_MOVE: "drop_move_rate",
    FaultKind.DUP_MOVE: "dup_move_rate",
    FaultKind.DELAY_FRONTIER: "delay_frontier_rate",
    FaultKind.TRANSIENT: "transient_rate",
}


@dataclass
class FaultPlan:
    """Deterministic, rate-parameterized fault injection schedule.

    All draws come from a private generator seeded by ``seed``, so a plan
    replays identically run to run.  ``max_injections`` caps the total
    number of injected events (across all kinds), guaranteeing forward
    progress even at high rates.
    """

    stale_read_rate: float = 0.0
    cas_fail_rate: float = 0.0
    drop_move_rate: float = 0.0
    dup_move_rate: float = 0.0
    delay_frontier_rate: float = 0.0
    transient_rate: float = 0.0
    seed: int = 0
    max_injections: Optional[int] = None
    counts: Counter = field(default_factory=Counter, repr=False)

    def __post_init__(self) -> None:
        for kind, name in _KIND_TO_FIELD.items():
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.max_injections is not None and self.max_injections < 0:
            raise ConfigError(
                f"max_injections must be non-negative, got {self.max_injections}"
            )
        self._rng = np.random.default_rng(self.seed)
        self._deferred = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        kind: FaultKind,
        rate: float = DEFAULT_RATE,
        seed: int = 0,
        max_injections: Optional[int] = None,
    ) -> "FaultPlan":
        """A plan injecting exactly one hazard class (the fault matrix)."""
        return cls(
            seed=seed,
            max_injections=max_injections,
            **{_KIND_TO_FIELD[kind]: rate},
        )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI spec like ``"stale-read=0.2,cas-fail,drop-move=0.05"``.

        A bare kind uses :data:`DEFAULT_RATE`; unknown kinds raise
        :class:`~repro.errors.ConfigError`.
        """
        rates: Dict[str, float] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, value = token.partition("=")
            try:
                kind = FaultKind(name.strip())
            except ValueError:
                raise ConfigError(
                    f"unknown fault kind {name.strip()!r}; "
                    f"available: {sorted(k.value for k in FaultKind)}"
                ) from None
            try:
                rate = float(value) if value else DEFAULT_RATE
            except ValueError:
                raise ConfigError(f"bad fault rate in {token!r}") from None
            rates[_KIND_TO_FIELD[kind]] = rate
        if not rates:
            raise ConfigError(f"empty fault spec {spec!r}")
        return cls(seed=seed, **rates)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def total_injections(self) -> int:
        return sum(self.counts.values())

    def _exhausted(self) -> bool:
        return (
            self.max_injections is not None
            and self.total_injections >= self.max_injections
        )

    def _record(self, kind: FaultKind, count: int) -> None:
        if count:
            self.counts[kind.value] += int(count)

    def summary(self) -> str:
        """Human-readable injection tally, e.g. ``"stale-read=12 cas-fail=3"``."""
        if not self.counts:
            return "no faults injected"
        return " ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))

    # ------------------------------------------------------------------
    # draw primitives (each consults the cap and records what fired)
    # ------------------------------------------------------------------
    def _mask(self, kind: FaultKind, rate: float, size: int) -> np.ndarray:
        if rate <= 0.0 or size == 0 or self._exhausted():
            return np.zeros(size, dtype=bool)
        mask = self._rng.random(size) < rate
        if self.max_injections is not None:
            headroom = self.max_injections - self.total_injections
            fired = np.flatnonzero(mask)
            if fired.size > headroom:
                mask[fired[headroom:]] = False
        self._record(kind, int(mask.sum()))
        return mask

    def drop_mask(self, size: int) -> np.ndarray:
        """Which of ``size`` concurrent moves lose their CAS and abort."""
        return self._mask(FaultKind.DROP_MOVE, self.drop_move_rate, size)

    def dup_mask(self, size: int) -> np.ndarray:
        """Which moves suffer the double fetch-and-add on the destination."""
        return self._mask(FaultKind.DUP_MOVE, self.dup_move_rate, size)

    def delay_mask(self, size: int) -> np.ndarray:
        """Which moves' weight updates become visible only later."""
        return self._mask(FaultKind.STALE_READ, self.stale_read_rate, size)

    def cas_failures(self, size: int) -> int:
        """How many of ``size`` concurrent CAS updates fail and retry."""
        return int(self._mask(FaultKind.CAS_FAIL, self.cas_fail_rate, size).sum())

    def transient_fires(self) -> bool:
        """Whether one injected transient failure fires at this call site."""
        return bool(self._mask(FaultKind.TRANSIENT, self.transient_rate, 1)[0])

    def reset_frontier(self) -> None:
        """Discard deferred frontier vertices (called at engine boundaries:
        vertex ids are only meaningful within one level's graph)."""
        self._deferred = np.zeros(0, dtype=np.int64)

    def delay_frontier(self, frontier: np.ndarray) -> np.ndarray:
        """Defer a random subset of ``frontier`` to the next iteration.

        Previously deferred vertices are merged back in, so the hazard is
        a *delay*, never a loss: when the incoming frontier is empty all
        deferred vertices are released at once.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        pending = self._deferred
        if frontier.size == 0:
            self._deferred = np.zeros(0, dtype=np.int64)
            return pending
        hold = self._mask(
            FaultKind.DELAY_FRONTIER, self.delay_frontier_rate, frontier.size
        )
        self._deferred = frontier[hold]
        released = frontier[~hold]
        if pending.size:
            released = np.union1d(released, pending)
        return released


class FaultyClusterState(ClusterState):
    """A :class:`ClusterState` whose mutations pass through a fault plan.

    Wraps (shares arrays with) a base state, so engines observe hazards
    transparently: dropped moves never touch state, duplicated moves
    double-apply the destination fetch-and-add, and stale-read moves defer
    their weight updates until the next mutation — every read of
    ``cluster_weights`` in between sees the pre-move (stale) values.
    """

    __slots__ = ("plan", "_pending")

    def __init__(self, base: ClusterState, plan: FaultPlan) -> None:
        super().__init__(
            base.assignments,
            base.cluster_weights,
            base.cluster_sizes,
            base.node_weights,
        )
        self.plan = plan
        self._pending: list = []

    def flush_pending(self, sched=None) -> None:
        """Make all deferred weight updates visible (end of staleness)."""
        for targets, deltas in self._pending:
            atomic_add_window(
                self.cluster_weights, targets, deltas, sched=sched, label="K-late"
            )
        self._pending.clear()

    def apply_moves(self, vertices, targets, sched=None) -> int:
        plan = self.plan
        if plan.transient_fires():
            # Raised before any mutation: the state stays consistent and
            # the engine call can simply be retried.
            raise TransientFault(
                f"injected transient fault (window of {np.size(vertices)} moves)"
            )
        self.flush_pending(sched=sched)
        vertices = np.asarray(vertices, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        old = self.assignments[vertices]
        moving = old != targets
        if not moving.any():
            return 0
        movers = vertices[moving]
        old = old[moving]
        new = targets[moving]
        keep = ~plan.drop_mask(movers.size)
        movers, old, new = movers[keep], old[keep], new[keep]
        if movers.size == 0:
            return 0
        k = self.node_weights[movers].astype(np.float64)
        self.assignments[movers] = new
        np.add.at(self.cluster_sizes, old, -1)
        np.add.at(self.cluster_sizes, new, 1)
        delayed = plan.delay_mask(movers.size)
        visible = ~delayed
        atomic_add_window(
            self.cluster_weights, old[visible], -k[visible], sched=sched, label="K-dec"
        )
        atomic_add_window(
            self.cluster_weights, new[visible], k[visible], sched=sched, label="K-inc"
        )
        if delayed.any():
            self._pending.append(
                (
                    np.concatenate([old[delayed], new[delayed]]),
                    np.concatenate([-k[delayed], k[delayed]]),
                )
            )
        dup = plan.dup_mask(movers.size)
        if dup.any():
            # The unguarded-double-fetch-and-add hazard: K_c drifts up.
            np.add.at(self.cluster_weights, new[dup], k[dup])
        return int(movers.size)

    def move_one(self, v: int, target: int) -> bool:
        plan = self.plan
        if plan.transient_fires():
            raise TransientFault(f"injected transient fault (move of vertex {v})")
        self.flush_pending()
        old = int(self.assignments[v])
        if old == target:
            return False
        if plan.drop_mask(1)[0]:
            return False
        k = float(self.node_weights[v])
        self.assignments[v] = target
        self.cluster_sizes[old] -= 1
        self.cluster_sizes[target] += 1
        if plan.delay_mask(1)[0]:
            self._pending.append(
                (
                    np.asarray([old, target], dtype=np.int64),
                    np.asarray([-k, k], dtype=np.float64),
                )
            )
        else:
            self.cluster_weights[old] -= k
            self.cluster_weights[target] += k
        if plan.dup_mask(1)[0]:
            self.cluster_weights[target] += k
        return True
