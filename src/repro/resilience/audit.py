"""Invariant auditing for clustering state and results.

Under relaxed concurrent moves the hazards worth auditing are exactly the
aggregates the engines maintain incrementally (Section 3.2.1): the
per-cluster total vertex weight ``K_c`` and member count.  The
:class:`StateAuditor` validates, at configurable points:

* labels are integral, in range ``[0, n)``;
* ``cluster_sizes`` equals the bincount of the assignments;
* ``cluster_weights`` (and with it the incrementally maintained objective,
  which is a function of ``K_c``) matches a from-scratch recomputation
  within tolerance;
* the objective implied by the *maintained* ``K_c`` matches the objective
  recomputed from scratch from the assignments.

On divergence it either raises a typed
:class:`~repro.errors.InvariantViolation` (strict mode) or — graceful
degradation — resynchronizes the aggregates from the assignments (which
are always authoritative: a vertex is wherever its label says) and reports
what was repaired.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.state import ClusterState
from repro.errors import InvariantViolation
from repro.graphs.csr import CSRGraph

#: Default relative/absolute tolerance for weight and objective agreement.
DEFAULT_TOLERANCE = 1e-6


def _maintained_objective(
    graph: CSRGraph, state: ClusterState, resolution: float, intra: float
) -> float:
    """Objective implied by the *maintained* ``K_c`` aggregates.

    ``F = intra - lambda * sum_c (K_c^2 - K2_c) / 2`` with ``K_c`` read from
    ``state.cluster_weights`` rather than recomputed — the incrementally
    maintained value the engines' gain arithmetic is based on.
    """
    big_k2 = np.zeros(state.num_vertices, dtype=np.float64)
    np.add.at(big_k2, state.assignments, graph.node_weight_sq)
    penalty = float(((state.cluster_weights**2 - big_k2) / 2.0).sum())
    return intra - resolution * penalty


class StateAuditor:
    """Validates :class:`ClusterState` consistency at checkpoints."""

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        self.tolerance = tolerance
        self.audits_run = 0
        self.violations_found = 0

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify_state(
        self,
        graph: CSRGraph,
        state: ClusterState,
        resolution: Optional[float] = None,
    ) -> List[str]:
        """Return a list of invariant violations (empty when consistent)."""
        self.audits_run += 1
        issues: List[str] = []
        n = graph.num_vertices
        assignments = state.assignments
        if assignments.shape != (n,):
            return [f"assignments shape {assignments.shape} != ({n},)"]
        if not np.issubdtype(assignments.dtype, np.integer):
            issues.append(f"assignments dtype {assignments.dtype} is not integral")
        if assignments.size and (
            int(assignments.min()) < 0 or int(assignments.max()) >= n
        ):
            issues.append(
                f"labels outside [0, {n}): min={int(assignments.min())} "
                f"max={int(assignments.max())}"
            )
            self.violations_found += len(issues)
            return issues
        true_sizes = np.bincount(assignments, minlength=n)
        if not np.array_equal(true_sizes, state.cluster_sizes):
            bad = int((true_sizes != state.cluster_sizes).sum())
            issues.append(f"cluster_sizes out of sync on {bad} clusters")
        if not np.isfinite(state.cluster_weights).all():
            issues.append("cluster_weights contain non-finite values")
        true_weights = np.zeros(n, dtype=np.float64)
        np.add.at(true_weights, assignments, state.node_weights)
        scale = max(1.0, float(np.abs(true_weights).max(initial=0.0)))
        drift = float(np.abs(true_weights - state.cluster_weights).max(initial=0.0))
        if drift > self.tolerance * scale:
            issues.append(
                f"cluster_weights diverge from assignments "
                f"(max drift {drift:.3g})"
            )
        if resolution is not None and not issues:
            # With consistent aggregates this is equality by construction;
            # it fires when K_c drifted in a way the element-wise check's
            # tolerance absorbed but the quadratic penalty amplifies.
            from repro.core.objective import (
                intra_cluster_edge_weight,
                lambdacc_objective,
            )

            intra = intra_cluster_edge_weight(graph, assignments)
            maintained = _maintained_objective(graph, state, resolution, intra)
            scratch = lambdacc_objective(graph, assignments, resolution)
            obj_scale = max(1.0, abs(scratch))
            if abs(maintained - scratch) > self.tolerance * obj_scale:
                issues.append(
                    f"maintained objective {maintained:.6g} != recomputed "
                    f"{scratch:.6g}"
                )
        self.violations_found += len(issues)
        return issues

    def check_state(
        self,
        graph: CSRGraph,
        state: ClusterState,
        resolution: Optional[float] = None,
        where: str = "",
    ) -> None:
        """Raise :class:`InvariantViolation` if the state is inconsistent."""
        issues = self.verify_state(graph, state, resolution)
        if issues:
            prefix = f"{where}: " if where else ""
            raise InvariantViolation(prefix + "; ".join(issues))

    def verify_result(
        self,
        graph: CSRGraph,
        assignments: np.ndarray,
        resolution: float,
        f_objective: float,
    ) -> List[str]:
        """Validate a finished run's dense labels and reported objective."""
        self.audits_run += 1
        issues: List[str] = []
        n = graph.num_vertices
        assignments = np.asarray(assignments)
        if assignments.shape != (n,):
            return [f"assignments shape {assignments.shape} != ({n},)"]
        if assignments.size:
            labels = np.unique(assignments)
            if int(labels.min()) < 0 or int(labels.max()) >= n:
                issues.append("labels outside [0, n)")
            elif labels.size != int(labels.max()) + 1:
                issues.append("labels are not dense")
        from repro.core.objective import lambdacc_objective

        scratch = lambdacc_objective(graph, assignments, resolution)
        scale = max(1.0, abs(scratch))
        if not np.isfinite(f_objective) or abs(scratch - f_objective) > (
            self.tolerance * scale
        ):
            issues.append(
                f"reported objective {f_objective:.6g} != recomputed {scratch:.6g}"
            )
        self.violations_found += len(issues)
        return issues

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def resync(self, state: ClusterState) -> List[str]:
        """Rebuild aggregates from the (authoritative) assignments.

        Returns descriptions of what was repaired.  Labels themselves are
        never rewritten: out-of-range labels are unrecoverable and must be
        handled by the caller as a hard violation.
        """
        n = state.num_vertices
        repaired: List[str] = []
        true_sizes = np.bincount(state.assignments, minlength=n).astype(np.int64)
        if not np.array_equal(true_sizes, state.cluster_sizes):
            state.cluster_sizes[:] = true_sizes
            repaired.append("cluster_sizes")
        true_weights = np.zeros(n, dtype=np.float64)
        np.add.at(true_weights, state.assignments, state.node_weights)
        if not np.allclose(
            true_weights, state.cluster_weights, atol=self.tolerance, rtol=self.tolerance
        ):
            state.cluster_weights[:] = true_weights
            repaired.append("cluster_weights")
        return repaired
