"""Checkpoint/resume for the multilevel recursion.

A checkpoint captures everything needed to resume a multilevel run
*bit-identically*: the position in the hierarchy (next level index), the
current coarsened graph, every retained ``(level graph, vertex-to-super)``
pair (needed for flatten/refine on the unwind), the per-level stats so
far, and the exact numpy RNG state (so subsequent frontier permutations
replay identically).  Everything is packed into one ``.npz`` file: arrays
natively, scalars and the RNG state as a JSON header.

Checkpoints are written at level boundaries (after PARALLEL-COMPRESS, the
natural consistency point: the clustering of the finished level is frozen
into the vertex-to-super map).  Loading validates a config tag so a
checkpoint cannot silently resume under a different configuration.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.louvain_par import LevelStats, MultiLevelStats
from repro.errors import CheckpointError
from repro.graphs.csr import CSRGraph

PathLike = Union[str, Path]

#: Format version written into every checkpoint (bump on layout changes).
CHECKPOINT_VERSION = 1

_GRAPH_FIELDS = (
    "offsets",
    "neighbors",
    "weights",
    "self_loops",
    "node_weights",
    "node_weight_sq",
)


@dataclass
class MultilevelCheckpoint:
    """Resumable snapshot of a multilevel run at a level boundary."""

    #: Index of the next level to run BEST-MOVES on.
    level: int
    #: The coarsened graph at that level.
    current: CSRGraph
    #: ``(level graph, vertex_to_super)`` per finished level, finest first.
    retained: List[Tuple[CSRGraph, np.ndarray]]
    #: ``numpy`` bit-generator state dict (``None`` for rng-free runs).
    rng_state: Optional[dict]
    #: Per-level diagnostics accumulated so far.
    stats: MultiLevelStats
    #: Guard against resuming under a different configuration.
    config_tag: str
    #: Original input size (second resume guard).
    num_vertices: int
    #: Cumulative moves/rounds so far (budget guards resume mid-count).
    total_moves: int = 0
    total_rounds: int = 0


def _pack_graph(out: dict, prefix: str, graph: CSRGraph) -> None:
    for name in _GRAPH_FIELDS:
        out[f"{prefix}_{name}"] = getattr(graph, name)


def _unpack_graph(data, prefix: str) -> CSRGraph:
    try:
        arrays = {name: data[f"{prefix}_{name}"] for name in _GRAPH_FIELDS}
    except KeyError as exc:
        raise CheckpointError(f"checkpoint missing graph array {exc}") from None
    return CSRGraph(
        arrays["offsets"],
        arrays["neighbors"],
        arrays["weights"],
        self_loops=arrays["self_loops"],
        node_weights=arrays["node_weights"],
        node_weight_sq=arrays["node_weight_sq"],
        validate=False,
    )


def _stats_to_json(stats: MultiLevelStats) -> list:
    return [
        {
            "num_vertices": lv.num_vertices,
            "num_edges": lv.num_edges,
            "iterations": lv.iterations,
            "moves": lv.moves,
            "frontier_sizes": [int(x) for x in lv.frontier_sizes],
            "refine_iterations": lv.refine_iterations,
            "refine_moves": lv.refine_moves,
            "wall_seconds": lv.wall_seconds,
            "refine_wall_seconds": lv.refine_wall_seconds,
        }
        for lv in stats.levels
    ]


def _stats_from_json(payload: list) -> MultiLevelStats:
    stats = MultiLevelStats()
    for entry in payload:
        stats.levels.append(LevelStats(**entry))
    return stats


#: Everything a truncated/corrupt ``.npz`` can raise out of ``np.load``
#: or a lazy member extraction — normalized to :class:`CheckpointError`
#: so callers (and the supervisor's fall-back-to-previous-checkpoint
#: path) never have to know zipfile/zlib/numpy internals.
_CORRUPT_NPZ_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    struct.error,
    zipfile.BadZipFile,
    zlib.error,
)


def save_checkpoint(path: PathLike, ckpt: MultilevelCheckpoint) -> None:
    """Write ``ckpt`` to ``path`` as one compressed ``.npz`` file.

    The write is atomic (temp file in the same directory, fsync, then
    rename), so a run killed mid-checkpoint can never leave a torn file
    where the previous good checkpoint used to be.  The file lands at
    exactly ``path`` (no implicit ``.npz`` suffixing).
    """
    meta = {
        "version": CHECKPOINT_VERSION,
        "level": ckpt.level,
        "num_retained": len(ckpt.retained),
        "rng_state": ckpt.rng_state,
        "stats": _stats_to_json(ckpt.stats),
        "config_tag": ckpt.config_tag,
        "num_vertices": ckpt.num_vertices,
        "total_moves": ckpt.total_moves,
        "total_rounds": ckpt.total_rounds,
    }
    arrays = {"meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    _pack_graph(arrays, "cur", ckpt.current)
    for idx, (graph, v2s) in enumerate(ckpt.retained):
        _pack_graph(arrays, f"r{idx}", graph)
        arrays[f"r{idx}_v2s"] = np.asarray(v2s, dtype=np.int64)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def load_checkpoint(
    path: PathLike,
    config_tag: Optional[str] = None,
    num_vertices: Optional[int] = None,
) -> MultilevelCheckpoint:
    """Load a checkpoint, validating format and (optionally) the config.

    Raises :class:`~repro.errors.CheckpointError` on a missing/corrupt
    file, an unknown version, or a config/graph mismatch.  "Corrupt"
    includes a truncated zip (killed mid-write by a pre-atomic writer) and
    torn compressed members — the underlying ``zipfile``/``zlib``/numpy
    exceptions are never allowed to leak, so the supervisor can uniformly
    fall back to the previous checkpoint on any :class:`CheckpointError`.
    """
    try:
        data = np.load(path)
    except _CORRUPT_NPZ_ERRORS as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        if "meta" not in data:
            raise CheckpointError(f"{path} is not a repro checkpoint (no meta)")
        try:
            meta = json.loads(bytes(data["meta"]).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{path}: corrupt checkpoint header: {exc}") from exc
        version = meta.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path}: unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        if config_tag is not None and meta["config_tag"] != config_tag:
            raise CheckpointError(
                f"{path}: checkpoint was written under config "
                f"{meta['config_tag']!r}, cannot resume under {config_tag!r}"
            )
        if num_vertices is not None and meta["num_vertices"] != num_vertices:
            raise CheckpointError(
                f"{path}: checkpoint graph has {meta['num_vertices']} vertices, "
                f"input has {num_vertices}"
            )
        current = _unpack_graph(data, "cur")
        retained: List[Tuple[CSRGraph, np.ndarray]] = []
        for idx in range(int(meta["num_retained"])):
            graph = _unpack_graph(data, f"r{idx}")
            try:
                v2s = np.asarray(data[f"r{idx}_v2s"], dtype=np.int64)
            except KeyError:
                raise CheckpointError(
                    f"{path}: checkpoint missing v2s map for level {idx}"
                ) from None
            retained.append((graph, v2s))
        return MultilevelCheckpoint(
            level=int(meta["level"]),
            current=current,
            retained=retained,
            rng_state=meta.get("rng_state"),
            stats=_stats_from_json(meta.get("stats", [])),
            config_tag=str(meta["config_tag"]),
            num_vertices=int(meta["num_vertices"]),
            total_moves=int(meta.get("total_moves", 0)),
            total_rounds=int(meta.get("total_rounds", 0)),
        )
    except CheckpointError:
        raise
    except _CORRUPT_NPZ_ERRORS as exc:
        # npz members decompress lazily: torn compressed data can surface
        # on extraction even when the archive directory parsed fine.
        raise CheckpointError(
            f"{path}: corrupt checkpoint payload: {exc}"
        ) from exc
    finally:
        data.close()


def restore_rng(rng: Optional[np.random.Generator], rng_state: Optional[dict]) -> None:
    """Restore a generator's exact bit-generator state from a checkpoint."""
    if rng is None or rng_state is None:
        return
    saved_kind = rng_state.get("bit_generator")
    current_kind = type(rng.bit_generator).__name__
    if saved_kind != current_kind:
        raise CheckpointError(
            f"checkpoint RNG is {saved_kind!r}, run uses {current_kind!r}"
        )
    rng.bit_generator.state = rng_state


def capture_rng(rng: Optional[np.random.Generator]) -> Optional[dict]:
    """The generator's bit-generator state as a JSON-serializable dict."""
    if rng is None:
        return None
    return rng.bit_generator.state
