"""Chaos-matrix harness: sweep faults under the supervisor, assert recovery.

The matrix crosses **fault kind × injection site × engine × kernel ×
execution backend** and runs every cell under a
:class:`~repro.supervisor.RunSupervisor`, then checks the recovery
invariants the supervisor promises:

* every cell **terminates** (fault plans carry ``max_injections``, so the
  hazard eventually stops firing and recovery-by-rerun must converge);
* the final labels are a **valid clustering** (dense, right length);
* the final objective is within ``tolerance`` (relative) of the
  fault-free baseline for the same (engine, kernel) — or the result is
  explicitly ``degraded=True`` with a populated ``failure_log``;
* per (engine, kernel), **checkpoints replay bit-identically**: resuming
  a fault-free run's checkpoint reproduces the uninterrupted run's
  assignments and objective exactly.

Used by ``repro chaos`` (the CLI), ``make chaos`` (CI), and the
``tests/supervisor`` suite.  Everything is seeded and the supervisor gets
a no-op sleep, so a matrix replays deterministically and quickly.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import cluster
from repro.core.options import RunOptions
from repro.core.config import ClusteringConfig
from repro.core.engines import ENGINES
from repro.errors import SupervisorExhausted
from repro.kernels import KERNELS
from repro.resilience.context import ResiliencePolicy
from repro.resilience.faults import FaultKind, FaultPlan
from repro.supervisor import RetryPolicy, RunSupervisor, Watchdog

#: Injection site exercised by each hazard class (module docstring of
#: :mod:`repro.resilience.faults`): state mutations go through
#: ``FaultyClusterState``, CAS failures through the atomics windows,
#: frontier delays through ``next_frontier``.
FAULT_SITES: Dict[FaultKind, str] = {
    FaultKind.TRANSIENT: "state-mutation",
    FaultKind.DROP_MOVE: "state-mutation",
    FaultKind.DUP_MOVE: "state-mutation",
    FaultKind.STALE_READ: "state-mutation",
    FaultKind.CAS_FAIL: "atomics",
    FaultKind.DELAY_FRONTIER: "frontier",
}

#: Default hazard sweep: one kind per injection site plus the corrupting
#: double-apply — the acceptance floor of >= 3 fault kinds.
DEFAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.TRANSIENT,
    FaultKind.DUP_MOVE,
    FaultKind.CAS_FAIL,
    FaultKind.DELAY_FRONTIER,
)

#: Relative objective tolerance vs the fault-free baseline.  Survived
#: hazards legitimately perturb move interleavings (the paper's whole
#: point is that quality is robust to them), so this is a sanity band,
#: not an equality check.
DEFAULT_TOLERANCE = 0.15


@dataclass
class CellOutcome:
    """One chaos cell's verdict: identity, objectives, recovery record."""

    kind: str
    site: str
    engine: str
    kernel: str
    objective: float
    baseline_objective: float
    rel_delta: float
    degraded: bool
    injections: int
    attempts: int
    retries: int
    fallbacks: int
    salvaged: bool
    failure_log_size: int
    backend: str = "simulated"
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def label(self) -> str:
        tag = f"{self.kind}@{self.site}/{self.engine}/{self.kernel}"
        if self.backend != "simulated":
            tag += f"/{self.backend}"
        return tag

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["violations"] = list(self.violations)
        out["ok"] = self.ok
        return out


@dataclass
class ChaosReport:
    """Every cell outcome plus the per-(engine, kernel) replay verdicts."""

    outcomes: List[CellOutcome]
    replay_failures: List[str]
    tolerance: float

    @property
    def ok(self) -> bool:
        return not self.replay_failures and all(c.ok for c in self.outcomes)

    @property
    def num_cells(self) -> int:
        return len(self.outcomes)

    def failures(self) -> List[str]:
        out = [
            f"{cell.label}: {violation}"
            for cell in self.outcomes
            for violation in cell.violations
        ]
        out.extend(self.replay_failures)
        return out

    def summary(self) -> str:
        """Human-readable table of every cell, one line each."""
        lines = [
            f"chaos matrix: {self.num_cells} cells, "
            f"tolerance {self.tolerance:.0%}, "
            f"{'ALL RECOVERED' if self.ok else 'FAILURES'}"
        ]
        for cell in self.outcomes:
            status = "ok" if cell.ok else "FAIL"
            flags = []
            if cell.degraded:
                flags.append("degraded")
            if cell.salvaged:
                flags.append("salvaged")
            if cell.fallbacks:
                flags.append(f"fallbacks={cell.fallbacks}")
            if cell.retries:
                flags.append(f"retries={cell.retries}")
            lines.append(
                f"  [{status}] {cell.label}: injected={cell.injections} "
                f"delta={cell.rel_delta:.2%} {' '.join(flags)}".rstrip()
            )
            for violation in cell.violations:
                lines.append(f"         !! {violation}")
        for failure in self.replay_failures:
            lines.append(f"  [FAIL] replay: {failure}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "cells": [c.as_dict() for c in self.outcomes],
            "replay_failures": list(self.replay_failures),
        }


def _chaos_supervisor(retry, watchdog) -> RunSupervisor:
    """A supervisor tuned for matrices: no real sleeping between retries."""
    return RunSupervisor(
        retry=retry
        if retry is not None
        else RetryPolicy(max_attempts_per_rung=2, backoff_base=0.0),
        watchdog=watchdog if watchdog is not None else Watchdog(),
        sleep=lambda _seconds: None,
    )


def _check_labels(assignments: np.ndarray, num_vertices: int) -> List[str]:
    issues = []
    if assignments.shape != (num_vertices,):
        issues.append(
            f"assignment shape {assignments.shape} != ({num_vertices},)"
        )
        return issues
    if assignments.size:
        low, high = int(assignments.min()), int(assignments.max())
        if low < 0 or high >= num_vertices:
            issues.append(f"labels outside [0, n): min={low} max={high}")
    return issues


def replay_check(graph, config: ClusteringConfig, engine: Optional[str]) -> Optional[str]:
    """Checkpoint bit-identity for one (engine, kernel): resume == full run.

    Runs fault-free with checkpointing, then resumes the newest checkpoint
    and demands the exact assignments and objective of the uninterrupted
    run.  Returns a violation message, or ``None`` (also when the run was
    too shallow to ever write a checkpoint).
    """
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = os.path.join(tmp, "replay.npz")
        full = cluster(
            graph, config,
            RunOptions(
                resilience=ResiliencePolicy(checkpoint_path=path),
                engine=engine,
            ),
        )
        if not os.path.exists(path):
            return None
        resumed = cluster(
            graph, config,
            RunOptions(
                resilience=ResiliencePolicy(resume_from=path),
                engine=engine,
            ),
        )
    tag = f"{engine or 'default'}/{config.kernel}"
    if not np.array_equal(full.assignments, resumed.assignments):
        return f"{tag}: resumed assignments differ from the full run"
    if full.objective != resumed.objective:
        return (
            f"{tag}: resumed objective {resumed.objective!r} != "
            f"full-run objective {full.objective!r}"
        )
    return None


def chaos_matrix(
    graph,
    config: Optional[ClusteringConfig] = None,
    engines: Optional[Sequence[str]] = None,
    kernels: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[FaultKind]] = None,
    rate: float = 0.3,
    max_injections: int = 6,
    seed: int = 1,
    tolerance: float = DEFAULT_TOLERANCE,
    audit: bool = True,
    retry: Optional[RetryPolicy] = None,
    watchdog: Optional[Watchdog] = None,
    check_replay: bool = True,
    instrumentation=None,
) -> ChaosReport:
    """Run the full chaos matrix on ``graph`` and return a report.

    Cells are seeded ``seed + cell_index`` and the supervisor never
    sleeps, so the whole matrix is deterministic and fast enough for CI.

    ``backends`` adds the execution-backend axis (default: just the
    config's own backend).  Backends are bit-identical by contract
    (DESIGN.md §13), so the fault-free baseline and the replay check run
    once per (engine, kernel) and are shared across backend cells; each
    chaos cell then runs with its backend so recovery is exercised
    through the real dispatch path (including the supervisor's
    ``simulated-backend`` ladder rung).
    """
    config = config if config is not None else ClusteringConfig(num_workers=4)
    engines = list(engines) if engines is not None else sorted(ENGINES)
    kernels = list(kernels) if kernels is not None else sorted(KERNELS)
    backends = list(backends) if backends is not None else [config.backend]
    kinds = list(kinds) if kinds is not None else list(DEFAULT_KINDS)

    outcomes: List[CellOutcome] = []
    replay_failures: List[str] = []
    baselines: Dict[Tuple[str, str], float] = {}
    cell_index = 0
    for engine in engines:
        for kernel in kernels:
            base_config = config.with_options(
                kernel=kernel, backend="simulated", seed=seed
            )
            baseline = cluster(
                graph, base_config,
                RunOptions(
                    resilience=ResiliencePolicy(audit=audit),
                    engine=engine,
                ),
            )
            baselines[(engine, kernel)] = baseline.objective
            if check_replay:
                failure = replay_check(graph, base_config, engine)
                if failure is not None:
                    replay_failures.append(failure)
            for backend in backends:
                cell_config = base_config.with_options(backend=backend)
                for kind in kinds:
                    cell_index += 1
                    outcomes.append(
                        _run_cell(
                            graph, cell_config, engine, kernel, kind,
                            baseline.objective,
                            backend=backend,
                            rate=rate,
                            max_injections=max_injections,
                            seed=seed + cell_index,
                            tolerance=tolerance,
                            audit=audit,
                            retry=retry,
                            watchdog=watchdog,
                            instrumentation=instrumentation,
                        )
                    )
    return ChaosReport(
        outcomes=outcomes,
        replay_failures=replay_failures,
        tolerance=tolerance,
    )


def _run_cell(
    graph, cell_config, engine, kernel, kind, baseline_objective,
    rate, max_injections, seed, tolerance, audit, retry, watchdog,
    instrumentation, backend="simulated",
) -> CellOutcome:
    plan = FaultPlan.single(
        kind, rate=rate, seed=seed, max_injections=max_injections
    )
    policy = ResiliencePolicy(faults=plan, audit=audit)
    supervisor = _chaos_supervisor(retry, watchdog)
    violations: List[str] = []
    try:
        result = supervisor.run(
            graph, cell_config,
            resilience=policy,
            instrumentation=instrumentation,
            engine=engine,
        )
    except SupervisorExhausted as exc:
        return CellOutcome(
            kind=kind.value,
            site=FAULT_SITES[kind],
            engine=engine,
            kernel=kernel,
            backend=backend,
            objective=float("nan"),
            baseline_objective=baseline_objective,
            rel_delta=float("inf"),
            degraded=True,
            injections=plan.total_injections,
            attempts=0,
            retries=0,
            fallbacks=0,
            salvaged=False,
            failure_log_size=0,
            violations=[f"no result produced: {exc}"],
        )

    violations.extend(_check_labels(result.assignments, graph.num_vertices))
    scale = max(abs(baseline_objective), 1e-12)
    rel_delta = abs(result.objective - baseline_objective) / scale
    if rel_delta > tolerance:
        if not result.degraded:
            violations.append(
                f"objective {result.objective:.6g} deviates "
                f"{rel_delta:.2%} from baseline "
                f"{baseline_objective:.6g} without degraded flag"
            )
        elif not result.failure_log:
            violations.append("degraded result with an empty failure_log")
    if result.degraded and not result.failure_log:
        violations.append("degraded result with an empty failure_log")
    meta = result.extras.get("supervisor", {})
    return CellOutcome(
        kind=kind.value,
        site=FAULT_SITES[kind],
        engine=engine,
        kernel=kernel,
        backend=backend,
        objective=result.objective,
        baseline_objective=baseline_objective,
        rel_delta=rel_delta,
        degraded=result.degraded,
        injections=plan.total_injections,
        attempts=int(meta.get("attempts", 0)),
        retries=int(meta.get("retries", 0)),
        fallbacks=int(meta.get("fallbacks", 0)),
        salvaged=bool(meta.get("salvaged", False)),
        failure_log_size=len(result.failure_log),
        violations=violations,
    )
