"""Resilience layer: fault injection, invariant auditing, run guards,
and checkpoint/resume for the multilevel clustering pipeline.

See DESIGN.md ("Resilience & failure model") for the architecture.
"""

from repro.resilience.audit import StateAuditor
from repro.resilience.checkpoint import (
    MultilevelCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.context import ResilienceContext, ResiliencePolicy
from repro.resilience.faults import FaultKind, FaultPlan, FaultyClusterState
from repro.resilience.guards import BudgetGuard, RunBudget

__all__ = [
    "BudgetGuard",
    "FaultKind",
    "FaultPlan",
    "FaultyClusterState",
    "MultilevelCheckpoint",
    "ResilienceContext",
    "ResiliencePolicy",
    "RunBudget",
    "StateAuditor",
    "load_checkpoint",
    "save_checkpoint",
]
