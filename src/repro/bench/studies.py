"""Cached experiment studies shared by multiple figure benches.

Figures 2/3 plot the same tuning grid from two angles (time and
objective), and Figures 4/5 the same speedup grid (speedup and rounds) —
so each grid runs once per pytest session and both benches read it.

Workload scales are reduced relative to the generators' defaults so the
whole benchmark suite stays laptop-sized; ``REPRO_BENCH_SCALE`` scales
them globally.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.bench.datasets import benchmark_surrogate
from repro.bench.harness import bench_scale
from repro.core.api import cluster
from repro.core.config import ClusteringConfig, Frontier, Mode, Objective
from repro.core.result import ClusterResult

#: Per-graph scale factors for the tuning study (Section 4.1 grid).
TUNING_SCALES: Dict[str, float] = {
    "amazon": 0.5,
    "orkut": 0.35,
    "twitter": 0.35,
    "friendster": 0.35,
}

#: Per-graph scale factors for the speedup study (Figures 4-5).
SPEEDUP_SCALES: Dict[str, float] = {
    "amazon": 0.6,
    "dblp": 0.6,
    "livejournal": 0.3,
    "orkut": 0.25,
    "twitter": 0.3,
    "friendster": 0.3,
}

#: The Section 4.1 optimization settings: name -> (mode, frontier, refine).
TUNING_SETTINGS: Dict[str, Tuple[Mode, Frontier, bool]] = {
    "base": (Mode.SYNC, Frontier.ALL, False),
    "async": (Mode.ASYNC, Frontier.ALL, False),
    "cluster-nbrs": (Mode.SYNC, Frontier.CLUSTER_NEIGHBORS, False),
    "vertex-nbrs": (Mode.SYNC, Frontier.VERTEX_NEIGHBORS, False),
    "refine": (Mode.SYNC, Frontier.ALL, True),
    "all-opts": (Mode.ASYNC, Frontier.VERTEX_NEIGHBORS, True),
}

#: Resolutions of the tuning study.
TUNING_LAMBDAS: Tuple[float, float] = (0.01, 0.85)
#: Modularity gammas paired with the lambdas (low/high granularity).
TUNING_GAMMAS: Tuple[float, float] = (0.5, 16.0)

#: Resolutions of the speedup study.
SPEEDUP_LAMBDAS: Tuple[float, ...] = (0.01, 0.25, 0.5, 0.75, 0.95)
SPEEDUP_GAMMAS: Tuple[float, ...] = (0.1, 0.5, 1.0, 4.0, 16.0)


@dataclass(frozen=True)
class StudyRecord:
    """One clustering run's bench-relevant outputs."""

    graph: str
    objective_kind: str  # "cc" | "mod"
    resolution: float
    variant: str  # setting name or "par"/"seq"/"seq-con"
    sim_time_seq: float  # simulated time at P = 1
    sim_time_par: float  # simulated time at P = 60
    objective: float
    modularity: float
    rounds: int
    num_clusters: int
    memory_overhead: float

    @staticmethod
    def from_result(
        graph: str, objective_kind: str, variant: str, result: ClusterResult
    ) -> "StudyRecord":
        return StudyRecord(
            graph=graph,
            objective_kind=objective_kind,
            resolution=result.resolution,
            variant=variant,
            sim_time_seq=result.ledger.simulated_time(1, machine=result.machine),
            sim_time_par=result.ledger.simulated_time(60, machine=result.machine),
            objective=result.objective,
            modularity=result.modularity,
            rounds=result.rounds,
            num_clusters=result.num_clusters,
            memory_overhead=result.memory_overhead,
        )


def _tuning_graph(name: str):
    return benchmark_surrogate(
        name, seed=0, scale=TUNING_SCALES[name] * bench_scale()
    ).graph


def _speedup_graph(name: str):
    return benchmark_surrogate(
        name, seed=0, scale=SPEEDUP_SCALES[name] * bench_scale()
    ).graph


@lru_cache(maxsize=1)
def tuning_study() -> List[StudyRecord]:
    """Run the Section 4.1 optimization grid once (Figures 2 and 3)."""
    records: List[StudyRecord] = []
    for name in TUNING_SCALES:
        graph = _tuning_graph(name)
        for objective_kind in ("cc", "mod"):
            resolutions = (
                TUNING_LAMBDAS if objective_kind == "cc" else TUNING_GAMMAS
            )
            for resolution in resolutions:
                for setting, (mode, frontier, refine) in TUNING_SETTINGS.items():
                    config = ClusteringConfig(
                        objective=(
                            Objective.CORRELATION
                            if objective_kind == "cc"
                            else Objective.MODULARITY
                        ),
                        resolution=resolution,
                        mode=mode,
                        frontier=frontier,
                        refine=refine,
                        seed=1,
                    )
                    result = cluster(graph, config)
                    records.append(
                        StudyRecord.from_result(name, objective_kind, setting, result)
                    )
    return records


@lru_cache(maxsize=1)
def speedup_study() -> List[StudyRecord]:
    """Run the Figure 4/5 speedup grid once (PAR vs SEQ, CC and MOD)."""
    records: List[StudyRecord] = []
    for name in SPEEDUP_SCALES:
        graph = _speedup_graph(name)
        for objective_kind, resolutions in (
            ("cc", SPEEDUP_LAMBDAS),
            ("mod", SPEEDUP_GAMMAS),
        ):
            objective = (
                Objective.CORRELATION if objective_kind == "cc" else Objective.MODULARITY
            )
            for resolution in resolutions:
                for variant, parallel, num_iter in (
                    ("par", True, 10),
                    ("seq", False, 10),
                ):
                    config = ClusteringConfig(
                        objective=objective,
                        resolution=resolution,
                        parallel=parallel,
                        num_iter=num_iter,
                        seed=1,
                    )
                    result = cluster(graph, config)
                    records.append(
                        StudyRecord.from_result(name, objective_kind, variant, result)
                    )
    return records


def select(
    records: List[StudyRecord], **criteria
) -> List[StudyRecord]:
    """Filter study records by exact attribute match."""
    out = records
    for key, value in criteria.items():
        out = [r for r in out if getattr(r, key) == value]
    return out


def lookup(records: List[StudyRecord], **criteria) -> StudyRecord:
    """The unique record matching the criteria."""
    matches = select(records, **criteria)
    if len(matches) != 1:
        raise LookupError(f"expected 1 record for {criteria}, got {len(matches)}")
    return matches[0]
