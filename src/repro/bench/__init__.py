"""Benchmark harness: experiment records, table printing, dataset registry.

The ``benchmarks/`` directory holds one pytest-benchmark module per paper
table/figure; this package provides their shared machinery so each bench
stays a thin declaration of workload + sweep + printed series.
"""

from repro.bench.datasets import benchmark_surrogate, quality_resolutions, tuning_pairs
from repro.bench.harness import ExperimentTable, averaged, bench_scale, speedup

__all__ = [
    "ExperimentTable",
    "averaged",
    "bench_scale",
    "benchmark_surrogate",
    "quality_resolutions",
    "speedup",
    "tuning_pairs",
]
