"""ASCII sparklines and mini-charts for bench output.

Figures in this reproduction are printed, not plotted; a sparkline next
to a series makes the *shape* — near-linear scaling, the SMT knee, a
precision/recall trade-off — visible at a glance inside
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence

#: Eight-level block characters, lowest to highest.
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character sparkline of ``values``.

    Constant series render as mid-level blocks; empty input gives "".
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _BLOCKS[3] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        index = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 50,
    height: int = 10,
    label: str = "",
) -> str:
    """A small scatter/line chart in ASCII.

    ``xs`` and ``ys`` must align; points map onto a width x height grid
    with '*' marks, plus simple axis annotations (min/max of each axis).
    """
    if len(xs) != len(ys):
        raise ValueError(f"xs ({len(xs)}) and ys ({len(ys)}) must align")
    if not xs:
        return "(empty chart)"
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{y_hi:>10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_lo:<.3g}" + " " * max(1, width - 12) + f"{x_hi:>.3g}"
    )
    return "\n".join(lines)
