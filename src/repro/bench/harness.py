"""Shared experiment-harness utilities for the figure/table benches.

Benches print the same *rows/series* the paper's figures plot (per
DESIGN.md §4); :class:`ExperimentTable` renders them alignment-stable for
``bench_output.txt``.  Simulated speedups come from the cost ledgers;
wall-clock is reported separately by pytest-benchmark.
"""

from __future__ import annotations

import math
import os
import sys
from typing import Callable, Iterable, List, Sequence


#: Optional context-manager factory installed by benchmarks/conftest.py
#: (pytest's capfd.disabled) so tables bypass pytest's fd-level capture.
_capture_disabler = None


def set_capture_disabler(factory) -> None:
    """Install (or clear, with None) a capture-disabling context factory."""
    global _capture_disabler
    _capture_disabler = factory


def bench_print(text: str) -> None:
    """Print to the *real* stdout, bypassing pytest's capture.

    Benchmark tables must land in ``bench_output.txt`` (the suite is run
    as ``pytest benchmarks/ --benchmark-only | tee ...``), and pytest
    captures prints of passing tests at the file-descriptor level.
    ``benchmarks/conftest.py`` installs capfd's disabler here.
    """
    if _capture_disabler is not None:
        with _capture_disabler():
            print(text, flush=True)
        return
    stream = getattr(sys, "__stdout__", None) or sys.stdout
    stream.write(text + "\n")
    stream.flush()


def bench_scale() -> float:
    """Global workload scale for benches.

    Set ``REPRO_BENCH_SCALE`` (e.g. ``2.0`` for a heavier run, ``0.25``
    for a quick smoke) — the default keeps the full suite laptop-sized.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_repeats(default: int = 3) -> int:
    """Number of seeds to average stochastic measurements over.

    The paper averages 10 runs; benches default to 3 for turnaround and
    honour ``REPRO_BENCH_REPEATS``.
    """
    return int(os.environ.get("REPRO_BENCH_REPEATS", str(default)))


def averaged(fn: Callable[[int], float], repeats: int | None = None) -> float:
    """Mean of ``fn(seed)`` over ``repeats`` seeds."""
    reps = repeats if repeats is not None else bench_repeats()
    values = [fn(seed) for seed in range(reps)]
    return sum(values) / len(values)


def speedup(baseline_seconds: float, subject_seconds: float) -> float:
    """``baseline / subject`` guarded against zero denominators."""
    if subject_seconds <= 0:
        return math.inf
    return baseline_seconds / subject_seconds


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class ExperimentTable:
    """A fixed-column text table printed into the bench output.

    Example::

        table = ExperimentTable("Figure 4", ["graph", "lambda", "speedup"])
        table.add_row("amazon", 0.01, 12.3)
        table.emit()
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._fmt(v) for v in values])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-" * len(header)
        lines = [f"== {self.title} ==", header, rule]
        for row in self.rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def emit(self) -> None:
        """Print the table to the uncaptured stdout (tee'd bench logs)."""
        bench_print("\n" + self.render() + "\n")


def series_summary(label: str, pairs: Iterable[tuple]) -> str:
    """Compact 'x=y' series line for figure-style data."""
    body = ", ".join(f"{x:g}:{ExperimentTable._fmt(y)}" for x, y in pairs)
    return f"{label}: {body}"
