"""Cached benchmark datasets and canonical parameter sweeps.

Surrogate generation is deterministic, so benches share one cached
instance per (name, seed, scale) to keep the suite fast and to guarantee
that figures comparing algorithms run on identical graphs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.bench.harness import bench_scale
from repro.generators.planted import PlantedPartition
from repro.generators.snap_like import load_snap_surrogate

#: The resolutions the paper tunes optimizations at (Section 4.1).
TUNING_RESOLUTIONS: Tuple[float, float] = (0.01, 0.85)

#: The graphs the paper tunes optimizations on (Section 4.1).
TUNING_GRAPHS: Tuple[str, ...] = ("amazon", "orkut", "twitter", "friendster")

#: The graphs of the speedup study (Section 4.2, Figures 4–5).
SPEEDUP_GRAPHS: Tuple[str, ...] = (
    "amazon",
    "dblp",
    "livejournal",
    "orkut",
    "twitter",
    "friendster",
)


@lru_cache(maxsize=32)
def benchmark_surrogate(name: str, seed: int = 0, scale: float | None = None) -> PlantedPartition:
    """The shared surrogate instance for benches (cached)."""
    effective_scale = bench_scale() if scale is None else scale
    return load_snap_surrogate(name, seed=seed, scale=effective_scale)


def tuning_pairs() -> List[Tuple[str, float]]:
    """(graph, resolution) grid of the Section 4.1 tuning study."""
    return [(g, lam) for g in TUNING_GRAPHS for lam in TUNING_RESOLUTIONS]


def quality_resolutions(kind: str = "cc", count: int = 25) -> np.ndarray:
    """Resolution sweep for quality (PR-curve) experiments.

    ``kind='cc'`` subsamples the paper's {0.01x | x in [1, 99]} lambda
    grid; ``kind='mod'`` its {0.02 * 1.2**x} gamma grid; ``kind='theta'``
    Tectonic's {0.01x | x in [1, 299]}.  ``count`` controls density
    (benches default well below the paper's 99/299 for turnaround; raise
    ``count`` for publication-density curves).
    """
    if kind == "cc":
        full = 0.01 * np.arange(1, 100)
    elif kind == "mod":
        full = 0.02 * 1.2 ** np.arange(1, 100)
    elif kind == "theta":
        full = 0.01 * np.arange(1, 300)
    else:
        raise ValueError(f"unknown sweep kind {kind!r}")
    if count >= full.size:
        return full
    idx = np.unique(np.linspace(0, full.size - 1, count).astype(int))
    return full[idx]
