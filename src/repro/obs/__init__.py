"""Observability subsystem: tracing, metrics, and bench baselines.

Public surface (DESIGN.md §7):

* :class:`~repro.obs.instrument.Instrumentation` — the per-run context
  threaded through :func:`repro.core.api.cluster`, bundling a
  :class:`~repro.obs.tracer.Tracer` (nested ``run → level → phase →
  round`` spans) and a :class:`~repro.obs.metrics.MetricsRegistry`
  (moves, gains, frontier sizes, compression ratios, CAS retries);
* :mod:`repro.obs.schema` — trace JSONL validation (the CI smoke gate);
* :mod:`repro.obs.health` / :mod:`repro.obs.doctor` /
  :mod:`repro.obs.report` — the run doctor (DESIGN.md §12): declarative
  health rules + serving SLOs over the artifacts above, and the
  self-contained HTML report;
* :mod:`repro.obs.bench` — the unified bench harness with committed
  ``BENCH_*.json`` baselines and regression compare (imported explicitly,
  not re-exported here, because it reaches back into the core package).
"""

from repro.obs.instrument import (
    M_ATOMIC_QUEUE,
    M_CAS_ATTEMPTS,
    M_CAS_INJECTED,
    M_CAS_RETRIES,
    M_COMPRESSION,
    M_DEDUP_HITS,
    M_DEDUP_RATE,
    M_HASH_PROBES,
    M_HASH_RESIZES,
    M_FRONTIER,
    M_LEVEL_SECONDS,
    M_MODULARITY,
    M_MOVES,
    M_OBJECTIVE,
    M_RESILIENCE_EVENTS,
    M_ROUND_GAIN,
    M_ROUNDS,
    NULL_INSTRUMENTATION,
    Instrumentation,
    instr_of,
)
from repro.obs.doctor import (
    DoctorInputs,
    DoctorResult,
    cluster_decomposition,
    collect_facts,
    diagnose,
    trace_series,
)
from repro.obs.health import (
    Finding,
    HealthReport,
    HealthRule,
    HealthRuleError,
    SLOSpec,
    default_rules,
    evaluate_rules,
    evaluate_slos,
    load_rules,
    load_slo,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    parse_prometheus_headers,
    sample_quantile,
    samples_from_prometheus,
)
from repro.obs.report import render_report, write_report
from repro.obs.registry import (
    RUNS_SCHEMA,
    RunRegistryError,
    append_run,
    diff_runs,
    find_run,
    load_runs,
    make_run_record,
    validate_run_record,
)
from repro.obs.timeline import chrome_trace, write_chrome_trace
from repro.obs.tracer import NULL_SPAN, Span, SpanNode, Tracer, span_tree

__all__ = [
    "Counter",
    "DoctorInputs",
    "DoctorResult",
    "Finding",
    "Gauge",
    "HealthReport",
    "HealthRule",
    "HealthRuleError",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "SLOSpec",
    "M_ATOMIC_QUEUE",
    "M_CAS_ATTEMPTS",
    "M_CAS_INJECTED",
    "M_CAS_RETRIES",
    "M_COMPRESSION",
    "M_DEDUP_HITS",
    "M_DEDUP_RATE",
    "M_FRONTIER",
    "M_HASH_PROBES",
    "M_HASH_RESIZES",
    "M_LEVEL_SECONDS",
    "M_MODULARITY",
    "M_MOVES",
    "M_OBJECTIVE",
    "M_RESILIENCE_EVENTS",
    "M_ROUND_GAIN",
    "M_ROUNDS",
    "NULL_INSTRUMENTATION",
    "NULL_SPAN",
    "RUNS_SCHEMA",
    "RunRegistryError",
    "Span",
    "SpanNode",
    "Tracer",
    "append_run",
    "chrome_trace",
    "cluster_decomposition",
    "collect_facts",
    "default_rules",
    "diagnose",
    "diff_runs",
    "evaluate_rules",
    "evaluate_slos",
    "find_run",
    "instr_of",
    "load_rules",
    "load_runs",
    "load_slo",
    "make_run_record",
    "parse_prometheus",
    "parse_prometheus_headers",
    "render_report",
    "sample_quantile",
    "samples_from_prometheus",
    "span_tree",
    "trace_series",
    "validate_run_record",
    "write_report",
]
