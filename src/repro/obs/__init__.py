"""Observability subsystem: tracing, metrics, and bench baselines.

Public surface (DESIGN.md §7):

* :class:`~repro.obs.instrument.Instrumentation` — the per-run context
  threaded through :func:`repro.core.api.cluster`, bundling a
  :class:`~repro.obs.tracer.Tracer` (nested ``run → level → phase →
  round`` spans) and a :class:`~repro.obs.metrics.MetricsRegistry`
  (moves, gains, frontier sizes, compression ratios, CAS retries);
* :mod:`repro.obs.schema` — trace JSONL validation (the CI smoke gate);
* :mod:`repro.obs.bench` — the unified bench harness with committed
  ``BENCH_*.json`` baselines and regression compare (imported explicitly,
  not re-exported here, because it reaches back into the core package).
"""

from repro.obs.instrument import (
    M_CAS_INJECTED,
    M_CAS_RETRIES,
    M_COMPRESSION,
    M_FRONTIER,
    M_LEVEL_SECONDS,
    M_MODULARITY,
    M_MOVES,
    M_OBJECTIVE,
    M_RESILIENCE_EVENTS,
    M_ROUND_GAIN,
    M_ROUNDS,
    NULL_INSTRUMENTATION,
    Instrumentation,
    instr_of,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.tracer import NULL_SPAN, Span, SpanNode, Tracer, span_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "M_CAS_INJECTED",
    "M_CAS_RETRIES",
    "M_COMPRESSION",
    "M_FRONTIER",
    "M_LEVEL_SECONDS",
    "M_MODULARITY",
    "M_MOVES",
    "M_OBJECTIVE",
    "M_RESILIENCE_EVENTS",
    "M_ROUND_GAIN",
    "M_ROUNDS",
    "NULL_INSTRUMENTATION",
    "NULL_SPAN",
    "Span",
    "SpanNode",
    "Tracer",
    "instr_of",
    "parse_prometheus",
    "span_tree",
]
