"""Metrics registry: counters, gauges, and histograms with two exporters.

The registry is deliberately small and dependency-free.  Metrics are
created lazily (``registry.counter(name)`` returns the existing counter or
makes one) and support Prometheus-style labels passed as keyword
arguments: ``counter.inc(5, engine="relaxed")`` keeps one value per
distinct label set.

Exporters:

* :meth:`MetricsRegistry.to_jsonl` — one JSON object per sample line,
  parse-back via :meth:`MetricsRegistry.parse_jsonl` (benches and tests
  assert on these);
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  series for histograms) so any scraper can ingest a run's metrics file.

The clustering pipeline's standard metric names live in
:mod:`repro.obs.instrument` and are documented in DESIGN.md §7.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: a 1-2.5-5 ladder over eight decades, wide
#: enough for move counts, frontier sizes, gains, and second-scale timings.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-3, 8) for m in (1.0, 2.5, 5.0)
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Prometheus ``# HELP`` escaping: backslash and newline only.

    Quotes stay literal in HELP lines (unlike label values) — a raw
    newline, though, would split the comment and corrupt the exposition.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + body + "}"


class Metric:
    """Common bookkeeping for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def samples(self) -> List[dict]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing value (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {value})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._values.values())

    def samples(self) -> List[dict]:
        return [
            {
                "metric": self.name,
                "type": self.kind,
                "labels": dict(key),
                "value": value,
            }
            for key, value in sorted(self._values.items())
        ]


class Gauge(Metric):
    """Last-write-wins value (per label set)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels) -> Optional[float]:
        return self._values.get(_label_key(labels))

    def samples(self) -> List[dict]:
        return [
            {
                "metric": self.name,
                "type": self.kind,
                "labels": dict(key),
                "value": value,
            }
            for key, value in sorted(self._values.items())
        ]


class _HistogramSeries:
    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, num_buckets: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bucket_counts = [0] * num_buckets


class Histogram(Metric):
    """Distribution sketch: cumulative buckets plus count/sum/min/max."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        if value < series.min:
            series.min = value
        if value > series.max:
            series.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[i] += 1
                break
        # Values above the top bound only land in the implicit +Inf bucket.

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Bucket-interpolated quantile estimate (``None`` when empty).

        Documented exact values: an empty series returns ``None``;
        ``q=0`` returns the observed ``min``; ``q=1`` returns the
        observed ``max`` — regardless of which buckets the mass landed
        in (including everything in the implicit ``+Inf`` bucket).  In
        between, walks the non-cumulative bucket counts to the bucket
        containing the ``q``-th rank and interpolates linearly within
        it, with the bucket edges clamped to the observed ``[min, max]``
        — so a single-value series returns that value exactly and
        estimates never leave the observed range.  Rank mass past the
        top finite bound (the implicit ``+Inf`` bucket) resolves to
        ``max``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return None
        return _interpolated_quantile(
            self.buckets,
            series.bucket_counts,
            series.count,
            series.min,
            series.max,
            q,
        )

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def total_count(self) -> int:
        return sum(s.count for s in self._series.values())

    def total_sum(self) -> float:
        return sum(s.sum for s in self._series.values())

    def samples(self) -> List[dict]:
        out = []
        for key, series in sorted(self._series.items()):
            cumulative = 0
            bucket_map = {}
            for bound, n in zip(self.buckets, series.bucket_counts):
                cumulative += n
                bucket_map[f"{bound:g}"] = cumulative
            out.append(
                {
                    "metric": self.name,
                    "type": self.kind,
                    "labels": dict(key),
                    "count": series.count,
                    "sum": series.sum,
                    "min": series.min if series.count else None,
                    "max": series.max if series.count else None,
                    "buckets": bucket_map,
                }
            )
        return out


def _interpolated_quantile(
    bounds: Sequence[float],
    bucket_counts: Sequence[int],
    count: int,
    vmin: float,
    vmax: float,
    q: float,
) -> float:
    """Shared quantile walk over non-cumulative bucket counts.

    ``q=0`` / ``q=1`` short-circuit to the exact observed extremes so
    edge quantiles never depend on bucket placement.
    """
    if q <= 0.0:
        return vmin
    if q >= 1.0:
        return vmax
    rank = q * count
    cumulative = 0.0
    prev_bound: Optional[float] = None
    for bound, n in zip(bounds, bucket_counts):
        if n:
            lo = vmin if prev_bound is None else max(prev_bound, vmin)
            hi = max(min(bound, vmax), lo)
            if cumulative + n >= rank:
                frac = max(0.0, min(1.0, (rank - cumulative) / n))
                return lo + frac * (hi - lo)
            cumulative += n
        prev_bound = bound
    return vmax  # remaining mass sits in the +Inf bucket


def sample_quantile(sample: dict, q: float) -> Optional[float]:
    """Quantile estimate from one exported histogram *sample* dict.

    Accepts the shape :meth:`Histogram.samples` emits (and
    :meth:`MetricsRegistry.parse_jsonl` reads back): cumulative
    ``buckets`` mapping plus ``count``/``min``/``max``.  Same semantics
    as :meth:`Histogram.quantile`, so offline consumers (the run
    doctor) agree with the in-process registry.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = int(sample.get("count") or 0)
    if count == 0:
        return None
    bounds: List[float] = []
    bucket_counts: List[int] = []
    previous = 0
    for bound_text, cumulative in sample.get("buckets", {}).items():
        bounds.append(float(bound_text))
        bucket_counts.append(int(cumulative) - previous)
        previous = int(cumulative)
    vmin = float(sample["min"])
    vmax = float(sample["max"])
    return _interpolated_quantile(bounds, bucket_counts, count, vmin, vmax, q)


class MetricsRegistry:
    """Creates, holds, and exports a run's metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(Histogram, name, help)
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def collect(self) -> List[dict]:
        """All samples across all metrics, registry-name ordered."""
        out: List[dict] = []
        for name in self.names():
            out.extend(self._metrics[name].samples())
        return out

    # ------------------------------------------------------------------
    # JSONL exporter
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(json.dumps(sample) + "\n" for sample in self.collect())

    def write_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    @staticmethod
    def parse_jsonl(text: str) -> List[dict]:
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    # ------------------------------------------------------------------
    # Prometheus text exporter
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for sample in metric.samples():
                    base = tuple(sorted(sample["labels"].items()))
                    for bound, cumulative in sample["buckets"].items():
                        key = base + (("le", bound),)
                        lines.append(
                            f"{name}_bucket{_format_labels(key)} {cumulative}"
                        )
                    inf_key = base + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_format_labels(inf_key)} {sample['count']}"
                    )
                    lines.append(
                        f"{name}_sum{_format_labels(base)} {sample['sum']:g}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(base)} {sample['count']}"
                    )
            else:
                for sample in metric.samples():
                    key = tuple(sorted(sample["labels"].items()))
                    lines.append(
                        f"{name}{_format_labels(key)} {sample['value']:g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_prometheus())


_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _parse_label_body(line: str, start: int) -> Tuple[Dict[str, str], int]:
    """Parse ``key="value",...}`` from ``line[start:]``.

    Quote-aware: commas, braces, and escaped quotes *inside* a quoted
    value never terminate it.  Returns ``(labels, index_after_brace)``.
    """
    labels: Dict[str, str] = {}
    i = start
    while i < len(line) and line[i] != "}":
        eq = line.index("=", i)
        key = line[i:eq]
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r} in {line!r}")
        if eq + 1 >= len(line) or line[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {line!r}")
        i = eq + 2
        chars: List[str] = []
        while i < len(line) and line[i] != '"':
            ch = line[i]
            if ch == "\\":
                if i + 1 >= len(line):
                    raise ValueError(f"dangling escape in {line!r}")
                chars.append(_ESCAPES.get(line[i + 1], line[i + 1]))
                i += 2
            else:
                chars.append(ch)
                i += 1
        if i >= len(line):
            raise ValueError(f"unterminated label value in {line!r}")
        labels[key] = "".join(chars)
        i += 1  # closing quote
        if i < len(line) and line[i] == ",":
            i += 1
    if i >= len(line):
        raise ValueError(f"unterminated label set in {line!r}")
    return labels, i + 1  # past the closing brace


def _unescape_help(text: str) -> str:
    chars: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            chars.append({"\\": "\\", "n": "\n"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            chars.append(ch)
            i += 1
    return "".join(chars)


def parse_prometheus_headers(text: str) -> Dict[str, Dict[str, str]]:
    """Parse ``# HELP`` / ``# TYPE`` comment lines back per metric name.

    Returns ``{name: {"help": ..., "type": ...}}`` with HELP text
    un-escaped — the comment-line half of the exposition round-trip
    (:func:`parse_prometheus` handles the sample lines).
    """
    headers: Dict[str, Dict[str, str]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("#"):
            continue
        parts = line.split(" ", 3)
        if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
            continue
        _, keyword, name, rest = parts
        entry = headers.setdefault(name, {})
        if keyword == "HELP":
            entry["help"] = _unescape_help(rest)
        else:
            entry["type"] = rest
    return headers


def samples_from_prometheus(text: str) -> List[dict]:
    """Reconstruct exporter-shaped samples from Prometheus text.

    Inverse of :meth:`MetricsRegistry.to_prometheus` as far as the
    format allows: counters and gauges come back as
    ``{metric, type, labels, value}``; ``_bucket``/``_sum``/``_count``
    series reassemble into one histogram sample per label set.  The
    exact observed min/max are not part of the exposition format, so
    they are approximated conservatively from the occupied buckets —
    quantile estimates stay inside the reconstructed range but can be
    coarser than from the JSONL export.
    """
    headers = parse_prometheus_headers(text)
    flat = parse_prometheus(text)
    out: List[dict] = []
    histograms: Dict[Tuple[str, LabelKey], dict] = {}
    for sample in flat:
        name, labels, value = sample["name"], sample["labels"], sample["value"]
        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[: -len(suffix)] if name.endswith(suffix) else None
            if stem and headers.get(stem, {}).get("type") == "histogram":
                base = (stem, suffix)
                break
        if base is None:
            out.append(
                {
                    "metric": name,
                    "type": headers.get(name, {}).get("type", "untyped"),
                    "labels": labels,
                    "value": value,
                }
            )
            continue
        stem, suffix = base
        key_labels = {k: v for k, v in labels.items() if k != "le"}
        key = (stem, _label_key(key_labels))
        agg = histograms.get(key)
        if agg is None:
            agg = histograms[key] = {
                "metric": stem,
                "type": "histogram",
                "labels": key_labels,
                "count": 0,
                "sum": 0.0,
                "buckets": {},
            }
            out.append(agg)
        if suffix == "_sum":
            agg["sum"] = value
        elif suffix == "_count":
            agg["count"] = int(value)
        elif labels.get("le") not in (None, "+Inf"):
            agg["buckets"][labels["le"]] = int(value)
    for agg in histograms.values():
        bounds = sorted(agg["buckets"], key=float)
        agg["buckets"] = {b: agg["buckets"][b] for b in bounds}
        previous = 0
        occupied: List[int] = []
        for i, bound in enumerate(bounds):
            if agg["buckets"][bound] > previous:
                occupied.append(i)
            previous = agg["buckets"][bound]
        if agg["count"] == 0:
            agg["min"] = agg["max"] = None
        elif occupied:
            first, last = occupied[0], occupied[-1]
            agg["min"] = float(bounds[first - 1]) if first else min(
                float(bounds[0]), 0.0
            )
            overflow = agg["count"] > agg["buckets"][bounds[-1]]
            agg["max"] = float(bounds[-1 if overflow else last])
        else:  # all mass in the implicit +Inf bucket
            agg["min"] = agg["max"] = float(bounds[-1]) if bounds else 0.0
    return out


def parse_prometheus(text: str) -> List[dict]:
    """Parse Prometheus text back into ``{name, labels, value}`` samples.

    Supports the subset :meth:`MetricsRegistry.to_prometheus` emits —
    including escaped quotes/backslashes/newlines and commas or braces
    inside label values — enough for exporter round-trip tests; not a
    general scraper.
    """
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        brace = line.find("{")
        space = line.find(" ")
        labels: Dict[str, str] = {}
        if brace != -1 and (space == -1 or brace < space):
            name = line[:brace]
            labels, after = _parse_label_body(line, brace + 1)
            value_part = line[after:].strip()
        else:
            name, value_part = line.rsplit(" ", 1)
        samples.append(
            {"name": name, "labels": labels, "value": float(value_part)}
        )
    return samples
