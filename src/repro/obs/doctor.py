"""Run doctor: reduce run artifacts to facts, series, and verdicts.

Everything here consumes what the tracer/metrics/registry already
produce — :meth:`ClusterResult.stats_dict`, the trace JSONL, exported
metric samples, and ``runs.jsonl`` records — with **no new hooks in the
hot path**.  The doctor has three outputs:

* a flat ``facts`` dict of dotted names (``run.rounds``,
  ``convergence.stall_levels``, ``metric.repro_cas_retries_total``,
  ``supervisor.fallbacks``, ``dynamic.escalations``,
  ``quality.singleton_fraction``) that the declarative rules in
  :mod:`repro.obs.health` gate on;
* chart-ready *series* (per-round gain/move-churn/frontier-decay
  curves, per-level summaries, worker-lane utilization) that
  :mod:`repro.obs.report` renders;
* a per-cluster decomposition of the λ-objective
  (:func:`cluster_decomposition`): ``F_c = intra_c − λ(K_c² − K2_c)/2``
  per cluster, summing exactly to ``F`` — top-k worst clusters, size
  histogram, singleton fraction.

``diagnose()`` bundles them into a :class:`DoctorResult` whose
``report.exit_code`` is the CLI contract: nonzero exactly on ``crit``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.health import (
    HealthReport,
    HealthRule,
    SLOSpec,
    default_rules,
    evaluate_rules,
    evaluate_slos,
)
from repro.obs.instrument import M_SERVE_LATENCY, M_SERVE_STALENESS

#: A best-moves/refine phase counts as *stalled* when it ran at least
#: this many rounds and the final round still moved at least this
#: fraction of the first round's moves — churn without convergence.
STALL_MIN_ROUNDS = 4
STALL_CHURN_FRACTION = 0.5


@dataclass
class DoctorInputs:
    """Everything the doctor may consume; all fields optional.

    Missing inputs skip the rules that need them — an uninstrumented
    run is under-observed, not unhealthy.
    """

    stats: Optional[dict] = None
    trace: Optional[List[dict]] = None
    metric_samples: Optional[List[dict]] = None
    record: Optional[dict] = None
    history: Optional[List[dict]] = None
    dynamic_stats: Optional[dict] = None
    gateway_stats: Optional[dict] = None
    decomposition: Optional[dict] = None
    iteration_cap: Optional[int] = None
    slo: Optional[SLOSpec] = None


@dataclass
class DoctorResult:
    report: HealthReport
    facts: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, object] = field(default_factory=dict)
    slo_rows: List[dict] = field(default_factory=list)
    decomposition: Optional[dict] = None

    def as_dict(self) -> dict:
        out = self.report.as_dict()
        out["facts"] = {k: self.facts[k] for k in sorted(self.facts)}
        if self.slo_rows:
            out["slo"] = self.slo_rows
        if self.decomposition is not None:
            out["decomposition"] = {
                k: v
                for k, v in self.decomposition.items()
                if k != "per_cluster_f"
            }
        return out


# ----------------------------------------------------------------------
# Facts from each artifact
# ----------------------------------------------------------------------

def _put(facts: Dict[str, float], key: str, value) -> None:
    if isinstance(value, bool):
        facts[key] = 1.0 if value else 0.0
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        facts[key] = float(value)


def stats_facts(
    stats: dict, iteration_cap: Optional[int] = None
) -> Dict[str, float]:
    """Facts from :meth:`ClusterResult.stats_dict` (batch runs)."""
    facts: Dict[str, float] = {}
    for src, dst in (
        ("rounds", "run.rounds"),
        ("moves", "run.moves"),
        ("num_levels", "run.levels"),
        ("num_clusters", "run.num_clusters"),
        ("objective", "run.objective"),
        ("f_objective", "run.f_objective"),
        ("modularity", "run.modularity"),
        ("wall_seconds", "run.wall_seconds"),
        ("sim_time_seconds", "run.sim_time_seconds"),
        ("degraded", "run.degraded"),
    ):
        if src in stats:
            _put(facts, dst, stats[src])
    levels = stats.get("levels") or []
    if levels:
        capped = refine_capped = stalled = 0
        for level in levels:
            frontier = level.get("frontier_sizes") or []
            hit_cap = (
                iteration_cap is not None
                and level.get("iterations", 0) >= iteration_cap
            )
            if hit_cap:
                capped += 1
                if (
                    len(frontier) >= STALL_MIN_ROUNDS
                    and frontier[-1] >= STALL_CHURN_FRACTION * frontier[0]
                ):
                    stalled += 1
            if (
                iteration_cap is not None
                and level.get("refine_iterations", 0) >= iteration_cap
            ):
                refine_capped += 1
        if iteration_cap is not None:
            facts["convergence.capped_levels"] = float(capped)
            facts["convergence.refine_capped_levels"] = float(refine_capped)
            facts["convergence.stall_levels"] = float(stalled)
    repairs = stats.get("input_repairs")
    if isinstance(repairs, dict):
        total = 0.0
        for key, value in repairs.items():
            _put(facts, f"repairs.{key}", value)
            if isinstance(value, (int, float)):
                total += float(value)
        facts["repairs.total"] = total
    supervisor = stats.get("supervisor")
    if isinstance(supervisor, dict):
        for key, value in supervisor.items():
            _put(facts, f"supervisor.{key}", value)
    return facts


def record_facts(record: dict) -> Dict[str, float]:
    """Facts from one ``runs.jsonl`` registry record."""
    facts: Dict[str, float] = {}
    for key, value in (record.get("metrics") or {}).items():
        _put(facts, f"run.{key}", value)
    for key, value in (record.get("info") or {}).items():
        _put(facts, f"run.{key}", value)
    return facts


def metric_facts(samples: Sequence[dict]) -> Dict[str, float]:
    """Facts from exported metric samples (JSONL or ``collect()``).

    Counters sum across label sets into ``metric.<name>``; gauges keep
    the last sample's value; histograms expose ``.count`` / ``.sum``.
    """
    facts: Dict[str, float] = {}
    for sample in samples:
        name = sample.get("metric")
        kind = sample.get("type")
        if not name:
            continue
        key = f"metric.{name}"
        if kind == "counter":
            facts[key] = facts.get(key, 0.0) + float(sample.get("value", 0.0))
        elif kind == "gauge":
            facts[key] = float(sample.get("value", 0.0))
        elif kind == "histogram":
            facts[key + ".count"] = facts.get(key + ".count", 0.0) + float(
                sample.get("count", 0)
            )
            facts[key + ".sum"] = facts.get(key + ".sum", 0.0) + float(
                sample.get("sum", 0.0)
            )
    # A retry counter that never fired is exported as no samples at all;
    # a run with attempts but no retries is a healthy 0 rate, not an
    # unobservable one.
    if (
        "metric.repro_cas_attempts_total" in facts
        and "metric.repro_cas_retries_total" not in facts
    ):
        facts["metric.repro_cas_retries_total"] = 0.0
    return facts


def dynamic_facts(stats: dict) -> Dict[str, float]:
    """Facts from :meth:`DynamicClusterer.stats` (serving runs)."""
    facts: Dict[str, float] = {}
    for src, dst in (
        ("batches_applied", "dynamic.batches"),
        ("moves_applied", "dynamic.moves"),
        ("escalations", "dynamic.escalations"),
        ("queries_answered", "dynamic.queries"),
        ("last_drift", "dynamic.last_drift"),
        ("updates_since_save", "dynamic.staleness"),
        ("f_objective", "run.f_objective"),
        ("num_clusters", "run.num_clusters"),
    ):
        if stats.get(src) is not None:
            _put(facts, dst, stats[src])
    updates = stats.get("updates_applied")
    if isinstance(updates, dict):
        facts["dynamic.updates"] = float(sum(updates.values()))
    return facts


def gateway_facts(stats: dict) -> Dict[str, float]:
    """Facts from :meth:`ServingGateway.stats` (gateway runs).

    Per request class the raw terminal-status counts become
    ``gateway.<class>.<status>`` facts plus derived ``shed_rate`` /
    ``expired_rate`` / ``rejected_rate`` fractions of submissions, so
    admission-control health rules can threshold on load-independent
    ratios.
    """
    facts: Dict[str, float] = {}
    for src, dst in (
        ("epoch", "gateway.epoch"),
        ("commits", "gateway.commits"),
        ("staged", "gateway.staged"),
    ):
        if stats.get(src) is not None:
            _put(facts, dst, stats[src])
    requests = stats.get("requests")
    if isinstance(requests, dict):
        for klass, row in requests.items():
            if not isinstance(row, dict):
                continue
            for status, count in row.items():
                if isinstance(count, (int, float)):
                    facts[f"gateway.{klass}.{status}"] = float(count)
            submitted = float(row.get("submitted") or 0.0)
            if submitted > 0:
                for status in ("shed", "expired", "rejected"):
                    facts[f"gateway.{klass}.{status}_rate"] = (
                        float(row.get(status) or 0.0) / submitted
                    )
    nested = stats.get("clusterer")
    if isinstance(nested, dict):
        for key, value in dynamic_facts(nested).items():
            facts.setdefault(key, value)
    return facts


# ----------------------------------------------------------------------
# Trace-derived series
# ----------------------------------------------------------------------

def load_trace(path) -> List[dict]:
    """Read a trace JSONL file into records (no schema enforcement)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def trace_series(records: Sequence[dict]) -> Dict[str, object]:
    """Chart-ready series from trace records.

    Returns ``rounds`` (per-round gain/moves/frontier in execution
    order), ``phases`` (per best-moves/refine phase round groups, the
    stall detector's input), ``levels`` (per-level gain totals — the
    objective-delta series), ``spans`` (completion-ordered span records
    for the waterfall), and ``workers`` (per-lane busy/total time).
    """
    spans = [r for r in records if r.get("type") == "span"]
    by_id = {s["id"]: s for s in spans}
    rounds = []
    for span in spans:
        if span.get("name") != "round":
            continue
        attrs = span.get("attrs", {})
        parent = by_id.get(span.get("parent"), {})
        parent_attrs = parent.get("attrs", {})
        rounds.append(
            {
                "phase_id": span.get("parent"),
                "phase": parent_attrs.get("phase", ""),
                "level": parent_attrs.get("level"),
                "engine": attrs.get("engine", ""),
                "iteration": attrs.get("iteration", 0),
                "frontier": attrs.get("frontier", 0),
                "moves": attrs.get("moves", 0),
                "gain": attrs.get("gain", 0.0),
            }
        )
    rounds.sort(key=lambda r: (str(r["phase_id"]), r["iteration"]))

    phases: List[dict] = []
    current_id = object()
    for row in rounds:
        if row["phase_id"] != current_id:
            current_id = row["phase_id"]
            phases.append(
                {
                    "phase": row["phase"],
                    "level": row["level"],
                    "rounds": [],
                }
            )
        phases[-1]["rounds"].append(row)
    for phase in phases:
        moves = [r["moves"] for r in phase["rounds"]]
        phase["stalled"] = bool(
            len(moves) >= STALL_MIN_ROUNDS
            and moves[-1] > 0
            and moves[-1] >= STALL_CHURN_FRACTION * max(moves[0], 1)
        )
        phase["gain"] = float(sum(r["gain"] for r in phase["rounds"]))

    levels: Dict[object, float] = {}
    for phase in phases:
        if phase["level"] is not None:
            levels[phase["level"]] = levels.get(phase["level"], 0.0) + phase["gain"]

    workers: List[dict] = []
    lanes: Dict[object, dict] = {}
    for record in records:
        if record.get("type") != "worker":
            continue
        if record.get("clock", "sim") != "sim":
            # Execution-backend chunks are on the wall clock; folding them
            # into the simulated lanes would corrupt utilization ratios.
            continue
        lane = lanes.setdefault(
            record.get("worker"),
            {"worker": record.get("worker"), "chunks": 0, "busy": 0.0,
             "wait": 0.0, "start": float("inf"), "end": 0.0},
        )
        lane["chunks"] += 1
        start = float(record.get("start", 0.0))
        end = float(record.get("end", start))
        lane["busy"] += max(0.0, end - start)
        lane["wait"] += float(record.get("wait", 0.0))
        lane["start"] = min(lane["start"], start)
        lane["end"] = max(lane["end"], end)
    span_end = max(
        (lane["end"] for lane in lanes.values()), default=0.0
    )
    for worker in sorted(lanes, key=lambda w: (str(type(w)), w)):
        lane = lanes[worker]
        lane["total"] = span_end
        lane["utilization"] = (
            lane["busy"] / span_end if span_end > 0 else 0.0
        )
        del lane["start"], lane["end"]
        workers.append(lane)

    return {
        "rounds": rounds,
        "phases": phases,
        "levels": sorted(levels.items(), key=lambda kv: str(kv[0])),
        "spans": spans,
        "workers": workers,
    }


def trace_facts(series: Dict[str, object]) -> Dict[str, float]:
    facts: Dict[str, float] = {}
    phases = series.get("phases") or []
    rounds = series.get("rounds") or []
    if rounds:
        facts["convergence.rounds"] = float(len(rounds))
        facts["convergence.total_gain"] = float(
            sum(r["gain"] for r in rounds)
        )
    if phases:
        stalled = sum(1 for p in phases if p["stalled"])
        facts["convergence.stalled_phases"] = float(stalled)
        # Feed the stall rule from the trace too: a stalled phase IS a
        # stalled level when stats-based detection (needs the iteration
        # cap) is unavailable; take the max when both exist.
        facts["convergence.stall_levels"] = max(
            facts.get("convergence.stall_levels", 0.0), float(stalled)
        )
    return facts


# ----------------------------------------------------------------------
# Per-cluster objective decomposition
# ----------------------------------------------------------------------

def cluster_decomposition(
    graph, assignments, resolution: float, top_k: int = 8
) -> dict:
    """Per-cluster split of ``F = Σ_c [intra_c − λ(K_c² − K2_c)/2]``.

    Same arithmetic as :mod:`repro.core.objective`, vectorized per
    cluster instead of summed: ``sum(per_cluster_f) == F`` exactly (up
    to float association).  Returns the top-k worst clusters by
    ``F_c``, a power-of-two size histogram, and the singleton fraction.
    """
    assignments = np.asarray(assignments)
    ids, dense = np.unique(assignments, return_inverse=True)
    n_clusters = int(ids.size)
    if n_clusters == 0:
        return {
            "num_clusters": 0, "singleton_fraction": 0.0,
            "size_histogram": [], "worst": [], "f_total": 0.0,
            "per_cluster_f": np.zeros(0),
        }
    intra = np.bincount(
        dense, weights=graph.self_loops, minlength=n_clusters
    ).astype(float)
    if graph.num_directed_edges:
        src = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64),
            np.diff(graph.offsets),
        )
        same = dense[src] == dense[graph.neighbors]
        intra += (
            np.bincount(
                dense[src[same]],
                weights=graph.weights[same],
                minlength=n_clusters,
            )
            / 2.0
        )
    big_k = np.bincount(dense, weights=graph.node_weights, minlength=n_clusters)
    big_k2 = np.bincount(
        dense, weights=graph.node_weight_sq, minlength=n_clusters
    )
    penalty = (big_k**2 - big_k2) / 2.0
    per_f = intra - resolution * penalty
    sizes = np.bincount(dense, minlength=n_clusters)

    worst_order = np.argsort(per_f, kind="stable")[:top_k]
    worst = [
        {
            "cluster": int(ids[i]),
            "size": int(sizes[i]),
            "intra": float(intra[i]),
            "penalty": float(penalty[i]),
            "f": float(per_f[i]),
        }
        for i in worst_order
    ]
    histogram = []
    lo = 1
    max_size = int(sizes.max())
    while lo <= max_size:
        hi = 2 * lo - 1
        count = int(((sizes >= lo) & (sizes <= hi)).sum())
        histogram.append({"lo": lo, "hi": hi, "count": count})
        lo *= 2
    return {
        "num_clusters": n_clusters,
        "singleton_fraction": float((sizes == 1).sum() / n_clusters),
        "size_histogram": histogram,
        "worst": worst,
        "f_total": float(per_f.sum()),
        "per_cluster_f": per_f,
    }


def decomposition_facts(decomposition: dict) -> Dict[str, float]:
    facts: Dict[str, float] = {}
    facts["quality.singleton_fraction"] = float(
        decomposition.get("singleton_fraction", 0.0)
    )
    per_f = decomposition.get("per_cluster_f")
    if per_f is not None and len(per_f):
        facts["quality.worst_cluster_f"] = float(np.min(per_f))
        facts["quality.negative_cluster_fraction"] = float(
            (np.asarray(per_f) < 0).sum() / len(per_f)
        )
    return facts


# ----------------------------------------------------------------------
# The doctor
# ----------------------------------------------------------------------

def collect_facts(inputs: DoctorInputs) -> Dict[str, float]:
    """Merge facts from every provided artifact (later never clobbers
    an earlier numeric with a missing one; order is broad → specific)."""
    facts: Dict[str, float] = {}
    if inputs.record is not None:
        facts.update(record_facts(inputs.record))
    if inputs.stats is not None:
        facts.update(stats_facts(inputs.stats, inputs.iteration_cap))
    if inputs.metric_samples is not None:
        facts.update(metric_facts(inputs.metric_samples))
    if inputs.dynamic_stats is not None:
        facts.update(dynamic_facts(inputs.dynamic_stats))
    if inputs.gateway_stats is not None:
        facts.update(gateway_facts(inputs.gateway_stats))
    if inputs.trace is not None:
        series = trace_series(inputs.trace)
        stats_stall = facts.get("convergence.stall_levels")
        trace_derived = trace_facts(series)
        facts.update(trace_derived)
        if stats_stall is not None:
            facts["convergence.stall_levels"] = max(
                stats_stall, facts.get("convergence.stall_levels", 0.0)
            )
    if inputs.decomposition is not None:
        facts.update(decomposition_facts(inputs.decomposition))
    return facts


def diagnose(
    inputs: DoctorInputs,
    rules: Optional[Sequence[HealthRule]] = None,
) -> DoctorResult:
    """Evaluate health rules (and SLOs when serving telemetry exists)."""
    facts = collect_facts(inputs)
    report = evaluate_rules(
        rules if rules is not None else default_rules(),
        facts,
        record=inputs.record,
        history=inputs.history,
    )
    series = trace_series(inputs.trace) if inputs.trace is not None else {}
    slo_rows: List[dict] = []
    samples = inputs.metric_samples or []
    has_serving = any(
        s.get("metric") in (M_SERVE_LATENCY, M_SERVE_STALENESS)
        for s in samples
    )
    if inputs.slo is not None or has_serving:
        spec = inputs.slo if inputs.slo is not None else SLOSpec.default()
        slo_report, slo_rows = evaluate_slos(spec, samples, facts)
        report.extend(slo_report)
    return DoctorResult(
        report=report,
        facts=facts,
        series=series,
        slo_rows=slo_rows,
        decomposition=inputs.decomposition,
    )
