"""Structured tracing: nested spans and point events, zero dependencies.

A :class:`Tracer` records a tree of *spans* — named intervals with wall
and CPU time plus a peak-RSS sample — and *events* — timestamped points
attached to the innermost open span.  The clustering pipeline emits the
taxonomy ``run → level → phase → round`` (DESIGN.md §7): one ``run`` span
per :func:`repro.core.api.cluster` call, one ``level`` span per coarsening
level, ``phase`` spans for best-moves / compress / flatten / refine, and
one ``round`` span per BEST-MOVES iteration.

Spans are written to JSONL (one JSON object per line) in *completion*
order, so children precede their parents in the file; consumers rebuild
the tree with :func:`span_tree` or validate it with
:mod:`repro.obs.schema`.  Everything is stdlib-only: ``time`` for clocks
and ``resource`` (when available) for peak RSS.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, List, Optional

try:  # pragma: no cover - platform-dependent
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

#: Trace format version stamped into every record.
TRACE_VERSION = 1


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes (None if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def _json_default(value):
    """Coerce numpy scalars and other oddballs for json.dumps."""
    for cast in (int, float):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    return str(value)


class _NullSpan:
    """No-op span handle returned by disabled instrumentation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


#: Shared no-op span: entering, exiting, and ``set`` all do nothing.
NULL_SPAN = _NullSpan()


class Span:
    """One open (then finished) interval in the trace."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attrs",
        "start",
        "wall_seconds",
        "cpu_seconds",
        "peak_rss_bytes",
        "_tracer",
        "_start_cpu",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self.start = tracer.now()
        self._start_cpu = time.process_time()
        self.wall_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None
        self.peak_rss_bytes: Optional[int] = None

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    def record(self) -> dict:
        return {
            "type": "span",
            "v": TRACE_VERSION,
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_rss_bytes": self.peak_rss_bytes,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans and events for one run (see module docstring)."""

    def __init__(self, sample_rss: bool = True) -> None:
        self.sample_rss = sample_rss
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._stack: List[Span] = []
        #: Finished-span and event records, in completion/occurrence order.
        self.records: List[dict] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    @property
    def current_span_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def span(self, name: str, **attrs) -> Span:
        """Open a nested span; use as a context manager."""
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=self.current_span_id,
            depth=len(self._stack),
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(open: {[s.name for s in self._stack]})"
            )
        self._stack.pop()
        span.wall_seconds = self.now() - span.start
        span.cpu_seconds = time.process_time() - span._start_cpu
        if self.sample_rss:
            span.peak_rss_bytes = peak_rss_bytes()
        self.records.append(span.record())

    def event(self, name: str, **attrs) -> dict:
        """Record a point event attached to the innermost open span."""
        record = {
            "type": "event",
            "v": TRACE_VERSION,
            "name": name,
            "id": self._next_id,
            "span": self.current_span_id,
            "t": self.now(),
            "attrs": attrs,
        }
        self._next_id += 1
        self.records.append(record)
        return record

    def worker_chunk(
        self,
        worker: int,
        start: float,
        end: float,
        label: str,
        items: int = 0,
        wait: float = 0.0,
        clock: str = "sim",
    ) -> dict:
        """Record one worker's chunk on its timeline lane.

        Unlike spans, chunk intervals default to the *simulated* clock
        (the scheduler's cost model), one lane per worker; ``wait`` is the
        idle gap the worker sat through since its previous chunk ended
        (barrier joins, straggler waits).  Chunks attach to the innermost
        open span so consumers can group lanes under the phase/round tree.

        ``clock="wall"`` marks a real execution-backend worker measured on
        the wall clock (DESIGN.md §13); wall lanes are a separate clock
        domain from the simulated lanes of the same worker index, so the
        record carries an explicit ``clock`` field (omitted for ``sim`` to
        keep existing traces byte-stable).
        """
        record = {
            "type": "worker",
            "v": TRACE_VERSION,
            "id": self._next_id,
            "span": self.current_span_id,
            "worker": int(worker),
            "start": float(start),
            "end": float(end),
            "label": label,
            "items": int(items),
            "wait": float(wait),
        }
        if clock != "sim":
            record["clock"] = clock
        self._next_id += 1
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # export / import
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """All finished records as JSONL (one object per line)."""
        if self._stack:
            raise RuntimeError(
                f"cannot export with open spans: {[s.name for s in self._stack]}"
            )
        return "".join(
            json.dumps(r, default=_json_default) + "\n" for r in self.records
        )

    def write_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    @staticmethod
    def parse_jsonl(text: str) -> List[dict]:
        """Parse JSONL trace text back into record dicts."""
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def span_records(self) -> List[dict]:
        return [r for r in self.records if r["type"] == "span"]

    def event_records(self) -> List[dict]:
        return [r for r in self.records if r["type"] == "event"]

    def worker_records(self) -> List[dict]:
        return [r for r in self.records if r["type"] == "worker"]


class SpanNode:
    """One node of a rebuilt span tree."""

    __slots__ = ("record", "children")

    def __init__(self, record: dict) -> None:
        self.record = record
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        return self.record["name"]

    def walk(self):
        """Yield this node and all descendants, depth-first."""
        yield self
        for child in self.children:
            for node in child.walk():
                yield node


def span_tree(records: List[dict]) -> List[SpanNode]:
    """Rebuild the span forest from trace records (any record order).

    Children are ordered by start time.  Event records are ignored.
    """
    nodes: Dict[int, SpanNode] = {
        r["id"]: SpanNode(r) for r in records if r["type"] == "span"
    }
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = node.record["parent"]
        if parent is None:
            roots.append(node)
        elif parent in nodes:
            nodes[parent].children.append(node)
        else:
            raise ValueError(
                f"span {node.record['id']} references missing parent {parent}"
            )
    for node in nodes.values():
        node.children.sort(key=lambda c: c.record["start"])
    roots.sort(key=lambda c: c.record["start"])
    return roots
