"""The per-run instrumentation context threaded through ``cluster()``.

One :class:`Instrumentation` bundles a :class:`~repro.obs.tracer.Tracer`
and a :class:`~repro.obs.metrics.MetricsRegistry` for one clustering run.
It travels the same conduit :class:`~repro.resilience.faults.FaultPlan`
does: :func:`repro.core.api.cluster` attaches it to the simulated
scheduler, and every layer that already receives ``sched`` — the five
BEST-MOVES engines, the multilevel drivers, the atomics — reaches it via
:func:`instr_of` without signature changes.

Cheapness contract (ISSUE 2): with instrumentation absent *or* constructed
but disabled, every hook degenerates to an attribute load and an
``enabled`` check — no span objects, no dict churn, no metric lookups —
verified by ``benchmarks/bench_obs_overhead.py`` (<3% wall overhead).

Standard metric names (DESIGN.md §7) are module constants so tests,
benches, and dashboards never hardcode strings twice.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_SPAN, Tracer

# ---------------------------------------------------------------------------
# standard metric names
# ---------------------------------------------------------------------------
#: Vertex moves applied, labeled by engine (counter).
M_MOVES = "repro_moves_total"
#: BEST-MOVES rounds executed, labeled by engine (counter).
M_ROUNDS = "repro_rounds_total"
#: Objective improvement per round, labeled by engine (histogram).
M_ROUND_GAIN = "repro_round_gain"
#: Frontier size |V'| at the start of each round (histogram).
M_FRONTIER = "repro_frontier_size"
#: Coarse/fine vertex ratio per compression (histogram).
M_COMPRESSION = "repro_compression_ratio"
#: Wall seconds per coarsening level, including compression (histogram).
M_LEVEL_SECONDS = "repro_level_seconds"
#: CAS retries charged by contention windows (counter).
M_CAS_RETRIES = "repro_cas_retries_total"
#: Atomic update attempts issued by fetch-and-add windows (counter).
M_CAS_ATTEMPTS = "repro_cas_attempts_total"
#: Injected CAS failures from the resilience fault plan (counter).
M_CAS_INJECTED = "repro_cas_injected_failures_total"
#: Queue length on the hottest contended location per atomic window
#: (histogram) — the "twitter contention" probe (Appendix C).
M_ATOMIC_QUEUE = "repro_atomic_queue_depth"
#: Linear-probe chain length per parallel hash-table insert (histogram).
M_HASH_PROBES = "repro_hash_probe_length"
#: Table doublings needed per parallel aggregation (histogram).
M_HASH_RESIZES = "repro_hash_resizes"
#: Fraction of frontier candidates removed as duplicates (histogram).
M_DEDUP_RATE = "repro_frontier_dedup_rate"
#: Duplicate frontier candidates dropped by dedup (counter).
M_DEDUP_HITS = "repro_frontier_dedup_hits_total"
#: Resilience events, labeled by kind: note/degrade/budget-stop/... (counter).
M_RESILIENCE_EVENTS = "repro_resilience_events_total"
#: Final unordered LambdaCC objective F of the run (gauge).
M_OBJECTIVE = "repro_objective_f"
#: Final modularity of the run (gauge).
M_MODULARITY = "repro_modularity"
#: Batch size per best-move kernel invocation, labeled by kernel (histogram).
M_KERNEL_BATCH = "repro_kernel_batch_size"
#: Distinct (vertex, cluster) segments per vectorized reduceat pass (histogram).
M_KERNEL_SEGMENTS = "repro_kernel_segments"
#: Vectorized-kernel falls back to the dict oracle, labeled by site (counter).
M_KERNEL_FALLBACK = "repro_kernel_fallbacks_total"
#: Positions consumed per speculative sweep block (histogram).
M_KERNEL_BLOCK = "repro_kernel_sweep_block"
#: Supervised attempts started, labeled by ladder rung (counter).
M_SUPERVISOR_ATTEMPTS = "repro_supervisor_attempts_total"
#: Supervisor retries of a failed attempt, labeled by reason (counter).
M_SUPERVISOR_RETRIES = "repro_supervisor_retries_total"
#: Ladder descents to a lower rung, labeled by target rung (counter).
M_SUPERVISOR_FALLBACKS = "repro_supervisor_fallbacks_total"
#: Watchdog deadline fires, labeled by scope: run/level (counter).
M_SUPERVISOR_WATCHDOG = "repro_supervisor_watchdog_fires_total"
#: Backoff delay before each supervisor retry, in seconds (histogram).
M_SUPERVISOR_BACKOFF = "repro_supervisor_backoff_seconds"
#: Dynamic update batches applied (counter).
M_DYNAMIC_BATCHES = "repro_dynamic_batches_total"
#: Individual edge updates applied, labeled by op: insert/delete/reweight
#: (counter).
M_DYNAMIC_UPDATES = "repro_dynamic_updates_total"
#: Seed-frontier size per update batch — touched-edge endpoints (histogram).
M_DYNAMIC_SEED = "repro_dynamic_seed_frontier"
#: Vertex moves made by localized refinement, labeled by engine (counter).
M_DYNAMIC_MOVES = "repro_dynamic_moves_total"
#: |incremental F - recomputed F| at the last drift-guard check (gauge).
M_DYNAMIC_DRIFT = "repro_dynamic_drift_abs"
#: Drift-guard escalations to full re-clustering, labeled by reason (counter).
M_DYNAMIC_ESCALATIONS = "repro_dynamic_escalations_total"
#: Serving-facade queries answered, labeled by kind (counter).
M_DYNAMIC_QUERIES = "repro_dynamic_queries_total"
#: Serving-facade op latency in seconds, labeled by op:
#: query/stage/commit/save/audit (histogram).  Fed by ClusterServer.
M_SERVE_LATENCY = "repro_serve_op_seconds"
#: Edge updates applied to the live state since the last snapshot save
#: (gauge) — the serving staleness the SLO spec bounds.
M_SERVE_STALENESS = "repro_serve_staleness_updates"
#: Serving-gateway requests resolved, labeled by kind: read/write and
#: status: ok/shed/expired/rejected (counter).  Every submitted request
#: lands here exactly once — the no-silent-drops accounting invariant.
M_GATEWAY_REQUESTS = "repro_gateway_requests_total"
#: Queue depth observed at each admission decision, labeled by kind:
#: read/write (histogram).
M_GATEWAY_QUEUE = "repro_gateway_queue_depth"
#: Coalesced updates per committed gateway batch (histogram).
M_GATEWAY_BATCH = "repro_gateway_batch_updates"
#: Latest published label epoch index (gauge).
M_GATEWAY_EPOCH = "repro_gateway_epoch"
#: Wall seconds per execution-backend dispatch, labeled by phase:
#: moves/frontier/compress (histogram).  Fed by the process backend.
M_BACKEND_DISPATCH = "repro_backend_dispatch_seconds"
#: Bytes copied into shared-memory segments by the process backend
#: (counter) — graph epochs, state slabs, and scratch slabs.
M_BACKEND_BYTES = "repro_backend_bytes_shared"

#: Latency buckets for M_SERVE_LATENCY: a 1-2.5-5 ladder from 1 µs to
#: 50 s — the default registry ladder starts at 1 ms, far too coarse for
#: sub-millisecond query ops.
SERVE_LATENCY_BUCKETS = tuple(
    m * 10.0**e for e in range(-6, 2) for m in (1.0, 2.5, 5.0)
)

_HELP = {
    M_MOVES: "Vertex moves applied by BEST-MOVES engines",
    M_ROUNDS: "BEST-MOVES rounds executed",
    M_ROUND_GAIN: "Objective improvement per BEST-MOVES round",
    M_FRONTIER: "Frontier size at the start of each round",
    M_COMPRESSION: "Coarse/fine vertex-count ratio per compression",
    M_LEVEL_SECONDS: "Wall seconds spent per coarsening level",
    M_CAS_RETRIES: "CAS retries charged by contention windows",
    M_CAS_ATTEMPTS: "Atomic update attempts issued by fetch-and-add windows",
    M_CAS_INJECTED: "Injected CAS failures from the fault plan",
    M_ATOMIC_QUEUE: "Queue length on the hottest location per atomic window",
    M_HASH_PROBES: "Linear-probe chain length per parallel hash-table insert",
    M_HASH_RESIZES: "Table doublings needed per parallel aggregation",
    M_DEDUP_RATE: "Fraction of frontier candidates removed as duplicates",
    M_DEDUP_HITS: "Duplicate frontier candidates dropped by dedup",
    M_RESILIENCE_EVENTS: "Resilience events by kind",
    M_OBJECTIVE: "Final unordered LambdaCC objective F",
    M_MODULARITY: "Final modularity",
    M_KERNEL_BATCH: "Batch size per best-move kernel invocation",
    M_KERNEL_SEGMENTS: "Distinct (vertex, cluster) segments per reduceat pass",
    M_KERNEL_FALLBACK: "Vectorized-kernel fallbacks to the dict oracle",
    M_KERNEL_BLOCK: "Positions consumed per speculative sweep block",
    M_SUPERVISOR_ATTEMPTS: "Supervised attempts started, by ladder rung",
    M_SUPERVISOR_RETRIES: "Supervisor retries of a failed attempt, by reason",
    M_SUPERVISOR_FALLBACKS: "Ladder descents to a lower rung",
    M_SUPERVISOR_WATCHDOG: "Watchdog deadline fires, by scope",
    M_SUPERVISOR_BACKOFF: "Backoff delay before each supervisor retry",
    M_DYNAMIC_BATCHES: "Dynamic update batches applied",
    M_DYNAMIC_UPDATES: "Individual edge updates applied, by op",
    M_DYNAMIC_SEED: "Seed-frontier size per update batch",
    M_DYNAMIC_MOVES: "Vertex moves made by localized refinement",
    M_DYNAMIC_DRIFT: "Absolute objective drift at the last guard check",
    M_DYNAMIC_ESCALATIONS: "Drift-guard escalations to full re-clustering",
    M_DYNAMIC_QUERIES: "Serving-facade queries answered, by kind",
    M_SERVE_LATENCY: "Serving-facade op latency in seconds, by op",
    M_SERVE_STALENESS: "Updates applied since the last snapshot save",
    M_GATEWAY_REQUESTS: "Serving-gateway requests resolved, by kind and status",
    M_GATEWAY_QUEUE: "Queue depth observed at each gateway admission decision",
    M_GATEWAY_BATCH: "Coalesced updates per committed gateway batch",
    M_GATEWAY_EPOCH: "Latest published label epoch index",
    M_BACKEND_DISPATCH: "Wall seconds per execution-backend dispatch, by phase",
    M_BACKEND_BYTES: "Bytes copied into shared segments by the process backend",
}


class Instrumentation:
    """Tracer + metrics registry for one run (see module docstring).

    ``enabled=False`` keeps the object attachable while making every hook
    a near-free no-op — the configuration the overhead bench measures.
    """

    __slots__ = ("enabled", "tracer", "metrics", "profile")

    def __init__(
        self,
        enabled: bool = True,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profile: bool = False,
    ) -> None:
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profile = profile

    # ------------------------------------------------------------------
    # tracing hooks
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """Open a nested span (no-op handle when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        if self.enabled:
            self.tracer.event(name, **attrs)

    def worker_chunk(
        self,
        worker: int,
        start: float,
        end: float,
        label: str,
        items: int = 0,
        wait: float = 0.0,
        clock: str = "sim",
    ) -> None:
        """Record a worker's chunk interval (no-op when disabled).

        ``clock="sim"`` (default) is a simulated-machine lane;
        ``clock="wall"`` is a real process-backend worker measured on the
        wall clock — rendered as its own process group (pid 2) by the
        Chrome-trace exporter.
        """
        if self.enabled:
            self.tracer.worker_chunk(worker, start, end, label, items, wait, clock)

    # ------------------------------------------------------------------
    # metric hooks
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0, **labels) -> None:
        if self.enabled:
            self.metrics.counter(name, _HELP.get(name, "")).inc(value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.histogram(name, _HELP.get(name, "")).observe(
                value, **labels
            )

    def set_gauge(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.gauge(name, _HELP.get(name, "")).set(value, **labels)

    def record_round(
        self, engine: str, frontier: int, moves: int, gain: float
    ) -> None:
        """One BEST-MOVES round's standard metrics, in one call."""
        if not self.enabled:
            return
        self.count(M_ROUNDS, 1.0, engine=engine)
        if moves:
            self.count(M_MOVES, float(moves), engine=engine)
        self.observe(M_ROUND_GAIN, gain, engine=engine)
        self.observe(M_FRONTIER, float(frontier), engine=engine)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def write_trace(self, path) -> None:
        """Write the span/event trace as JSONL."""
        self.tracer.write_jsonl(path)

    def write_metrics(self, path) -> None:
        """Write metrics; ``.jsonl``/``.json`` get JSONL, else Prometheus."""
        if str(path).endswith((".jsonl", ".json")):
            self.metrics.write_jsonl(path)
        else:
            self.metrics.write_prometheus(path)


#: Shared always-disabled context used when no instrumentation is attached,
#: so call sites never need a None check.
NULL_INSTRUMENTATION = Instrumentation(enabled=False)


def instr_of(sched) -> Instrumentation:
    """The instrumentation attached to ``sched``, or the disabled default.

    Mirrors how the fault-injection hooks ride ``sched.faults``: anything
    holding the scheduler can observe without new plumbing.
    """
    instr = getattr(sched, "instr", None)
    return instr if instr is not None else NULL_INSTRUMENTATION
