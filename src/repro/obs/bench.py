"""Unified bench harness: timing, repeats, baselines, regression compare.

The ``benchmarks/bench_*.py`` scripts used to hand-roll the same loop —
warm up, repeat, keep the best wall time, build rows, print a table.
This module centralizes that machinery and adds the missing half:
machine-readable ``BENCH_<name>.json`` baselines plus a ``compare`` mode
that flags >10% regressions mechanically.

* :func:`time_callable` — warmup + repeat timing, honouring
  ``REPRO_BENCH_REPEATS`` like the table harness does;
* :class:`BenchSuite` — named rows of ``{metric: value}`` written to
  ``BENCH_<name>.json`` (schema ``repro.obs.bench/v1``);
* :func:`compare` — baseline-vs-current report; metric *direction*
  (lower-better for times/bytes, higher-better for objectives/speedups,
  informational otherwise) comes from :func:`metric_direction` and is
  recorded in the baseline so old files stay comparable;
* ``python -m repro.obs.bench`` — ``compare``, ``emit`` (regenerate the
  committed baselines from a deterministic RMAT graph), and
  ``validate-trace`` (the CI smoke gate) subcommands.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

BASELINE_SCHEMA = "repro.obs.bench/v1"

#: Default regression tolerance: flag changes worse than 10%.
DEFAULT_TOLERANCE = 0.10

#: Default directory for committed baselines, relative to the repo root.
DEFAULT_BASELINE_DIR = "benchmarks/baselines"

_LOWER_SUFFIXES = (
    "_seconds",
    "_time",
    "_bytes",
    "_slowdown",
    "_retries",
    "_overhead",
)
_HIGHER_SUFFIXES = ("objective", "modularity", "speedup", "quality", "f1")


def metric_direction(name: str) -> str:
    """``"lower"`` / ``"higher"`` (better) or ``"info"`` (never compared)."""
    if name.endswith(_LOWER_SUFFIXES) or name in ("slowdown", "sim_time"):
        return "lower"
    if name.endswith(_HIGHER_SUFFIXES):
        return "higher"
    return "info"


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------
@dataclass
class TimingStats:
    """Wall-clock samples from :func:`time_callable`."""

    runs: List[float]

    @property
    def best(self) -> float:
        return min(self.runs)

    @property
    def mean(self) -> float:
        return sum(self.runs) / len(self.runs)

    @property
    def repeats(self) -> int:
        return len(self.runs)


def bench_repeats(default: int = 3) -> int:
    """Repeat count, shared with the table harness's env convention."""
    from repro.bench.harness import bench_repeats as _repeats

    return _repeats(default)


def time_callable(
    fn: Callable[[], object],
    repeats: Optional[int] = None,
    warmup: int = 0,
) -> Tuple[object, TimingStats]:
    """Run ``fn`` ``warmup + repeats`` times; keep per-repeat wall times.

    Returns ``(last_result, stats)`` — the *best* (minimum) time is the
    standard low-noise estimator benches should report.
    """
    reps = repeats if repeats is not None else bench_repeats()
    if reps < 1:
        raise ValueError(f"repeats must be >= 1, got {reps}")
    result = None
    for _ in range(warmup):
        fn()
    runs: List[float] = []
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        runs.append(time.perf_counter() - start)
    return result, TimingStats(runs=runs)


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------
@dataclass
class BenchRow:
    """One keyed measurement: comparable metrics plus free-form info."""

    key: str
    metrics: Dict[str, float]
    info: dict = field(default_factory=dict)


class BenchSuite:
    """Collects rows for one bench and writes ``BENCH_<name>.json``."""

    def __init__(self, name: str, meta: Optional[dict] = None) -> None:
        if not name or "/" in name:
            raise ValueError(f"invalid suite name {name!r}")
        self.name = name
        self.meta = dict(meta or {})
        self.rows: List[BenchRow] = []

    def add_row(self, key: str, metrics: Dict[str, float], **info) -> BenchRow:
        if any(r.key == key for r in self.rows):
            raise ValueError(f"duplicate row key {key!r} in suite {self.name}")
        row = BenchRow(
            key=key,
            metrics={k: float(v) for k, v in metrics.items()},
            info=info,
        )
        self.rows.append(row)
        return row

    def payload(self) -> dict:
        meta = dict(self.meta)
        meta.setdefault("python", platform.python_version())
        return {
            "schema": BASELINE_SCHEMA,
            "name": self.name,
            "meta": meta,
            "directions": {
                metric: metric_direction(metric)
                for row in self.rows
                for metric in row.metrics
            },
            "rows": [
                {"key": r.key, "metrics": r.metrics, "info": r.info}
                for r in self.rows
            ],
        }

    def write(self, directory) -> Path:
        """Write ``BENCH_<name>.json`` under ``directory``; returns the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.name}.json"
        with open(path, "w") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def load_baseline(path) -> dict:
    """Load and shape-check one ``BENCH_*.json`` payload."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema {payload.get('schema')!r}"
        )
    for required in ("name", "rows"):
        if required not in payload:
            raise ValueError(f"{path}: baseline missing {required!r}")
    return payload


# ---------------------------------------------------------------------------
# regression compare
# ---------------------------------------------------------------------------
@dataclass
class Regression:
    """One metric that got worse than the tolerance allows."""

    key: str
    metric: str
    baseline: float
    current: float
    change: float  # signed relative change, positive = worse

    def describe(self) -> str:
        return (
            f"{self.key} :: {self.metric}: {self.baseline:g} -> "
            f"{self.current:g} ({self.change:+.1%} worse)"
        )


@dataclass
class CompareReport:
    """Outcome of :func:`compare` (empty ``regressions`` = pass)."""

    suite: str
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines = [
            f"compare[{self.suite}]: {self.compared} metrics compared, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        ]
        for regression in self.regressions:
            lines.append(f"  REGRESSION {regression.describe()}")
        for note in self.improvements:
            lines.append(f"  improved   {note}")
        for note in self.skipped:
            lines.append(f"  skipped    {note}")
        return "\n".join(lines)


def _relative_worsening(direction: str, baseline: float, current: float) -> float:
    """Signed relative change where positive means *worse*."""
    scale = max(abs(baseline), 1e-12)
    delta = (current - baseline) / scale
    return delta if direction == "lower" else -delta


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> CompareReport:
    """Flag every comparable metric that regressed beyond ``tolerance``.

    Only metrics with a lower/higher-better direction participate;
    informational metrics (counts, sizes) never fail a compare.  Rows or
    metrics present in the baseline but missing from the current run are
    reported in ``skipped`` so silent coverage loss is visible.
    """
    report = CompareReport(suite=baseline.get("name", "?"))
    directions = dict(baseline.get("directions") or {})
    current_rows = {row["key"]: row for row in current.get("rows", [])}
    for row in baseline.get("rows", []):
        key = row["key"]
        other = current_rows.get(key)
        if other is None:
            report.skipped.append(f"{key}: row missing from current run")
            continue
        for metric, base_value in row.get("metrics", {}).items():
            direction = directions.get(metric) or metric_direction(metric)
            if direction == "info":
                continue
            if metric not in other.get("metrics", {}):
                report.skipped.append(
                    f"{key} :: {metric}: metric missing from current run"
                )
                continue
            cur_value = float(other["metrics"][metric])
            report.compared += 1
            worsening = _relative_worsening(
                direction, float(base_value), cur_value
            )
            if worsening > tolerance:
                report.regressions.append(
                    Regression(
                        key=key,
                        metric=metric,
                        baseline=float(base_value),
                        current=cur_value,
                        change=worsening,
                    )
                )
            elif worsening < -tolerance:
                report.improvements.append(
                    f"{key} :: {metric}: {base_value:g} -> {cur_value:g} "
                    f"({-worsening:+.1%} better)"
                )
    return report


def compare_files(
    baseline_path, current_path, tolerance: float = DEFAULT_TOLERANCE
) -> CompareReport:
    return compare(
        load_baseline(baseline_path), load_baseline(current_path), tolerance
    )


# ---------------------------------------------------------------------------
# committed-baseline emission (deterministic small-RMAT workloads)
# ---------------------------------------------------------------------------
#: RMAT generator parameters for the baseline workload: small enough to
#: regenerate in seconds, structured enough that every engine does real
#: multilevel work.
BASELINE_RMAT = {"scale": 8, "edge_factor": 8, "seed": 0}
BASELINE_RESOLUTION = 0.05
BASELINE_SEED = 1


def _baseline_graph():
    from repro.generators.rmat import rmat_graph

    spec = BASELINE_RMAT
    return rmat_graph(
        spec["scale"],
        spec["edge_factor"] * 2 ** spec["scale"],
        seed=spec["seed"],
    )


def engines_suite(repeats: int = 3) -> BenchSuite:
    """Every registry engine on the deterministic RMAT graph, one row each.

    The comparable metrics (simulated time, objective) are deterministic
    functions of the seed, so the committed baseline is machine-stable;
    wall seconds ride along as information only.
    """
    from repro.core.config import ClusteringConfig
    from repro.core.engines import ENGINES, multilevel_with_engine
    from repro.core.objective import lambdacc_objective
    from repro.parallel.scheduler import SimulatedScheduler
    from repro.utils.rng import make_rng

    graph = _baseline_graph()
    suite = BenchSuite(
        "engines",
        meta={
            "workload": dict(BASELINE_RMAT),
            "resolution": BASELINE_RESOLUTION,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
    )
    for engine in sorted(ENGINES):
        workers = 1 if engine == "sequential" else 60
        config = ClusteringConfig(
            resolution=BASELINE_RESOLUTION,
            refine=False,
            seed=BASELINE_SEED,
            num_workers=workers,
        )

        def run(engine=engine, config=config):
            sched = SimulatedScheduler(num_workers=config.num_workers)
            assignments, stats = multilevel_with_engine(
                graph,
                BASELINE_RESOLUTION,
                config,
                engine=engine,
                sched=sched,
                rng=make_rng(BASELINE_SEED),
            )
            return assignments, stats, sched

        (assignments, stats, sched), timing = time_callable(
            run, repeats=repeats, warmup=1
        )
        suite.add_row(
            engine,
            metrics={
                "f_objective": lambdacc_objective(
                    graph, assignments, BASELINE_RESOLUTION
                ),
                "sim_time_seconds": sched.simulated_time(workers),
            },
            rounds=stats.total_iterations,
            moves=stats.total_moves,
            levels=stats.num_levels,
            wall_seconds=timing.best,
        )
    return suite


def overhead_suite(repeats: int = 5) -> BenchSuite:
    """Instrumentation overhead on a planted-partition workload.

    Three configurations — no instrumentation, constructed-but-disabled,
    and fully enabled — with the disabled/enabled wall-clock slowdown
    ratios as the comparable metrics.  The ISSUE 2 contract is the
    *disabled* row: <3% slowdown.
    """
    import numpy as np

    from repro.core.api import cluster
    from repro.core.config import ClusteringConfig
    from repro.generators.planted import planted_partition_graph
    from repro.obs.instrument import Instrumentation

    graph = planted_partition_graph(
        num_vertices=2000, intra_degree=8.0, inter_degree=1.0, seed=0
    ).graph
    config = ClusteringConfig(resolution=BASELINE_RESOLUTION, seed=7)

    def run(instrumentation_factory):
        from repro.core.options import RunOptions

        return cluster(
            graph, config,
            RunOptions(instrumentation=instrumentation_factory()),
        )

    base_result, base_timing = time_callable(
        lambda: run(lambda: None), repeats=repeats, warmup=1
    )
    disabled_result, disabled_timing = time_callable(
        lambda: run(lambda: Instrumentation(enabled=False)),
        repeats=repeats,
        warmup=1,
    )
    enabled_result, enabled_timing = time_callable(
        lambda: run(lambda: Instrumentation()), repeats=repeats, warmup=1
    )

    suite = BenchSuite(
        "overhead",
        meta={
            "workload": "planted(n=2000, intra=8, inter=1, seed=0)",
            "resolution": BASELINE_RESOLUTION,
            "repeats": repeats,
        },
    )
    suite.add_row(
        "baseline",
        metrics={"sim_time_seconds": base_result.sim_time()},
        wall_seconds=base_timing.best,
    )
    for key, timing, result in (
        ("disabled", disabled_timing, disabled_result),
        ("enabled", enabled_timing, enabled_result),
    ):
        suite.add_row(
            key,
            metrics={"slowdown": timing.best / base_timing.best},
            wall_seconds=timing.best,
            identical=bool(
                np.array_equal(result.assignments, base_result.assignments)
            ),
            sim_identical=bool(result.sim_time() == base_result.sim_time()),
        )
    return suite


def snapshot_suite(repeats: int = 3) -> BenchSuite:
    """The PR3 telemetry snapshot: quality metrics plus telemetry coverage.

    One fully-instrumented relaxed-engine run on the deterministic RMAT
    workload.  The comparable metrics are the usual simulated time and
    objective; the *info* fields record how much telemetry the run
    produced (worker chunks and lanes, CAS attempts, dedup hits, probe
    samples) so a refactor that silently stops emitting any of it shows
    up as a diff in the committed ``BENCH_PR3.json``.
    """
    from repro.core.api import cluster
    from repro.core.config import ClusteringConfig
    from repro.obs.instrument import (
        M_CAS_ATTEMPTS,
        M_DEDUP_HITS,
        M_HASH_PROBES,
        Instrumentation,
    )

    graph = _baseline_graph()
    config = ClusteringConfig(
        resolution=BASELINE_RESOLUTION, refine=False, seed=BASELINE_SEED
    )

    def run():
        instr = Instrumentation()
        from repro.core.options import RunOptions

        return cluster(graph, config, RunOptions(instrumentation=instr)), instr

    (result, instr), timing = time_callable(run, repeats=repeats, warmup=1)
    workers = instr.tracer.worker_records()
    probes = instr.metrics.get(M_HASH_PROBES)
    cas = instr.metrics.get(M_CAS_ATTEMPTS)
    dedup = instr.metrics.get(M_DEDUP_HITS)
    suite = BenchSuite(
        "PR3",
        meta={
            "workload": dict(BASELINE_RMAT),
            "resolution": BASELINE_RESOLUTION,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
    )
    suite.add_row(
        "relaxed-instrumented",
        metrics={
            "f_objective": result.f_objective,
            "sim_time_seconds": result.sim_time(),
        },
        wall_seconds=timing.best,
        rounds=result.rounds,
        worker_chunks=len(workers),
        worker_lanes=len({w["worker"] for w in workers}),
        cas_attempts=int(cas.total()) if cas else 0,
        dedup_hits=int(dedup.total()) if dedup else 0,
        probe_samples=probes.total_count() if probes else 0,
    )
    return suite


def kernels_suite(repeats: int = 3) -> BenchSuite:
    """The PR4 kernel snapshot: vectorized-vs-reference speedups + parity.

    Three kinds of rows:

    * ``kernel-eval-*`` — a microbenchmark of the kernel layer alone:
      one full-frontier ``batch_moves`` call on a singleton state, timed
      for both kernels.  ``kernel_speedup`` (higher-better) is the
      headline acceptance metric; ``identical`` records bit-equality of
      the returned targets and gains.
    * ``<engine>-scale8-<kernel>`` — end-to-end engine runs whose
      comparable metrics (``f_objective``, ``sim_time_seconds``) must
      match *exactly* across kernels — the cost model never sees which
      kernel evaluated the moves (DESIGN.md §8).
    * ``relaxed-scale12-vectorized`` — a larger run riding along as
      wall-clock evidence that the default kernel scales.
    """
    import numpy as np

    from repro.core.config import ClusteringConfig
    from repro.core.engines import multilevel_with_engine
    from repro.core.objective import lambdacc_objective
    from repro.core.state import ClusterState
    from repro.generators.rmat import rmat_graph
    from repro.kernels.reference import reference_batch_moves
    from repro.kernels.vectorized import vectorized_batch_moves
    from repro.parallel.scheduler import SimulatedScheduler
    from repro.utils.rng import make_rng

    suite = BenchSuite(
        "PR4",
        meta={
            "workload": dict(BASELINE_RMAT),
            "resolution": BASELINE_RESOLUTION,
            "repeats": repeats,
        },
    )

    # --- kernel-eval microbenchmark: the layer the PR vectorizes -------
    for scale in (BASELINE_RMAT["scale"], 12):
        graph = rmat_graph(
            scale, BASELINE_RMAT["edge_factor"] * 2**scale,
            seed=BASELINE_RMAT["seed"],
        )
        batch = np.arange(graph.num_vertices, dtype=np.int64)

        def eval_with(kernel_fn, graph=graph, batch=batch):
            state = ClusterState.singletons(graph)
            return kernel_fn(graph, state, batch, BASELINE_RESOLUTION)

        (ref_targets, ref_gains), ref_timing = time_callable(
            lambda: eval_with(reference_batch_moves),
            repeats=max(repeats, 5), warmup=1,
        )
        (vec_targets, vec_gains), vec_timing = time_callable(
            lambda: eval_with(vectorized_batch_moves),
            repeats=max(repeats, 5), warmup=1,
        )
        suite.add_row(
            f"kernel-eval-scale{scale}",
            metrics={"kernel_speedup": ref_timing.best / vec_timing.best},
            vertices=graph.num_vertices,
            edges=graph.num_edges,
            reference_seconds=ref_timing.best,
            vectorized_seconds=vec_timing.best,
            identical=bool(
                np.array_equal(ref_targets, vec_targets)
                and np.array_equal(ref_gains, vec_gains)
            ),
        )

    # --- end-to-end engine parity rows ---------------------------------
    def engine_run(graph, engine, kernel, workers):
        config = ClusteringConfig(
            resolution=BASELINE_RESOLUTION,
            refine=False,
            seed=BASELINE_SEED,
            num_workers=workers,
            kernel=kernel,
        )
        sched = SimulatedScheduler(num_workers=workers)
        assignments, stats = multilevel_with_engine(
            graph,
            BASELINE_RESOLUTION,
            config,
            engine=engine,
            sched=sched,
            rng=make_rng(BASELINE_SEED),
        )
        return assignments, sched.simulated_time(workers)

    graph8 = _baseline_graph()
    for engine in ("relaxed", "prefix"):
        reference_assignments = None
        for kernel in ("reference", "vectorized"):
            (assignments, sim_time), timing = time_callable(
                lambda: engine_run(graph8, engine, kernel, workers=60),
                repeats=repeats, warmup=1,
            )
            row = {
                "metrics": {
                    "f_objective": lambdacc_objective(
                        graph8, assignments, BASELINE_RESOLUTION
                    ),
                    "sim_time_seconds": sim_time,
                },
                "wall_seconds": timing.best,
            }
            if kernel == "reference":
                reference_assignments = assignments
            else:
                row["identical"] = bool(
                    np.array_equal(assignments, reference_assignments)
                )
            suite.add_row(f"{engine}-scale8-{kernel}", **row)

    # --- scale-12 default-kernel run (acceptance: well under 60 s) -----
    graph12 = rmat_graph(
        12, BASELINE_RMAT["edge_factor"] * 2**12, seed=BASELINE_RMAT["seed"]
    )
    (assignments, sim_time), timing = time_callable(
        lambda: engine_run(graph12, "relaxed", "vectorized", workers=60),
        repeats=repeats, warmup=1,
    )
    suite.add_row(
        "relaxed-scale12-vectorized",
        metrics={
            "f_objective": lambdacc_objective(
                graph12, assignments, BASELINE_RESOLUTION
            ),
            "sim_time_seconds": sim_time,
        },
        wall_seconds=timing.best,
        vertices=graph12.num_vertices,
        edges=graph12.num_edges,
    )
    return suite


def emit_baselines(out_dir=DEFAULT_BASELINE_DIR, repeats: int = 3) -> List[Path]:
    """Regenerate the committed ``BENCH_engines.json`` / ``BENCH_overhead.json``."""
    paths = [
        engines_suite(repeats=repeats).write(out_dir),
        overhead_suite(repeats=max(repeats, 5)).write(out_dir),
    ]
    return paths


# ---------------------------------------------------------------------------
# CLI: python -m repro.obs.bench <compare|emit|validate-trace>
# ---------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.bench",
        description="bench baselines: emit, compare, and trace validation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="flag regressions between two baselines")
    p.add_argument("baseline", help="BENCH_*.json to compare against")
    p.add_argument("current", help="BENCH_*.json from the current run")
    p.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative worsening that counts as a regression (default 0.10)",
    )

    p = sub.add_parser("emit", help="regenerate the committed baselines")
    p.add_argument("--out", default=DEFAULT_BASELINE_DIR, metavar="DIR")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--snapshot",
        action="store_true",
        help="also write the repo-root BENCH_PR3.json / BENCH_PR4.json "
             "snapshots",
    )
    p.add_argument(
        "--snapshot-only",
        action="store_true",
        help="write only the PR snapshots (skip the baseline suites)",
    )
    p.add_argument("--snapshot-dir", default=".", metavar="DIR")

    p = sub.add_parser("validate-trace", help="schema-check a trace JSONL file")
    p.add_argument("trace", help="trace JSONL file to validate")

    args = parser.parse_args(argv)
    if args.command == "compare":
        report = compare_files(args.baseline, args.current, args.tolerance)
        print(report.describe())
        return 0 if report.ok else 1
    if args.command == "emit":
        if not args.snapshot_only:
            for path in emit_baselines(args.out, repeats=args.repeats):
                print(f"wrote {path}")
        if args.snapshot or args.snapshot_only:
            for suite in (
                snapshot_suite(repeats=args.repeats),
                kernels_suite(repeats=args.repeats),
            ):
                path = suite.write(args.snapshot_dir)
                print(f"wrote {path}")
        return 0
    if args.command == "validate-trace":
        from repro.obs.schema import TraceSchemaError, validate_trace_file

        try:
            validate_trace_file(args.trace)
        except TraceSchemaError as exc:
            for problem in exc.problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.trace}: valid trace")
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
