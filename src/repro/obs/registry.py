"""Cross-run regression registry: ``benchmarks/runs.jsonl``.

An append-only JSONL file of run records — one line per registered
clustering run — so regressions are caught *across* invocations, not just
within one bench process.  Each record carries the same comparable
metrics the bench baselines use (wall seconds, simulated seconds, the F
objective, modularity) plus enough workload identity (graph, engine,
resolution, seed, workers) to know when two runs are comparable at all.

:func:`diff_runs` reuses the bench harness's :func:`repro.obs.bench.
compare` gate, run twice with different tolerances: timing metrics at the
standard 10% and quality metrics at 0.1% — a wall-clock wobble is noise,
an objective drop is a bug.

The CLI surface is ``repro cluster --register runs.jsonl [--run-id ID]``
to append and ``repro obs report`` / ``repro obs diff`` to read back.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List, Optional

from repro.obs.bench import CompareReport, compare

RUNS_SCHEMA = "repro.obs.runs/v1"

#: Relative worsening on wall/simulated seconds that flags a regression.
WALL_TOLERANCE = 0.10

#: Relative worsening on objective/modularity that flags a regression.
OBJECTIVE_TOLERANCE = 0.001

#: Metrics compared at :data:`WALL_TOLERANCE` (lower is better).
TIMING_METRICS = ("wall_seconds", "sim_time_seconds")

#: Metrics compared at :data:`OBJECTIVE_TOLERANCE` (higher is better).
QUALITY_METRICS = ("f_objective", "modularity")

_REQUIRED_KEYS = ("schema", "run_id", "timestamp", "workload", "metrics")


class RunRegistryError(Exception):
    """A runs.jsonl record or lookup failed validation."""


def validate_run_record(record: dict) -> List[str]:
    """Schema problems in one run record (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    for key in _REQUIRED_KEYS:
        if key not in record:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if record["schema"] != RUNS_SCHEMA:
        problems.append(f"unsupported schema {record['schema']!r}")
    if not isinstance(record["run_id"], str) or not record["run_id"]:
        problems.append("run_id must be a non-empty string")
    if not isinstance(record["workload"], dict):
        problems.append("workload must be an object")
    metrics = record["metrics"]
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for name in TIMING_METRICS + QUALITY_METRICS:
            if name not in metrics:
                problems.append(f"metrics missing {name!r}")
            elif not isinstance(metrics[name], (int, float)):
                problems.append(f"metrics[{name!r}] must be a number")
    return problems


def make_record(
    run_id: str,
    workload: dict,
    metrics: dict,
    info: Optional[dict] = None,
    timestamp: Optional[float] = None,
) -> dict:
    """Assemble and validate one registry record from its parts.

    ``workload`` may carry arbitrary extra identity keys beyond the
    standard ones — the dynamic subsystem tags its runs with a nested
    ``update_batch`` object (batches, updates per op, escalations) so
    ``repro obs diff`` only compares dynamic runs against dynamic runs.
    """
    record = {
        "schema": RUNS_SCHEMA,
        "run_id": run_id,
        "timestamp": float(time.time() if timestamp is None else timestamp),
        "workload": dict(workload),
        "metrics": dict(metrics),
        "info": dict(info or {}),
    }
    problems = validate_run_record(record)
    if problems:
        raise RunRegistryError("; ".join(problems))
    return record


def make_run_record(
    result,
    run_id: str,
    graph: str,
    engine: Optional[str] = None,
    timestamp: Optional[float] = None,
    workload_extra: Optional[dict] = None,
) -> dict:
    """Build a registry record from a :class:`~repro.core.result.
    ClusterResult`."""
    config = result.config
    workload = {
        "graph": graph,
        "engine": engine or ("relaxed" if config.parallel else "sequential"),
        "objective": config.objective.value,
        "resolution": float(result.resolution),
        "seed": config.seed,
        "workers": int(config.resolved_workers),
        "kernel": config.kernel,
    }
    if workload_extra:
        workload.update(workload_extra)
    return make_record(
        run_id,
        workload,
        metrics={
            "wall_seconds": float(result.wall_seconds),
            "sim_time_seconds": float(result.sim_time()),
            "f_objective": float(result.f_objective),
            "modularity": float(result.modularity),
        },
        info={
            "num_clusters": int(result.num_clusters),
            "rounds": int(result.rounds),
            "degraded": bool(result.degraded),
        },
        timestamp=timestamp,
    )


def append_run(path, record: dict) -> None:
    """Validate and append one record to the registry (append-only).

    The append is crash-safe: the new content is written to a temp file
    in the same directory, fsynced, and renamed over the registry, so a
    run killed mid-append can never leave a torn JSON line that poisons
    ``repro obs report``/``diff``.  A torn tail left by some *earlier*
    non-atomic writer (no trailing newline — the newline is the commit
    marker) is dropped rather than propagated.  Registries are small
    (one line per registered run), so the rewrite-on-append cost is noise
    next to the clustering run being registered.
    """
    problems = validate_run_record(record)
    if problems:
        raise RunRegistryError(
            f"refusing to register invalid run record: {'; '.join(problems)}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    try:
        existing = path.read_bytes()
    except FileNotFoundError:
        existing = b""
    if existing and not existing.endswith(b"\n"):
        existing = existing[: existing.rfind(b"\n") + 1]
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(existing + line)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    try:
        # Persist the rename itself, not just the file contents.
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - directory fsync is best-effort
        pass


def load_runs(path) -> List[dict]:
    """All valid records in the registry, oldest first.

    Invalid lines raise — an append-only registry should never contain
    them, and silently dropping records would hide exactly the kind of
    corruption the schema exists to catch.
    """
    records: List[dict] = []
    with open(path) as handle:
        for index, line in enumerate(handle):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RunRegistryError(f"line {index}: invalid JSON ({exc})")
            problems = validate_run_record(record)
            if problems:
                raise RunRegistryError(f"line {index}: {'; '.join(problems)}")
            records.append(record)
    return records


def find_run(records: List[dict], run_id: str) -> dict:
    """The most recent record with ``run_id`` (latest wins on reuse)."""
    for record in reversed(records):
        if record["run_id"] == run_id:
            return record
    known = ", ".join(sorted({r["run_id"] for r in records})) or "<none>"
    raise RunRegistryError(f"run id {run_id!r} not in registry (have: {known})")


def _as_baseline(record: dict, metrics: tuple, direction: str) -> dict:
    """Shape one run record as a single-row bench baseline payload."""
    from repro.obs.bench import BASELINE_SCHEMA

    return {
        "schema": BASELINE_SCHEMA,
        "name": "runs",
        "directions": {name: direction for name in metrics},
        "rows": [
            {
                "key": record["run_id"],
                "metrics": {
                    name: record["metrics"][name]
                    for name in metrics
                    if name in record["metrics"]
                },
                "info": record.get("info", {}),
            }
        ],
    }


def diff_runs(
    baseline: dict,
    current: dict,
    wall_tolerance: float = WALL_TOLERANCE,
    objective_tolerance: float = OBJECTIVE_TOLERANCE,
) -> CompareReport:
    """Compare two run records; regressions fail (``report.ok``).

    The current record's row key is rewritten to the baseline's so the
    bench compare machinery pairs them up; workload mismatches are
    surfaced in ``skipped`` rather than silently compared.
    """
    report = CompareReport(suite="runs")
    if baseline.get("workload") != current.get("workload"):
        report.skipped.append(
            f"workloads differ: {baseline.get('workload')} vs "
            f"{current.get('workload')} (metrics compared anyway)"
        )
    current_aligned = dict(current, run_id=baseline["run_id"])
    for metrics, direction, tolerance in (
        (TIMING_METRICS, "lower", wall_tolerance),
        (QUALITY_METRICS, "higher", objective_tolerance),
    ):
        partial = compare(
            _as_baseline(baseline, metrics, direction),
            _as_baseline(current_aligned, metrics, direction),
            tolerance=tolerance,
        )
        report.regressions.extend(partial.regressions)
        report.improvements.extend(partial.improvements)
        report.skipped.extend(partial.skipped)
        report.compared += partial.compared
    return report
