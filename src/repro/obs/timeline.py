"""Chrome-trace-event export: load a run's trace in Perfetto.

Converts the JSONL trace written by :class:`repro.obs.tracer.Tracer` into
the Chrome trace event format (the ``{"traceEvents": [...]}`` JSON that
``chrome://tracing`` and https://ui.perfetto.dev load directly).  Two
process groups separate the two clocks the trace mixes:

* **pid 0 — span tree (wall clock):** every ``run → level → phase →
  round`` span becomes a complete (``"X"``) event on one track; Perfetto
  nests them by interval containment, giving the familiar flame view of
  where wall time went;
* **pid 1 — worker lanes (simulated clock):** every ``worker`` chunk
  recorded by the scheduler's :class:`~repro.parallel.scheduler.
  WorkerTimeline` becomes an ``"X"`` event on the thread matching its
  worker id, so stragglers, barriers, and idle gaps are visible per lane.
  Each chunk carries its vertex count and the idle wait that preceded it
  in ``args``;
* **pid 2 — backend workers (wall clock):** ``worker`` chunks tagged
  ``clock: "wall"`` are real OS workers of the process execution backend
  (DESIGN.md §13), measured on the wall clock — shown beside the
  simulated lanes so modeled and actual parallelism can be compared
  shard for shard.

The clocks are not on a shared axis — wall seconds and simulated seconds
differ by orders of magnitude — which is exactly why they get separate
process groups rather than one merged view.

Timestamps are microseconds (the format's unit); all groups are shifted
to start at zero.
"""

from __future__ import annotations

import json
from typing import List, Optional

#: Process ids for the three clock domains.
PID_SPANS = 0
PID_WORKERS = 1
PID_BACKEND = 2

_US = 1e6  # seconds -> microseconds


def _metadata(pid: int, tid: Optional[int], name: str, key: str) -> dict:
    event = {
        "ph": "M",
        "pid": pid,
        "name": key,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def chrome_trace_events(records: List[dict]) -> List[dict]:
    """Chrome ``traceEvents`` for one trace's span/worker records.

    Event records are carried over as instant (``"i"``) events on the
    span track so fault injections and truncation markers stay visible.
    """
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    chunks = [r for r in records if r.get("type") == "worker"]
    workers = [c for c in chunks if c.get("clock", "sim") == "sim"]
    backend = [c for c in chunks if c.get("clock") == "wall"]

    out: List[dict] = [
        _metadata(PID_SPANS, None, "span tree (wall clock)", "process_name"),
        _metadata(PID_SPANS, 0, "run", "thread_name"),
    ]
    span_shift = min((s["start"] for s in spans), default=0.0)
    for span in sorted(spans, key=lambda s: (s["start"], s["id"])):
        out.append(
            {
                "ph": "X",
                "pid": PID_SPANS,
                "tid": 0,
                "name": span["name"],
                "ts": (span["start"] - span_shift) * _US,
                "dur": (span["wall_seconds"] or 0.0) * _US,
                "args": dict(span.get("attrs") or {}, span_id=span["id"]),
            }
        )
    for event in events:
        out.append(
            {
                "ph": "i",
                "s": "p",  # process-scoped instant
                "pid": PID_SPANS,
                "tid": 0,
                "name": event["name"],
                "ts": (event["t"] - span_shift) * _US,
                "args": dict(event.get("attrs") or {}),
            }
        )

    if workers:
        out.append(
            _metadata(
                PID_WORKERS, None, "workers (simulated clock)", "process_name"
            )
        )
        worker_shift = min(w["start"] for w in workers)
        for lane in sorted({w["worker"] for w in workers}):
            out.append(
                _metadata(PID_WORKERS, lane, f"worker {lane}", "thread_name")
            )
        for chunk in sorted(
            workers, key=lambda w: (w["worker"], w["start"], w["id"])
        ):
            out.append(
                {
                    "ph": "X",
                    "pid": PID_WORKERS,
                    "tid": chunk["worker"],
                    "name": chunk["label"],
                    "ts": (chunk["start"] - worker_shift) * _US,
                    "dur": (chunk["end"] - chunk["start"]) * _US,
                    "args": {
                        "items": chunk["items"],
                        "wait_seconds": chunk["wait"],
                        "span_id": chunk["span"],
                    },
                }
            )

    if backend:
        out.append(
            _metadata(
                PID_BACKEND, None, "backend workers (wall clock)", "process_name"
            )
        )
        backend_shift = min(c["start"] for c in backend)
        for lane in sorted({c["worker"] for c in backend}):
            out.append(
                _metadata(
                    PID_BACKEND, lane, f"backend worker {lane}", "thread_name"
                )
            )
        for chunk in sorted(
            backend, key=lambda c: (c["worker"], c["start"], c["id"])
        ):
            out.append(
                {
                    "ph": "X",
                    "pid": PID_BACKEND,
                    "tid": chunk["worker"],
                    "name": chunk["label"],
                    "ts": (chunk["start"] - backend_shift) * _US,
                    "dur": (chunk["end"] - chunk["start"]) * _US,
                    "args": {
                        "items": chunk["items"],
                        "wait_seconds": chunk["wait"],
                        "span_id": chunk["span"],
                    },
                }
            )
    return out


def chrome_trace(records: List[dict]) -> dict:
    """Full Chrome trace document for ``records`` (validated first)."""
    from repro.obs.schema import TraceSchemaError, validate_trace_records

    problems = validate_trace_records(records)
    if problems:
        raise TraceSchemaError(problems)
    return {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }


def load_trace_records(path) -> List[dict]:
    """Read one trace-JSONL file into its record list."""
    records = []
    with open(path) as handle:
        for line in handle:
            if line.strip():
                records.append(json.loads(line))
    return records


def write_chrome_trace(trace_path, out_path) -> dict:
    """Convert ``trace_path`` (JSONL) to ``out_path`` (Chrome JSON).

    Returns the document; raises :class:`~repro.obs.schema.
    TraceSchemaError` when the input trace is invalid.
    """
    document = chrome_trace(load_trace_records(trace_path))
    with open(out_path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document
