"""Self-contained HTML observability report (``repro obs report --html``).

One file, zero external fetches: inline CSS, inline SVG charts, no
JavaScript.  The artifact you attach to a regression ticket — it renders
anywhere, including from a sandboxed attachment viewer.

Sections (each skipped cleanly when its input is absent):

* **Findings** — the doctor's health-rule verdicts, worst first, with
  icon + label severity chips (never color alone).
* **Serving SLOs** — per-op latency table (count, p50, p95, target).
* **Span waterfall** — completion-ordered trace spans on the wall
  clock, depth encoded as an ordinal single-hue ramp.
* **Worker lanes** — per-lane busy/wait/utilization summary of the
  simulated scheduler's timeline records.
* **Quality panels** — round-gain, move-churn, and frontier-decay
  curves; per-level objective deltas; per-cluster λ-objective
  decomposition (size histogram, worst clusters).
* **Registry** — recent ``runs.jsonl`` rows for context.

Charts follow the repo's chart conventions: one axis, thin marks,
recessive hairline grid, text in ink tokens (never series color), a
light and dark theme from the same validated palette.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.doctor import DoctorResult

#: Validated palette (see DESIGN.md §12): categorical slot 1 carries
#: every single-series chart; the ordinal blue ramp encodes span depth;
#: status colors are reserved for severities and always paired with an
#: icon + label.
_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --axis: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
  --depth-0: #184f95;
  --depth-1: #2a78d6;
  --depth-2: #5598e7;
  --depth-3: #86b6ef;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --axis: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --depth-0: #86b6ef;
    --depth-1: #5598e7;
    --depth-2: #3987e5;
    --depth-3: #1c5cab;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 10px; }
.meta { color: var(--text-secondary); margin: 0 0 20px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin-bottom: 16px;
}
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 5px 10px 5px 0;
  border-bottom: 1px solid var(--gridline);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 600; }
td.num, th.num { text-align: right; }
.chip { font-weight: 600; white-space: nowrap; }
.chip.ok { color: var(--status-good); }
.chip.warn { color: var(--status-warning); }
.chip.crit { color: var(--status-critical); }
.skip { color: var(--text-muted); }
.note { color: var(--text-muted); font-size: 12px; margin: 8px 0 0; }
svg text { fill: var(--text-secondary); font-size: 10px; }
svg .lbl { fill: var(--text-primary); font-size: 11px; }
.grid { display: flex; flex-wrap: wrap; gap: 24px; }
.panel h3 { font-size: 13px; margin: 0 0 6px; }
footer { color: var(--text-muted); font-size: 12px; margin-top: 8px; }
"""

#: Severity chip: icon + label, never color alone.
_CHIPS = {
    "ok": ("✓", "ok", "ok"),
    "warn": ("⚠", "warn", "warn"),
    "crit": ("✗", "crit", "crit"),
}

MAX_WATERFALL_ROWS = 48
MAX_WORKER_ROWS = 16
MAX_REGISTRY_ROWS = 12


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _num(value, digits: int = 6) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "–"
    return f"{seconds * 1e3:.3g} ms"


def _chip(severity: Optional[str]) -> str:
    if severity is None:
        return '<span class="skip">–</span>'
    icon, label, cls = _CHIPS.get(severity, ("?", severity, "skip"))
    return f'<span class="chip {cls}">{icon} {label}</span>'


# ----------------------------------------------------------------------
# SVG helpers
# ----------------------------------------------------------------------

def _svg_line(
    values: Sequence[float],
    width: int = 300,
    height: int = 110,
    x_label: str = "",
) -> str:
    """Single-series line: polyline in slot 1, hairline grid, one axis."""
    if not values:
        return '<p class="note">no data</p>'
    pad_l, pad_r, pad_t, pad_b = 44, 8, 8, 18
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    points = []
    for i, v in enumerate(values):
        x = pad_l + (plot_w * i / max(n - 1, 1))
        y = pad_t + plot_h * (1.0 - (v - lo) / span)
        points.append(f"{x:.1f},{y:.1f}")
    grid = []
    for frac, value in ((0.0, hi), (0.5, lo + span / 2), (1.0, lo)):
        y = pad_t + plot_h * frac
        grid.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" '
            f'y2="{y:.1f}" stroke="var(--gridline)" stroke-width="1"/>'
            f'<text x="{pad_l - 4}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_num(value, 3)}</text>'
        )
    x_text = (
        f'<text x="{pad_l + plot_w / 2:.1f}" y="{height - 4}" '
        f'text-anchor="middle">{_esc(x_label)}</text>'
        if x_label else ""
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
        + "".join(grid)
        + f'<polyline points="{" ".join(points)}" fill="none" '
        f'stroke="var(--series-1)" stroke-width="2" '
        f'stroke-linejoin="round"/>'
        + x_text
        + "</svg>"
    )


def _svg_bars(
    rows: Sequence[dict],
    width: int = 300,
    height: int = 120,
) -> str:
    """Vertical bars from ``{label, value}`` rows, slot-1 fill."""
    if not rows:
        return '<p class="note">no data</p>'
    pad_l, pad_r, pad_t, pad_b = 44, 8, 8, 20
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    hi = max(r["value"] for r in rows) or 1
    n = len(rows)
    slot = plot_w / n
    bar_w = max(slot - 2.0, 1.0)  # 2px surface gap between fills
    parts = [
        f'<line x1="{pad_l}" y1="{pad_t + plot_h}" '
        f'x2="{width - pad_r}" y2="{pad_t + plot_h}" '
        f'stroke="var(--axis)" stroke-width="1"/>'
        f'<text x="{pad_l - 4}" y="{pad_t + 3}" '
        f'text-anchor="end">{_num(hi, 3)}</text>'
    ]
    for i, row in enumerate(rows):
        h = plot_h * row["value"] / hi
        x = pad_l + i * slot + 1.0
        y = pad_t + plot_h - h
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
            f'height="{h:.1f}" rx="2" fill="var(--series-1)"/>'
        )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{height - 6}" '
            f'text-anchor="middle">{_esc(row["label"])}</text>'
        )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">' + "".join(parts) + "</svg>"
    )


def _pick_waterfall(spans: Sequence[dict]) -> List[dict]:
    """Keep the shallow structure plus the longest deep spans."""
    if len(spans) <= MAX_WATERFALL_ROWS:
        keep = list(spans)
    else:
        ordered = sorted(
            spans,
            key=lambda s: (s.get("depth", 0), -float(s.get("wall_seconds", 0))),
        )
        keep = ordered[:MAX_WATERFALL_ROWS]
    keep.sort(key=lambda s: (float(s.get("start", 0.0)), s.get("id", 0)))
    return keep


def _span_label(span: dict) -> str:
    attrs = span.get("attrs", {})
    name = span.get("name", "span")
    for key in ("phase", "level", "engine", "iteration", "batch"):
        if key in attrs:
            return f"{name} {key}={attrs[key]}"
    return name


def _svg_waterfall(spans: Sequence[dict], width: int = 1000) -> str:
    rows = _pick_waterfall(spans)
    if not rows:
        return '<p class="note">no spans</p>'
    row_h = 16
    pad_t = 4
    height = pad_t + row_h * len(rows) + 16
    label_w = 240
    plot_w = width - label_w - 60
    total = max(
        float(s.get("start", 0.0)) + float(s.get("wall_seconds", 0.0))
        for s in rows
    ) or 1.0
    parts = []
    for frac in (0.25, 0.5, 0.75, 1.0):
        x = label_w + plot_w * frac
        parts.append(
            f'<line x1="{x:.1f}" y1="{pad_t}" x2="{x:.1f}" '
            f'y2="{pad_t + row_h * len(rows)}" '
            f'stroke="var(--gridline)" stroke-width="1"/>'
            f'<text x="{x:.1f}" y="{pad_t + row_h * len(rows) + 12}" '
            f'text-anchor="middle">{_num(total * frac, 3)}s</text>'
        )
    for i, span in enumerate(rows):
        y = pad_t + i * row_h
        depth = min(int(span.get("depth", 0)), 3)
        start = float(span.get("start", 0.0))
        wall = float(span.get("wall_seconds", 0.0))
        x = label_w + plot_w * start / total
        w = max(plot_w * wall / total, 1.5)
        indent = 8 * min(int(span.get("depth", 0)), 8)
        parts.append(
            f'<text class="lbl" x="{4 + indent}" y="{y + 12}">'
            f"{_esc(_span_label(span))}</text>"
            f'<rect x="{x:.1f}" y="{y + 3}" width="{w:.1f}" '
            f'height="{row_h - 6}" rx="2" fill="var(--depth-{depth})"/>'
        )
    svg = (
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'height="{height}" role="img" '
        f'preserveAspectRatio="xMinYMin meet">' + "".join(parts) + "</svg>"
    )
    note = ""
    if len(spans) > len(rows):
        note = (
            f'<p class="note">showing {len(rows)} of {len(spans)} spans '
            f"(shallowest structure + longest leaves).</p>"
        )
    return svg + note


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------

def _findings_section(doctor: DoctorResult) -> str:
    report = doctor.report
    rank = {"crit": 0, "warn": 1, "ok": 2}
    ordered = sorted(
        report.findings, key=lambda f: (rank.get(f.severity, 3), f.rule)
    )
    rows = []
    for finding in ordered:
        rows.append(
            "<tr>"
            f"<td>{_chip(finding.severity)}</td>"
            f"<td>{_esc(finding.rule)}</td>"
            f"<td>{_esc(finding.message)}</td>"
            "</tr>"
        )
    for note in report.skipped:
        rows.append(
            f'<tr class="skip"><td>skipped</td>'
            f'<td colspan="2">{_esc(note)}</td></tr>'
        )
    if not rows:
        rows.append('<tr><td colspan="3" class="skip">no rules ran</td></tr>')
    summary = (
        f"{report.count('ok')} ok · {report.count('warn')} warn · "
        f"{report.count('crit')} crit · {len(report.skipped)} skipped"
    )
    return (
        "<section><h2>Findings</h2>"
        f'<p class="meta">{_chip(report.worst)} worst · {summary}</p>'
        "<table><thead><tr><th>severity</th><th>rule</th>"
        "<th>detail</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></section>"
    )


def _slo_section(doctor: DoctorResult) -> str:
    if not doctor.slo_rows:
        return ""
    rows = []
    for row in doctor.slo_rows:
        rows.append(
            "<tr>"
            f"<td>{_esc(row['op'])}</td>"
            f"<td class=\"num\">{row['count']}</td>"
            f"<td class=\"num\">{_ms(row['p50'])}</td>"
            f"<td class=\"num\">{_ms(row['p95'])}</td>"
            f"<td class=\"num\">{_ms(row['target'])}</td>"
            f"<td>{_chip(row['severity'])}</td>"
            "</tr>"
        )
    staleness = doctor.facts.get("metric.repro_serve_staleness_updates")
    note = ""
    if staleness is not None:
        note = (
            f'<p class="note">staleness: {staleness:g} updates applied '
            f"since the last snapshot save.</p>"
        )
    return (
        "<section><h2>Serving SLOs</h2>"
        "<table><thead><tr><th>op</th><th class=\"num\">ops</th>"
        "<th class=\"num\">p50</th><th class=\"num\">p95</th>"
        "<th class=\"num\">target p95</th><th>status</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>{note}</section>"
    )


def _waterfall_section(doctor: DoctorResult) -> str:
    spans = doctor.series.get("spans") if doctor.series else None
    if not spans:
        return ""
    return (
        "<section><h2>Span waterfall</h2>"
        '<p class="meta">wall-clock spans; bar hue darkens toward the '
        "root (depth is ordinal).</p>"
        f"{_svg_waterfall(spans)}</section>"
    )


def _workers_section(doctor: DoctorResult) -> str:
    workers = doctor.series.get("workers") if doctor.series else None
    if not workers:
        return ""
    shown = workers[:MAX_WORKER_ROWS]
    rows = []
    for lane in shown:
        pct = lane["utilization"] * 100.0
        bar_w = max(min(lane["utilization"], 1.0) * 120.0, 1.0)
        rows.append(
            "<tr>"
            f"<td>w{_esc(lane['worker'])}</td>"
            f"<td class=\"num\">{lane['chunks']}</td>"
            f"<td class=\"num\">{_num(lane['busy'], 4)}</td>"
            f"<td class=\"num\">{_num(lane['wait'], 4)}</td>"
            f"<td class=\"num\">{pct:.1f}%</td>"
            '<td><svg viewBox="0 0 124 10" width="124" height="10" '
            'role="img"><rect x="0" y="0" width="124" height="10" rx="2" '
            'fill="var(--gridline)"/>'
            f'<rect x="0" y="0" width="{bar_w:.1f}" height="10" rx="2" '
            'fill="var(--series-1)"/></svg></td>'
            "</tr>"
        )
    note = ""
    if len(workers) > len(shown):
        note = (
            f'<p class="note">showing {len(shown)} of {len(workers)} '
            f"lanes.</p>"
        )
    return (
        "<section><h2>Worker lanes</h2>"
        '<p class="meta">simulated-clock utilization per scheduler '
        "lane.</p>"
        "<table><thead><tr><th>lane</th><th class=\"num\">chunks</th>"
        "<th class=\"num\">busy (sim s)</th>"
        "<th class=\"num\">wait (sim s)</th>"
        "<th class=\"num\">util</th><th>utilization</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>{note}</section>"
    )


def _quality_section(doctor: DoctorResult) -> str:
    rounds = (doctor.series or {}).get("rounds") or []
    decomposition = doctor.decomposition
    panels = []
    if rounds:
        gains = [r["gain"] for r in rounds]
        moves = [r["moves"] for r in rounds]
        frontier = [r["frontier"] for r in rounds]
        panels.append(
            '<div class="panel"><h3>Objective gain per round</h3>'
            + _svg_line(gains, x_label="round") + "</div>"
        )
        panels.append(
            '<div class="panel"><h3>Move churn per round</h3>'
            + _svg_line(moves, x_label="round") + "</div>"
        )
        panels.append(
            '<div class="panel"><h3>Frontier decay</h3>'
            + _svg_line(frontier, x_label="round") + "</div>"
        )
    levels = (doctor.series or {}).get("levels") or []
    level_table = ""
    if levels:
        level_rows = "".join(
            f'<tr><td>level {_esc(lv)}</td>'
            f'<td class="num">{_num(gain, 6)}</td></tr>'
            for lv, gain in levels
        )
        level_table = (
            '<div class="panel"><h3>Objective delta per level</h3>'
            "<table><thead><tr><th>level</th>"
            '<th class="num">ΔF</th></tr></thead>'
            f"<tbody>{level_rows}</tbody></table></div>"
        )
    decomposition_panels = ""
    if decomposition and decomposition.get("num_clusters"):
        hist_rows = [
            {
                "label": (
                    str(b["lo"]) if b["lo"] == b["hi"]
                    else f"{b['lo']}–{b['hi']}"
                ),
                "value": b["count"],
            }
            for b in decomposition["size_histogram"]
        ]
        worst_rows = "".join(
            "<tr>"
            f"<td>{w['cluster']}</td>"
            f"<td class=\"num\">{w['size']}</td>"
            f"<td class=\"num\">{_num(w['intra'], 5)}</td>"
            f"<td class=\"num\">{_num(w['penalty'], 5)}</td>"
            f"<td class=\"num\">{_num(w['f'], 5)}</td>"
            "</tr>"
            for w in decomposition["worst"]
        )
        decomposition_panels = (
            '<div class="panel"><h3>Cluster size histogram</h3>'
            + _svg_bars(hist_rows)
            + f'<p class="note">{decomposition["num_clusters"]} clusters · '
            f'singleton fraction '
            f'{decomposition["singleton_fraction"]:.3f}</p></div>'
            '<div class="panel"><h3>Worst clusters by F_c</h3>'
            "<table><thead><tr><th>cluster</th><th class=\"num\">size</th>"
            '<th class="num">intra</th><th class="num">λ-penalty</th>'
            '<th class="num">F_c</th></tr></thead>'
            f"<tbody>{worst_rows}</tbody></table></div>"
        )
    body = "".join(panels) + level_table + decomposition_panels
    if not body:
        return ""
    return (
        "<section><h2>Quality panels</h2>"
        f'<div class="grid">{body}</div></section>'
    )


def _registry_section(runs: Optional[Sequence[dict]]) -> str:
    if not runs:
        return ""
    shown = list(runs)[-MAX_REGISTRY_ROWS:]
    rows = []
    for record in shown:
        metrics = record.get("metrics", {})
        rows.append(
            "<tr>"
            f"<td>{_esc(record.get('run_id'))}</td>"
            f"<td>{_esc(record.get('timestamp', ''))}</td>"
            f"<td class=\"num\">{_num(metrics.get('f_objective'))}</td>"
            f"<td class=\"num\">{_num(metrics.get('modularity'))}</td>"
            f"<td class=\"num\">{_num(metrics.get('wall_seconds'), 4)}</td>"
            "</tr>"
        )
    return (
        "<section><h2>Registry</h2>"
        f'<p class="meta">last {len(shown)} runs.jsonl rows.</p>'
        "<table><thead><tr><th>run</th><th>timestamp</th>"
        '<th class="num">F</th><th class="num">modularity</th>'
        '<th class="num">wall s</th></tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table></section>"
    )


def _facts_section(doctor: DoctorResult) -> str:
    keep = [
        ("run.f_objective", "F objective"),
        ("run.modularity", "modularity"),
        ("run.num_clusters", "clusters"),
        ("run.rounds", "rounds"),
        ("run.moves", "moves"),
        ("run.levels", "levels"),
        ("run.wall_seconds", "wall s"),
        ("run.sim_time_seconds", "sim s"),
        ("dynamic.batches", "update batches"),
        ("dynamic.updates", "edge updates"),
        ("dynamic.escalations", "escalations"),
    ]
    rows = [
        f'<tr><td>{_esc(label)}</td>'
        f'<td class="num">{_num(doctor.facts[key])}</td></tr>'
        for key, label in keep
        if key in doctor.facts
    ]
    if not rows:
        return ""
    return (
        "<section><h2>Run summary</h2>"
        f"<table><tbody>{''.join(rows)}</tbody></table></section>"
    )


def render_report(
    doctor: DoctorResult,
    title: str = "repro run report",
    source: str = "",
    runs: Optional[Sequence[dict]] = None,
) -> str:
    """Render the full report as one self-contained HTML string."""
    meta = _esc(source) if source else "generated by repro obs report"
    body = (
        _findings_section(doctor)
        + _facts_section(doctor)
        + _slo_section(doctor)
        + _waterfall_section(doctor)
        + _workers_section(doctor)
        + _quality_section(doctor)
        + _registry_section(runs)
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head><body><main>\n"
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="meta">{meta}</p>\n'
        f"{body}\n"
        "<footer>self-contained report: inline CSS + SVG, no scripts, "
        "no external fetches.</footer>\n"
        "</main></body></html>\n"
    )


def write_report(path, doctor: DoctorResult, **kwargs) -> Path:
    path = Path(path)
    path.write_text(render_report(doctor, **kwargs))
    return path
