"""Trace-JSONL schema validation (the CI smoke job's contract).

A trace file is valid when every line is a JSON object matching the span
or event record shape emitted by :mod:`repro.obs.tracer`, ids are unique,
parent/span references resolve, and the span tree nests consistently
(children start within their parent's interval and carry ``depth`` one
greater).  :func:`validate_trace_records` returns a list of human-readable
problems — empty means valid — and :func:`validate_trace_file` raises
:class:`TraceSchemaError` so ``python -m repro.obs.bench validate-trace``
can gate CI on it.
"""

from __future__ import annotations

import json
from typing import List

SPAN_REQUIRED_KEYS = {
    "type",
    "v",
    "name",
    "id",
    "parent",
    "depth",
    "start",
    "wall_seconds",
    "cpu_seconds",
    "peak_rss_bytes",
    "attrs",
}
EVENT_REQUIRED_KEYS = {"type", "v", "name", "id", "span", "t", "attrs"}
WORKER_REQUIRED_KEYS = {
    "type",
    "v",
    "id",
    "span",
    "worker",
    "start",
    "end",
    "label",
    "items",
    "wait",
}

#: Slack for float round-off when checking interval containment.
_EPS = 1e-9


class TraceSchemaError(Exception):
    """A trace file violated the schema; ``problems`` lists every issue."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = problems
        super().__init__(
            f"{len(problems)} trace schema problem(s): " + "; ".join(problems[:5])
        )


def _check_record_shape(index: int, record, problems: List[str]) -> bool:
    if not isinstance(record, dict):
        problems.append(f"line {index}: not a JSON object")
        return False
    kind = record.get("type")
    if kind == "span":
        missing = SPAN_REQUIRED_KEYS - record.keys()
    elif kind == "event":
        missing = EVENT_REQUIRED_KEYS - record.keys()
    elif kind == "worker":
        missing = WORKER_REQUIRED_KEYS - record.keys()
    else:
        problems.append(f"line {index}: unknown record type {kind!r}")
        return False
    if missing:
        problems.append(
            f"line {index}: {kind} record missing keys {sorted(missing)}"
        )
        return False
    if kind == "worker":
        if not isinstance(record["worker"], int) or record["worker"] < 0:
            problems.append(
                f"line {index}: worker must be a non-negative integer"
            )
            return False
        if record["end"] < record["start"] - _EPS:
            problems.append(f"line {index}: worker chunk ends before it starts")
            return False
        if record.get("clock", "sim") not in ("sim", "wall"):
            problems.append(
                f"line {index}: worker clock must be 'sim' or 'wall', "
                f"got {record.get('clock')!r}"
            )
            return False
        return True
    if not isinstance(record["name"], str) or not record["name"]:
        problems.append(f"line {index}: name must be a non-empty string")
        return False
    if not isinstance(record["attrs"], dict):
        problems.append(f"line {index}: attrs must be an object")
        return False
    return True


def validate_trace_records(records: List[dict]) -> List[str]:
    """All schema problems in ``records`` (empty list = valid trace)."""
    problems: List[str] = []
    spans = {}
    seen_ids = set()
    for index, record in enumerate(records):
        if not _check_record_shape(index, record, problems):
            continue
        rid = record["id"]
        if rid in seen_ids:
            problems.append(f"line {index}: duplicate record id {rid}")
            continue
        seen_ids.add(rid)
        if record["type"] == "span":
            spans[rid] = record

    for record in records:
        if not isinstance(record, dict):
            continue
        if record.get("type") == "span" and record.get("id") in spans:
            parent_id = record["parent"]
            if parent_id is None:
                if record["depth"] != 0:
                    problems.append(
                        f"span {record['id']}: root span has depth "
                        f"{record['depth']}, expected 0"
                    )
                continue
            parent = spans.get(parent_id)
            if parent is None:
                problems.append(
                    f"span {record['id']}: parent {parent_id} not in trace"
                )
                continue
            if record["depth"] != parent["depth"] + 1:
                problems.append(
                    f"span {record['id']}: depth {record['depth']} != "
                    f"parent depth {parent['depth']} + 1"
                )
            if record["start"] < parent["start"] - _EPS:
                problems.append(
                    f"span {record['id']}: starts before its parent"
                )
            child_end = record["start"] + (record["wall_seconds"] or 0.0)
            parent_end = parent["start"] + (parent["wall_seconds"] or 0.0)
            if child_end > parent_end + _EPS:
                problems.append(
                    f"span {record['id']}: ends after its parent"
                )
        elif record.get("type") == "event" and record.get("id") in seen_ids:
            span_id = record["span"]
            if span_id is not None and span_id not in spans:
                problems.append(
                    f"event {record['id']}: span {span_id} not in trace"
                )
        elif record.get("type") == "worker" and record.get("id") in seen_ids:
            span_id = record["span"]
            if span_id is not None and span_id not in spans:
                problems.append(
                    f"worker chunk {record['id']}: span {span_id} not in trace"
                )

    # Worker lanes model one core each, so chunks on the same lane must be
    # strictly sequential: sorted by start, each chunk may begin only once
    # its predecessor has ended.  Simulated lanes and real execution-
    # backend lanes (``clock: "wall"``) are distinct clock domains, so
    # lanes are keyed by (clock, worker): worker 0's simulated chunks and
    # worker 0's wall-clock chunks never constrain each other.
    lanes = {}
    for record in records:
        if (
            isinstance(record, dict)
            and record.get("type") == "worker"
            and record.get("id") in seen_ids
        ):
            key = (record.get("clock", "sim"), record["worker"])
            lanes.setdefault(key, []).append(record)
    for (clock, worker), chunks in sorted(lanes.items()):
        chunks.sort(key=lambda r: (r["start"], r["end"], r["id"]))
        for prev, nxt in zip(chunks, chunks[1:]):
            if nxt["start"] < prev["end"] - _EPS:
                problems.append(
                    f"worker {worker} ({clock}): chunk {nxt['id']} starts at "
                    f"{nxt['start']} before chunk {prev['id']} ends at "
                    f"{prev['end']}"
                )
    if not spans:
        problems.append("trace contains no spans")
    return problems


def validate_trace_text(text: str) -> List[str]:
    """Validate raw JSONL text; JSON parse errors become problems too."""
    records = []
    problems: List[str] = []
    for index, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            problems.append(f"line {index}: invalid JSON ({exc})")
    return problems + validate_trace_records(records)


def validate_trace_file(path) -> None:
    """Raise :class:`TraceSchemaError` unless ``path`` is a valid trace."""
    with open(path) as handle:
        problems = validate_trace_text(handle.read())
    if problems:
        raise TraceSchemaError(problems)
