"""Declarative health rules and serving SLOs (DESIGN.md §12).

The doctor (:mod:`repro.obs.doctor`) reduces a run's artifacts to a flat
``facts`` dict of dotted names (``run.rounds``, ``metric.<name>``,
``convergence.stall_levels``, ...).  This module evaluates *rules*
against those facts and produces machine-readable :class:`Finding`
records with ``ok``/``warn``/``crit`` severities.  Three rule kinds:

``threshold``
    One fact compared against ``warn``/``crit`` bounds in a direction
    (``above`` = bigger is worse, ``below`` = smaller is worse).
``ratio``
    ``numerator``/``denominator`` facts divided first, then thresholded
    like above (e.g. CAS retry *rate*).  A zero denominator skips.
``trend``
    One registry metric of the current run compared against an
    aggregate (``median``/``mean``/``best``) of comparable history
    records, using :func:`repro.obs.bench.metric_direction` so
    wall-clock regressions and objective regressions both read as
    positive *worsening*; ``warn``/``crit`` are relative-worsening
    bounds (0.001 = 0.1%).

Rules load from JSON (schema ``repro.obs.health/v1``; the committed
reference set is ``benchmarks/health_rules.json``) or from
:func:`default_rules`.  A missing fact *skips* the rule — an
uninstrumented run is not unhealthy, it is under-observed — and skips
are reported separately so they never silently hide a gate.

Serving SLOs are a separate small spec (:class:`SLOSpec`, schema
``repro.obs.slo/v1``): per-op p95 latency targets over the
``repro_serve_op_seconds`` histogram plus staleness/escalation/drift
bounds.  ``p95 > target`` is ``warn``; ``p95 > 2x target`` is ``crit``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from statistics import mean, median
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.bench import _relative_worsening, metric_direction
from repro.obs.metrics import sample_quantile

HEALTH_SCHEMA = "repro.obs.health/v1"
SLO_SCHEMA = "repro.obs.slo/v1"

SEVERITIES = ("ok", "warn", "crit")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

_RULE_KINDS = ("threshold", "ratio", "trend")
_DIRECTIONS = ("above", "below")
_BASELINES = ("median", "mean", "best")


class HealthRuleError(ReproError):
    """Malformed rule set / SLO spec (exit code 2 at the CLI boundary)."""


@dataclass
class Finding:
    """One evaluated rule: severity plus the numbers behind it."""

    rule: str
    severity: str
    message: str
    value: Optional[float] = None
    threshold: Optional[float] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.value is not None:
            out["value"] = self.value
        if self.threshold is not None:
            out["threshold"] = self.threshold
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass
class HealthReport:
    """All findings for one run, plus the rules that could not run."""

    findings: List[Finding] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def worst(self) -> str:
        rank = max(
            (_SEVERITY_RANK[f.severity] for f in self.findings), default=0
        )
        return SEVERITIES[rank]

    @property
    def exit_code(self) -> int:
        """Nonzero exactly when any finding is ``crit``."""
        return 1 if any(f.severity == "crit" for f in self.findings) else 0

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def extend(self, other: "HealthReport") -> None:
        self.findings.extend(other.findings)
        self.skipped.extend(other.skipped)

    def describe(self) -> str:
        head = (
            f"doctor: {self.count('ok')} ok, {self.count('warn')} warn, "
            f"{self.count('crit')} crit"
        )
        if self.skipped:
            head += f" ({len(self.skipped)} rules skipped)"
        lines = [head]
        ordered = sorted(
            self.findings,
            key=lambda f: (-_SEVERITY_RANK[f.severity], f.rule),
        )
        for finding in ordered:
            lines.append(f"  {finding.severity.upper():<4} "
                         f"{finding.rule}: {finding.message}")
        for note in self.skipped:
            lines.append(f"  SKIP {note}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "schema": "repro.obs.doctor/v1",
            "worst": self.worst,
            "findings": [f.as_dict() for f in self.findings],
            "skipped": list(self.skipped),
        }


@dataclass
class HealthRule:
    """One declarative rule; see the module docstring for the kinds."""

    id: str
    kind: str
    description: str = ""
    # threshold / ratio
    fact: Optional[str] = None
    numerator: Optional[str] = None
    denominator: Optional[str] = None
    direction: str = "above"
    warn: Optional[float] = None
    crit: Optional[float] = None
    # trend
    metric: Optional[str] = None
    baseline: str = "median"
    window: int = 20

    def __post_init__(self) -> None:
        if not self.id:
            raise HealthRuleError("health rule missing id")
        if self.kind not in _RULE_KINDS:
            raise HealthRuleError(
                f"rule {self.id!r}: unknown kind {self.kind!r} "
                f"(expected one of {_RULE_KINDS})"
            )
        if self.direction not in _DIRECTIONS:
            raise HealthRuleError(
                f"rule {self.id!r}: direction must be one of {_DIRECTIONS}"
            )
        if self.warn is None and self.crit is None:
            raise HealthRuleError(
                f"rule {self.id!r}: needs at least one of warn/crit"
            )
        if self.kind == "threshold" and not self.fact:
            raise HealthRuleError(f"rule {self.id!r}: threshold needs fact")
        if self.kind == "ratio" and not (self.numerator and self.denominator):
            raise HealthRuleError(
                f"rule {self.id!r}: ratio needs numerator and denominator"
            )
        if self.kind == "trend":
            if not self.metric:
                raise HealthRuleError(f"rule {self.id!r}: trend needs metric")
            if self.baseline not in _BASELINES:
                raise HealthRuleError(
                    f"rule {self.id!r}: baseline must be one of {_BASELINES}"
                )
            if self.window < 1:
                raise HealthRuleError(f"rule {self.id!r}: window must be >= 1")

    # ------------------------------------------------------------------
    def _trips(self, value: float, bound: float) -> bool:
        if self.direction == "above":
            return value > bound
        return value < bound

    def _severity(self, value: float) -> Tuple[str, Optional[float]]:
        """(severity, the bound that tripped) for a directed value."""
        if self.crit is not None and self._trips(value, self.crit):
            return "crit", self.crit
        if self.warn is not None and self._trips(value, self.warn):
            return "warn", self.warn
        # Report the tightest bound that held, for context.
        held = self.warn if self.warn is not None else self.crit
        return "ok", held

    def _finding(self, value: float, describe_value: str) -> Finding:
        severity, bound = self._severity(value)
        cmp = ">" if self.direction == "above" else "<"
        if severity == "ok":
            message = (
                f"{describe_value} within bounds "
                f"(worst allowed {cmp} {bound:g})"
            )
        else:
            message = f"{describe_value} ({severity} when {cmp} {bound:g})"
        if self.description:
            message += f" — {self.description}"
        return Finding(
            rule=self.id,
            severity=severity,
            message=message,
            value=value,
            threshold=bound,
        )

    def evaluate(
        self,
        facts: Dict[str, float],
        record: Optional[dict] = None,
        history: Optional[Sequence[dict]] = None,
    ) -> Tuple[Optional[Finding], Optional[str]]:
        """Returns ``(finding, None)`` or ``(None, skip_reason)``."""
        if self.kind == "threshold":
            value = facts.get(self.fact)
            if value is None:
                return None, f"{self.id}: fact {self.fact!r} unavailable"
            return self._finding(float(value), f"{self.fact} = {value:g}"), None

        if self.kind == "ratio":
            num = facts.get(self.numerator)
            den = facts.get(self.denominator)
            if num is None or den is None:
                missing = self.numerator if num is None else self.denominator
                return None, f"{self.id}: fact {missing!r} unavailable"
            if den == 0:
                return None, f"{self.id}: denominator {self.denominator} is 0"
            ratio = float(num) / float(den)
            label = f"{self.numerator}/{self.denominator} = {ratio:.4g}"
            return self._finding(ratio, label), None

        # trend
        if record is None:
            return None, f"{self.id}: no registry record for this run"
        current = (record.get("metrics") or {}).get(self.metric)
        if current is None:
            return None, f"{self.id}: metric {self.metric!r} not in record"
        values = [
            r["metrics"][self.metric]
            for r in (history or [])
            if isinstance(r.get("metrics", {}).get(self.metric), (int, float))
        ][-self.window:]
        if not values:
            return None, f"{self.id}: no comparable history for {self.metric!r}"
        direction = metric_direction(self.metric)
        if direction == "info":
            return None, f"{self.id}: metric {self.metric!r} is not comparable"
        if self.baseline == "median":
            base = median(values)
        elif self.baseline == "mean":
            base = mean(values)
        else:  # best
            base = min(values) if direction == "lower" else max(values)
        worsening = _relative_worsening(direction, base, float(current))
        finding = self._finding(
            worsening,
            f"{self.metric} {current:g} vs {self.baseline} {base:g} of "
            f"{len(values)} runs ({worsening:+.2%})",
        )
        finding.detail = {
            "metric": self.metric,
            "current": float(current),
            "baseline": float(base),
            "history": len(values),
        }
        return finding, None


def evaluate_rules(
    rules: Sequence[HealthRule],
    facts: Dict[str, float],
    record: Optional[dict] = None,
    history: Optional[Sequence[dict]] = None,
) -> HealthReport:
    report = HealthReport()
    for rule in rules:
        finding, skip = rule.evaluate(facts, record=record, history=history)
        if finding is not None:
            report.findings.append(finding)
        else:
            report.skipped.append(skip)
    return report


# ----------------------------------------------------------------------
# Rule-set / SLO-spec files
# ----------------------------------------------------------------------

_RULE_FIELDS = {
    "id", "kind", "description", "fact", "numerator", "denominator",
    "direction", "warn", "crit", "metric", "baseline", "window",
}


def rules_from_dict(spec: dict) -> List[HealthRule]:
    if spec.get("schema") != HEALTH_SCHEMA:
        raise HealthRuleError(
            f"rule set schema {spec.get('schema')!r} != {HEALTH_SCHEMA!r}"
        )
    raw = spec.get("rules")
    if not isinstance(raw, list) or not raw:
        raise HealthRuleError("rule set needs a non-empty 'rules' list")
    rules = []
    seen = set()
    for entry in raw:
        if not isinstance(entry, dict):
            raise HealthRuleError(f"rule entry is not an object: {entry!r}")
        unknown = set(entry) - _RULE_FIELDS
        if unknown:
            raise HealthRuleError(
                f"rule {entry.get('id')!r}: unknown fields {sorted(unknown)}"
            )
        rule = HealthRule(**entry)
        if rule.id in seen:
            raise HealthRuleError(f"duplicate rule id {rule.id!r}")
        seen.add(rule.id)
        rules.append(rule)
    return rules


def load_rules(path) -> List[HealthRule]:
    try:
        with open(path) as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise HealthRuleError(f"cannot read rule set {path}: {exc}") from exc
    return rules_from_dict(spec)


def default_rules() -> List[HealthRule]:
    """The built-in rule set (mirrored by benchmarks/health_rules.json)."""
    return rules_from_dict(DEFAULT_RULES_SPEC)


#: The reference rule set.  ``benchmarks/health_rules.json`` is this
#: object serialized; tests assert they stay in sync.
DEFAULT_RULES_SPEC = {
    "schema": HEALTH_SCHEMA,
    "rules": [
        {
            "id": "run-degraded",
            "kind": "threshold",
            "fact": "run.degraded",
            "direction": "above",
            "crit": 0,
            "description": "run returned a degraded best-so-far result",
        },
        {
            "id": "convergence-stall",
            "kind": "threshold",
            "fact": "convergence.stall_levels",
            "direction": "above",
            "crit": 0,
            "description": (
                "a level hit the iteration cap with a frontier that "
                "never decayed"
            ),
        },
        {
            "id": "rounds-hit-cap",
            "kind": "threshold",
            "fact": "convergence.capped_levels",
            "direction": "above",
            "warn": 0,
            "description": "move phase stopped on the iteration cap",
        },
        {
            "id": "refine-rounds-hit-cap",
            "kind": "threshold",
            "fact": "convergence.refine_capped_levels",
            "direction": "above",
            "warn": 0,
            "description": "refinement stopped on the iteration cap",
        },
        {
            "id": "cas-retry-rate",
            "kind": "ratio",
            "numerator": "metric.repro_cas_retries_total",
            "denominator": "metric.repro_cas_attempts_total",
            "direction": "above",
            "warn": 0.05,
            "crit": 0.25,
            "description": "CAS contention on the atomic move path",
        },
        {
            "id": "supervisor-fallback",
            "kind": "threshold",
            "fact": "supervisor.fallbacks",
            "direction": "above",
            "warn": 0,
            "description": "supervisor descended the fallback ladder",
        },
        {
            "id": "supervisor-salvaged",
            "kind": "threshold",
            "fact": "supervisor.salvaged",
            "direction": "above",
            "crit": 0,
            "description": "supervisor exhausted the ladder and salvaged",
        },
        {
            "id": "singleton-fraction",
            "kind": "threshold",
            "fact": "quality.singleton_fraction",
            "direction": "above",
            "warn": 0.95,
            "description": "nearly every cluster is a singleton",
        },
        {
            "id": "dynamic-escalations",
            "kind": "threshold",
            "fact": "dynamic.escalations",
            "direction": "above",
            "warn": 0,
            "description": "drift guard escalated to full re-clustering",
        },
        {
            "id": "dynamic-drift",
            "kind": "threshold",
            "fact": "dynamic.last_drift",
            "direction": "above",
            "warn": 1e-6,
            "crit": 1e-3,
            "description": "incremental objective drifted from recompute",
        },
        {
            "id": "gateway-read-shed-rate",
            "kind": "threshold",
            "fact": "gateway.read.shed_rate",
            "direction": "above",
            "warn": 0.05,
            "crit": 0.25,
            "description": "admission control shed reads (queue over limit)",
        },
        {
            "id": "gateway-read-expired-rate",
            "kind": "threshold",
            "fact": "gateway.read.expired_rate",
            "direction": "above",
            "warn": 0.05,
            "crit": 0.25,
            "description": "reads dropped past their staleness deadline",
        },
        {
            "id": "gateway-write-shed-rate",
            "kind": "threshold",
            "fact": "gateway.write.shed_rate",
            "direction": "above",
            "warn": 0.05,
            "crit": 0.25,
            "description": "writes shed: commit cadence not keeping up",
        },
        {
            "id": "gateway-write-backlog",
            "kind": "threshold",
            "fact": "gateway.staged",
            "direction": "above",
            "warn": 0,
            "description": "staged writes left uncommitted at shutdown",
        },
        {
            "id": "objective-regression",
            "kind": "trend",
            "metric": "f_objective",
            "baseline": "median",
            "window": 20,
            "warn": 0.001,
            "crit": 0.01,
            "description": "objective worse than the registry median",
        },
        {
            "id": "wall-regression",
            "kind": "trend",
            "metric": "wall_seconds",
            "baseline": "median",
            "window": 20,
            "warn": 0.10,
            "crit": 0.50,
            "description": "wall clock worse than the registry median",
        },
    ],
}


# ----------------------------------------------------------------------
# Serving SLOs
# ----------------------------------------------------------------------

@dataclass
class SLOSpec:
    """Targets for the serving facade; ``None`` disables a bound."""

    op_p95_seconds: Dict[str, float] = field(default_factory=dict)
    max_staleness_updates: Optional[float] = None
    max_escalations: Optional[float] = None
    max_drift_abs: Optional[float] = None

    @staticmethod
    def default() -> "SLOSpec":
        return SLOSpec(
            op_p95_seconds={
                "query": 0.05,
                "stage": 0.05,
                "commit": 30.0,
                "save": 30.0,
            },
            max_staleness_updates=100000,
            max_escalations=None,
            max_drift_abs=1e-3,
        )

    def as_dict(self) -> dict:
        return {
            "schema": SLO_SCHEMA,
            "op_p95_seconds": dict(self.op_p95_seconds),
            "max_staleness_updates": self.max_staleness_updates,
            "max_escalations": self.max_escalations,
            "max_drift_abs": self.max_drift_abs,
        }


def slo_from_dict(spec: dict) -> SLOSpec:
    if spec.get("schema") != SLO_SCHEMA:
        raise HealthRuleError(
            f"SLO spec schema {spec.get('schema')!r} != {SLO_SCHEMA!r}"
        )
    ops = spec.get("op_p95_seconds", {})
    if not isinstance(ops, dict):
        raise HealthRuleError("op_p95_seconds must be an object")
    known = {
        "schema", "op_p95_seconds", "max_staleness_updates",
        "max_escalations", "max_drift_abs",
    }
    unknown = set(spec) - known
    if unknown:
        raise HealthRuleError(f"SLO spec: unknown fields {sorted(unknown)}")
    return SLOSpec(
        op_p95_seconds={k: float(v) for k, v in ops.items()},
        max_staleness_updates=spec.get("max_staleness_updates"),
        max_escalations=spec.get("max_escalations"),
        max_drift_abs=spec.get("max_drift_abs"),
    )


def load_slo(path) -> SLOSpec:
    try:
        with open(path) as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise HealthRuleError(f"cannot read SLO spec {path}: {exc}") from exc
    return slo_from_dict(spec)


def _slo_severity(value: float, target: float) -> str:
    if value > 2.0 * target:
        return "crit"
    if value > target:
        return "warn"
    return "ok"


def evaluate_slos(
    spec: SLOSpec,
    samples: Sequence[dict],
    facts: Optional[Dict[str, float]] = None,
) -> Tuple[HealthReport, List[dict]]:
    """Evaluate the SLO spec over exported metric *samples*.

    Returns the findings plus the per-op latency table rows the HTML
    report renders: ``{op, count, p50, p95, target, severity}``.
    """
    from repro.obs.instrument import M_SERVE_LATENCY, M_SERVE_STALENESS

    report = HealthReport()
    rows: List[dict] = []
    by_op: Dict[str, dict] = {}
    staleness: Optional[float] = None
    for sample in samples:
        name = sample.get("metric")
        if name == M_SERVE_LATENCY and sample.get("type") == "histogram":
            op = sample.get("labels", {}).get("op", "")
            by_op[op] = sample
        elif name == M_SERVE_STALENESS:
            staleness = float(sample.get("value", 0.0))

    for op in sorted(set(by_op) | set(spec.op_p95_seconds)):
        sample = by_op.get(op)
        target = spec.op_p95_seconds.get(op)
        if sample is None:
            if target is not None:
                report.skipped.append(
                    f"slo-{op}-p95: no {op!r} latency samples"
                )
            continue
        p50 = sample_quantile(sample, 0.50)
        p95 = sample_quantile(sample, 0.95)
        row = {
            "op": op,
            "count": int(sample["count"]),
            "p50": p50,
            "p95": p95,
            "target": target,
            "severity": None,
        }
        if target is not None and p95 is not None:
            severity = _slo_severity(p95, target)
            row["severity"] = severity
            report.findings.append(Finding(
                rule=f"slo-{op}-p95",
                severity=severity,
                message=(
                    f"{op} p95 {p95 * 1e3:.3g} ms vs target "
                    f"{target * 1e3:.3g} ms over {row['count']} ops"
                ),
                value=p95,
                threshold=target,
            ))
        rows.append(row)

    facts = facts or {}
    bounds = (
        ("slo-staleness", staleness, spec.max_staleness_updates,
         "updates applied since last snapshot save"),
        ("slo-escalations", facts.get("dynamic.escalations"),
         spec.max_escalations, "drift-guard escalations"),
        ("slo-drift", facts.get("dynamic.last_drift"), spec.max_drift_abs,
         "absolute objective drift"),
    )
    for rule_id, value, bound, what in bounds:
        if bound is None:
            continue
        if value is None:
            report.skipped.append(f"{rule_id}: {what} unavailable")
            continue
        severity = "crit" if value > bound else "ok"
        report.findings.append(Finding(
            rule=rule_id,
            severity=severity,
            message=f"{what} = {value:g} (bound {bound:g})",
            value=float(value),
            threshold=float(bound),
        ))
    return report, rows
