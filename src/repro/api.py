"""repro.api — the frozen public surface and its drift gate.

This module is the single stable import point for downstream users::

    from repro.api import cluster, ClusteringConfig, RunOptions, ServingGateway

Everything exported here (the explicit ``__all__``) is covered by the
compatibility promise: names are never removed and signatures only grow
keyword-only parameters with defaults.  The enforcement mechanism is a
committed snapshot, ``benchmarks/api_surface.json``: :func:`surface`
introspects every exported name into ``{name: {kind, signature}}`` and
``python -m repro.api --check`` (the ``make api-check`` target) fails
when the live surface no longer matches the snapshot.  Intentional
surface growth regenerates the snapshot with ``python -m repro.api
--write`` — the diff then shows up in review as a file change, not as a
silent break.

The facade deliberately re-exports from one flat namespace: the
deep module layout (``repro.core``, ``repro.dynamic``, ``repro.serving``)
is an implementation detail free to shift between releases.
"""

from __future__ import annotations

import inspect
import json
from typing import Dict

from repro import (
    CSRGraph,
    ClusterResult,
    ClusteringConfig,
    CostLedger,
    FallbackLadder,
    Frontier,
    Machine,
    Mode,
    Objective,
    RetryPolicy,
    RunOptions,
    RunSupervisor,
    SimulatedScheduler,
    Watchdog,
    __version__,
    cluster,
    correlation_clustering,
    graph_from_edges,
    karate_club_graph,
    modularity_clustering,
    supervise,
)
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.serve import ClusterServer
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.errors import (
    ConfigError,
    GraphFormatError,
    ReproError,
    ServerClosedError,
    UpdateError,
)
from repro.serving import (
    GatewayPolicy,
    LabelEpoch,
    Request,
    Response,
    ServingGateway,
    SimulatedDriver,
    ThreadedDriver,
    WorkloadSpec,
    replay_digests,
)

#: Default location of the committed surface snapshot, relative to the
#: repository root (where ``make api-check`` runs).
SNAPSHOT_PATH = "benchmarks/api_surface.json"

__all__ = [
    # clustering core
    "CSRGraph",
    "ClusterResult",
    "ClusteringConfig",
    "Frontier",
    "Mode",
    "Objective",
    "RunOptions",
    "cluster",
    "correlation_clustering",
    "modularity_clustering",
    "graph_from_edges",
    "karate_club_graph",
    # simulated runtime
    "CostLedger",
    "Machine",
    "SimulatedScheduler",
    # supervision
    "FallbackLadder",
    "RetryPolicy",
    "RunSupervisor",
    "Watchdog",
    "supervise",
    # dynamic clustering + serving facade
    "ClusterServer",
    "DriftGuard",
    "DynamicClusterer",
    "EdgeUpdate",
    "UpdateBatch",
    # serving gateway
    "GatewayPolicy",
    "LabelEpoch",
    "Request",
    "Response",
    "ServingGateway",
    "SimulatedDriver",
    "ThreadedDriver",
    "WorkloadSpec",
    "replay_digests",
    # errors
    "ConfigError",
    "GraphFormatError",
    "ReproError",
    "ServerClosedError",
    "UpdateError",
    # metadata
    "__version__",
]


def _kind(obj) -> str:
    if inspect.isclass(obj):
        if issubclass(obj, BaseException):
            return "exception"
        return "class"
    if inspect.isfunction(obj):
        return "function"
    return "value"


def _signature(obj) -> str:
    """A stable one-line signature; empty for plain values."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def surface() -> Dict[str, dict]:
    """The live surface: ``{name: {"kind": ..., "signature": ...}}``.

    For classes the signature is the constructor's (how users call it);
    exceptions and plain values get no signature.  The mapping is what
    gets snapshotted and diffed — adding a keyword with a default shows
    up as a signature change and requires a deliberate ``--write``.
    """
    out: Dict[str, dict] = {}
    module = globals()
    for name in sorted(__all__):
        if name == "__version__":
            out[name] = {"kind": "value", "signature": ""}
            continue
        obj = module[name]
        kind = _kind(obj)
        sig = "" if kind in ("exception", "value") else _signature(obj)
        out[name] = {"kind": kind, "signature": sig}
    return out


def diff_surface(snapshot: Dict[str, dict]) -> list:
    """Human-readable drift lines between ``snapshot`` and the live surface."""
    live = surface()
    issues = []
    for name in sorted(set(snapshot) | set(live)):
        if name not in live:
            issues.append(f"removed: {name} (was {snapshot[name]['kind']})")
        elif name not in snapshot:
            issues.append(f"added: {name} ({live[name]['kind']}) — run --write")
        elif snapshot[name] != live[name]:
            issues.append(
                f"changed: {name}: {snapshot[name]['signature']!r} "
                f"-> {live[name]['signature']!r}"
            )
    return issues


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Check or regenerate the public-API surface snapshot",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="regenerate the snapshot from the live surface",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when the live surface drifted (the default)",
    )
    parser.add_argument("--path", default=SNAPSHOT_PATH)
    args = parser.parse_args(argv)

    if args.write:
        payload = {"schema": "repro.api/v1", "surface": surface()}
        with open(args.path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.path} ({len(payload['surface'])} names)")
        return 0

    try:
        with open(args.path) as handle:
            snapshot = json.load(handle)["surface"]
    except FileNotFoundError:
        print(f"no snapshot at {args.path}; run with --write first")
        return 1
    issues = diff_surface(snapshot)
    if issues:
        print(f"API surface drifted from {args.path}:")
        for line in issues:
            print(f"  {line}")
        print("intentional? regenerate with: python -m repro.api --write")
        return 1
    print(f"API surface matches {args.path} ({len(snapshot)} names)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
