"""DynamicClusterer: a live LambdaCC partition under edge updates.

The paper's frontier-restriction argument (§3.2.2) says only vertices
whose *move landscape* changed can profitably move.  Under the LambdaCC
objective an edge update changes neither any vertex weight ``k_v`` nor
any cluster weight ``K_c`` — the penalty term is untouched until a vertex
actually moves — so after a batch of edge inserts/deletes/reweights the
only vertices with a changed landscape are the endpoints of the updated
edges.  That makes incremental maintenance exact, not heuristic:

1. **stage** the batch on a :class:`~repro.graphs.delta.DeltaOverlayGraph`,
   accumulating the intra-cluster weight delta of updated edges whose
   endpoints currently share a cluster (the only objective term a pure
   edge update can change);
2. **compact** the overlay into a fresh CSR (reweight fast path when no
   edge appeared/vanished);
3. **refine locally** — run the configured engine/kernel through
   :func:`~repro.core.engines.run_engine_restricted`, seeded with exactly
   the touched endpoints (:func:`~repro.core.frontier.seed_frontier`);
   the engine's own frontier maintenance cascades outward only as far as
   moves actually propagate;
4. **patch the objective** from the observed moves: intra-cluster weight
   from mover-incident edges (half-counted where both endpoints moved),
   penalty from the affected clusters' ``(K_c^2 - K2_c)/2`` terms with
   per-mover ``K2`` transfers.

Because step 3 *is* the production engine running on the post-update
graph from the pre-update partition, the resulting assignments and
cluster weights are bit-identical to a from-scratch restricted run — the
acceptance property the test suite pins with
:class:`~repro.resilience.audit.StateAuditor`.

A :class:`DriftGuard` bounds the failure modes of incremental float
bookkeeping: every ``recompute_every`` batches the objective is recomputed
exactly and the incremental terms resynced (drift within tolerance) or
the whole partition is rebuilt through the existing
:class:`~repro.supervisor.RunSupervisor` (drift beyond tolerance, or a
refinement cascade that swept more than ``max_frontier_fraction`` of the
graph — the signal that the partition has gone stale enough that local
repair stopped being cheaper than re-clustering).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.config import ClusteringConfig, Objective
from repro.core.options import RunOptions
from repro.core.engines import run_engine_restricted
from repro.core.frontier import seed_frontier
from repro.core.objective import (
    cluster_weight_penalty,
    intra_cluster_edge_weight,
    lambdacc_objective,
)
from repro.core.state import ClusterState
from repro.errors import ConfigError, UpdateError
from repro.graphs.csr import CSRGraph
from repro.graphs.delta import DeltaOverlayGraph
from repro.obs.instrument import (
    M_DYNAMIC_BATCHES,
    M_DYNAMIC_DRIFT,
    M_DYNAMIC_ESCALATIONS,
    M_DYNAMIC_MOVES,
    M_DYNAMIC_QUERIES,
    M_DYNAMIC_SEED,
    M_DYNAMIC_UPDATES,
    M_SERVE_STALENESS,
    NULL_INSTRUMENTATION,
)
from repro.parallel.scheduler import SimulatedScheduler
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.utils.rng import make_rng


@dataclass
class DriftGuard:
    """Escalation policy for the incremental bookkeeping (DESIGN.md §11).

    ``recompute_every = 0`` disables the periodic exact recompute (tests
    that pin pure-incremental behavior);  ``max_frontier_fraction >= 1``
    disables the cascade-size trigger.
    """

    #: |incremental F - exact F| beyond which the state is considered
    #: corrupt and a full re-clustering is triggered.  Within the bound,
    #: the incremental terms are silently resynced to the exact values.
    max_drift: float = 1e-6
    #: Run the exact objective recompute every this many batches.
    recompute_every: int = 16
    #: Escalate when one refinement round's frontier exceeded this
    #: fraction of the graph — local repair stopped being local.
    max_frontier_fraction: float = 0.5


@dataclass
class UpdateReport:
    """What one :meth:`DynamicClusterer.apply` call did."""

    batch_index: int
    num_updates: int
    op_counts: dict
    seed_size: int
    new_vertices: int
    iterations: int
    moves: int
    frontier_sizes: List[int] = field(default_factory=list)
    f_objective: float = 0.0
    #: |incremental - exact| when the guard recomputed this batch.
    drift: Optional[float] = None
    #: Escalation reason ("objective-drift" / "frontier-growth"), or None.
    escalated: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def candidate_evaluations(self) -> int:
        """Candidate-move evaluations = sum of per-round frontier sizes."""
        return int(sum(self.frontier_sizes))

    def as_dict(self) -> dict:
        return {
            "batch_index": self.batch_index,
            "num_updates": self.num_updates,
            "op_counts": dict(self.op_counts),
            "seed_size": self.seed_size,
            "new_vertices": self.new_vertices,
            "iterations": self.iterations,
            "moves": self.moves,
            "frontier_sizes": [int(x) for x in self.frontier_sizes],
            "candidate_evaluations": self.candidate_evaluations,
            "f_objective": self.f_objective,
            "drift": self.drift,
            "escalated": self.escalated,
            "wall_seconds": self.wall_seconds,
        }


class DynamicClusterer:
    """A mutable graph + partition serving queries between update batches.

    Correlation objective only: modularity's vertex weights are degrees,
    which every edge update changes — its delta algebra is a different
    (and global) computation.  Use ``Objective.CORRELATION`` configs.
    """

    def __init__(
        self,
        graph: CSRGraph,
        assignments: np.ndarray,
        config: ClusteringConfig,
        engine: Optional[str] = None,
        supervisor=None,
        instrumentation=None,
        guard: Optional[DriftGuard] = None,
    ) -> None:
        if config.objective is not Objective.CORRELATION:
            raise ConfigError(
                "DynamicClusterer requires the correlation objective: "
                "modularity re-derives vertex weights from degrees, which "
                "every edge update changes globally"
            )
        self.config = config
        self.engine_name = engine if engine is not None else (
            "relaxed" if config.parallel else "sequential"
        )
        self.resolution = float(config.resolution)
        self.graph = graph
        self.overlay = DeltaOverlayGraph(graph)
        self.state = ClusterState.from_assignments(graph, assignments)
        self.supervisor = supervisor
        self.instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self.guard = guard if guard is not None else DriftGuard()
        self.rng = make_rng(config.seed)
        # Incremental objective terms: F = intra - lambda * penalty.
        self._k2 = np.bincount(
            self.state.assignments,
            weights=graph.node_weight_sq,
            minlength=graph.num_vertices,
        )
        self._intra = intra_cluster_edge_weight(graph, self.state.assignments)
        self._penalty = cluster_weight_penalty(graph, self.state.assignments)
        # Counters (persisted by SnapshotStore).
        self.batches_applied = 0
        self.updates_applied = {"insert": 0, "delete": 0, "reweight": 0}
        self.moves_applied = 0
        self.escalations = 0
        self.queries_answered = 0
        self.last_drift: Optional[float] = None
        self.sim_seconds = 0.0
        # Serving staleness: updates applied since the last snapshot
        # save (not persisted — a just-restored state is fresh).
        self.updates_since_save = 0
        # Persistent execution backend (DESIGN.md §13): created lazily on
        # the first apply() so the process pool warms up once and is then
        # reused by every update batch (and by ClusterServer, which
        # delegates here).  None until first use or when the config runs
        # the default simulated backend.
        self._backend = None
        self._backend_ready = False

    # ------------------------------------------------------------------ #
    # Execution backend lifecycle
    # ------------------------------------------------------------------ #

    def _exec_backend(self):
        """The persistent backend, or None for inline execution."""
        if not self._backend_ready:
            self._backend_ready = True
            if self.config.backend != "simulated":
                from repro.parallel.backend import create_backend

                backend = create_backend(
                    self.config.backend,
                    workers=self.config.resolved_workers,
                    machine=self.config.machine,
                )
                if not backend.inline:
                    self._backend = backend
        return self._backend

    def close(self) -> None:
        """Release the persistent backend (worker pool, shm segments).

        Idempotent; the clusterer remains usable afterwards — the next
        apply() falls back to inline execution rather than re-spawning.
        """
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "DynamicClusterer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Bootstrap
    # ------------------------------------------------------------------ #

    @classmethod
    def bootstrap(
        cls,
        graph: CSRGraph,
        config: ClusteringConfig,
        engine: Optional[str] = None,
        supervisor=None,
        instrumentation=None,
        guard: Optional[DriftGuard] = None,
    ) -> "DynamicClusterer":
        """Cluster ``graph`` from scratch, then serve it dynamically."""
        from repro.core.api import cluster

        result = cluster(
            graph,
            config,
            RunOptions(
                instrumentation=instrumentation,
                engine=engine,
                supervisor=supervisor,
            ),
        )
        return cls(
            graph,
            result.assignments,
            config,
            engine=engine,
            supervisor=supervisor,
            instrumentation=instrumentation,
            guard=guard,
        )

    # ------------------------------------------------------------------ #
    # Serving facade
    # ------------------------------------------------------------------ #

    @property
    def f_objective(self) -> float:
        """Incrementally maintained unordered LambdaCC objective ``F``."""
        return self._intra - self.resolution * self._penalty

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_clusters(self) -> int:
        return self.state.num_clusters

    def cluster_of(self, u: int) -> int:
        """The cluster id vertex ``u`` is currently assigned to."""
        if u < 0 or u >= self.graph.num_vertices:
            raise UpdateError(
                f"vertex {u} out of range [0, {self.graph.num_vertices})"
            )
        if self.instr.enabled:
            self.instr.count(M_DYNAMIC_QUERIES, 1.0, kind="cluster_of")
        self.queries_answered += 1
        return int(self.state.assignments[u])

    def assignments(self, u: Optional[int] = None):
        """All assignments (copy), or one vertex's assignment."""
        if u is not None:
            return self.cluster_of(u)
        if self.instr.enabled:
            self.instr.count(M_DYNAMIC_QUERIES, 1.0, kind="assignments")
        self.queries_answered += 1
        return self.state.assignments.copy()

    def members(self, cluster: int) -> np.ndarray:
        """Vertex ids currently assigned to ``cluster``."""
        if self.instr.enabled:
            self.instr.count(M_DYNAMIC_QUERIES, 1.0, kind="members")
        self.queries_answered += 1
        return np.flatnonzero(self.state.assignments == cluster).astype(np.int64)

    def stats(self) -> dict:
        """Serving-facade summary of the live state."""
        return {
            "num_vertices": int(self.graph.num_vertices),
            "num_edges": int(self.graph.num_edges),
            "num_clusters": int(self.state.num_clusters),
            "f_objective": float(self.f_objective),
            "objective": 2.0 * float(self.f_objective),
            "resolution": self.resolution,
            "engine": self.engine_name,
            "kernel": self.config.kernel,
            "batches_applied": int(self.batches_applied),
            "updates_applied": dict(self.updates_applied),
            "moves_applied": int(self.moves_applied),
            "escalations": int(self.escalations),
            "last_drift": self.last_drift,
            "queries_answered": int(self.queries_answered),
            "sim_seconds": float(self.sim_seconds),
            "updates_since_save": int(self.updates_since_save),
        }

    def mark_saved(self) -> None:
        """Reset serving staleness after a successful snapshot save."""
        self.updates_since_save = 0
        if self.instr.enabled:
            self.instr.set_gauge(M_SERVE_STALENESS, 0.0)

    def exact_objective(self) -> float:
        """Full ``F`` recompute from the current graph + assignments."""
        return lambdacc_objective(self.graph, self.state.assignments, self.resolution)

    def audit(self, auditor=None) -> List[str]:
        """Run a :class:`StateAuditor` over the live state (empty = clean)."""
        from repro.resilience.audit import StateAuditor

        auditor = auditor if auditor is not None else StateAuditor()
        issues = auditor.verify_state(self.graph, self.state, self.resolution)
        exact = self.exact_objective()
        scale = max(1.0, abs(exact))
        if abs(exact - self.f_objective) > auditor.tolerance * scale:
            issues.append(
                f"incremental objective {self.f_objective:.9g} drifted from "
                f"recomputed {exact:.9g}"
            )
        return issues

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def apply(self, batch: Union[UpdateBatch, List[EdgeUpdate]]) -> UpdateReport:
        """Apply one update batch; localized refinement keeps F current."""
        if not isinstance(batch, UpdateBatch):
            batch = UpdateBatch(batch)
        start = time.perf_counter()
        old_n = self.graph.num_vertices
        intra_delta, counts = self._stage(batch, old_n)

        graph = self.overlay.compact()
        self._adopt_graph(graph, old_n)
        self._intra += intra_delta

        sched = SimulatedScheduler(
            num_workers=self.config.resolved_workers,
            machine=self.config.machine,
            instr=self.instr if self.instr.enabled else None,
            backend=self._exec_backend(),
        )
        touched = batch.touched_vertices()
        seed = seed_frontier(graph, touched, sched=sched)
        before = self.state.assignments.copy()
        before_weights = self.state.cluster_weights.copy()
        with self.instr.span(
            "update",
            batch=self.batches_applied,
            updates=len(batch),
            seed=int(seed.size),
            engine=self.engine_name,
        ):
            if seed.size:
                bm = run_engine_restricted(
                    graph,
                    self.state,
                    self.resolution,
                    self.config,
                    engine=self.engine_name,
                    frontier=seed,
                    sched=sched,
                    rng=self.rng,
                )
                iterations = bm.iterations
                moves = bm.total_moves
                frontier_sizes = [int(x) for x in bm.frontier_sizes]
            else:
                iterations, moves, frontier_sizes = 0, 0, []

        movers = np.flatnonzero(before != self.state.assignments)
        if movers.size:
            self._patch_intra(graph, before, movers)
            self._patch_penalty(before, before_weights, movers)

        self.batches_applied += 1
        for op, k in counts.items():
            self.updates_applied[op] += k
        self.moves_applied += int(moves)
        self.updates_since_save += len(batch)
        self.sim_seconds += sched.simulated_time()
        if self.instr.enabled:
            self.instr.set_gauge(
                M_SERVE_STALENESS, float(self.updates_since_save)
            )
            self.instr.count(M_DYNAMIC_BATCHES, 1.0)
            for op, k in counts.items():
                if k:
                    self.instr.count(M_DYNAMIC_UPDATES, float(k), op=op)
            self.instr.observe(M_DYNAMIC_SEED, float(seed.size))
            if moves:
                self.instr.count(
                    M_DYNAMIC_MOVES, float(moves), engine=self.engine_name
                )

        report = UpdateReport(
            batch_index=self.batches_applied - 1,
            num_updates=len(batch),
            op_counts=counts,
            seed_size=int(seed.size),
            new_vertices=graph.num_vertices - old_n,
            iterations=int(iterations),
            moves=int(moves),
            frontier_sizes=frontier_sizes,
        )
        self._check_guard(report)
        report.f_objective = float(self.f_objective)
        report.wall_seconds = time.perf_counter() - start
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _stage(self, batch: UpdateBatch, old_n: int):
        """Stage the batch onto the overlay; returns (intra delta, counts)."""
        intra_delta = 0.0
        counts = {"insert": 0, "delete": 0, "reweight": 0}
        assignments = self.state.assignments
        for upd in batch:
            current = self.overlay.edge_weight(upd.u, upd.v)
            if upd.op == "insert":
                new = current + upd.weight
            elif upd.op == "delete":
                if current == 0.0:
                    raise UpdateError(
                        f"cannot delete absent edge ({upd.u}, {upd.v})"
                    )
                new = 0.0
            else:  # reweight
                if current == 0.0:
                    raise UpdateError(
                        f"cannot reweight absent edge ({upd.u}, {upd.v}); "
                        "use an insert"
                    )
                new = upd.weight
            self.overlay.set_edge(upd.u, upd.v, new)
            counts[upd.op] += 1
            # New vertices enter as fresh singletons, so an edge touching
            # one is never intra-cluster at staging time.
            if (
                max(upd.u, upd.v) < old_n
                and assignments[upd.u] == assignments[upd.v]
            ):
                intra_delta += new - current
        return intra_delta, counts

    def _adopt_graph(self, graph: CSRGraph, old_n: int) -> None:
        """Swap in the compacted graph, growing state for new vertices."""
        self.graph = graph
        new_n = graph.num_vertices
        if new_n > old_n:
            grown = np.arange(old_n, new_n, dtype=np.int64)
            state = self.state
            state.assignments = np.concatenate([state.assignments, grown])
            state.cluster_weights = np.concatenate(
                [state.cluster_weights, graph.node_weights[old_n:].astype(np.float64)]
            )
            state.cluster_sizes = np.concatenate(
                [state.cluster_sizes, np.ones(new_n - old_n, dtype=np.int64)]
            )
            # Singleton clusters contribute (k^2 - k^2)/2 = 0 to the
            # penalty, so only the K2 ledger grows.
            self._k2 = np.concatenate([self._k2, graph.node_weight_sq[old_n:]])
        self.state.node_weights = graph.node_weights

    def _patch_intra(
        self, graph: CSRGraph, before: np.ndarray, movers: np.ndarray
    ) -> None:
        """Intra-cluster weight delta from the batch's observed moves.

        Every edge whose intra/inter status changed is incident to a
        mover, so scanning mover adjacency rows covers the delta exactly;
        edges between two movers appear in both rows and are half-counted.
        """
        starts = graph.offsets[movers]
        degs = (graph.offsets[movers + 1] - starts).astype(np.int64)
        total = int(degs.sum())
        if total == 0:
            return
        cum = np.zeros(movers.size, dtype=np.int64)
        np.cumsum(degs[:-1], out=cum[1:])
        flat = np.repeat(starts - cum, degs) + np.arange(total, dtype=np.int64)
        src = np.repeat(movers, degs)
        dst = graph.neighbors[flat]
        wts = graph.weights[flat]
        after = self.state.assignments
        was_intra = before[src] == before[dst]
        now_intra = after[src] == after[dst]
        mover_mask = np.zeros(graph.num_vertices, dtype=bool)
        mover_mask[movers] = True
        scale = np.where(mover_mask[dst], 0.5, 1.0)
        delta = (
            (now_intra.astype(np.float64) - was_intra.astype(np.float64))
            * wts
            * scale
        )
        self._intra += float(delta.sum())

    def _patch_penalty(
        self,
        before: np.ndarray,
        before_weights: np.ndarray,
        movers: np.ndarray,
    ) -> None:
        """Penalty delta over the clusters the movers left or joined."""
        after = self.state.assignments
        old_c = before[movers]
        new_c = after[movers]
        affected = np.union1d(old_c, new_c)
        before_term = float(
            ((before_weights[affected] ** 2 - self._k2[affected]) / 2.0).sum()
        )
        k2_moved = self.graph.node_weight_sq[movers]
        np.subtract.at(self._k2, old_c, k2_moved)
        np.add.at(self._k2, new_c, k2_moved)
        after_term = float(
            (
                (self.state.cluster_weights[affected] ** 2 - self._k2[affected])
                / 2.0
            ).sum()
        )
        self._penalty += after_term - before_term

    def _check_guard(self, report: UpdateReport) -> None:
        guard = self.guard
        n = self.graph.num_vertices
        peak = max(report.frontier_sizes, default=0)
        if (
            guard.max_frontier_fraction < 1.0
            and n
            and peak > guard.max_frontier_fraction * n
        ):
            self._escalate("frontier-growth", report)
            return
        if guard.recompute_every and (
            self.batches_applied % guard.recompute_every == 0
        ):
            exact = self.exact_objective()
            drift = abs(self.f_objective - exact)
            self.last_drift = drift
            report.drift = drift
            if self.instr.enabled:
                self.instr.set_gauge(M_DYNAMIC_DRIFT, drift)
            scale = max(1.0, abs(exact))
            if drift > guard.max_drift * scale:
                self._escalate("objective-drift", report)
            else:
                self._resync()

    def _resync(self) -> None:
        """Adopt exact objective terms (kills float-drift accumulation)."""
        graph = self.graph
        self._intra = intra_cluster_edge_weight(graph, self.state.assignments)
        self._penalty = cluster_weight_penalty(graph, self.state.assignments)
        self._k2 = np.bincount(
            self.state.assignments,
            weights=graph.node_weight_sq,
            minlength=graph.num_vertices,
        )

    def _escalate(self, reason: str, report: UpdateReport) -> None:
        """Full re-clustering through the RunSupervisor."""
        from repro.core.api import cluster
        from repro.supervisor.supervisor import RunSupervisor

        self.escalations += 1
        report.escalated = reason
        if self.instr.enabled:
            self.instr.count(M_DYNAMIC_ESCALATIONS, 1.0, reason=reason)
            self.instr.event("dynamic-escalate", reason=reason)
        supervisor = (
            self.supervisor if self.supervisor is not None else RunSupervisor()
        )
        result = cluster(
            self.graph,
            self.config,
            RunOptions(
                instrumentation=(self.instr if self.instr.enabled else None),
                engine=self.engine_name,
                supervisor=supervisor,
            ),
        )
        self.state = ClusterState.from_assignments(self.graph, result.assignments)
        self.overlay = DeltaOverlayGraph(self.graph)
        self._resync()
        self.last_drift = 0.0
