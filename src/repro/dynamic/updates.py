"""Edge-update batches and the JSONL update-log format.

An :class:`EdgeUpdate` is one of three operations on an undirected edge:

* ``insert``   — add ``weight`` to the edge (creating it if absent);
* ``delete``   — remove the edge (an error if absent);
* ``reweight`` — set the edge's weight to ``weight`` (an error if absent;
  reweighting to ``0`` is a delete, reweighting to the current weight is
  a no-op).

Self-loop updates are rejected: LambdaCC self-loops are a compression
artifact (intra-cluster mass), not an input surface.  Vertex ids beyond
the current graph grow it — new vertices join as singletons with unit
LambdaCC weight.

The on-disk log is JSONL, one update per line::

    {"op": "insert", "u": 3, "v": 17, "weight": 1.0}
    {"op": "delete", "u": 3, "v": 17}

``repro update --updates log.jsonl`` replays such a log against a
snapshot or freshly clustered graph in batches.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import UpdateError

PathLike = Union[str, Path]

#: The three recognized operations.
OPS = ("insert", "delete", "reweight")


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge operation (validated on construction)."""

    op: str
    u: int
    v: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise UpdateError(f"unknown update op {self.op!r}; expected one of {OPS}")
        if self.u < 0 or self.v < 0:
            raise UpdateError(f"negative vertex id in update ({self.u}, {self.v})")
        if self.u == self.v:
            raise UpdateError(f"self-loop update on vertex {self.u} is not allowed")
        if not math.isfinite(self.weight):
            raise UpdateError(
                f"non-finite weight {self.weight!r} in {self.op} ({self.u}, {self.v})"
            )
        if self.op == "delete" and self.weight != 1.0:
            object.__setattr__(self, "weight", 1.0)

    @property
    def key(self) -> Tuple[int, int]:
        """Canonical ``(min, max)`` endpoint pair."""
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)

    def as_dict(self) -> dict:
        payload = {"op": self.op, "u": int(self.u), "v": int(self.v)}
        if self.op != "delete":
            payload["weight"] = float(self.weight)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "EdgeUpdate":
        if not isinstance(payload, dict):
            raise UpdateError(f"update must be a JSON object, got {type(payload).__name__}")
        try:
            op = payload["op"]
            u = int(payload["u"])
            v = int(payload["v"])
        except (KeyError, TypeError, ValueError) as exc:
            raise UpdateError(f"malformed update {payload!r}: {exc}") from None
        weight = payload.get("weight", 1.0)
        if not isinstance(weight, (int, float)):
            raise UpdateError(f"malformed update weight {weight!r}")
        return cls(op=str(op), u=u, v=v, weight=float(weight))


class UpdateBatch:
    """An ordered sequence of :class:`EdgeUpdate` applied atomically.

    "Atomically" in the dynamic-clusterer sense: all updates in the batch
    are staged onto the graph, then *one* localized refinement runs over
    the combined seed frontier (DESIGN.md §11).  Order matters within a
    batch — e.g. ``insert`` then ``delete`` of the same edge cancels out.
    """

    __slots__ = ("updates",)

    def __init__(self, updates: Iterable[EdgeUpdate] = ()) -> None:
        self.updates: List[EdgeUpdate] = list(updates)
        for upd in self.updates:
            if not isinstance(upd, EdgeUpdate):
                raise UpdateError(f"not an EdgeUpdate: {upd!r}")

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.updates)

    def __repr__(self) -> str:
        counts = self.op_counts()
        parts = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
        return f"UpdateBatch({len(self.updates)} updates: {parts or 'empty'})"

    def op_counts(self) -> dict:
        counts = {op: 0 for op in OPS}
        for upd in self.updates:
            counts[upd.op] += 1
        return counts

    def touched_vertices(self) -> np.ndarray:
        """Unique endpoints of every updated edge (the frontier seed)."""
        if not self.updates:
            return np.zeros(0, dtype=np.int64)
        flat = np.fromiter(
            (x for upd in self.updates for x in (upd.u, upd.v)),
            dtype=np.int64,
            count=2 * len(self.updates),
        )
        return np.unique(flat)

    @property
    def max_vertex(self) -> int:
        """Largest vertex id referenced (-1 for an empty batch)."""
        return max((max(upd.u, upd.v) for upd in self.updates), default=-1)

    # -- convenience constructors ------------------------------------- #

    @classmethod
    def inserts(
        cls, edges: Sequence[Tuple[int, int]], weight: float = 1.0
    ) -> "UpdateBatch":
        return cls(EdgeUpdate("insert", int(u), int(v), weight) for u, v in edges)

    @classmethod
    def deletes(cls, edges: Sequence[Tuple[int, int]]) -> "UpdateBatch":
        return cls(EdgeUpdate("delete", int(u), int(v)) for u, v in edges)


# ---------------------------------------------------------------------- #
# JSONL update logs
# ---------------------------------------------------------------------- #


def read_update_log(path: PathLike) -> List[EdgeUpdate]:
    """Parse a JSONL update log (blank lines and ``#`` comments skipped)."""
    updates: List[EdgeUpdate] = []
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise UpdateError(f"cannot read update log {path}: {exc}") from exc
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise UpdateError(f"{path}:{lineno}: invalid JSON: {exc}") from None
        try:
            updates.append(EdgeUpdate.from_dict(payload))
        except UpdateError as exc:
            raise UpdateError(f"{path}:{lineno}: {exc}") from None
    return updates


def write_update_log(path: PathLike, updates: Iterable[EdgeUpdate]) -> None:
    """Write updates as one JSON object per line."""
    with open(path, "w") as handle:
        for upd in updates:
            handle.write(json.dumps(upd.as_dict()) + "\n")


def batched(updates: Sequence[EdgeUpdate], batch_size: int) -> List[UpdateBatch]:
    """Chunk an update stream into :class:`UpdateBatch` groups in order."""
    if batch_size <= 0:
        raise UpdateError(f"batch_size must be positive, got {batch_size}")
    return [
        UpdateBatch(updates[i : i + batch_size])
        for i in range(0, len(updates), batch_size)
    ]
