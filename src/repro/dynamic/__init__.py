"""Dynamic clustering: incremental edge updates over a live partition.

Public surface (DESIGN.md §11):

* :class:`~repro.dynamic.updates.EdgeUpdate` /
  :class:`~repro.dynamic.updates.UpdateBatch` — validated edge
  insert/delete/reweight operations and their JSONL log format;
* :class:`~repro.dynamic.clusterer.DynamicClusterer` — the serving
  facade: ``apply(batch)`` with localized refinement, ``cluster_of``,
  ``assignments``, ``stats``, plus the :class:`DriftGuard` escalation
  policy;
* :class:`~repro.dynamic.snapshot.SnapshotStore` — two-slot rotating
  ``.npz`` persistence of live state (bit-identical resumption);
* :class:`~repro.dynamic.serve.ClusterServer` — the SLO-instrumented
  query/stage/commit/save facade (per-op latency histograms, staleness
  gauge) and :func:`~repro.dynamic.serve.run_session` — the
  deterministic scripted session runner behind ``repro serve-sim``.
"""

from repro.dynamic.clusterer import DriftGuard, DynamicClusterer, UpdateReport
from repro.dynamic.snapshot import (
    SnapshotStore,
    load_snapshot,
    read_snapshot_meta,
    save_snapshot,
)
from repro.dynamic.serve import ClusterServer, run_session
from repro.dynamic.updates import (
    EdgeUpdate,
    UpdateBatch,
    batched,
    read_update_log,
    write_update_log,
)

__all__ = [
    "ClusterServer",
    "DriftGuard",
    "DynamicClusterer",
    "EdgeUpdate",
    "SnapshotStore",
    "UpdateBatch",
    "UpdateReport",
    "batched",
    "load_snapshot",
    "read_snapshot_meta",
    "read_update_log",
    "run_session",
    "save_snapshot",
    "write_update_log",
]
