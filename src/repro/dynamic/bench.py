"""Dynamic-update bench: localized refinement vs full recompute (PR7).

The acceptance claim of the dynamic subsystem (ISSUE 7): on LFR churn
batches touching at most 1% of the edges, applying the batch through
:class:`~repro.dynamic.clusterer.DynamicClusterer` — frontier seeded
from just the touched endpoints — evaluates **>= 5x fewer candidate
moves** than a full single-level recompute from the same warm partition
on the same updated graph, while landing on an **equal final objective**
(|delta F| <= 1e-9).

Candidate-move evaluations are the sum of per-round frontier sizes (the
same work measure the paper's frontier ablation uses): the full baseline
pays ``n`` in its first round by construction, the incremental path pays
``|touched endpoints|`` and whatever the cascade actually reaches.

Both paths run the deterministic sequential engine with ``rng=None``
(id-order sweeps), so equal objectives are a hard equality check of the
refinement outcome, not a tolerance hiding divergent local optima.
Writes ``BENCH_PR7.json`` via :class:`~repro.obs.bench.BenchSuite`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.config import ClusteringConfig, Frontier
from repro.core.engines import run_engine_restricted
from repro.core.objective import lambdacc_objective
from repro.core.state import ClusterState
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.generators.lfr import lfr_like_graph
from repro.graphs.csr import CSRGraph
from repro.obs.bench import BenchSuite, time_callable

#: Resolution for the LFR churn workload (community scale ~10-100).
DYNAMIC_RESOLUTION = 0.05

#: Acceptance gates asserted by ``benchmarks/bench_dynamic.py``.
TARGET_EVAL_RATIO = 5.0
OBJECTIVE_TOLERANCE = 1e-9


def churn_batch(
    graph: CSRGraph, fraction: float, rng: np.random.Generator
) -> UpdateBatch:
    """A batch touching at most ``fraction`` of the graph's edges.

    Half deletes of random existing edges, half inserts of random absent
    pairs (unit weight) — the steady-state churn shape of a graph whose
    size stays roughly constant while its edge set drifts.
    """
    u, v, _ = graph.edge_list()
    m = int(u.size)
    k = max(2, int(fraction * m))
    num_delete = k // 2
    num_insert = k - num_delete
    picks = rng.choice(m, size=num_delete, replace=False)
    updates = [
        EdgeUpdate("delete", int(u[i]), int(v[i])) for i in sorted(picks)
    ]
    present = set(zip(u.tolist(), v.tolist()))
    for i in picks:
        present.discard((int(u[i]), int(v[i])))
    n = graph.num_vertices
    while num_insert > 0:
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        if key in present:
            continue
        present.add(key)
        updates.append(EdgeUpdate("insert", key[0], key[1], 1.0))
        num_insert -= 1
    return UpdateBatch(updates)


def _full_recompute(
    graph: CSRGraph,
    pre_assignments: np.ndarray,
    resolution: float,
    config: ClusteringConfig,
) -> Tuple[np.ndarray, int]:
    """Full single-level recompute from the warm partition; returns
    (assignments, candidate evaluations)."""
    state = ClusterState.from_assignments(graph, pre_assignments)
    stats = run_engine_restricted(
        graph,
        state,
        resolution,
        config,
        engine="sequential",
        frontier=None,
        rng=None,
    )
    return state.assignments, int(sum(stats.frontier_sizes))


def dynamic_suite(
    num_vertices: int = 2000,
    num_batches: int = 4,
    churn_fraction: float = 0.005,
    seed: int = 7,
    repeats: int = 3,
) -> BenchSuite:
    """Run the churn workload; returns the suite behind ``BENCH_PR7.json``."""
    lfr = lfr_like_graph(num_vertices, mixing=0.2, seed=seed)
    graph = lfr.graph
    config = ClusteringConfig(
        resolution=DYNAMIC_RESOLUTION,
        parallel=False,
        num_iter=None,  # converge: the warm partition is a fixed point
        # Cluster-neighbors frontier maintenance chases *every* landscape
        # change a move causes (cluster-weight shifts reach cluster-mates
        # that are not graph neighbors), so restricted and full runs
        # converge to the same fixed point — the equal-objective gate.
        frontier=Frontier.CLUSTER_NEIGHBORS,
        seed=seed,
    )

    # Warm partition: multilevel bootstrap, then one full sequential sweep
    # to a single-level fixed point.  Without this the full-recompute
    # baseline would bundle leftover multilevel refinement moves into its
    # first batch and the two paths would measure different work.
    warm_assignments, _ = _full_recompute(
        graph,
        DynamicClusterer.bootstrap(graph, config, engine="sequential").assignments(),
        DYNAMIC_RESOLUTION,
        config,
    )
    clusterer = DynamicClusterer(
        graph,
        warm_assignments,
        config,
        engine="sequential",
        guard=DriftGuard(recompute_every=0, max_frontier_fraction=1.0),
    )
    # Deterministic id-order sweeps: equal objectives become a hard
    # equality of refinement outcomes, not luck of the permutation.
    clusterer.rng = None

    churn_rng = np.random.default_rng(seed)
    inc_evals = 0
    full_evals = 0
    inc_wall = 0.0
    full_wall = 0.0
    max_f_delta = 0.0
    identical = True
    moves = 0
    seed_sizes: List[int] = []
    batch_rows = []

    for index in range(num_batches):
        batch = churn_batch(clusterer.graph, churn_fraction, churn_rng)
        pre = clusterer.state.assignments.copy()

        report = clusterer.apply(batch)
        inc_evals += report.candidate_evaluations
        moves += report.moves
        seed_sizes.append(report.seed_size)
        updated = clusterer.graph  # post-compaction graph the batch built

        # Wall clocks: rebuild-from-warm-partition plus refinement, the
        # work a serving system would repeat per batch on either path.
        touched = batch.touched_vertices()
        _, inc_timing = time_callable(
            lambda: run_engine_restricted(
                updated,
                ClusterState.from_assignments(updated, pre),
                DYNAMIC_RESOLUTION,
                config,
                engine="sequential",
                frontier=touched,
                rng=None,
            ),
            repeats=repeats,
            warmup=1,
        )
        (full_assignments, batch_full_evals), full_timing = time_callable(
            lambda: _full_recompute(updated, pre, DYNAMIC_RESOLUTION, config),
            repeats=repeats,
            warmup=1,
        )
        inc_wall += inc_timing.best
        full_wall += full_timing.best
        full_evals += batch_full_evals

        f_inc = clusterer.exact_objective()
        f_full = lambdacc_objective(updated, full_assignments, DYNAMIC_RESOLUTION)
        delta = abs(f_inc - f_full)
        max_f_delta = max(max_f_delta, delta)
        identical = identical and bool(
            np.array_equal(full_assignments, clusterer.state.assignments)
        )
        batch_rows.append(
            {
                "batch": index,
                "updates": len(batch),
                "seed_size": report.seed_size,
                "incremental_evals": report.candidate_evaluations,
                "full_evals": batch_full_evals,
                "moves": report.moves,
                "f_delta": delta,
            }
        )

    eval_ratio = full_evals / max(1, inc_evals)
    suite = BenchSuite(
        "PR7",
        meta={
            "workload": "lfr-churn",
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "num_batches": int(num_batches),
            "churn_fraction": float(churn_fraction),
            "resolution": DYNAMIC_RESOLUTION,
            "engine": "sequential",
            "seed": int(seed),
        },
    )
    suite.add_row(
        "full-recompute",
        metrics={
            "candidate_evals": float(full_evals),
            "wall_seconds": full_wall,
        },
        batches=batch_rows,
    )
    suite.add_row(
        "incremental",
        metrics={
            "candidate_evals": float(inc_evals),
            "wall_seconds": inc_wall,
            "eval_ratio": eval_ratio,
            "f_delta_abs": max_f_delta,
        },
        identical=identical,
        moves=int(moves),
        seed_sizes=[int(s) for s in seed_sizes],
        target_eval_ratio=TARGET_EVAL_RATIO,
        objective_tolerance=OBJECTIVE_TOLERANCE,
    )
    return suite


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Dynamic-update bench; writes BENCH_PR7.json"
    )
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--vertices", type=int, default=2000)
    parser.add_argument("--batches", type=int, default=4)
    parser.add_argument("--churn", type=float, default=0.005)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    suite = dynamic_suite(
        num_vertices=args.vertices,
        num_batches=args.batches,
        churn_fraction=args.churn,
        seed=args.seed,
    )
    path = suite.write(args.out)
    rows = {row.key: row for row in suite.rows}
    inc = rows["incremental"]
    print(f"wrote {path}")
    print(
        "eval_ratio={:.1f}x  f_delta_abs={:.3g}  identical={}".format(
            inc.metrics["eval_ratio"],
            inc.metrics["f_delta_abs"],
            inc.info["identical"],
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
