"""Snapshot persistence for a live :class:`DynamicClusterer`.

Reuses the resilience checkpoint machinery (DESIGN.md §6): the same
``.npz`` container with a JSON ``meta`` header, the same atomic
write-fsync-rename protocol, the same corrupt-file normalization, and the
same exact-RNG-state capture — so a snapshot restores *bit-identically*:
assignments, cluster aggregates, the incremental objective terms, and the
RNG stream all resume exactly where the live session stopped.  The
round-trip acceptance test (save → process restart → restore → further
updates) relies on every one of those being exact, which is why the
cluster weight/size arrays are stored verbatim rather than recomputed
from assignments on load (``np.add.at`` summation order would only agree
to rounding).

:class:`SnapshotStore` adds the supervisor's two-slot rotation idiom: a
save never overwrites the newest good snapshot, so a crash mid-save
leaves the previous generation intact and :meth:`SnapshotStore.load`
falls back to it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.errors import SnapshotError
from repro.resilience.checkpoint import (
    _CORRUPT_NPZ_ERRORS,
    _pack_graph,
    _unpack_graph,
    capture_rng,
    restore_rng,
)
from repro.utils.rng import make_rng

PathLike = Union[str, Path]

#: Format version written into every snapshot (bump on layout changes).
SNAPSHOT_VERSION = 1

_STATE_ARRAYS = ("assignments", "cluster_weights", "cluster_sizes", "k2")


def save_snapshot(
    path: PathLike, clusterer: DynamicClusterer, generation: int = 0
) -> None:
    """Write the live clusterer state to ``path`` (atomic, one ``.npz``).

    ``generation`` is the :class:`SnapshotStore` rotation counter; plain
    file-level saves leave it at 0.
    """
    meta = {
        "version": SNAPSHOT_VERSION,
        "kind": "repro-dynamic-snapshot",
        "generation": int(generation),
        "config_tag": clusterer.config.config_tag(clusterer.resolution),
        "engine": clusterer.engine_name,
        "resolution": clusterer.resolution,
        "num_vertices": int(clusterer.graph.num_vertices),
        "intra": clusterer._intra,
        "penalty": clusterer._penalty,
        "rng_state": capture_rng(clusterer.rng),
        "counters": {
            "batches_applied": clusterer.batches_applied,
            "updates_applied": dict(clusterer.updates_applied),
            "moves_applied": clusterer.moves_applied,
            "escalations": clusterer.escalations,
            "queries_answered": clusterer.queries_answered,
        },
        "last_drift": clusterer.last_drift,
        "sim_seconds": clusterer.sim_seconds,
        "repairs": clusterer.graph.repairs,
    }
    arrays = {"meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    _pack_graph(arrays, "cur", clusterer.graph)
    arrays["assignments"] = clusterer.state.assignments
    arrays["cluster_weights"] = clusterer.state.cluster_weights
    arrays["cluster_sizes"] = clusterer.state.cluster_sizes
    arrays["k2"] = clusterer._k2
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    clusterer.mark_saved()


def read_snapshot_meta(path: PathLike) -> dict:
    """The snapshot's JSON header (validated), without the arrays."""
    try:
        data = np.load(path)
    except _CORRUPT_NPZ_ERRORS as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        if "meta" not in data:
            raise SnapshotError(f"{path} is not a repro snapshot (no meta)")
        try:
            meta = json.loads(bytes(data["meta"]).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"{path}: corrupt snapshot header: {exc}") from exc
        if meta.get("kind") != "repro-dynamic-snapshot":
            raise SnapshotError(f"{path}: not a dynamic-clusterer snapshot")
        if meta.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path}: unsupported snapshot version {meta.get('version')!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        return meta
    finally:
        data.close()


def load_snapshot(
    path: PathLike,
    config: ClusteringConfig,
    engine: Optional[str] = None,
    supervisor=None,
    instrumentation=None,
    guard: Optional[DriftGuard] = None,
) -> DynamicClusterer:
    """Restore a :class:`DynamicClusterer` from a snapshot file.

    ``config`` must be compatible with the one that wrote the snapshot
    (same :meth:`~repro.core.config.ClusteringConfig.config_tag`); the
    engine defaults to the snapshot's own, since replay identity depends
    on running the same engine.
    """
    meta = read_snapshot_meta(path)
    expected = config.config_tag(float(config.resolution))
    if meta["config_tag"] != expected:
        raise SnapshotError(
            f"{path}: snapshot was written under config {meta['config_tag']!r}, "
            f"cannot restore under {expected!r}"
        )
    try:
        data = np.load(path)
    except _CORRUPT_NPZ_ERRORS as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        graph = _unpack_graph(data, "cur")
        try:
            arrays = {name: np.asarray(data[name]) for name in _STATE_ARRAYS}
        except KeyError as exc:
            raise SnapshotError(f"{path}: snapshot missing array {exc}") from None
    except SnapshotError:
        raise
    except _CORRUPT_NPZ_ERRORS as exc:
        raise SnapshotError(f"{path}: corrupt snapshot payload: {exc}") from exc
    finally:
        data.close()
    if meta.get("repairs") is not None:
        graph.repairs = dict(meta["repairs"])
    clusterer = DynamicClusterer(
        graph,
        arrays["assignments"],
        config,
        engine=engine if engine is not None else meta.get("engine"),
        supervisor=supervisor,
        instrumentation=instrumentation,
        guard=guard,
    )
    # Restore the maintained aggregates verbatim: recomputing them would
    # only agree to rounding, breaking bit-identical resumption.
    clusterer.state.cluster_weights = arrays["cluster_weights"].astype(
        np.float64, copy=True
    )
    clusterer.state.cluster_sizes = arrays["cluster_sizes"].astype(
        np.int64, copy=True
    )
    clusterer._k2 = arrays["k2"].astype(np.float64, copy=True)
    clusterer._intra = float(meta["intra"])
    clusterer._penalty = float(meta["penalty"])
    clusterer.rng = make_rng(config.seed)
    try:
        restore_rng(clusterer.rng, meta.get("rng_state"))
    except Exception as exc:
        raise SnapshotError(f"{path}: cannot restore RNG state: {exc}") from exc
    counters = meta.get("counters", {})
    clusterer.batches_applied = int(counters.get("batches_applied", 0))
    clusterer.updates_applied.update(counters.get("updates_applied", {}))
    clusterer.moves_applied = int(counters.get("moves_applied", 0))
    clusterer.escalations = int(counters.get("escalations", 0))
    clusterer.queries_answered = int(counters.get("queries_answered", 0))
    clusterer.last_drift = meta.get("last_drift")
    clusterer.sim_seconds = float(meta.get("sim_seconds", 0.0))
    return clusterer


class SnapshotStore:
    """Two-slot rotating snapshot directory (crash-safe saves).

    Saves alternate between ``snap-a.npz`` and ``snap-b.npz``, always
    writing the slot that does *not* hold the newest good snapshot; a
    generation counter in the header identifies the latest.  Mirrors the
    supervisor's :class:`~repro.supervisor.supervisor.CheckpointRotation`.
    """

    SLOT_NAMES = ("snap-a.npz", "snap-b.npz")

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _slots(self):
        """``(path, generation | None)`` per slot; None = missing/corrupt."""
        out = []
        for name in self.SLOT_NAMES:
            path = self.directory / name
            generation = None
            if path.exists():
                try:
                    meta = read_snapshot_meta(path)
                    generation = int(meta.get("generation", 0))
                except SnapshotError:
                    generation = None
            out.append((path, generation))
        return out

    def latest(self) -> Optional[Path]:
        """Path of the newest good snapshot, or None."""
        slots = [(p, g) for p, g in self._slots() if g is not None]
        if not slots:
            return None
        return max(slots, key=lambda item: item[1])[0]

    def save(self, clusterer: DynamicClusterer) -> Path:
        """Write a new generation into the elder (or empty) slot."""
        slots = self._slots()
        generations = [g for _, g in slots if g is not None]
        next_gen = (max(generations) + 1) if generations else 1
        target = min(
            slots, key=lambda item: (item[1] is not None, item[1] or 0)
        )[0]
        save_snapshot(target, clusterer, generation=next_gen)
        return target

    def load(
        self,
        config: ClusteringConfig,
        engine: Optional[str] = None,
        supervisor=None,
        instrumentation=None,
        guard: Optional[DriftGuard] = None,
    ) -> DynamicClusterer:
        """Restore the newest good snapshot, falling back to the elder slot."""
        slots = sorted(
            ((p, g) for p, g in self._slots() if g is not None),
            key=lambda item: -item[1],
        )
        if not slots:
            raise SnapshotError(f"no snapshot found in {self.directory}")
        last_error: Optional[SnapshotError] = None
        for path, _ in slots:
            try:
                return load_snapshot(
                    path,
                    config,
                    engine=engine,
                    supervisor=supervisor,
                    instrumentation=instrumentation,
                    guard=guard,
                )
            except SnapshotError as exc:
                last_error = exc
        raise last_error  # type: ignore[misc]
