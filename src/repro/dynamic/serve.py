"""Scripted query/update sessions against a :class:`DynamicClusterer`.

``repro serve-sim`` is a *simulated* serving loop: a deterministic script
drives the same facade a real service would call, producing one output
line per command — which makes serving behavior testable with plain
string comparison (no sockets, no timing).  Script grammar, one command
per line (blank lines and ``#`` comments skipped)::

    get U                # cluster_of(U)
    same U V             # are U and V co-clustered right now?
    members C            # member vertex ids of cluster C
    stats                # serving-facade summary (deterministic subset)
    insert U V [W]       # stage an edge update (default weight 1)
    delete U V
    reweight U V W
    commit               # apply staged updates as one UpdateBatch
    save                 # rotate a snapshot into the session's SnapshotStore
    audit                # StateAuditor over the live state

Floats are printed with ``%.9g`` and wall-clock numbers are excluded, so
a session's transcript is reproducible bit-for-bit across machines.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.dynamic.clusterer import DynamicClusterer
from repro.dynamic.snapshot import SnapshotStore
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.errors import UpdateError

#: Keys of :meth:`DynamicClusterer.stats` included in ``stats`` output —
#: the deterministic subset (no wall/sim seconds).
STATS_KEYS = (
    "num_vertices",
    "num_edges",
    "num_clusters",
    "f_objective",
    "batches_applied",
    "moves_applied",
    "escalations",
)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)


def run_session(
    clusterer: DynamicClusterer,
    script: Iterable[str],
    store: Optional[SnapshotStore] = None,
) -> List[str]:
    """Execute a serve-sim script; returns one output line per command."""
    out: List[str] = []
    staged: List[EdgeUpdate] = []
    for lineno, raw in enumerate(script, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        cmd, args = parts[0], parts[1:]
        try:
            out.append(_dispatch(clusterer, store, staged, cmd, args))
        except UpdateError as exc:
            raise UpdateError(f"serve script line {lineno} ({line!r}): {exc}") from exc
    if staged:
        out.append(f"warning: {len(staged)} staged updates never committed")
    return out


def _dispatch(
    clusterer: DynamicClusterer,
    store: Optional[SnapshotStore],
    staged: List[EdgeUpdate],
    cmd: str,
    args: List[str],
) -> str:
    if cmd == "get":
        (u,) = _ints(cmd, args, 1)
        return f"cluster_of({u}) = {clusterer.cluster_of(u)}"
    if cmd == "same":
        u, v = _ints(cmd, args, 2)
        same = clusterer.cluster_of(u) == clusterer.cluster_of(v)
        return f"same({u}, {v}) = {'true' if same else 'false'}"
    if cmd == "members":
        (c,) = _ints(cmd, args, 1)
        ids = ",".join(str(x) for x in clusterer.members(c))
        return f"members({c}) = [{ids}]"
    if cmd == "stats":
        stats = clusterer.stats()
        body = " ".join(f"{key}={_fmt(stats[key])}" for key in STATS_KEYS)
        return f"stats: {body}"
    if cmd in ("insert", "delete", "reweight"):
        update = _parse_update(cmd, args)
        staged.append(update)
        suffix = "" if cmd == "delete" else f" w={_fmt(update.weight)}"
        return f"staged {cmd} ({update.u}, {update.v}){suffix}"
    if cmd == "commit":
        if args:
            raise UpdateError("commit takes no arguments")
        batch = UpdateBatch(staged)
        staged.clear()
        report = clusterer.apply(batch)
        line = (
            f"commit[{report.batch_index}]: updates={report.num_updates} "
            f"seed={report.seed_size} rounds={report.iterations} "
            f"moves={report.moves} f={_fmt(report.f_objective)}"
        )
        if report.escalated:
            line += f" escalated={report.escalated}"
        return line
    if cmd == "save":
        if store is None:
            raise UpdateError("save requires a snapshot store (--snapshot-dir)")
        path = store.save(clusterer)
        return f"saved {path.name}"
    if cmd == "audit":
        issues = clusterer.audit()
        if not issues:
            return "audit: clean"
        return f"audit: {len(issues)} issues: " + "; ".join(issues)
    raise UpdateError(f"unknown serve command {cmd!r}")


def _ints(cmd: str, args: List[str], count: int) -> List[int]:
    if len(args) != count:
        raise UpdateError(f"{cmd} takes {count} argument(s), got {len(args)}")
    try:
        return [int(a) for a in args]
    except ValueError as exc:
        raise UpdateError(f"{cmd}: {exc}") from None


def _parse_update(cmd: str, args: List[str]) -> EdgeUpdate:
    if cmd == "insert":
        if len(args) not in (2, 3):
            raise UpdateError("insert takes U V [W]")
        weight = float(args[2]) if len(args) == 3 else 1.0
    elif cmd == "delete":
        if len(args) != 2:
            raise UpdateError("delete takes U V")
        weight = 1.0
    else:
        if len(args) != 3:
            raise UpdateError("reweight takes U V W")
        weight = float(args[2])
    try:
        u, v = int(args[0]), int(args[1])
    except ValueError as exc:
        raise UpdateError(f"{cmd}: {exc}") from None
    return EdgeUpdate(cmd, u, v, weight)
