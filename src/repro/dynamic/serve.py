"""Serving facade and scripted query/update sessions.

:class:`ClusterServer` wraps a :class:`DynamicClusterer` (plus an
optional :class:`SnapshotStore`) behind the op surface a real service
exposes — query / stage / commit / save / audit — and, when the run is
instrumented, times every op into the ``repro_serve_op_seconds``
histogram (µs-resolution buckets) that the SLO spec in
:mod:`repro.obs.health` gates on.  The staleness gauge
(``repro_serve_staleness_updates``) is maintained by the clusterer
itself on apply/save.  With instrumentation disabled there is no
``perf_counter`` call on the op path at all.

``repro serve-sim`` drives the same facade from a deterministic script:
one output line per command, floats printed with ``%.9g`` and
wall-clock numbers excluded, so a session's transcript is reproducible
bit-for-bit across machines.  Script grammar, one command per line
(blank lines and ``#`` comments skipped)::

    get U                # cluster_of(U)
    same U V             # are U and V co-clustered right now?
    members C            # member vertex ids of cluster C
    stats                # serving-facade summary (deterministic subset)
    insert U V [W]       # stage an edge update (default weight 1)
    delete U V
    reweight U V W
    commit               # apply staged updates as one UpdateBatch
    save                 # rotate a snapshot into the session's SnapshotStore
    audit                # StateAuditor over the live state
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.dynamic.clusterer import DynamicClusterer, UpdateReport
from repro.dynamic.snapshot import SnapshotStore
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.errors import ServerClosedError, UpdateError
from repro.obs.instrument import (
    M_SERVE_LATENCY,
    SERVE_LATENCY_BUCKETS,
    _HELP,
)

#: Keys of :meth:`DynamicClusterer.stats` included in ``stats`` output —
#: the deterministic subset (no wall/sim seconds).
STATS_KEYS = (
    "num_vertices",
    "num_edges",
    "num_clusters",
    "f_objective",
    "batches_applied",
    "moves_applied",
    "escalations",
)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)


class ClusterServer:
    """Query/stage/commit/save facade over a live clusterer.

    Ops and their latency-histogram labels:

    * ``query`` — :meth:`cluster_of`, :meth:`same`, :meth:`members`,
      :meth:`stats`;
    * ``stage`` — :meth:`stage` (validate + queue one update);
    * ``commit`` — :meth:`commit` (staged) / :meth:`apply` (direct
      batch, the ``repro update`` path);
    * ``save`` — :meth:`save` snapshot rotation;
    * ``audit`` — :meth:`audit` full-state invariant check.
    """

    def __init__(
        self,
        clusterer: DynamicClusterer,
        store: Optional[SnapshotStore] = None,
    ) -> None:
        self.clusterer = clusterer
        self.store = store
        self.staged: List[EdgeUpdate] = []
        self._closed = False
        instr = clusterer.instr
        if instr.enabled:
            # Pre-register with µs-scale buckets; later observe() calls
            # reuse the instance (the registry is get-or-create).
            instr.metrics.histogram(
                M_SERVE_LATENCY,
                _HELP.get(M_SERVE_LATENCY, ""),
                buckets=SERVE_LATENCY_BUCKETS,
            )

    # ------------------------------------------------------------------
    @property
    def instr(self):
        return self.clusterer.instr

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServerClosedError(
                "ClusterServer is closed; ops after close() are invalid"
            )

    def _begin(self) -> Optional[float]:
        self._ensure_open()
        return time.perf_counter() if self.instr.enabled else None

    def _end(self, op: str, start: Optional[float]) -> None:
        if start is not None:
            self.instr.observe(
                M_SERVE_LATENCY, time.perf_counter() - start, op=op
            )

    # ------------------------------------------------------------------
    # query ops
    # ------------------------------------------------------------------
    def cluster_of(self, u: int) -> int:
        start = self._begin()
        try:
            return self.clusterer.cluster_of(u)
        finally:
            self._end("query", start)

    def same(self, u: int, v: int) -> bool:
        start = self._begin()
        try:
            return self.clusterer.cluster_of(u) == self.clusterer.cluster_of(v)
        finally:
            self._end("query", start)

    def members(self, cluster: int) -> np.ndarray:
        start = self._begin()
        try:
            return self.clusterer.members(cluster)
        finally:
            self._end("query", start)

    def stats(self) -> dict:
        start = self._begin()
        try:
            return self.clusterer.stats()
        finally:
            self._end("query", start)

    # ------------------------------------------------------------------
    # mutation ops
    # ------------------------------------------------------------------
    def stage(self, update: EdgeUpdate) -> int:
        """Queue one update; returns the staged count."""
        start = self._begin()
        try:
            self.staged.append(update)
            return len(self.staged)
        finally:
            self._end("stage", start)

    def commit(self) -> UpdateReport:
        """Apply every staged update as one batch."""
        self._ensure_open()
        batch = UpdateBatch(self.staged)
        self.staged = []
        return self.apply(batch)

    def apply(
        self, batch: Union[UpdateBatch, List[EdgeUpdate]]
    ) -> UpdateReport:
        """Apply a batch directly (the ``repro update`` path)."""
        start = self._begin()
        try:
            return self.clusterer.apply(batch)
        finally:
            self._end("commit", start)

    def save(self):
        """Rotate a snapshot into the store; resets staleness."""
        self._ensure_open()
        if self.store is None:
            raise UpdateError("save requires a snapshot store (--snapshot-dir)")
        start = self._begin()
        try:
            return self.store.save(self.clusterer)
        finally:
            self._end("save", start)

    def audit(self) -> List[str]:
        start = self._begin()
        try:
            return self.clusterer.audit()
        finally:
            self._end("audit", start)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the clusterer's execution backend (DESIGN.md §13).

        Idempotent: a second ``close()`` (or a ``with`` block exiting
        after an explicit close) is a no-op.  Subsequent ops raise
        :class:`~repro.errors.ServerClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        self.clusterer.close()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_session(
    clusterer: Union[DynamicClusterer, ClusterServer],
    script: Iterable[str],
    store: Optional[SnapshotStore] = None,
) -> List[str]:
    """Execute a serve-sim script; returns one output line per command."""
    if isinstance(clusterer, ClusterServer):
        server = clusterer
        if store is not None and server.store is None:
            server.store = store
    else:
        server = ClusterServer(clusterer, store)
    out: List[str] = []
    for lineno, raw in enumerate(script, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        cmd, args = parts[0], parts[1:]
        try:
            out.append(_dispatch(server, cmd, args))
        except UpdateError as exc:
            raise UpdateError(f"serve script line {lineno} ({line!r}): {exc}") from exc
    if server.staged:
        out.append(f"warning: {len(server.staged)} staged updates never committed")
    return out


def _dispatch(server: ClusterServer, cmd: str, args: List[str]) -> str:
    if cmd == "get":
        (u,) = _ints(cmd, args, 1)
        return f"cluster_of({u}) = {server.cluster_of(u)}"
    if cmd == "same":
        u, v = _ints(cmd, args, 2)
        return f"same({u}, {v}) = {'true' if server.same(u, v) else 'false'}"
    if cmd == "members":
        (c,) = _ints(cmd, args, 1)
        ids = ",".join(str(x) for x in server.members(c))
        return f"members({c}) = [{ids}]"
    if cmd == "stats":
        stats = server.stats()
        body = " ".join(f"{key}={_fmt(stats[key])}" for key in STATS_KEYS)
        return f"stats: {body}"
    if cmd in ("insert", "delete", "reweight"):
        update = _parse_update(cmd, args)
        server.stage(update)
        suffix = "" if cmd == "delete" else f" w={_fmt(update.weight)}"
        return f"staged {cmd} ({update.u}, {update.v}){suffix}"
    if cmd == "commit":
        if args:
            raise UpdateError("commit takes no arguments")
        report = server.commit()
        line = (
            f"commit[{report.batch_index}]: updates={report.num_updates} "
            f"seed={report.seed_size} rounds={report.iterations} "
            f"moves={report.moves} f={_fmt(report.f_objective)}"
        )
        if report.escalated:
            line += f" escalated={report.escalated}"
        return line
    if cmd == "save":
        path = server.save()
        return f"saved {path.name}"
    if cmd == "audit":
        issues = server.audit()
        if not issues:
            return "audit: clean"
        return f"audit: {len(issues)} issues: " + "; ".join(issues)
    raise UpdateError(f"unknown serve command {cmd!r}")


def _ints(cmd: str, args: List[str], count: int) -> List[int]:
    if len(args) != count:
        raise UpdateError(f"{cmd} takes {count} argument(s), got {len(args)}")
    try:
        return [int(a) for a in args]
    except ValueError as exc:
        raise UpdateError(f"{cmd}: {exc}") from None


def _parse_update(cmd: str, args: List[str]) -> EdgeUpdate:
    if cmd == "insert":
        if len(args) not in (2, 3):
            raise UpdateError("insert takes U V [W]")
        weight = float(args[2]) if len(args) == 3 else 1.0
    elif cmd == "delete":
        if len(args) != 2:
            raise UpdateError("delete takes U V")
        weight = 1.0
    else:
        if len(args) != 3:
            raise UpdateError("reweight takes U V W")
        weight = float(args[2])
    try:
        u, v = int(args[0]), int(args[1])
    except ValueError as exc:
        raise UpdateError(f"{cmd}: {exc}") from None
    return EdgeUpdate(cmd, u, v, weight)
