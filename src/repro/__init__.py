"""repro — reproduction of "Scalable Community Detection via Parallel
Correlation Clustering" (Shi, Dhulipala, Eisenstat, Łącki, Mirrokni;
VLDB 2021).

The package implements the paper's LambdaCC Louvain framework (sequential
and parallel, with the synchronous/asynchronous, frontier-restriction and
multi-level-refinement optimizations), every baseline it evaluates against
(KwikCluster, C4, ClusterWild!, dense-matrix LambdaCC, Tectonic, SCD, a
NetworKit-style PLM), the graph substrates (CSR graphs, rMAT and
planted-partition generators, k-NN graph construction), the evaluation
toolkit (average precision/recall against ground-truth communities, ARI,
NMI), and a simulated shared-memory parallel runtime that stands in for the
paper's 30/48-core machines (see DESIGN.md for the substitution argument).

Quickstart::

    from repro import correlation_clustering, karate_club_graph

    graph = karate_club_graph()
    result = correlation_clustering(graph, resolution=0.05, seed=1)
    print(result.num_clusters, result.objective)
"""

from repro.core.api import (
    cluster,
    correlation_clustering,
    modularity_clustering,
)
from repro.core.config import ClusteringConfig, Frontier, Mode, Objective
from repro.core.options import RunOptions
from repro.core.result import ClusterResult
from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.karate import karate_club_graph
from repro.parallel.scheduler import CostLedger, Machine, SimulatedScheduler
from repro.serving import GatewayPolicy, ServingGateway
from repro.supervisor import (
    FallbackLadder,
    RetryPolicy,
    RunSupervisor,
    Watchdog,
    supervise,
)

__version__ = "1.0.0"

#: The frozen top-level surface.  ``repro.api`` snapshots the signature
#: of every name here (plus its own additions) into
#: ``benchmarks/api_surface.json``; ``make api-check`` fails CI when the
#: surface drifts without the snapshot being regenerated deliberately.
__all__ = [
    "CSRGraph",
    "ClusterResult",
    "ClusteringConfig",
    "CostLedger",
    "FallbackLadder",
    "Frontier",
    "GatewayPolicy",
    "Machine",
    "Mode",
    "Objective",
    "RetryPolicy",
    "RunOptions",
    "RunSupervisor",
    "ServingGateway",
    "SimulatedScheduler",
    "Watchdog",
    "cluster",
    "correlation_clustering",
    "graph_from_edges",
    "karate_club_graph",
    "modularity_clustering",
    "supervise",
    "__version__",
]
